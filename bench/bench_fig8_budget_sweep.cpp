// Figure 8: TTI of MS-LRU, MS-OFF, and MS-MISO while the view storage
// budgets Bh = Bd sweep over {0.125x, 0.5x, 1x, 2x, 4x} of the base data,
// with Bt fixed at 10 GB.
//
// Paper shape: MS-MISO best at every budget; MS-LRU and MS-OFF improve
// with larger budgets and the three converge at 2-4x, where storage is
// plentiful enough to retain everything useful.

#include "bench_util.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader(
      "Figure 8: budget sweep (Bh=Bd fraction of base data, Bt=10GB)");

  const double fractions[] = {0.125, 0.5, 1.0, 2.0, 4.0};
  const sim::SystemVariant variants[] = {sim::SystemVariant::kMsLru,
                                         sim::SystemVariant::kMsOff,
                                         sim::SystemVariant::kMsMiso};

  std::printf("%-8s %12s %12s %12s\n", "budget", "MS-LRU", "MS-OFF",
              "MS-MISO");
  for (double f : fractions) {
    std::printf("%-7.3fx", f);
    for (sim::SystemVariant v : variants) {
      sim::RunReport report = bench_util::Run(bench_util::BudgetConfig(v, f));
      std::printf(" %12.0f", report.Tti());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: MISO best everywhere; others converge toward it at "
      "2-4x\n");
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
