// Micro-benchmarks for the online multistore server: session throughput
// and tail latency of the admission → wave → reduce pipeline, with the
// background (online) reorganization cadence against the stop-the-world
// baseline. Wall-clock here is host time of the serving machinery (the
// engine's cost models still tick simulated seconds); compare ratios
// across snapshots, not absolute numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "server/miso_server.h"

namespace miso {
namespace {

using bench_util::Catalog;
using bench_util::DefaultConfig;
using bench_util::Workload;

constexpr int kSessions = 256;
// The warm replay cycles the paper workload several times over so the
// steady state (every template already cached) dominates the cold first
// pass in the measurement.
constexpr int kWarmSessions = 1024;

std::vector<workload::WorkloadQuery> CycledSessions(int n) {
  static const auto* pool = [] {
    auto* q = new std::vector<workload::WorkloadQuery>();
    const std::vector<workload::WorkloadQuery>& base = Workload().queries();
    q->reserve(kWarmSessions);
    for (int i = 0; i < kWarmSessions; ++i) {
      q->push_back(base[static_cast<size_t>(i) % base.size()]);
    }
    return q;
  }();
  return {pool->begin(), pool->begin() + n};
}

/// One full serve of `kSessions` cycled paper-workload sessions.
/// Args: {wave_size, online_reorg, MISO_THREADS}.
void BM_ServerServe(benchmark::State& state) {
  const int wave_size = static_cast<int>(state.range(0));
  const bool online = state.range(1) != 0;
  const int threads = static_cast<int>(state.range(2));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("MISO_THREADS", buf, /*overwrite=*/1);

  const std::vector<workload::WorkloadQuery> queries = CycledSessions(kSessions);
  double p99_ms = 0;
  double overlap_saved_s = 0;
  for (auto _ : state) {
    server::ServerConfig config;
    config.sim = DefaultConfig(sim::SystemVariant::kMsMiso);
    config.sim.reorg_every = 16;
    config.wave_size = wave_size;
    config.online_reorg = online;
    config.admission_capacity = 64;
    config.expected_sessions = kSessions;

    server::MisoServer server(&Catalog(), config);
    std::vector<std::chrono::steady_clock::time_point> submitted;
    submitted.reserve(queries.size());
    std::vector<std::future<server::SessionResult>> futures;
    futures.reserve(queries.size());
    for (const workload::WorkloadQuery& q : queries) {
      submitted.push_back(std::chrono::steady_clock::now());
      futures.push_back(server.Submit(q));
    }
    server.Close();
    // Sessions resolve in admission order, so the wall-clock at each
    // get()'s return approximates that session's resolution time.
    std::vector<double> latencies_ms;
    latencies_ms.reserve(futures.size());
    for (size_t i = 0; i < futures.size(); ++i) {
      const server::SessionResult result = futures[i].get();
      if (!result.status.ok()) {
        state.SkipWithError(result.status.ToString().c_str());
        return;
      }
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - submitted[i])
              .count());
    }
    auto report = server.Finish();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(report->Tti());
    overlap_saved_s = report->reorg_overlap_saved_s;
    std::sort(latencies_ms.begin(), latencies_ms.end());
    p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  }
  unsetenv("MISO_THREADS");

  state.SetItemsProcessed(state.iterations() * kSessions);
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kSessions,
      benchmark::Counter::kIsRate);
  state.counters["p99_session_ms"] = p99_ms;
  state.counters["overlap_saved_sim_s"] = overlap_saved_s;
  state.SetLabel(std::string(online ? "online" : "stop-the-world") +
                 " wave=" + std::to_string(wave_size) +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_ServerServe)
    ->Args({1, 0, 1})   // simulator-equivalent baseline
    ->Args({8, 0, 1})   // batching alone
    ->Args({8, 1, 1})   // + background reorganization, serial workers
    ->Args({8, 1, 4})   // + worker pool
    ->UseRealTime()     // the pipeline runs on scheduler/worker threads
    ->Unit(benchmark::kMillisecond);

/// Warm paper-workload replay: the serving-path throughput headline.
/// No reorganizations (`reorg_every = 0`) so the design is stable and
/// the cycled workload repeats its query templates — the regime the
/// design-epoch plan cache and wave pipelining are built for
/// (PERFORMANCE.md "Serving path"). Args: {plan_cache, pipeline_waves,
/// MISO_THREADS}.
void BM_ServerWarmReplay(benchmark::State& state) {
  const bool cache = state.range(0) != 0;
  const bool pipeline = state.range(1) != 0;
  const int threads = static_cast<int>(state.range(2));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("MISO_THREADS", buf, /*overwrite=*/1);

  const std::vector<workload::WorkloadQuery> queries =
      CycledSessions(kWarmSessions);
  int64_t cache_hits = 0;
  int waves_speculative = 0;
  for (auto _ : state) {
    server::ServerConfig config;
    config.sim = DefaultConfig(sim::SystemVariant::kMsMiso);
    config.sim.reorg_every = 0;
    config.wave_size = 8;
    config.online_reorg = false;
    config.admission_capacity = 64;
    config.expected_sessions = kWarmSessions;
    config.plan_cache = cache;
    config.pipeline_waves = pipeline;

    server::MisoServer server(&Catalog(), config);
    std::vector<std::future<server::SessionResult>> futures;
    futures.reserve(queries.size());
    for (const workload::WorkloadQuery& q : queries) {
      futures.push_back(server.Submit(q));
    }
    server.Close();
    for (std::future<server::SessionResult>& f : futures) {
      const server::SessionResult result = f.get();
      if (!result.status.ok()) {
        state.SkipWithError(result.status.ToString().c_str());
        return;
      }
    }
    auto report = server.Finish();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(report->Tti());
    cache_hits = report->plan_cache_hits;
    waves_speculative = report->waves_speculative;
  }
  unsetenv("MISO_THREADS");

  state.SetItemsProcessed(state.iterations() * kWarmSessions);
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kWarmSessions,
      benchmark::Counter::kIsRate);
  state.counters["plan_cache_hits"] = static_cast<double>(cache_hits);
  state.counters["waves_speculative"] = waves_speculative;
  state.SetLabel(std::string("cache=") + (cache ? "on" : "off") +
                 " pipeline=" + (pipeline ? "on" : "off") +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_ServerWarmReplay)
    ->Args({0, 0, 1})   // PR 8 serving path: no cache, serial waves
    ->Args({1, 0, 1})   // cache alone
    ->Args({0, 1, 4})   // pipelining alone
    ->Args({1, 1, 1})   // both, single worker
    ->Args({1, 1, 4})   // both, worker pool: the headline row
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Overload-protected serve under the chaos fault profile: admission
/// deadlines shed the batch tier while the DW-health circuit breaker
/// (when on) rides out the injected fault bursts by serving HV-only
/// (DESIGN.md §16). Shed and retry-exhausted sessions are *expected*
/// terminal outcomes here, not measurement errors — only an aborted
/// session (run-level fatal) skips the iteration. Args: {breaker,
/// MISO_THREADS}.
void BM_ServerOverloadShed(benchmark::State& state) {
  const bool breaker = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("MISO_THREADS", buf, /*overwrite=*/1);

  const std::vector<workload::WorkloadQuery> queries = CycledSessions(kSessions);
  int sessions_shed = 0;
  int sessions_failed = 0;
  int breaker_degraded = 0;
  int breaker_transitions = 0;
  double breaker_open_s = 0;
  for (auto _ : state) {
    server::ServerConfig config;
    config.sim = DefaultConfig(sim::SystemVariant::kMsMiso);
    config.sim.reorg_every = 16;
    config.wave_size = 8;
    config.online_reorg = true;
    config.admission_capacity = 64;
    config.expected_sessions = kSessions;
    // The harsh end of the chaos profile: enough faults that the retry
    // budget (2 attempts) actually runs dry and the breaker has real
    // bursts to trip on.
    config.sim.fault.profile = fault::FaultProfile::kChaos;
    config.sim.fault.seed = 5;
    config.sim.fault.rate = 0.3;
    config.sim.fault.retry.max_attempts = 2;
    // Gold tier never sheds; the batch tier gets a deadline shorter than
    // the tail of the run, so the back half of its sessions shed.
    config.overload.admission_deadlines = true;
    config.overload.classes = {{"gold", 0}, {"batch", 30000}};
    config.overload.classifier = [](const workload::WorkloadQuery&,
                                    int session_id) { return session_id % 2; };
    config.overload.breaker = breaker;
    config.overload.breaker_failure_threshold = 2;
    // Must dwarf a session's simulated runtime (thousands of seconds) or
    // the breaker re-probes before a wave ever plans against open.
    config.overload.breaker_cooldown_s = 100000;
    config.overload.breaker_half_open_successes = 2;

    server::MisoServer server(&Catalog(), config);
    std::vector<std::future<server::SessionResult>> futures;
    futures.reserve(queries.size());
    for (const workload::WorkloadQuery& q : queries) {
      futures.push_back(server.Submit(q));
    }
    server.Close();
    for (std::future<server::SessionResult>& f : futures) {
      const server::SessionResult result = f.get();
      if (result.outcome == server::SessionOutcome::kAborted) {
        state.SkipWithError(result.status.ToString().c_str());
        return;
      }
    }
    auto report = server.Finish();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(report->Tti());
    sessions_shed = report->sessions_shed;
    sessions_failed = report->sessions_failed;
    breaker_degraded = report->breaker_degraded_sessions;
    breaker_transitions = report->breaker_transitions;
    breaker_open_s = report->breaker_open_s;
  }
  unsetenv("MISO_THREADS");

  state.SetItemsProcessed(state.iterations() * kSessions);
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kSessions,
      benchmark::Counter::kIsRate);
  state.counters["sessions_shed"] = sessions_shed;
  state.counters["sessions_failed"] = sessions_failed;
  state.counters["breaker_degraded"] = breaker_degraded;
  state.counters["breaker_transitions"] = breaker_transitions;
  state.counters["breaker_open_sim_s"] = breaker_open_s;
  state.SetLabel(std::string("chaos breaker=") + (breaker ? "on" : "off") +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_ServerOverloadShed)
    ->Args({0, 1})   // shedding alone, breaker closed for good
    ->Args({1, 1})   // + DW-health breaker, serial workers
    ->Args({1, 4})   // + worker pool (byte-identical counters, faster wall)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace miso

BENCHMARK_MAIN();
