// Micro-benchmarks of the multistore optimizer: view-based rewriting,
// split enumeration, and full what-if costing. These bound the per-query
// optimization overhead the simulator (and a real system) would pay.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "hv/hv_store.h"
#include "optimizer/split_enumerator.h"
#include "views/rewriter.h"

namespace miso {
namespace {

using bench_util::Catalog;
using bench_util::Workload;

struct OptimizerFixture {
  OptimizerFixture()
      : factory(&Catalog()),
        hv_model(hv::HvConfig{}),
        dw_model(dw::DwConfig{}),
        transfer_model(transfer::TransferConfig{}),
        optimizer(&factory, &hv_model, &dw_model, &transfer_model),
        hv_catalog(100 * kTiB),
        dw_catalog(400 * kGiB) {
    hv::HvStore store(hv::HvConfig{}, 100 * kTiB);
    uint64_t next_id = 1;
    for (int i = 0; i < 8; ++i) {
      const plan::Plan& q = Workload().queries()[static_cast<size_t>(i)].plan;
      auto exec = store.Execute(q.root(), i, 0, &next_id, q.signature());
      for (views::View& v : exec->produced_views) {
        // Spread small views into DW, rest into HV.
        if (v.size_bytes < 2 * kGiB && dw_catalog.used_bytes() < 100 * kGiB) {
          dw_catalog.AddUnchecked(std::move(v));
        } else {
          hv_catalog.AddUnchecked(std::move(v));
        }
      }
    }
  }

  plan::NodeFactory factory;
  hv::HvCostModel hv_model;
  dw::DwCostModel dw_model;
  transfer::TransferModel transfer_model;
  optimizer::MultistoreOptimizer optimizer;
  views::ViewCatalog hv_catalog;
  views::ViewCatalog dw_catalog;
};

OptimizerFixture& Fixture() {
  static auto* fixture = new OptimizerFixture();
  return *fixture;
}

void BM_Rewrite(benchmark::State& state) {
  OptimizerFixture& f = Fixture();
  views::Rewriter rewriter(&f.factory);
  // A later version query that can reuse the harvested views.
  const plan::Plan& q = Workload().queries()[11].plan;
  for (auto _ : state) {
    auto rewritten =
        rewriter.Rewrite(q, f.dw_catalog, f.hv_catalog, nullptr);
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_Rewrite);

void BM_SplitEnumeration(benchmark::State& state) {
  const plan::Plan& q = Workload().queries()[3].plan;
  for (auto _ : state) {
    auto splits = optimizer::EnumerateSplits(q.root());
    benchmark::DoNotOptimize(splits);
  }
}
BENCHMARK(BM_SplitEnumeration);

void BM_WhatIfCost(benchmark::State& state) {
  OptimizerFixture& f = Fixture();
  const plan::Plan& q = Workload().queries()[11].plan;
  for (auto _ : state) {
    auto cost = f.optimizer.WhatIfCost(q, f.dw_catalog, f.hv_catalog);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_WhatIfCost);

void BM_FullOptimize(benchmark::State& state) {
  OptimizerFixture& f = Fixture();
  for (auto _ : state) {
    for (int i = 8; i < 16; ++i) {
      auto best = f.optimizer.Optimize(
          Workload().queries()[static_cast<size_t>(i)].plan, f.dw_catalog,
          f.hv_catalog);
      benchmark::DoNotOptimize(best);
    }
  }
  state.SetLabel("8 queries per iteration");
}
BENCHMARK(BM_FullOptimize);

void BM_FullOptimizeThreaded(benchmark::State& state) {
  // Same 8 queries as BM_FullOptimize, but with candidate costing fanned
  // out over a pool; the plans produced are bit-identical to the serial
  // run for every thread count (the Arg is the pool size).
  OptimizerFixture& f = Fixture();
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  f.optimizer.set_thread_pool(threads > 1 ? &pool : nullptr);
  for (auto _ : state) {
    for (int i = 8; i < 16; ++i) {
      auto best = f.optimizer.Optimize(
          Workload().queries()[static_cast<size_t>(i)].plan, f.dw_catalog,
          f.hv_catalog);
      benchmark::DoNotOptimize(best);
    }
  }
  f.optimizer.set_thread_pool(nullptr);
  state.SetLabel("8 queries per iteration, " + std::to_string(threads) +
                 " thread(s)");
}
BENCHMARK(BM_FullOptimizeThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PlanConstruction(benchmark::State& state) {
  for (auto _ : state) {
    auto workload = workload::EvolutionaryWorkload::Generate(
        &Catalog(), workload::WorkloadConfig{});
    benchmark::DoNotOptimize(workload);
  }
  state.SetLabel("32 annotated plans");
}
BENCHMARK(BM_PlanConstruction);

}  // namespace
}  // namespace miso

BENCHMARK_MAIN();
