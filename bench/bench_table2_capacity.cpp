// Table 2: mutual impact of the multistore workload and the DW reporting
// workload, for four spare-capacity configurations.
//
//   DW spare capacity | slowdown of DW queries | slowdown of multistore
//   IO  40%           | 1.1%                   | 2.5%
//   IO  20%           | 1.7%                   | 4.0%
//   CPU 40%           | 0.3%                   | 4.2%
//   CPU 20%           | 0.8%                   | 5.0%

#include "bench_util.h"
#include "workload/background.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader("Table 2: spare-capacity interference matrix");

  // Idle-DW baseline for the multistore slowdown column.
  const sim::RunReport idle =
      bench_util::Run(bench_util::DefaultConfig(sim::SystemVariant::kMsMiso));

  struct Case {
    const char* label;
    dw::BackgroundWorkload background;
    double paper_dw;
    double paper_ms;
  };
  const Case cases[] = {
      {"IO  40%", workload::SpareIo40(), 1.1, 2.5},
      {"IO  20%", workload::SpareIo20(), 1.7, 4.0},
      {"CPU 40%", workload::SpareCpu40(), 0.3, 4.2},
      {"CPU 20%", workload::SpareCpu20(), 0.8, 5.0},
  };

  std::printf("%-9s %14s %14s %14s %14s\n", "spare", "DW slowdown",
              "(paper)", "MS slowdown", "(paper)");
  for (const Case& c : cases) {
    sim::SimConfig config =
        bench_util::DefaultConfig(sim::SystemVariant::kMsMiso);
    config.background = c.background;
    sim::RunReport report = bench_util::Run(config);
    const double ms_slowdown = report.Tti() / idle.Tti() - 1.0;
    std::printf("%-9s %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n", c.label,
                100 * report.background_slowdown, c.paper_dw,
                100 * ms_slowdown, c.paper_ms);
  }
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
