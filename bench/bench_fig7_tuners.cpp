// Figure 7: comparison of multistore tuning techniques at the constrained
// budgets Bh = Bd = 0.125x, Bt = 10 GB.
//
// Paper shape: MS-BASIC worst; MS-MISO 60% better than MS-OFF and 56%
// better than MS-LRU; MS-ORA (oracle) best, with MS-MISO ~32% behind it.
// (Known deviation, see EXPERIMENTS.md: our MS-OFF is a stronger offline
// baseline than the paper's and does not collapse at small budgets.)

#include "bench_util.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader(
      "Figure 7: tuning techniques at Bh=Bd=0.125x, Bt=10GB");

  const sim::SystemVariant variants[] = {
      sim::SystemVariant::kMsBasic, sim::SystemVariant::kMsOff,
      sim::SystemVariant::kMsLru, sim::SystemVariant::kMsMiso,
      sim::SystemVariant::kMsOra};

  Seconds miso_tti = 0;
  std::printf("%-9s %10s %10s %9s %8s %8s %4s\n", "variant", "TTI(s)",
              "HV-EXE", "DW-EXE", "XFER", "TUNE", "THR");
  std::vector<std::pair<std::string, Seconds>> results;
  for (sim::SystemVariant v : variants) {
    const sim::SimConfig config = bench_util::BudgetConfig(v, 0.125);
    // Worker threads for candidate costing (MISO_THREADS); the TTI
    // columns are identical for any value — only wall clock changes.
    const int threads = config.threads > 0 ? config.threads
                                           : ThreadPool::DefaultThreadCount();
    sim::RunReport report = bench_util::Run(config);
    if (v == sim::SystemVariant::kMsMiso) miso_tti = report.Tti();
    results.emplace_back(report.variant_name, report.Tti());
    std::printf("%-9s %10.0f %10.0f %9.0f %8.0f %8.0f %4d\n",
                report.variant_name.c_str(), report.Tti(), report.hv_exe_s,
                report.dw_exe_s, report.transfer_s, report.tune_s, threads);
  }

  std::printf("\nMS-MISO improvement over each technique:\n");
  for (const auto& [name, tti] : results) {
    if (name == "MS-MISO") continue;
    std::printf("  vs %-9s %+6.1f%%\n", name.c_str(),
                100 * (1 - miso_tti / tti));
  }
  std::printf(
      "paper: +60%% vs MS-OFF, +56%% vs MS-LRU, -32%% vs MS-ORA\n");
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
