// Figure 3: execution-time profile of ALL multistore plans (split points)
// of a single complex analyst query, ordered by increasing execution time.
// Each row is one split, with the stacked components the paper plots:
// HV execution, DUMP, TRANSFER/LOAD, and DW execution.
//
// Paper shape: the best plan (B) is ~10% faster than the HV-only plan (H);
// the early-split plans (S) are far more expensive because they dump,
// transfer, and load a huge working set.

#include <algorithm>

#include "bench_util.h"
#include "obs/trace.h"

namespace miso {
namespace {

using bench_util::Catalog;
using bench_util::Workload;

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);

  plan::NodeFactory factory(&Catalog());
  hv::HvCostModel hv_model{hv::HvConfig{}};
  dw::DwCostModel dw_model{dw::DwConfig{}};
  transfer::TransferModel transfer_model{transfer::TransferConfig{}};
  optimizer::MultistoreOptimizer opt(&factory, &hv_model, &dw_model,
                                     &transfer_model);

  // A4v1: a 3-source analyst query whose UDFs are DW-compatible, so the
  // full range of split points (including the catastrophic early ones)
  // exists — the paper's query "A1v1" plays the same role.
  const workload::WorkloadQuery& query = Workload().queries()[3];
  bench_util::PrintHeader("Figure 3: all multistore plans of " +
                          query.plan.query_name());

  auto plans = opt.EnumerateAllPlans(query.plan);
  if (!plans.ok()) {
    std::fprintf(stderr, "%s\n", plans.status().ToString().c_str());
    return 1;
  }
  // Under MISO_TRACE=1 the enumeration above emitted one
  // `optimizer.plan_costed` JSONL line per split; flush them so
  // tools/trace_summarize.py can rebuild this table from the trace alone
  // (see EXPERIMENTS.md, "Reading the trace").
  if (obs::TraceOn()) {
    const char* trace_path = "fig3_trace.jsonl";
    if (obs::Trace().DrainToFile(trace_path)) {
      std::printf("trace written to %s\n\n", trace_path);
    }
  }
  std::sort(plans->begin(), plans->end(),
            [](const optimizer::MultistorePlan& a,
               const optimizer::MultistorePlan& b) {
              return a.cost.Total() < b.cost.Total();
            });

  Seconds hv_only = 0;
  for (const optimizer::MultistorePlan& p : *plans) {
    if (p.HvOnly()) hv_only = p.cost.Total();
  }

  std::printf("%-4s %9s %9s %7s %9s %8s %12s %s\n", "plan", "TOTAL(s)",
              "HV-EXE", "DUMP", "XFER+LOAD", "DW-EXE", "migrated", "note");
  int index = 0;
  for (const optimizer::MultistorePlan& p : *plans) {
    const char* note = "";
    if (index == 0) note = "B (best)";
    if (p.HvOnly()) note = "H (HV-only)";
    if (p.cost.Total() > 1.15 * hv_only) note = "S (bad split)";
    std::printf("%-4d %9.0f %9.0f %7.0f %9.0f %8.1f %12s %s\n", index++,
                p.cost.Total(), p.cost.hv_exec_s, p.cost.dump_s,
                p.cost.transfer_load_s, p.cost.dw_exec_s,
                FormatBytes(p.transferred_bytes).c_str(), note);
  }

  const Seconds best = plans->front().cost.Total();
  const Seconds worst = plans->back().cost.Total();
  std::printf(
      "\nbest/HV-only = %.2f (paper: ~0.90)   worst/HV-only = %.2f "
      "(paper: ~2.7)\n",
      best / hv_only, worst / hv_only);
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
