#ifndef MISO_BENCH_BENCH_UTIL_H_
#define MISO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "core/miso.h"

namespace miso::bench_util {

/// The paper-scale catalog (2 TB of logs) shared by all experiment
/// harnesses.
inline const relation::Catalog& Catalog() {
  static const auto* catalog =
      new relation::Catalog(relation::MakePaperCatalog());
  return *catalog;
}

/// The paper's 32-query evolutionary workload (8 analysts x 4 versions).
inline const workload::EvolutionaryWorkload& Workload() {
  static const auto* workload = [] {
    auto w = workload::EvolutionaryWorkload::Generate(
        &Catalog(), workload::WorkloadConfig{});
    if (!w.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   w.status().ToString().c_str());
      std::abort();
    }
    return new workload::EvolutionaryWorkload(std::move(w).value());
  }();
  return *workload;
}

/// Runs the paper workload under `config`, aborting on error (these are
/// experiment harnesses; any failure is a bug).
inline sim::RunReport Run(const sim::SimConfig& config) {
  sim::MultistoreSimulator simulator(&Catalog(), config);
  auto report = simulator.Run(Workload().queries());
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).value();
}

/// Default experiment configuration (§5.2): Bh = Bd = 2x, Bt = 10 GB,
/// reorganize every 3 queries.
inline sim::SimConfig DefaultConfig(sim::SystemVariant variant) {
  sim::SimConfig config;
  config.variant = variant;
  config.hv_storage_budget = 4 * kTiB;      // 2x of 2 TB base data
  config.dw_storage_budget = 400 * kGiB;    // 2x of 200 GB relevant data
  config.transfer_budget = 10 * kGiB;
  return config;
}

/// Budgets as a fraction of the base data (Figures 7/8).
inline sim::SimConfig BudgetConfig(sim::SystemVariant variant,
                                   double fraction) {
  sim::SimConfig config = DefaultConfig(variant);
  config.hv_storage_budget = static_cast<Bytes>(fraction * 2 * kTiB);
  config.dw_storage_budget = static_cast<Bytes>(fraction * 200 * kGiB);
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace miso::bench_util

#endif  // MISO_BENCH_BENCH_UTIL_H_
