// Figure 5: (a) cumulative TTI after each completed query for the five
// variants — DW-ONLY is flat until its ETL completes; (b) the
// distribution of per-query execution times over the paper's buckets.
//
// Paper shape (5b): DW-ONLY is the top curve (65% < 10 s, 90% < 100 s);
// HV-ONLY the bottom (<3% under 1000 s); MS-MISO completes ~30% of
// queries in under 100 s while HV-OP / MS-BASIC complete none.

#include <map>

#include "bench_util.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);

  const sim::SystemVariant variants[] = {
      sim::SystemVariant::kHvOnly, sim::SystemVariant::kDwOnly,
      sim::SystemVariant::kMsBasic, sim::SystemVariant::kHvOp,
      sim::SystemVariant::kMsMiso};

  std::map<sim::SystemVariant, sim::RunReport> reports;
  for (sim::SystemVariant v : variants) {
    reports.emplace(v, bench_util::Run(bench_util::DefaultConfig(v)));
  }

  bench_util::PrintHeader("Figure 5a: TTI vs queries completed");
  std::printf("%-8s", "queries");
  for (sim::SystemVariant v : variants) {
    std::printf(" %10s", std::string(sim::SystemVariantToString(v)).c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < 32; i += 4) {
    std::printf("%-8zu", i + 4);
    for (sim::SystemVariant v : variants) {
      std::printf(" %10.0f", reports.at(v).TtiCurve()[i + 3]);
    }
    std::printf("\n");
  }

  bench_util::PrintHeader(
      "Figure 5b: fraction of queries with execution time below bound");
  const std::vector<Seconds> bounds = {10,   100,  1000,  2000,  5000,
                                       10000, 20000, 45000};
  std::printf("%-8s", "< (s)");
  for (sim::SystemVariant v : variants) {
    std::printf(" %10s", std::string(sim::SystemVariantToString(v)).c_str());
  }
  std::printf("\n");
  for (size_t b = 0; b < bounds.size(); ++b) {
    std::printf("%-8.0f", bounds[b]);
    for (sim::SystemVariant v : variants) {
      std::printf(" %9.0f%%", 100 * reports.at(v).ExecTimeCdf(bounds)[b]);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: DW-ONLY top curve (65%% < 10 s), HV-ONLY bottom; MS-MISO "
      ">= 30%% under 100 s\n");
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
