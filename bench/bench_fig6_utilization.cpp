// Figure 6: per-query store-utilization breakdown (fraction of execution
// time in HV, transferring, and in DW), queries ranked by DW utilization,
// for MS-BASIC and MS-MISO at 0.125x and 2x view storage budgets.
//
// Paper shape: 2 DW-majority queries for MS-BASIC, 9 for MS-MISO at
// 0.125x, 14 at 2x; the HV-seconds-per-DW-second ratio over the 16
// top-ranked queries drops from ~55 (MS-BASIC) to ~1.6 (0.125x) to ~0.12
// (2x); operator split ratios shift from ~1/3 DW to 3/3 DW for the
// fastest queries.

#include "bench_util.h"

namespace miso {
namespace {

void PrintBreakdown(const sim::RunReport& report, const char* label) {
  bench_util::PrintHeader(std::string("Figure 6: ") + label);
  std::printf("%-5s %-7s %7s %7s %7s %9s %8s\n", "rank", "query", "HV%",
              "XFER%", "DW%", "exec(s)", "ops DW");
  const std::vector<int> ranked = report.RankByDwUtilization();
  for (size_t i = 0; i < ranked.size() && i < 20; ++i) {
    const sim::QueryRecord& q =
        report.queries[static_cast<size_t>(ranked[i])];
    const Seconds total = q.ExecTime();
    const double hv = total > 0 ? q.breakdown.hv_exec_s / total : 0;
    const double xfer =
        total > 0
            ? (q.breakdown.dump_s + q.breakdown.transfer_load_s) / total
            : 0;
    const double dw = total > 0 ? q.breakdown.dw_exec_s / total : 0;
    std::printf("%-5zu %-7s %6.0f%% %6.0f%% %6.0f%% %9.0f %5d/%d\n", i + 1,
                q.name.c_str(), 100 * hv, 100 * xfer, 100 * dw, total,
                q.ops_dw, q.ops_total);
  }
  std::printf(
      "DW-majority queries: %d of %zu;  HV seconds per DW second "
      "(top 16): %.2f\n",
      report.DwMajorityQueries(), report.queries.size(),
      report.HvPerDwSecond(16));
}

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);

  sim::RunReport basic =
      bench_util::Run(bench_util::DefaultConfig(sim::SystemVariant::kMsBasic));
  PrintBreakdown(basic, "MS-BASIC");

  sim::SimConfig small =
      bench_util::BudgetConfig(sim::SystemVariant::kMsMiso, 0.125);
  PrintBreakdown(bench_util::Run(small), "MS-MISO (0.125x budget)");

  sim::RunReport big =
      bench_util::Run(bench_util::DefaultConfig(sim::SystemVariant::kMsMiso));
  PrintBreakdown(big, "MS-MISO (2x budget)");

  std::printf(
      "\npaper: DW-majority counts 2 / 9 / 14; HV-per-DW-second 55 / 1.6 "
      "/ 0.12\n");
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
