// Section 3.2 motivation chart: two consecutive queries of one analyst
// (q1, q2 with overlap) under HV-ONLY, MS-BASIC, and MS-MISO with one
// reorganization phase between them.
//
// Paper shape: MS-BASIC only ~8% faster than HV-ONLY; MS-MISO ~2x faster
// than both, because the reorganization put the right views into DW
// before q2 executed.

#include "bench_util.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader(
      "Section 3.2: q1, q2 (consecutive analyst versions)");

  // q1 = A1v2, q2 = A1v3 (the paper used A1v2/A1v3 of its workload).
  std::vector<workload::WorkloadQuery> pair;
  for (const workload::WorkloadQuery& q : bench_util::Workload().queries()) {
    if (q.analyst == 0 && (q.version == 1 || q.version == 2)) {
      pair.push_back(q);
    }
  }

  struct Row {
    const char* name;
    sim::SystemVariant variant;
  };
  const Row rows[] = {
      {"HV-ONLY", sim::SystemVariant::kHvOnly},
      {"MS-BASIC", sim::SystemVariant::kMsBasic},
      {"MS-MISO", sim::SystemVariant::kMsMiso},
  };

  Seconds hv_only = 0;
  std::printf("%-9s %10s %10s %10s\n", "variant", "q1 (s)", "q2 (s)",
              "total (s)");
  for (const Row& row : rows) {
    sim::SimConfig config = bench_util::DefaultConfig(row.variant);
    config.reorg_every = 1;  // reorganization between q1 and q2
    sim::MultistoreSimulator simulator(&bench_util::Catalog(), config);
    auto report = simulator.Run(pair);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    const Seconds total = report->Tti();
    if (row.variant == sim::SystemVariant::kHvOnly) hv_only = total;
    std::printf("%-9s %10.0f %10.0f %10.0f   (%.2fx vs HV-ONLY)\n",
                row.name, report->queries[0].ExecTime(),
                report->queries[1].ExecTime(), total, hv_only / total);
  }
  std::printf("\npaper: MS-BASIC ~1.08x, MS-MISO ~2x\n");
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
