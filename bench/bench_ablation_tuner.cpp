// Ablation of the MISO tuner's design choices (paper §4.4 heuristics and
// §6 discussion):
//
//  * interaction handling (stable partition + sparsification) on/off;
//  * store-specific knapsack benefits vs the paper-literal "added to both
//    stores" benefit;
//  * retention of unselected views vs Algorithm-1-literal dropping;
//  * transfer-budget (Bt) sensitivity (§6: the Bt / reorganization
//    frequency trade-off);
//  * reorganization cadence.

#include <functional>

#include "bench_util.h"

namespace miso {
namespace {

Seconds RunWith(
    const std::function<void(sim::SimConfig*)>& mutate) {
  sim::SimConfig config =
      bench_util::DefaultConfig(sim::SystemVariant::kMsMiso);
  mutate(&config);
  return bench_util::Run(config).Tti();
}

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader("Ablation: MISO tuner design choices");

  const Seconds baseline = RunWith([](sim::SimConfig*) {});
  std::printf("%-44s %10s %8s\n", "configuration", "TTI(s)", "vs base");
  auto row = [&](const char* label, Seconds tti) {
    std::printf("%-44s %10.0f %+7.1f%%\n", label, tti,
                100 * (tti / baseline - 1));
  };
  row("baseline (paper defaults)", baseline);

  row("no interaction handling / sparsification",
      RunWith([](sim::SimConfig* c) { c->handle_interactions = false; }));
  row("paper-literal both-stores benefit",
      RunWith([](sim::SimConfig* c) { c->store_specific_benefit = false; }));
  row("paper-literal dropping of unselected views", RunWith([](sim::SimConfig* c) {
        // Exposed through the tuner config inside the simulator.
        c->store_specific_benefit = true;
        c->handle_interactions = true;
        c->reorg_every = 3;
        c->hv_storage_budget = c->hv_storage_budget;  // unchanged
        c->transfer_budget = c->transfer_budget;
        c->epoch_length = 3;
        c->benefit_decay = 0.6;
        c->tune_compute_s = 30;
        c->retain_unselected_views = false;
      }));

  bench_util::PrintHeader("Ablation: transfer budget Bt (§6 trade-off)");
  for (Bytes bt : {Bytes(0), 2 * kGiB, 5 * kGiB, 10 * kGiB, 40 * kGiB,
                   160 * kGiB}) {
    char label[64];
    std::snprintf(label, sizeof(label), "Bt = %s",
                  FormatBytes(bt).c_str());
    row(label, RunWith([bt](sim::SimConfig* c) { c->transfer_budget = bt; }));
  }

  bench_util::PrintHeader("Ablation: reorganization cadence");
  for (int every : {1, 3, 8, 16}) {
    char label[64];
    std::snprintf(label, sizeof(label), "reorganize every %d queries",
                  every);
    row(label, RunWith([every](sim::SimConfig* c) {
          c->reorg_every = every;
        }));
  }
  // §3.1 also allows time-based triggering.
  for (Seconds period : {10000.0, 30000.0}) {
    char label[64];
    std::snprintf(label, sizeof(label),
                  "time-based trigger, every %.0fk sim-seconds",
                  period / 1000);
    row(label, RunWith([period](sim::SimConfig* c) {
          c->reorg_every = 0;
          c->reorg_every_seconds = period;
        }));
  }

  bench_util::PrintHeader("Ablation: benefit decay / history");
  for (double decay : {0.2, 0.6, 1.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "epoch decay = %.1f", decay);
    row(label, RunWith([decay](sim::SimConfig* c) {
          c->benefit_decay = decay;
        }));
  }
  for (int window : {3, 6, 12}) {
    char label[64];
    std::snprintf(label, sizeof(label), "history window = %d queries",
                  window);
    row(label, RunWith([window](sim::SimConfig* c) {
          c->history_window = window;
        }));
  }
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
