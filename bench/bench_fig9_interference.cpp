// Figure 9: time series on a DW with 40% spare IO capacity while the
// multistore workload executes: (a) IO/CPU consumption per 10 s tick,
// with R (reorganization transfer), T (working-set transfer), and Q
// (DW query execution) phases annotated; (b) the average latency of the
// DW's background reporting queries over time.
//
// Paper shape: IO spikes toward 100% during R/T events; flat low-impact Q
// regions; background latency 1.06 s baseline with brief spikes above 5 s
// and an overall average near 1.09 s (+~2.5%).

#include "bench_util.h"
#include "workload/background.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader("Figure 9: DW with 40% spare IO capacity");

  sim::SimConfig config =
      bench_util::DefaultConfig(sim::SystemVariant::kMsMiso);
  config.background = workload::SpareIo40();
  sim::RunReport report = bench_util::Run(config);

  // (a)+(b): print every tick that carries multistore activity, plus a
  // sparse sample of the quiet regions.
  std::printf("%10s %6s %6s %10s %s\n", "time(s)", "IO%", "CPU%",
              "bg q3 (s)", "phase");
  Seconds last_printed = -1e9;
  int spikes = 0;
  for (const dw::DwTickSample& tick : report.dw_ticks) {
    const bool active = !tick.activity.empty();
    const bool quiet_sample = tick.time - last_printed > 4000;
    if (!active && !quiet_sample) continue;
    if (active && tick.bg_query_latency_s > 5.0) ++spikes;
    if (active || quiet_sample) {
      std::printf("%10.0f %5.0f%% %5.0f%% %10.2f %s\n", tick.time,
                  100 * tick.io_used, 100 * tick.cpu_used,
                  tick.bg_query_latency_s, tick.activity.c_str());
      last_printed = tick.time;
    }
  }

  std::printf(
      "\nbaseline q3 latency: %.2f s;  average during run: %.2f s "
      "(+%.1f%%);  ticks spiking above 5 s: %d\n",
      config.background.base_query_latency_s,
      report.avg_background_latency_s, 100 * report.background_slowdown,
      spikes);
  std::printf("paper: average 1.06 -> 1.09 s (+2.5%%), brief spikes > 5 s\n");

  // Optional plotting output: the full tick series as CSV.
  if (const char* dir = std::getenv("MISO_CSV_DIR")) {
    (void)sim::WriteFile(std::string(dir) + "/fig9_ticks.csv",
                         sim::TicksToCsv(report));
    std::printf("CSV written to %s/fig9_ticks.csv\n", dir);
  }
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
