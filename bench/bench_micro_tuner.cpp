// Micro-benchmarks backing the paper's "lightweight" claim for the MISO
// tuner: the knapsack DP, benefit analysis, interaction detection, and a
// full tuning pass all run in milliseconds, far below the reorganization
// movement costs they schedule.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hv/hv_store.h"
#include "optimizer/whatif_cache.h"
#include "tuner/benefit.h"
#include "tuner/interaction.h"
#include "tuner/knapsack.h"
#include "tuner/miso_tuner.h"

namespace miso {
namespace {

using bench_util::Catalog;
using bench_util::Workload;

void BM_KnapsackDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int64_t storage = state.range(1);
  Rng rng(42);
  std::vector<tuner::MKnapsackItem> items;
  for (int k = 0; k < n; ++k) {
    tuner::MKnapsackItem item;
    item.id = k;
    item.storage_units = rng.Uniform(0, 16);
    item.transfer_units = rng.Uniform(0, 10);
    item.benefit = rng.UniformReal(0, 1000);
    items.push_back(item);
  }
  for (auto _ : state) {
    auto solution = tuner::SolveMKnapsack(items, storage, 10);
    benchmark::DoNotOptimize(solution);
  }
  state.SetLabel(std::to_string(n) + " items, B=" +
                 std::to_string(storage));
}
BENCHMARK(BM_KnapsackDp)
    ->Args({16, 400})
    ->Args({64, 400})
    ->Args({64, 4096})
    ->Args({256, 4096});

/// Shared fixture state: views harvested from the first eight workload
/// queries plus the optimizer stack.
struct TunerFixture {
  TunerFixture()
      : factory(&Catalog()),
        hv_model(hv::HvConfig{}),
        dw_model(dw::DwConfig{}),
        transfer_model(transfer::TransferConfig{}),
        optimizer(&factory, &hv_model, &dw_model, &transfer_model),
        hv_catalog(100 * kTiB),
        dw_catalog(400 * kGiB) {
    hv::HvStore store(hv::HvConfig{}, 100 * kTiB);
    uint64_t next_id = 1;
    for (int i = 0; i < 8; ++i) {
      const plan::Plan& q = Workload().queries()[static_cast<size_t>(i)].plan;
      window.push_back(q);
      auto exec = store.Execute(q.root(), i, 0, &next_id, q.signature());
      for (views::View& v : exec->produced_views) {
        hv_catalog.AddUnchecked(std::move(v));
      }
    }
  }

  plan::NodeFactory factory;
  hv::HvCostModel hv_model;
  dw::DwCostModel dw_model;
  transfer::TransferModel transfer_model;
  optimizer::MultistoreOptimizer optimizer;
  views::ViewCatalog hv_catalog;
  views::ViewCatalog dw_catalog;
  std::vector<plan::Plan> window;
};

TunerFixture& Fixture() {
  static auto* fixture = new TunerFixture();
  return *fixture;
}

void BM_BenefitAnalysis(benchmark::State& state) {
  TunerFixture& f = Fixture();
  const std::vector<views::View> views = f.hv_catalog.AllViews();
  for (auto _ : state) {
    tuner::BenefitAnalyzer analyzer(&f.optimizer, 3, 0.6);
    (void)analyzer.SetWindow(f.window);
    double total = 0;
    for (const views::View& v : views) {
      auto b = analyzer.PredictedBenefit({v}, tuner::Placement::kBothStores);
      total += b.ok() ? *b : 0;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetLabel(std::to_string(views.size()) + " views x " +
                 std::to_string(f.window.size()) + " queries");
}
BENCHMARK(BM_BenefitAnalysis);

void BM_InteractionDetection(benchmark::State& state) {
  TunerFixture& f = Fixture();
  const std::vector<views::View> views = f.hv_catalog.AllViews();
  for (auto _ : state) {
    tuner::BenefitAnalyzer analyzer(&f.optimizer, 3, 0.6);
    (void)analyzer.SetWindow(f.window);
    auto interactions =
        tuner::ComputeInteractions(views, &analyzer, {});
    benchmark::DoNotOptimize(interactions);
  }
}
BENCHMARK(BM_InteractionDetection);

tuner::MisoTunerConfig PaperBudgets() {
  tuner::MisoTunerConfig config;
  config.hv_storage_budget = 4 * kTiB;
  config.dw_storage_budget = 400 * kGiB;
  config.transfer_budget = 10 * kGiB;
  return config;
}

void BM_FullTuningPass(benchmark::State& state) {
  TunerFixture& f = Fixture();
  tuner::MisoTuner tuner(&f.optimizer, PaperBudgets());
  for (auto _ : state) {
    auto plan = tuner.Tune(f.hv_catalog, f.dw_catalog, f.window);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_FullTuningPass);

// The cold pass above vs the same pass answered from a warmed what-if
// cache: the gap is the optimizer work the cache retires when successive
// reorganizations see the same (window, candidates, placement) probes.
void BM_FullTuningPassWarmCache(benchmark::State& state) {
  TunerFixture& f = Fixture();
  tuner::MisoTuner tuner(&f.optimizer, PaperBudgets());
  optimizer::WhatIfCache cache;
  cache.SetEpoch(optimizer::WhatIfCache::EpochOf(
      hv::HvConfig{}, dw::DwConfig{}, transfer::TransferConfig{}));
  tuner.set_whatif_cache(&cache);
  // One untimed pass fills the cache; the timed passes are all hits.
  benchmark::DoNotOptimize(tuner.Tune(f.hv_catalog, f.dw_catalog, f.window));
  for (auto _ : state) {
    auto plan = tuner.Tune(f.hv_catalog, f.dw_catalog, f.window);
    benchmark::DoNotOptimize(plan);
  }
  const optimizer::WhatIfCache::Stats stats = cache.GetStats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  state.SetLabel("hit_rate=" +
                 std::to_string(total > 0 ? stats.hits / total : 0.0));
}
BENCHMARK(BM_FullTuningPassWarmCache);

/// A reorg cadence: three Tune calls over sliding 6-query windows (stride
/// 1 over the 8 harvested queries), as the simulator issues them every j
/// queries. `warm_cache` selects whether one persistent cache survives
/// the whole cadence (the simulator's arrangement) or every probe is paid
/// at the optimizer.
void RunReorgCadence(benchmark::State& state, bool warm_cache) {
  TunerFixture& f = Fixture();
  tuner::MisoTuner tuner(&f.optimizer, PaperBudgets());
  optimizer::WhatIfCache cache;
  cache.SetEpoch(optimizer::WhatIfCache::EpochOf(
      hv::HvConfig{}, dw::DwConfig{}, transfer::TransferConfig{}));
  if (warm_cache) tuner.set_whatif_cache(&cache);
  constexpr int kWindow = 6;
  for (auto _ : state) {
    for (size_t start = 0; start + kWindow <= f.window.size(); ++start) {
      const std::vector<plan::Plan> window(
          f.window.begin() + static_cast<std::ptrdiff_t>(start),
          f.window.begin() + static_cast<std::ptrdiff_t>(start + kWindow));
      auto plan = tuner.Tune(f.hv_catalog, f.dw_catalog, window);
      benchmark::DoNotOptimize(plan);
    }
  }
  if (warm_cache) {
    const optimizer::WhatIfCache::Stats stats = cache.GetStats();
    const double total = static_cast<double>(stats.hits + stats.misses);
    state.SetLabel("hit_rate=" +
                   std::to_string(total > 0 ? stats.hits / total : 0.0));
  }
}

void BM_ReorgCadenceColdCache(benchmark::State& state) {
  RunReorgCadence(state, /*warm_cache=*/false);
}
BENCHMARK(BM_ReorgCadenceColdCache);

void BM_ReorgCadenceWarmCache(benchmark::State& state) {
  RunReorgCadence(state, /*warm_cache=*/true);
}
BENCHMARK(BM_ReorgCadenceWarmCache);

}  // namespace
}  // namespace miso

BENCHMARK_MAIN();
