// Figure 4: total TTI of the five system variants on the 32-query
// workload, with the component breakdown (DW-EXE, TRANSFER, TUNE, HV-EXE,
// ETL).
//
// Paper shape: MS-MISO best (77% under HV-ONLY, 4.3x); HV-OP second
// (59%, 2.4x); MS-BASIC a modest 19%; DW-ONLY ~3% *slower* than HV-ONLY
// because ETL dominates its TTI.

#include "bench_util.h"

namespace miso {
namespace {

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  bench_util::PrintHeader("Figure 4: TTI of the five system variants");

  const sim::SystemVariant variants[] = {
      sim::SystemVariant::kHvOnly, sim::SystemVariant::kDwOnly,
      sim::SystemVariant::kMsBasic, sim::SystemVariant::kHvOp,
      sim::SystemVariant::kMsMiso};

  Seconds hv_only = 0;
  std::printf("%-9s %10s %10s %9s %8s %8s %9s %9s\n", "variant", "TTI(s)",
              "HV-EXE", "DW-EXE", "XFER", "TUNE", "ETL", "speedup");
  for (sim::SystemVariant v : variants) {
    sim::RunReport report = bench_util::Run(bench_util::DefaultConfig(v));
    if (v == sim::SystemVariant::kHvOnly) hv_only = report.Tti();
    std::printf("%-9s %10.0f %10.0f %9.0f %8.0f %8.0f %9.0f %8.2fx\n",
                report.variant_name.c_str(), report.Tti(), report.hv_exe_s,
                report.dw_exe_s, report.transfer_s, report.tune_s,
                report.etl_s, hv_only / report.Tti());
  }
  std::printf(
      "\npaper speedups vs HV-ONLY: DW-ONLY 0.97x, MS-BASIC 1.2x, "
      "HV-OP 2.4x, MS-MISO 4.3x\n");

  // Optional plotting output: set MISO_CSV_DIR to dump one summary CSV
  // plus per-query CSVs for each variant.
  if (const char* dir = std::getenv("MISO_CSV_DIR")) {
    std::string summary;
    bool first = true;
    for (sim::SystemVariant v : variants) {
      sim::RunReport report = bench_util::Run(bench_util::DefaultConfig(v));
      summary += sim::SummaryToCsv(report, first);
      first = false;
      (void)sim::WriteFile(std::string(dir) + "/fig4_queries_" +
                               report.variant_name + ".csv",
                           sim::QueriesToCsv(report));
    }
    (void)sim::WriteFile(std::string(dir) + "/fig4_summary.csv", summary);
    std::printf("CSV written to %s\n", dir);
  }
  return 0;
}

}  // namespace
}  // namespace miso

int main() { return miso::RealMain(); }
