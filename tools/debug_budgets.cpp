#include <cstdio>
#include "core/miso.h"
using namespace miso;

int main() {
  Logger::SetThreshold(LogLevel::kWarning);
  relation::Catalog catalog = relation::MakePaperCatalog();
  workload::WorkloadConfig wl;
  auto workload = workload::EvolutionaryWorkload::Generate(&catalog, wl);
  // Fig 7: Bh=Bd=0.125x, Bt=10GB. base: HV 2TB, DW 200GB.
  double fracs[] = {0.125, 0.5, 1.0, 2.0, 4.0};
  sim::SystemVariant vs[] = {sim::SystemVariant::kMsBasic, sim::SystemVariant::kMsOff,
    sim::SystemVariant::kMsLru, sim::SystemVariant::kMsMiso, sim::SystemVariant::kMsOra};
  for (double f : fracs) {
    printf("== budget %.3fx ==\n", f);
    for (auto v : vs) {
      sim::SimConfig cfg; cfg.variant = v;
      cfg.hv_storage_budget = Bytes(f * 2 * kTiB);
      cfg.dw_storage_budget = Bytes(f * 200 * kGiB);
      sim::MultistoreSimulator s(&catalog, cfg);
      auto r = s.Run(workload->queries());
      if (!r.ok()) { printf("  %-8s FAILED: %s\n", std::string(sim::SystemVariantToString(v)).c_str(), r.status().ToString().c_str()); continue; }
      printf("  %s\n", r->Summary().c_str());
    }
  }
  return 0;
}
