#!/usr/bin/env bash
# Snapshot the tuner/optimizer micro-benchmarks into one JSON document
# (BENCH_tuner.json at the repo root by default) so the bench trajectory
# is tracked in-tree: run this after perf-relevant changes and commit the
# refreshed snapshot alongside them.
#
# The snapshot merges the google-benchmark JSON of bench_micro_tuner and
# bench_micro_optimizer under {"tuner": ..., "optimizer": ...}. Context
# blocks (host, CPU) are whatever machine ran the script — compare
# *ratios* (e.g. BM_ReorgCadenceColdCache vs BM_ReorgCadenceWarmCache)
# across snapshots, not absolute nanoseconds.
#
# Usage: tools/bench_snapshot.sh [--build-dir DIR] [--out FILE]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
OUT="$ROOT/BENCH_tuner.json"

while [ "$#" -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,13p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "bench_snapshot.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done

TUNER_BIN="$BUILD_DIR/bench/bench_micro_tuner"
OPT_BIN="$BUILD_DIR/bench/bench_micro_optimizer"
for bin in "$TUNER_BIN" "$OPT_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "bench_snapshot.sh: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_snapshot: running bench_micro_tuner"
"$TUNER_BIN" --benchmark_out="$TMP/tuner.json" \
             --benchmark_out_format=json >/dev/null
echo "== bench_snapshot: running bench_micro_optimizer"
"$OPT_BIN" --benchmark_out="$TMP/optimizer.json" \
           --benchmark_out_format=json >/dev/null

python3 - "$TMP/tuner.json" "$TMP/optimizer.json" "$OUT" <<'EOF'
import json
import sys

tuner_path, optimizer_path, out_path = sys.argv[1:4]
with open(tuner_path) as f:
    tuner = json.load(f)
with open(optimizer_path) as f:
    optimizer = json.load(f)
with open(out_path, "w") as f:
    json.dump({"tuner": tuner, "optimizer": optimizer}, f, indent=2,
              sort_keys=True)
    f.write("\n")
EOF

echo "== bench_snapshot: wrote $OUT"
