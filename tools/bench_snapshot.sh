#!/usr/bin/env bash
# Snapshot the tuner/optimizer micro-benchmarks into one JSON document
# (BENCH_tuner.json at the repo root by default) so the bench trajectory
# is tracked in-tree: run this after perf-relevant changes and commit the
# refreshed snapshot alongside them.
#
# The snapshot merges the google-benchmark JSON of bench_micro_tuner and
# bench_micro_optimizer under {"tuner": ..., "optimizer": ...}. Context
# blocks (host, CPU) are whatever machine ran the script — compare
# *ratios* (e.g. BM_ReorgCadenceColdCache vs BM_ReorgCadenceWarmCache)
# across snapshots, not absolute nanoseconds.
#
# A second snapshot ({"server": ...}, BENCH_server.json by default) covers
# bench_server — session throughput and p99 session latency of the online
# server's admission pipeline, online vs stop-the-world cadence, plus the
# warm paper-workload replay family (plan cache x wave pipelining) and
# the overload-protection family (BM_ServerOverloadShed: deadline
# shedding under the chaos fault profile, breaker off/on). The headline
# number — warm-replay sessions/sec with cache and pipelining on — is
# lifted into the snapshot block as `warm_replay_sessions_per_s` so
# gates (tools/check.sh --perf) and readers never dig through benchmark
# rows; the breaker-on overload row's shed/failed/transition counters
# are lifted as `overload_*` the same way.
#
# Refuses to run against a non-Release build dir (exit 2): every committed
# snapshot carries library_build_type=release in its google-benchmark
# context blocks, and numbers from Debug / RelWithDebInfo / sanitizer
# builds are not comparable to it. The guard inspects CMAKE_BUILD_TYPE in
# the build dir's CMakeCache.txt.
#
# Usage: tools/bench_snapshot.sh [--build-dir DIR] [--out FILE]
#                                [--server-out FILE]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
OUT="$ROOT/BENCH_tuner.json"
SERVER_OUT="$ROOT/BENCH_server.json"

while [ "$#" -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --server-out) SERVER_OUT="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,32p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "bench_snapshot.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done

# Snapshot numbers are only meaningful from an optimized build; anything
# else would silently poison the committed trajectory.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
              "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "bench_snapshot.sh: refusing non-Release build dir '$BUILD_DIR'" >&2
  echo "  CMAKE_BUILD_TYPE='${BUILD_TYPE:-<unconfigured>}'; the committed snapshot asserts" >&2
  echo "  library_build_type=release, so only Release numbers are comparable." >&2
  echo "  Configure with: cmake -B '$BUILD_DIR' -S '$ROOT' -DCMAKE_BUILD_TYPE=Release" >&2
  exit 2
fi

TUNER_BIN="$BUILD_DIR/bench/bench_micro_tuner"
OPT_BIN="$BUILD_DIR/bench/bench_micro_optimizer"
SERVER_BIN="$BUILD_DIR/bench/bench_server"
for bin in "$TUNER_BIN" "$OPT_BIN" "$SERVER_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "bench_snapshot.sh: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_snapshot: running bench_micro_tuner"
"$TUNER_BIN" --benchmark_out="$TMP/tuner.json" \
             --benchmark_out_format=json >/dev/null
echo "== bench_snapshot: running bench_micro_optimizer"
"$OPT_BIN" --benchmark_out="$TMP/optimizer.json" \
           --benchmark_out_format=json >/dev/null

echo "== bench_snapshot: running bench_server"
"$SERVER_BIN" --benchmark_out="$TMP/server.json" \
              --benchmark_out_format=json >/dev/null

# Top-level snapshot metadata, so a reader (or a gate) never has to dig
# into the per-binary google-benchmark context blocks: the build type the
# guard verified and the CPU count the numbers were taken at.
NUM_CPUS="$(nproc 2>/dev/null || echo 1)"

python3 - "$TMP/tuner.json" "$TMP/optimizer.json" "$TMP/server.json" \
          "$OUT" "$SERVER_OUT" "$BUILD_TYPE" "$NUM_CPUS" <<'EOF'
import json
import sys

(tuner_path, optimizer_path, server_path, out_path, server_out_path,
 build_type, num_cpus) = sys.argv[1:8]
with open(tuner_path) as f:
    tuner = json.load(f)
with open(optimizer_path) as f:
    optimizer = json.load(f)
with open(server_path) as f:
    server = json.load(f)
snapshot = {"build_type": build_type, "num_cpus": int(num_cpus)}
with open(out_path, "w") as f:
    json.dump({"snapshot": snapshot, "tuner": tuner, "optimizer": optimizer},
              f, indent=2, sort_keys=True)
    f.write("\n")


def warm_rows(bench_json, cache_on):
    """(name, sessions_per_s) of every BM_ServerWarmReplay row with the
    plan cache in the given state."""
    prefix = "BM_ServerWarmReplay/%d/" % (1 if cache_on else 0)
    return [(row["name"], row["sessions_per_s"])
            for row in bench_json.get("benchmarks", [])
            if row.get("name", "").startswith(prefix)
            and "sessions_per_s" in row]


# Headline: the best cache-on configuration this machine offers (thread
# count that wins differs between 1-CPU and multi-core hosts), against
# the cache-off serial row — the previous generation's serving path.
server_snapshot = dict(snapshot)
best = max(warm_rows(server, cache_on=True), key=lambda r: r[1],
           default=None)
if best is not None:
    server_snapshot["warm_replay_sessions_per_s"] = best[1]
    server_snapshot["warm_replay_headline_row"] = best[0]
for name, rate in warm_rows(server, cache_on=False):
    if name == "BM_ServerWarmReplay/0/0/1/real_time":
        server_snapshot["warm_replay_baseline_sessions_per_s"] = rate
# Overload-protection headline: the breaker-on serial row's terminal
# accounting, so a snapshot diff shows shed/failed drift at a glance.
for row in server.get("benchmarks", []):
    if row.get("name", "") == "BM_ServerOverloadShed/1/1/real_time":
        for key in ("sessions_shed", "sessions_failed", "breaker_degraded",
                    "breaker_transitions"):
            if key in row:
                server_snapshot["overload_" + key] = row[key]
with open(server_out_path, "w") as f:
    json.dump({"snapshot": server_snapshot, "server": server}, f, indent=2,
              sort_keys=True)
    f.write("\n")
EOF

echo "== bench_snapshot: wrote $OUT and $SERVER_OUT"
