#include "tools/miso_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace miso::lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

/// Source text reduced to what each rule needs: per-line code with
/// comments removed and literal contents blanked, the string literals by
/// line (for L005), and the `miso-lint: allow(...)` escape hatches found
/// in comments.
struct FileModel {
  std::vector<std::string> code;  // index 0 = line 1
  std::vector<std::pair<int, std::string>> strings;
  std::map<int, std::set<std::string>> allows;

  const std::string& CodeLine(int line) const {
    static const std::string empty;
    return line >= 1 && line <= static_cast<int>(code.size())
               ? code[static_cast<size_t>(line - 1)]
               : empty;
  }

  bool CommentOnly(int line) const {
    const std::string& text = CodeLine(line);
    return std::all_of(text.begin(), text.end(), IsSpace);
  }

  /// True when `code_id` is allowed on `line`: a reasoned allow comment on
  /// the line itself, or on a comment-only line directly above it (the
  /// NOLINTNEXTLINE idiom).
  bool Allowed(int line, const std::string& code_id) const {
    auto it = allows.find(line);
    if (it != allows.end() && it->second.count(code_id) > 0) return true;
    it = allows.find(line - 1);
    return it != allows.end() && it->second.count(code_id) > 0 &&
           CommentOnly(line - 1);
  }
};

/// Records every `miso-lint: allow(Lnnn) <reason>` in one comment at the
/// line the comment started on. An allow with no reason text is ignored:
/// the escape hatch requires a justification.
void ScanCommentForAllows(const std::string& comment, int start_line,
                          FileModel* model) {
  static const std::string kTag = "miso-lint: allow(";
  size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    pos += kTag.size();
    const size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    const std::string code_id = comment.substr(pos, close - pos);
    bool has_reason = false;
    for (size_t i = close + 1;
         i < comment.size() && comment.compare(i, kTag.size(), kTag) != 0; ++i) {
      if (!IsSpace(comment[i])) {
        has_reason = true;
        break;
      }
    }
    if (code_id.size() == 4 && code_id[0] == 'L' && has_reason) {
      model->allows[start_line].insert(code_id);
    }
    pos = close + 1;
  }
}

/// One pass over the raw text: strips // and /* */ comments, blanks
/// string/char literal contents (keeping the quotes as tokens), handles
/// escapes, digit separators (1'000'000), and R"(...)" raw strings.
FileModel Preprocess(const std::string& text) {
  FileModel model;
  std::string cur;      // code of the current line
  std::string comment;  // text of the comment being scanned
  std::string literal;  // contents of the string literal being scanned
  int line = 1;
  int token_start_line = 1;
  std::string raw_delim;  // ")delim" terminator when inside a raw string

  enum class State { kCode, kLineComment, kBlockComment, kString, kRawString, kChar };
  State state = State::kCode;

  auto end_line = [&] {
    model.code.push_back(cur);
    cur.clear();
    ++line;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          token_start_line = line;
          comment.clear();
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          token_start_line = line;
          comment.clear();
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — the prefix identifier (R, u8R, LR, uR)
          // sits at the end of the accumulated code.
          size_t p = cur.size();
          while (p > 0 && IsWordChar(cur[p - 1])) --p;
          const std::string prefix = cur.substr(p);
          if (!prefix.empty() && prefix.back() == 'R') {
            std::string delim;
            size_t j = i + 1;
            while (j < text.size() && text[j] != '(') delim += text[j++];
            raw_delim = ")" + delim + "\"";
            i = j;  // consume up to and including '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          token_start_line = line;
          literal.clear();
        } else if (c == '\'') {
          // A quote directly after an identifier/digit char is a digit
          // separator (1'000'000), not a character literal.
          if (!cur.empty() && IsWordChar(cur.back())) {
            cur += c;
          } else {
            state = State::kChar;
          }
        } else if (c == '\n') {
          end_line();
        } else {
          cur += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          ScanCommentForAllows(comment, token_start_line, &model);
          state = State::kCode;
          end_line();
        } else {
          comment += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ScanCommentForAllows(comment, token_start_line, &model);
          state = State::kCode;
          cur += ' ';  // keep tokens separated
          ++i;
        } else {
          comment += c;
          if (c == '\n') end_line();
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < text.size()) {
          literal += c;
          literal += next;
          ++i;
        } else if (c == '"') {
          model.strings.emplace_back(token_start_line, literal);
          cur += "\"\"";
          state = State::kCode;
        } else {
          literal += c;
          if (c == '\n') end_line();  // unterminated; stay permissive
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          model.strings.emplace_back(token_start_line, literal);
          cur += "\"\"";
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          literal += c;
          if (c == '\n') end_line();
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
        } else if (c == '\'') {
          cur += "''";
          state = State::kCode;
        } else if (c == '\n') {
          end_line();
        }
        break;
    }
  }
  if (state == State::kLineComment) {
    ScanCommentForAllows(comment, token_start_line, &model);
  }
  model.code.push_back(cur);
  return model;
}

bool ContainsWord(const std::string& text, const std::string& word,
                  size_t* pos_out = nullptr) {
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsWordChar(text[end]);
    if (left_ok && right_ok) {
      if (pos_out != nullptr) *pos_out = pos;
      return true;
    }
    pos += word.size();
  }
  return false;
}

/// Word followed (after optional spaces) by '(' — catches `time(nullptr)`
/// without firing on `real_time` or `time_point`.
bool WordCall(const std::string& text, const std::string& word) {
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    size_t end = pos + word.size();
    if (left_ok && (end >= text.size() || !IsWordChar(text[end]))) {
      while (end < text.size() && IsSpace(text[end])) ++end;
      if (end < text.size() && text[end] == '(') return true;
    }
    pos += word.size();
  }
  return false;
}

/// Whole-file allowlists: the one module allowed to own each primitive.
bool PathAllowed(const std::string& code_id, const std::string& path) {
  if (code_id == "L001") return path == "src/common/env.cc";
  if (code_id == "L002") return path.rfind("src/common/rng", 0) == 0;
  if (code_id == "L005") {
    return path == "src/obs/names.cc" || path == "src/obs/names.h";
  }
  if (code_id == "L007") return path == "src/common/thread_pool.cc";
  return false;
}

int LineOfOffset(const std::string& flat, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(flat.begin(), flat.begin() + offset, '\n'));
}

/// Skips `MISO_*(...)` annotation macros so declaration terminators are
/// found behind them (e.g. `std::deque<T> q_ MISO_GUARDED_BY(mu_);`).
size_t SkipAnnotations(const std::string& flat, size_t pos) {
  for (;;) {
    while (pos < flat.size() && IsSpace(flat[pos])) ++pos;
    if (flat.compare(pos, 5, "MISO_") != 0) return pos;
    while (pos < flat.size() && IsWordChar(flat[pos])) ++pos;
    while (pos < flat.size() && IsSpace(flat[pos])) ++pos;
    if (pos < flat.size() && flat[pos] == '(') {
      int depth = 0;
      do {
        if (flat[pos] == '(') ++depth;
        if (flat[pos] == ')') --depth;
        ++pos;
      } while (pos < flat.size() && depth > 0);
    }
  }
}

/// Names of variables declared with an `unordered_*` type anywhere in the
/// file (declarations may span lines; annotation macros are skipped).
std::set<std::string> UnorderedVarNames(const std::string& flat) {
  std::set<std::string> names;
  size_t pos = 0;
  while ((pos = flat.find("unordered_", pos)) != std::string::npos) {
    size_t p = pos;
    pos += 10;
    // The template argument list, possibly nested / multi-line.
    while (p < flat.size() && flat[p] != '<' && flat[p] != '\n') ++p;
    if (p >= flat.size() || flat[p] != '<') continue;
    int depth = 0;
    do {
      if (flat[p] == '<') ++depth;
      if (flat[p] == '>') --depth;
      ++p;
    } while (p < flat.size() && depth > 0);
    // Reference/pointer/const decoration, then the declared name.
    for (;;) {
      while (p < flat.size() &&
             (IsSpace(flat[p]) || flat[p] == '&' || flat[p] == '*')) {
        ++p;
      }
      if (flat.compare(p, 5, "const") == 0 && !IsWordChar(flat[p + 5])) {
        p += 5;
        continue;
      }
      break;
    }
    std::string name;
    while (p < flat.size() && IsWordChar(flat[p])) name += flat[p++];
    if (name.empty()) continue;
    p = SkipAnnotations(flat, p);
    if (p < flat.size() && (flat[p] == ';' || flat[p] == '=' ||
                            flat[p] == '{' || flat[p] == ',' ||
                            flat[p] == ')' || flat[p] == '(')) {
      names.insert(name);
    }
  }
  return names;
}

/// Floating-point variables (double/float/Seconds) declared in the file,
/// mapped to their declaration offsets — the accumulators L004 watches.
/// Offsets matter: accumulation into a variable declared *inside* the
/// loop body resets every iteration and cannot depend on hash order.
std::map<std::string, std::vector<size_t>> FloatVarDecls(
    const std::string& flat) {
  static const std::regex kDecl(
      R"((?:^|[^\w])(?:double|float|Seconds)\s+([A-Za-z_]\w*)\s*(?:=|;|\{|,|\)))");
  std::map<std::string, std::vector<size_t>> decls;
  for (std::sregex_iterator it(flat.begin(), flat.end(), kDecl), end;
       it != end; ++it) {
    decls[(*it)[1].str()].push_back(static_cast<size_t>(it->position(1)));
  }
  return decls;
}

struct RangeForLoop {
  std::string range_expr;
  size_t body_begin = 0;  // offsets into flat
  size_t body_end = 0;
};

std::vector<RangeForLoop> FindRangeForLoops(const std::string& flat) {
  std::vector<RangeForLoop> loops;
  size_t pos = 0;
  while ((pos = flat.find("for", pos)) != std::string::npos) {
    const size_t start = pos;
    pos += 3;
    if ((start > 0 && IsWordChar(flat[start - 1])) ||
        (start + 3 < flat.size() && IsWordChar(flat[start + 3]))) {
      continue;
    }
    size_t p = start + 3;
    while (p < flat.size() && IsSpace(flat[p])) ++p;
    if (p >= flat.size() || flat[p] != '(') continue;
    // Find the closing paren and any top-level ':' inside.
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = std::string::npos;
    for (size_t i = p; i < flat.size(); ++i) {
      const char c = flat[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos &&
          (i == 0 || flat[i - 1] != ':') &&
          (i + 1 >= flat.size() || flat[i + 1] != ':')) {
        colon = i;
      }
    }
    if (close == std::string::npos || colon == std::string::npos) continue;
    RangeForLoop loop;
    loop.range_expr = flat.substr(colon + 1, close - colon - 1);
    size_t b = close + 1;
    while (b < flat.size() && IsSpace(flat[b])) ++b;
    if (b < flat.size() && flat[b] == '{') {
      int braces = 0;
      size_t e = b;
      do {
        if (flat[e] == '{') ++braces;
        if (flat[e] == '}') --braces;
        ++e;
      } while (e < flat.size() && braces > 0);
      loop.body_begin = b;
      loop.body_end = e;
    } else {
      loop.body_begin = b;
      loop.body_end = flat.find(';', b);
      if (loop.body_end == std::string::npos) loop.body_end = flat.size();
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

struct RuleMessages {
  static const char* Of(const std::string& code_id) {
    for (const RuleInfo& rule : Rules()) {
      if (code_id == rule.code) return rule.summary;
    }
    return "unknown rule";
  }
};

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = new std::vector<RuleInfo>{
      {"L001",
       "raw std::getenv bypasses the strict env parser; use "
       "miso::EnvInt/EnvFlag/EnvDouble/EnvChoice (src/common/env.h)"},
      {"L002",
       "nondeterministic randomness source; every stochastic choice must "
       "flow through the seeded miso::Rng (src/common/rng.h)"},
      {"L003",
       "wall-clock read in model code breaks replayability; simulated time "
       "comes from cost models (runtime-class telemetry sites carry a "
       "reasoned allow comment)"},
      {"L004",
       "floating-point accumulation while iterating an unordered container "
       "sums in hash order; copy out and sort the elements first (the "
       "DwCostModel 1-ulp-drift bug class)"},
      {"L005",
       "\"miso.\" telemetry name literal outside src/obs/names.{h,cc}; "
       "declare it in obs::names so docs/TELEMETRY.md stays enforceable"},
      {"L006",
       "mutex member lacks a GUARDED_BY annotation; annotate the state it "
       "protects (src/common/annotations.h)"},
      {"L007",
       "sleep_for/sleep_until outside src/common/thread_pool.cc; model code "
       "must advance simulated time, not block a thread (overload deadlines "
       "and breaker cooldowns are simulated-clock constructs)"},
  };
  return *rules;
}

std::string Finding::ToString() const {
  return path + ":" + std::to_string(line) + ": [" + code + "] " + message;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content) {
  const FileModel model = Preprocess(content);
  std::set<std::pair<int, std::string>> seen;
  std::vector<Finding> out;
  auto add = [&](int line, const char* code_id) {
    if (PathAllowed(code_id, path)) return;
    if (model.Allowed(line, code_id)) return;
    if (!seen.insert({line, code_id}).second) return;
    out.push_back(Finding{path, line, code_id, RuleMessages::Of(code_id)});
  };

  static const std::vector<std::string> kRandomWords = {
      "rand",        "srand",        "drand48",
      "random_device", "mt19937",    "mt19937_64",
      "minstd_rand", "minstd_rand0", "default_random_engine",
      "random_shuffle"};
  static const std::vector<std::string> kClockWords = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime", "gmtime"};

  for (size_t i = 0; i < model.code.size(); ++i) {
    const std::string& line_code = model.code[i];
    const int line = static_cast<int>(i) + 1;
    if (ContainsWord(line_code, "getenv")) add(line, "L001");
    for (const std::string& word : kRandomWords) {
      if (ContainsWord(line_code, word)) {
        add(line, "L002");
        break;
      }
    }
    bool clock_hit = false;
    for (const std::string& word : kClockWords) {
      if (ContainsWord(line_code, word)) {
        clock_hit = true;
        break;
      }
    }
    if (clock_hit || WordCall(line_code, "time") ||
        WordCall(line_code, "clock")) {
      add(line, "L003");
    }
    if (ContainsWord(line_code, "sleep_for") ||
        ContainsWord(line_code, "sleep_until")) {
      add(line, "L007");
    }
  }

  // L005 over the preserved string literals.
  for (const auto& [line, literal] : model.strings) {
    if (literal.rfind("miso.", 0) == 0) add(line, "L005");
  }

  // Flatten for the multi-line rules.
  std::string flat;
  for (size_t i = 0; i < model.code.size(); ++i) {
    if (i > 0) flat += '\n';
    flat += model.code[i];
  }

  // L004: FP accumulation inside a range-for over an unordered container.
  // An accumulator declared inside the loop body resets each iteration, so
  // only variables declared outside the body can pick up hash-order sums.
  const std::set<std::string> uvars = UnorderedVarNames(flat);
  const std::map<std::string, std::vector<size_t>> fpdecls =
      FloatVarDecls(flat);
  static const std::regex kAccum(
      R"(([A-Za-z_]\w*)\s*(?:\+=|=\s*\1\s*\+))");
  for (const RangeForLoop& loop : FindRangeForLoops(flat)) {
    bool unordered = loop.range_expr.find("unordered_") != std::string::npos;
    for (auto it = uvars.begin(); !unordered && it != uvars.end(); ++it) {
      unordered = ContainsWord(loop.range_expr, *it);
    }
    if (!unordered) continue;
    const std::string body =
        flat.substr(loop.body_begin, loop.body_end - loop.body_begin);
    for (std::sregex_iterator it(body.begin(), body.end(), kAccum), end;
         it != end; ++it) {
      const auto decl_it = fpdecls.find((*it)[1].str());
      if (decl_it == fpdecls.end()) continue;
      const bool declared_in_body = std::any_of(
          decl_it->second.begin(), decl_it->second.end(), [&](size_t d) {
            return d >= loop.body_begin && d < loop.body_end;
          });
      if (declared_in_body) continue;
      add(LineOfOffset(flat, loop.body_begin +
                                 static_cast<size_t>(it->position(0))),
          "L004");
    }
  }

  // L006: mutex members (trailing-underscore names, non-static) must be
  // referenced by a GUARDED_BY in the same file.
  std::set<std::string> guarded;
  static const std::regex kGuardedBy(R"(GUARDED_BY\s*\(\s*([A-Za-z_]\w*))");
  for (std::sregex_iterator it(flat.begin(), flat.end(), kGuardedBy), end;
       it != end; ++it) {
    guarded.insert((*it)[1].str());
  }
  static const std::regex kMutexMember(
      R"((?:^|[^\w:])(?:std\s*::\s*mutex|Mutex)\s+([A-Za-z_]\w*_)\s*;)");
  for (std::sregex_iterator it(flat.begin(), flat.end(), kMutexMember), end;
       it != end; ++it) {
    const size_t offset =
        static_cast<size_t>(it->position(1));
    const int line = LineOfOffset(flat, offset);
    if (ContainsWord(model.CodeLine(line), "static")) continue;
    if (guarded.count((*it)[1].str()) > 0) continue;
    add(line, "L006");
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.code < b.code;
  });
  return out;
}

std::vector<Finding> LintTree(const std::string& repo_root,
                              std::string* error) {
  namespace fs = std::filesystem;
  if (error != nullptr) error->clear();
  std::vector<Finding> out;
  const fs::path root(repo_root);
  const fs::path src = root / "src";
  std::error_code ec;
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(it->path());
  }
  if (ec && error != nullptr) {
    *error = "miso_lint: cannot walk " + src.string() + ": " + ec.message();
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      if (error != nullptr) {
        *error = "miso_lint: cannot read " + file.string();
      }
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        file.lexically_relative(root).generic_string();
    std::vector<Finding> findings = LintFile(rel, buffer.str());
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  return out;
}

}  // namespace miso::lint
