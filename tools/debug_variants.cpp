#include <cstdio>
#include "core/miso.h"
using namespace miso;

int main() {
  Logger::SetThreshold(LogLevel::kWarning);
  relation::Catalog catalog = relation::MakePaperCatalog();
  workload::WorkloadConfig wl;
  auto workload = workload::EvolutionaryWorkload::Generate(&catalog, wl);
  sim::SystemVariant variants[] = {
    sim::SystemVariant::kHvOnly, sim::SystemVariant::kDwOnly,
    sim::SystemVariant::kMsBasic, sim::SystemVariant::kHvOp,
    sim::SystemVariant::kMsMiso, sim::SystemVariant::kMsLru,
    sim::SystemVariant::kMsOff, sim::SystemVariant::kMsOra};
  double hv_tti = 0;
  for (auto v : variants) {
    sim::SimConfig cfg; cfg.variant = v;
    sim::MultistoreSimulator s(&catalog, cfg);
    auto r = s.Run(workload->queries());
    if (!r.ok()) { printf("%-8s FAILED: %s\n", std::string(sim::SystemVariantToString(v)).c_str(), r.status().ToString().c_str()); continue; }
    if (v == sim::SystemVariant::kHvOnly) hv_tti = r->Tti();
    printf("%s  speedup=%.2fx dw_major=%d\n", r->Summary().c_str(), hv_tti / r->Tti(), r->DwMajorityQueries());
  }
  return 0;
}
