#ifndef MISO_TOOLS_MISO_LINT_H_
#define MISO_TOOLS_MISO_LINT_H_

#include <string>
#include <vector>

namespace miso::lint {

/// miso-lint: the project's dependency-free determinism & thread-safety
/// checker (DESIGN.md §13). It scans `src/` at the token/line level and
/// enforces invariants that clang-tidy cannot express (and that must gate
/// on machines without LLVM tooling, where the clang_tidy ctest reports
/// Skipped):
///
///   [L001] no raw std::getenv outside src/common/env.cc
///   [L002] no rand()/std::random_device/mt19937/... outside src/common/rng
///   [L003] no wall-clock reads (system_clock/steady_clock/time()/...)
///   [L004] no floating-point accumulation inside iteration over an
///          unordered_* container (the DwCostModel 1-ulp-drift bug class)
///   [L005] no "miso." metric/trace name literals outside src/obs/names.{h,cc}
///   [L006] every mutex member (trailing-underscore name) must be
///          referenced by at least one GUARDED_BY annotation in its file
///
/// Escape hatch: a finding is suppressed by a comment on the same physical
/// line — or a comment-only line directly above it — of the form
///     // miso-lint: allow(Lnnn) <reason>
/// The reason is mandatory; an allow without one is ignored and the
/// finding stands.

struct Finding {
  std::string path;     // repo-relative, forward slashes
  int line = 0;         // 1-based
  std::string code;     // "L001".."L006"
  std::string message;

  /// "path:line: [Lnnn] message" — mirrors the [Vnnn] verifier style.
  std::string ToString() const;
};

struct RuleInfo {
  const char* code;
  const char* summary;
};

/// The stable rule table, ordered by code.
const std::vector<RuleInfo>& Rules();

/// Lints one file's contents. `path` must be the repo-relative path (e.g.
/// "src/common/env.cc"): the built-in per-rule allowlists match on it.
/// Findings are ordered by line, then code.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content);

/// Walks `repo_root`/src for *.h / *.cc files (sorted, so output is
/// deterministic) and lints each. On an I/O error returns what was
/// gathered and sets `*error` to a diagnostic; `*error` is cleared on
/// success.
std::vector<Finding> LintTree(const std::string& repo_root,
                              std::string* error);

}  // namespace miso::lint

#endif  // MISO_TOOLS_MISO_LINT_H_
