// miso-lint CLI: `miso_lint [--root DIR] [--list] [FILE...]`.
//
// With no FILE arguments, lints every *.h / *.cc under DIR/src (DIR
// defaults to "."). With FILE arguments, lints just those files; paths
// under DIR are relabelled repo-relative so the per-rule allowlists
// apply. Exit status: 0 clean, 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/miso_lint.h"

namespace {

int Usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: miso_lint [--root DIR] [--list] [FILE...]\n"
               "  --root DIR  repo root for allowlists / tree walk "
               "(default: .)\n"
               "  --list      print the rule table and exit\n");
  return stream == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "miso_lint: unknown option '%s'\n", arg.c_str());
      return Usage(stderr);
    } else {
      files.push_back(arg);
    }
  }

  if (list) {
    for (const miso::lint::RuleInfo& rule : miso::lint::Rules()) {
      std::printf("[%s] %s\n", rule.code, rule.summary);
    }
    return 0;
  }

  std::vector<miso::lint::Finding> findings;
  if (files.empty()) {
    std::string error;
    findings = miso::lint::LintTree(root, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
  } else {
    namespace fs = std::filesystem;
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "miso_lint: cannot read %s\n", file.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::error_code ec;
      const fs::path rel = fs::relative(file, root, ec);
      const std::string label =
          (!ec && !rel.empty() && rel.generic_string().rfind("..", 0) != 0)
              ? rel.generic_string()
              : file;
      std::vector<miso::lint::Finding> file_findings =
          miso::lint::LintFile(label, buffer.str());
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const miso::lint::Finding& finding : findings) {
    std::printf("%s\n", finding.ToString().c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "miso_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "miso_lint: %zu finding(s); see [Lnnn] codes in "
                       "DESIGN.md section 13 (escape hatch: "
                       "// miso-lint: allow(Lnnn) <reason>)\n",
               findings.size());
  return 1;
}
