#include <cstdio>
#include "core/miso.h"
using namespace miso;

int main() {
  Logger::SetThreshold(LogLevel::kDebug);
  relation::Catalog catalog = relation::MakePaperCatalog();
  workload::WorkloadConfig wl; wl.num_analysts = 8; wl.versions_per_analyst = 2;
  auto workload = workload::EvolutionaryWorkload::Generate(&catalog, wl);
  if (!workload.ok()) { printf("gen fail %s\n", workload.status().ToString().c_str()); return 1; }
  // Take analyst 5 (TF group, index 4): v1 at pos 4, v2 at pos 12 (interleaved)
  const auto& qs = workload->queries();
  plan::Plan v1, v2;
  for (const auto& q : qs) {
    if (q.analyst == 4 && q.version == 0) v1 = q.plan;
    if (q.analyst == 4 && q.version == 1) v2 = q.plan;
  }
  printf("v1:\n%s\nv2:\n%s\n", plan::PrintPlan(v1).c_str(), plan::PrintPlan(v2).c_str());

  plan::NodeFactory factory(&catalog);
  hv::HvConfig hvc; dw::DwConfig dwc; transfer::TransferConfig tc;
  hv::HvStore hv_store(hvc, 4*kTiB);
  dw::DwStore dw_store(dwc, 400*kGiB);
  transfer::TransferModel mover(tc);
  optimizer::MultistoreOptimizer opt(&factory, &hv_store.cost_model(), &dw_store.cost_model(), &mover);

  // execute v1 in HV, harvest
  uint64_t next_id = 1;
  auto exec = hv_store.Execute(v1.root(), 0, 0, &next_id);
  printf("v1 HV exec: %.0f s, produced %zu views\n", exec->exec_time, exec->produced_views.size());
  for (auto& v : exec->produced_views) {
    printf("  view %llu: %s\n", (unsigned long long)v.id, v.DebugString().c_str());
    hv_store.catalog().AddUnchecked(v);
  }
  // rewrite v2 against HV views
  views::Rewriter rw(&factory);
  views::RewriteReport rep;
  auto v2r = rw.RewriteSingleStore(v2, hv_store.catalog(), StoreKind::kHv, &rep);
  printf("v2 rewrite: hv_used=%d exact=%d subs=%d\n%s\n", rep.hv_views_used, rep.exact_matches, rep.subsumption_matches, plan::PrintPlan(*v2r).c_str());

  // tuner
  tuner::MisoTunerConfig tcfg;
  tcfg.hv_storage_budget = 4*kTiB; tcfg.dw_storage_budget = 400*kGiB; tcfg.transfer_budget = 10*kGiB;
  tuner::MisoTuner tuner_(&opt, tcfg);
  std::vector<plan::Plan> window = {v1};
  auto reorg = tuner_.Tune(hv_store.catalog(), dw_store.catalog(), window);
  printf("reorg: %s\n", reorg->Summary().c_str());
  for (auto& v : reorg->move_to_dw) printf("  ->DW %s\n", v.DebugString().c_str());
  for (auto id : reorg->drop_from_hv) printf("  drop %llu\n", (unsigned long long)id);
  return 0;
}
