#!/usr/bin/env bash
# One-command verification gate for the tree:
#
#   1. configure a sanitizer build (ASan+UBSan by default, TSan with
#      --tsan) with warnings-as-errors (MISO_WERROR=ON);
#   2. build everything;
#   3. run the full ctest suite under the sanitizers — this includes the
#      `static_analysis` ctest label (clang-tidy over src/, skipped when
#      the tool is unavailable) and runs every test with MISO_VERIFY=1,
#      so the PlanVerifier / DesignVerifier assert on every enumerated
#      split and every reorganization.
#
# With --tsan the gate must be non-vacuous: MISO_THREADS is forced to at
# least 2 so thread pools really run multiple workers, and the script
# fails if the `concurrency` ctest label has become empty (those tests
# are the ones exercising ThreadPool / ParallelFor / RunSeedSweep under
# TSan).
#
# Any compiler warning, sanitizer report, clang-tidy finding in src/, or
# test failure fails the script.
#
# With --obs the run is restricted to the `obs` ctest label — the
# observability suite (registry semantics, JSONL trace stability, the
# cross-thread-count determinism contract, the docs/TELEMETRY.md
# completeness gate) — with MISO_METRICS=1 and MISO_TRACE=1 forced on,
# so both telemetry gates are exercised in their enabled state.
#
# With --perf the run is restricted to the `perf` ctest label — a smoke
# pass over every bench binary, so the experiment harnesses can't bit-rot
# — and afterwards prints the what-if cache hit-rate counters from one
# short simulation (tools/debug_cache_stats). It then configures a plain
# Release build (build-perf/, no sanitizers) and asserts the thread-
# scaling floor: BM_FullOptimizeThreaded/2 real_time must stay within
# 1.1x of BM_FullOptimizeThreaded/1 — adding a second worker to the
# batched candidate-costing fan-out must never cost more than 10%, even
# on single-core machines (docs/PERFORMANCE.md). Finally it asserts the
# server-throughput floor on the warm paper-workload replay: the plan
# cache must not lose sessions/s against cache-off, and pipelined waves
# must stay within 1.1x of serial on 1 thread (where speculation cannot
# help, only cost).
#
# With --fault the run is restricted to the `fault` ctest label — the
# fault-injection suite (deterministic chaos sweeps across seeds and
# MISO_THREADS, DW-outage degradation, crash-safe reorganization,
# exhaustion propagation). The script fails if the label is empty.
#
# With --server the run is restricted to the `server` ctest label — the
# online-server battery (the ~2,000-session admission stress sweep with
# byte-identity across MISO_THREADS {1,2,8}, the randomized-interleaving
# epoch-discipline property battery, the fault-interplay regressions, and
# the online-vs-batch replay comparisons). The script fails if the label
# is empty.
#
# With --overload the run is restricted to the `overload` ctest label —
# the overload-protection suite (admission-deadline shedding, the
# DW-health circuit breaker state machine and its chaos-profile
# integration, session retry budgets, the stuck-wave watchdog, and the
# V211/V212 invariants). The script fails if the label is empty, and
# also fails if the breaker-off byte-identity tests (the
# ServerOverloadZeroCost suite: overload disabled — and enabled but
# never triggering — must serve byte-identically to the pre-overload
# path) are not registered, so the zero-cost contract can never go
# unwatched.
#
# With --lint the run is restricted to the `static_analysis` ctest label:
# miso-lint (the project's dependency-free determinism & thread-safety
# checker, tools/miso_lint.cc — rules [L001]..[L007], DESIGN.md section 13)
# plus its rule/fixture tests, plus clang-tidy where LLVM tooling exists.
# The script fails if static_analysis.miso_lint is not registered: the
# clang_tidy test may legitimately report SKIPPED on gcc-only machines,
# but the lint gate itself must never be vacuous.
#
# Usage: tools/check.sh [--tsan] [--obs] [--perf] [--fault] [--server]
#                       [--overload] [--lint]
#                       [--jobs N] [--build-dir DIR] [--tidy-only]
#                       [--label L]   (restrict the test run to ctest -L L)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZE="address,undefined"
BUILD_DIR=""
JOBS="$(nproc 2>/dev/null || echo 2)"
TIDY_ONLY=0
TSAN=0
OBS=0
PERF=0
FAULT=0
SERVER=0
OVERLOAD=0
LINT=0
LABEL=""

while [ "$#" -gt 0 ]; do
  case "$1" in
    --tsan) SANITIZE="thread"; TSAN=1; shift ;;
    --obs) OBS=1; LABEL="obs"; shift ;;
    --perf) PERF=1; LABEL="perf"; shift ;;
    --fault) FAULT=1; LABEL="fault"; shift ;;
    --server) SERVER=1; LABEL="server"; shift ;;
    --overload) OVERLOAD=1; LABEL="overload"; shift ;;
    --lint) LINT=1; LABEL="static_analysis"; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --label) LABEL="$2"; shift 2 ;;
    --tidy-only) TIDY_ONLY=1; shift ;;
    -h|--help)
      sed -n '2,78p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "check.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done

if [ -z "$BUILD_DIR" ]; then
  case "$SANITIZE" in
    thread) BUILD_DIR="$ROOT/build-tsan" ;;
    *) BUILD_DIR="$ROOT/build-asan" ;;
  esac
fi

echo "== check.sh: sanitizers=$SANITIZE build=$BUILD_DIR jobs=$JOBS"

cmake -S "$ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMISO_SANITIZE="$SANITIZE" \
  -DMISO_WERROR=ON

if [ "$TIDY_ONLY" -eq 1 ]; then
  exec "$ROOT/tools/run_clang_tidy.sh" "$BUILD_DIR"
fi

cmake --build "$BUILD_DIR" -j"$JOBS"

# print_stacktrace makes UBSan reports actionable; ASan halts on the first
# error by default (and -fno-sanitize-recover=all aborts on UBSan issues).
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

CTEST_ARGS=(--test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS")
if [ -n "$LABEL" ]; then
  CTEST_ARGS+=(-L "$LABEL")
fi

if [ "$TSAN" -eq 1 ]; then
  # Real concurrency under TSan: force >= 2 workers into every thread
  # pool (the container may expose a single core, where the default
  # MISO_THREADS resolution would otherwise serialize everything).
  export MISO_THREADS="${MISO_THREADS:-4}"
  if [ "${MISO_THREADS}" -lt 2 ]; then
    echo "check.sh: --tsan requires MISO_THREADS >= 2 (got $MISO_THREADS)" >&2
    exit 1
  fi
  # The gate is only meaningful while the `concurrency` label is
  # populated; an empty label means the TSan run stopped testing
  # concurrency at all.
  CONCURRENCY_COUNT="$(ctest --test-dir "$BUILD_DIR" -L concurrency -N |
                       sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$CONCURRENCY_COUNT" ] || [ "$CONCURRENCY_COUNT" -eq 0 ]; then
    echo "check.sh: the 'concurrency' ctest label is empty — the TSan gate" \
         "would be vacuous" >&2
    exit 1
  fi
  echo "== check.sh: tsan gate covers $CONCURRENCY_COUNT concurrency tests" \
       "with MISO_THREADS=$MISO_THREADS"
fi

if [ "$OBS" -eq 1 ]; then
  # Both telemetry gates on for the whole obs label: the suite must hold
  # with telemetry enabled, not just in its default-off state (tests that
  # specifically assert default-off detect the env and skip).
  export MISO_METRICS=1
  export MISO_TRACE=1
  OBS_COUNT="$(ctest --test-dir "$BUILD_DIR" -L obs -N |
               sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$OBS_COUNT" ] || [ "$OBS_COUNT" -eq 0 ]; then
    echo "check.sh: the 'obs' ctest label is empty — the telemetry gate" \
         "would be vacuous" >&2
    exit 1
  fi
  echo "== check.sh: obs gate covers $OBS_COUNT tests with" \
       "MISO_METRICS=1 MISO_TRACE=1"
fi

if [ "$PERF" -eq 1 ]; then
  PERF_COUNT="$(ctest --test-dir "$BUILD_DIR" -L perf -N |
                sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$PERF_COUNT" ] || [ "$PERF_COUNT" -eq 0 ]; then
    echo "check.sh: the 'perf' ctest label is empty — the bench smoke gate" \
         "would be vacuous" >&2
    exit 1
  fi
  echo "== check.sh: perf gate smoke-runs $PERF_COUNT bench binaries"
fi

if [ "$FAULT" -eq 1 ]; then
  FAULT_COUNT="$(ctest --test-dir "$BUILD_DIR" -L fault -N |
                 sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$FAULT_COUNT" ] || [ "$FAULT_COUNT" -eq 0 ]; then
    echo "check.sh: the 'fault' ctest label is empty — the chaos gate" \
         "would be vacuous" >&2
    exit 1
  fi
  echo "== check.sh: fault gate covers $FAULT_COUNT chaos tests"
fi

if [ "$SERVER" -eq 1 ]; then
  SERVER_COUNT="$(ctest --test-dir "$BUILD_DIR" -L server -N |
                  sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$SERVER_COUNT" ] || [ "$SERVER_COUNT" -eq 0 ]; then
    echo "check.sh: the 'server' ctest label is empty — the online-server" \
         "gate would be vacuous" >&2
    exit 1
  fi
  echo "== check.sh: server gate covers $SERVER_COUNT online-server tests"
fi

if [ "$OVERLOAD" -eq 1 ]; then
  OVERLOAD_COUNT="$(ctest --test-dir "$BUILD_DIR" -L overload -N |
                    sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$OVERLOAD_COUNT" ] || [ "$OVERLOAD_COUNT" -eq 0 ]; then
    echo "check.sh: the 'overload' ctest label is empty — the overload gate" \
         "would be vacuous" >&2
    exit 1
  fi
  # The zero-cost contract is the gate's teeth: breaker+deadlines off
  # (and enabled-but-idle) must be byte-identical to the pre-overload
  # serving path. Those tests must exist by name, not just the label.
  ZEROCOST_COUNT="$(ctest --test-dir "$BUILD_DIR" \
                      -R '^ServerOverloadZeroCost\.' -N |
                    sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$ZEROCOST_COUNT" ] || [ "$ZEROCOST_COUNT" -eq 0 ]; then
    echo "check.sh: no ServerOverloadZeroCost tests registered — the" \
         "breaker-off byte-identity contract would be unwatched" >&2
    exit 1
  fi
  echo "== check.sh: overload gate covers $OVERLOAD_COUNT tests" \
       "($ZEROCOST_COUNT byte-identity)"
fi

if [ "$LINT" -eq 1 ]; then
  # clang_tidy may be SKIPPED where LLVM tooling is absent; the gate is
  # only meaningful while the always-on miso_lint test is registered.
  MISO_LINT_COUNT="$(ctest --test-dir "$BUILD_DIR" \
                       -R '^static_analysis\.miso_lint$' -N |
                     sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  if [ -z "$MISO_LINT_COUNT" ] || [ "$MISO_LINT_COUNT" -eq 0 ]; then
    echo "check.sh: static_analysis.miso_lint is not registered — the lint" \
         "gate would be vacuous (clang_tidy alone can be SKIPPED)" >&2
    exit 1
  fi
  LINT_COUNT="$(ctest --test-dir "$BUILD_DIR" -L static_analysis -N |
                sed -n 's/^Total Tests: \([0-9]*\)$/\1/p')"
  echo "== check.sh: lint gate covers $LINT_COUNT static_analysis tests" \
       "(miso_lint registered and never skipped)"
fi

ctest "${CTEST_ARGS[@]}"

if [ "$PERF" -eq 1 ]; then
  echo "== check.sh: what-if cache hit rate over a short simulation"
  "$BUILD_DIR/tools/debug_cache_stats"

  # Thread-scaling floor, measured where it matters: a plain Release
  # build (sanitizer builds distort the submit/steal overhead the batched
  # ParallelFor is designed to amortize).
  PERF_BUILD_DIR="$ROOT/build-perf"
  echo "== check.sh: perf scaling gate (Release build at $PERF_BUILD_DIR)"
  cmake -S "$ROOT" -B "$PERF_BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$PERF_BUILD_DIR" -j"$JOBS" --target bench_micro_optimizer
  SCALING_JSON="$PERF_BUILD_DIR/threaded_scaling.json"
  "$PERF_BUILD_DIR/bench/bench_micro_optimizer" \
      --benchmark_filter='^BM_FullOptimizeThreaded/[12]$' \
      --benchmark_out="$SCALING_JSON" \
      --benchmark_out_format=json >/dev/null
  python3 - "$SCALING_JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {}
for bench in doc["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = bench["real_time"]
one = times.get("BM_FullOptimizeThreaded/1")
two = times.get("BM_FullOptimizeThreaded/2")
if one is None or two is None:
    sys.exit("check.sh: BM_FullOptimizeThreaded/1 or /2 missing from "
             + sys.argv[1])
ratio = two / one
print(f"== check.sh: BM_FullOptimizeThreaded 2t/1t real_time ratio = "
      f"{ratio:.3f} ({two:.0f}ns / {one:.0f}ns)")
if ratio > 1.1:
    sys.exit(f"check.sh: 2-thread optimize is {ratio:.2f}x the 1-thread "
             "time (> 1.10x budget) — parallelism is a regression; see "
             "docs/PERFORMANCE.md")
EOF

  # Server-throughput gate, on the same Release build: the warm
  # paper-workload replay (docs/PERFORMANCE.md "Serving path") must show
  # (a) the design-epoch plan cache never losing throughput
  # (cache-on sessions/s >= cache-off, both serial at 1 thread), and
  # (b) wave pipelining costing at most 10% when it cannot help
  # (pipelined-vs-serial at 1 thread, cache on for both).
  echo "== check.sh: server throughput gate (warm replay, Release build)"
  cmake --build "$PERF_BUILD_DIR" -j"$JOBS" --target bench_server
  SERVER_JSON="$PERF_BUILD_DIR/server_warm_replay.json"
  "$PERF_BUILD_DIR/bench/bench_server" \
      --benchmark_filter='^BM_ServerWarmReplay/' \
      --benchmark_out="$SERVER_JSON" \
      --benchmark_out_format=json >/dev/null
  python3 - "$SERVER_JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = {}
for bench in doc["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    rows[bench["name"]] = bench


def row(cache, pipeline, threads):
    name = "BM_ServerWarmReplay/%d/%d/%d/real_time" % (cache, pipeline,
                                                       threads)
    if name not in rows:
        sys.exit("check.sh: %s missing from %s" % (name, sys.argv[1]))
    return rows[name]


cache_off = row(0, 0, 1)["sessions_per_s"]
cache_on = row(1, 0, 1)["sessions_per_s"]
print(f"== check.sh: warm replay sessions/s: cache-on {cache_on:.1f} vs "
      f"cache-off {cache_off:.1f} ({cache_on / cache_off:.2f}x)")
if cache_on < cache_off:
    sys.exit(f"check.sh: plan cache LOSES throughput on the warm replay "
             f"({cache_on:.1f} < {cache_off:.1f} sessions/s) — see "
             "docs/PERFORMANCE.md 'Serving path'")
serial = row(1, 0, 1)["real_time"]
pipelined = row(1, 1, 1)["real_time"]
ratio = pipelined / serial
print(f"== check.sh: warm replay pipelined/serial real_time at 1 thread = "
      f"{ratio:.3f}")
if ratio > 1.1:
    sys.exit(f"check.sh: pipelined serving is {ratio:.2f}x the serial time "
             "on 1 thread (> 1.10x budget) — speculation overhead is a "
             "regression; see docs/PERFORMANCE.md 'Serving path'")
EOF
fi

echo "== check.sh: all gates passed"
