#!/usr/bin/env bash
# One-command verification gate for the tree:
#
#   1. configure a sanitizer build (ASan+UBSan by default, TSan with
#      --tsan) with warnings-as-errors (MISO_WERROR=ON);
#   2. build everything;
#   3. run the full ctest suite under the sanitizers — this includes the
#      `static_analysis` ctest label (clang-tidy over src/, skipped when
#      the tool is unavailable) and runs every test with MISO_VERIFY=1,
#      so the PlanVerifier / DesignVerifier assert on every enumerated
#      split and every reorganization.
#
# Any compiler warning, sanitizer report, clang-tidy finding in src/, or
# test failure fails the script.
#
# Usage: tools/check.sh [--tsan] [--jobs N] [--build-dir DIR] [--tidy-only]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZE="address,undefined"
BUILD_DIR=""
JOBS="$(nproc 2>/dev/null || echo 2)"
TIDY_ONLY=0

while [ "$#" -gt 0 ]; do
  case "$1" in
    --tsan) SANITIZE="thread"; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --tidy-only) TIDY_ONLY=1; shift ;;
    -h|--help)
      sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "check.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done

if [ -z "$BUILD_DIR" ]; then
  case "$SANITIZE" in
    thread) BUILD_DIR="$ROOT/build-tsan" ;;
    *) BUILD_DIR="$ROOT/build-asan" ;;
  esac
fi

echo "== check.sh: sanitizers=$SANITIZE build=$BUILD_DIR jobs=$JOBS"

cmake -S "$ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMISO_SANITIZE="$SANITIZE" \
  -DMISO_WERROR=ON

if [ "$TIDY_ONLY" -eq 1 ]; then
  exec "$ROOT/tools/run_clang_tidy.sh" "$BUILD_DIR"
fi

cmake --build "$BUILD_DIR" -j"$JOBS"

# print_stacktrace makes UBSan reports actionable; ASan halts on the first
# error by default (and -fno-sanitize-recover=all aborts on UBSan issues).
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== check.sh: all gates passed"
