// Prints the what-if cache counters (hits / misses / evictions and the
// derived hit rate) from one short MS-MISO paper-workload simulation.
// Driven by `tools/check.sh --perf`; also useful standalone when sizing
// `SimConfig::whatif_cache_bytes`.
//
// Usage: debug_cache_stats [seed]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "relation/catalog.h"
#include "sim/simulator.h"

using namespace miso;

int main(int argc, char** argv) {
  Logger::SetThreshold(LogLevel::kWarning);
  const uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  const relation::Catalog catalog = relation::MakePaperCatalog();
  sim::SimConfig config;
  config.variant = sim::SystemVariant::kMsMiso;
  config.metrics = true;

  obs::Metrics().Reset();
  auto report = sim::RunPaperWorkload(&catalog, config, seed);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  int64_t hits = 0, misses = 0, evictions = 0;
  for (const obs::MetricRow& row : obs::Metrics().Snapshot().rows) {
    if (row.name == obs::names::kWhatIfCacheHits) hits = row.counter_value;
    if (row.name == obs::names::kWhatIfCacheMisses) {
      misses = row.counter_value;
    }
    if (row.name == obs::names::kWhatIfCacheEvictions) {
      evictions = row.counter_value;
    }
  }
  const double total = static_cast<double>(hits + misses);
  std::printf("whatif_cache seed=%llu: hits=%lld misses=%lld evictions=%lld "
              "hit_rate=%.3f (tti=%.0fs)\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(hits), static_cast<long long>(misses),
              static_cast<long long>(evictions),
              total > 0 ? static_cast<double>(hits) / total : 0.0,
              report->Tti());
  return 0;
}
