#include <algorithm>
#include <cstdio>
#include "core/miso.h"
using namespace miso;
int main() {
  relation::Catalog catalog = relation::MakePaperCatalog();
  plan::NodeFactory factory(&catalog);
  hv::HvCostModel hvm{hv::HvConfig{}};
  dw::DwCostModel dwm{dw::DwConfig{}};
  transfer::TransferModel tm{transfer::TransferConfig{}};
  optimizer::MultistoreOptimizer opt(&factory, &hvm, &dwm, &tm);
  workload::WorkloadConfig wl;
  auto w = workload::EvolutionaryWorkload::Generate(&catalog, wl);
  const plan::Plan& q = w->queries()[3].plan;  // A4v1 (DW-compatible UDFs)
  auto plans = opt.EnumerateAllPlans(q);
  if (!plans.ok()) { printf("fail %s\n", plans.status().ToString().c_str()); return 1; }
  std::sort(plans->begin(), plans->end(), [](auto&a, auto&b){return a.cost.Total()<b.cost.Total();});
  printf("%zu plans\n", plans->size());
  for (auto& p : *plans) {
    printf("total=%8.0f hv=%8.0f dump=%6.0f xferload=%7.0f dw=%6.1f xfer_bytes=%s dw_ops=%zu%s\n",
      p.cost.Total(), p.cost.hv_exec_s, p.cost.dump_s, p.cost.transfer_load_s, p.cost.dw_exec_s,
      FormatBytes(p.transferred_bytes).c_str(), p.dw_side.size(), p.HvOnly() ? "  [HV-ONLY]" : "");
  }
  return 0;
}
