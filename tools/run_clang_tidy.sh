#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources in src/, using the compile database of the given build dir.
# In the default mode any finding is an error (-warnings-as-errors='*'),
# so a clean exit means no clang-tidy regressions in src/.
#
# Usage: tools/run_clang_tidy.sh [--baseline write|check] [BUILD_DIR] [FILE...]
#   BUILD_DIR  directory containing compile_commands.json (default: build)
#   FILE...    restrict the run to specific sources (default: all src/*.cc)
#
# --baseline enables the incremental burn-down workflow against the
# committed findings file tools/clang_tidy_baseline.txt. Findings are
# normalized to sorted-unique "path [check-name]" pairs (line/column
# stripped, so unrelated edits do not shift the baseline):
#   write  run clang-tidy and (re)write the baseline from what it reports
#   check  fail only on findings NOT in the baseline; report baseline
#          entries that no longer fire (refresh with `write` to ratchet)
#
# Exits 77 with a notice when clang-tidy is not installed — registered as
# ctest's SKIP_RETURN_CODE, so the `static_analysis` test reports SKIPPED
# (not a silent pass) on containers that ship only gcc, and runs for real
# wherever LLVM tooling is available. (miso-lint, tools/miso_lint.cc, is
# the always-on complement that never skips.)
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE_MODE=""
BASELINE_FILE="$ROOT/tools/clang_tidy_baseline.txt"

if [ "${1:-}" = "--baseline" ]; then
  BASELINE_MODE="${2:-}"
  if [ "$BASELINE_MODE" != "write" ] && [ "$BASELINE_MODE" != "check" ]; then
    echo "run_clang_tidy: --baseline needs 'write' or 'check'" >&2
    exit 2
  fi
  shift 2
fi

BUILD_DIR="${1:-$ROOT/build}"
shift 2>/dev/null || true

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping static analysis" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in '$BUILD_DIR'" >&2
  echo "  (configure with cmake -B '$BUILD_DIR' -S '$ROOT'; the tree sets CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

cd "$ROOT"
if [ "$#" -gt 0 ]; then
  files=("$@")
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

echo "run_clang_tidy: checking ${#files[@]} files against $BUILD_DIR/compile_commands.json"

if [ -z "$BASELINE_MODE" ]; then
  exec clang-tidy -p "$BUILD_DIR" -quiet -warnings-as-errors='*' "${files[@]}"
fi

# Baseline modes: capture warnings (not promoted to errors) and normalize
# each "path:line:col: warning: ... [check-name]" to "path [check-name]".
normalize_findings() {
  grep -E '^[^ :]+:[0-9]+:[0-9]+: (warning|error): ' |
    sed -E 's|^([^:]+):[0-9]+:[0-9]+: (warning\|error): .*\[([^][]+)\]$|\1 [\3]|' |
    grep -E '^[^ ]+ \[' |
    sort -u
}

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

clang-tidy -p "$BUILD_DIR" -quiet "${files[@]}" >"$TMP/raw.txt" 2>/dev/null
normalize_findings <"$TMP/raw.txt" >"$TMP/current.txt"

if [ "$BASELINE_MODE" = "write" ]; then
  {
    echo "# clang-tidy baseline: sorted-unique 'path [check-name]' findings"
    echo "# accepted for incremental burn-down. Refresh with:"
    echo "#   tools/run_clang_tidy.sh --baseline write [BUILD_DIR]"
    echo "# 'check' mode fails only on findings not listed here."
    cat "$TMP/current.txt"
  } >"$BASELINE_FILE"
  echo "run_clang_tidy: wrote $(wc -l <"$TMP/current.txt") finding(s) to $BASELINE_FILE"
  exit 0
fi

# check mode
if [ ! -f "$BASELINE_FILE" ]; then
  echo "run_clang_tidy: no baseline at $BASELINE_FILE (create one with --baseline write)" >&2
  exit 2
fi
grep -v '^#' "$BASELINE_FILE" | sort -u >"$TMP/baseline.txt"

comm -13 "$TMP/baseline.txt" "$TMP/current.txt" >"$TMP/new.txt"
comm -23 "$TMP/baseline.txt" "$TMP/current.txt" >"$TMP/fixed.txt"

if [ -s "$TMP/fixed.txt" ]; then
  echo "run_clang_tidy: $(wc -l <"$TMP/fixed.txt") baseline finding(s) no longer fire — ratchet with --baseline write:"
  sed 's/^/  fixed: /' "$TMP/fixed.txt"
fi
if [ -s "$TMP/new.txt" ]; then
  echo "run_clang_tidy: NEW findings not in $BASELINE_FILE:" >&2
  sed 's/^/  new: /' "$TMP/new.txt" >&2
  exit 1
fi
echo "run_clang_tidy: no findings beyond the committed baseline"
exit 0
