#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources in src/, using the compile database of the given build dir.
# Any finding is an error (-warnings-as-errors='*'), so a clean exit means
# no clang-tidy regressions in src/.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [FILE...]
#   BUILD_DIR  directory containing compile_commands.json (default: build)
#   FILE...    restrict the run to specific sources (default: all src/*.cc)
#
# Exits 77 with a notice when clang-tidy is not installed — registered as
# ctest's SKIP_RETURN_CODE, so the `static_analysis` test reports SKIPPED
# (not a silent pass) on containers that ship only gcc, and runs for real
# wherever LLVM tooling is available.
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
shift 2>/dev/null || true

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping static analysis" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in '$BUILD_DIR'" >&2
  echo "  (configure with cmake -B '$BUILD_DIR' -S '$ROOT'; the tree sets CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

cd "$ROOT"
if [ "$#" -gt 0 ]; then
  files=("$@")
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

echo "run_clang_tidy: checking ${#files[@]} files against $BUILD_DIR/compile_commands.json"
clang-tidy -p "$BUILD_DIR" -quiet -warnings-as-errors='*' "${files[@]}"
