#include <cstdio>
#include "core/miso.h"
using namespace miso;
int main() {
  Logger::SetThreshold(LogLevel::kWarning);
  relation::Catalog catalog = relation::MakePaperCatalog();
  workload::WorkloadConfig wl;
  auto w = workload::EvolutionaryWorkload::Generate(&catalog, wl);
  auto run = [&](dw::BackgroundWorkload bg, const char* label) {
    sim::SimConfig cfg; cfg.variant = sim::SystemVariant::kMsMiso; cfg.background = bg;
    sim::MultistoreSimulator s(&catalog, cfg);
    auto r = s.Run(w->queries());
    printf("%-8s TTI=%9.1f xfer=%7.1f tune=%7.1f dw=%6.1f bg_slow=%.4f\n", label,
      r->Tti(), r->transfer_s, r->tune_s, r->dw_exe_s, r->background_slowdown);
  };
  run(workload::IdleDw(), "idle");
  run(workload::SpareIo40(), "io40");
  run(workload::SpareIo20(), "io20");
  run(workload::SpareCpu40(), "cpu40");
  run(workload::SpareCpu20(), "cpu20");
  return 0;
}
