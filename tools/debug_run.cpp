#include <cstdio>
#include "core/miso.h"
using namespace miso;

int main(int argc, char** argv) {
  Logger::SetThreshold(LogLevel::kInfo);
  const char* vname = argc > 1 ? argv[1] : "MS-MISO";
  MisoConfig config;
  if (std::string(vname) == "HV-OP") config.sim.variant = sim::SystemVariant::kHvOp;
  else if (std::string(vname) == "MS-BASIC") config.sim.variant = sim::SystemVariant::kMsBasic;
  else config.sim.variant = sim::SystemVariant::kMsMiso;
  MultistoreSystem system(config);
  workload::WorkloadConfig wl;
  auto workload = workload::EvolutionaryWorkload::Generate(&system.catalog(), wl);
  auto report = system.Execute(workload->queries());
  if (!report.ok()) { printf("fail: %s\n", report.status().ToString().c_str()); return 1; }
  for (const auto& q : report->queries) {
    const auto& wq = workload->queries()[q.index];
    printf("%2d %-6s mut=%-18s exec=%8.0f (hv=%8.0f xfer=%7.0f dw=%6.1f) ops_dw=%d/%d views=%d\n",
      q.index, q.name.c_str(), std::string(workload::MutationKindToString(wq.mutation)).c_str(),
      q.ExecTime(), q.breakdown.hv_exec_s, q.breakdown.dump_s + q.breakdown.transfer_load_s,
      q.breakdown.dw_exec_s, q.ops_dw, q.ops_total, q.views_used);
  }
  printf("%s\n", report->Summary().c_str());
  return 0;
}
