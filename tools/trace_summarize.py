#!/usr/bin/env python3
"""Fold a MISO decision trace (JSONL) into human-readable tables.

The trace format is documented in docs/TELEMETRY.md. The headline output
is the Figure 3-style cost-anatomy table: one row per costed split plan
(`optimizer.plan_costed` events), sorted by total cost, with the stacked
components the paper plots — HV execution, DUMP, TRANSFER, LOAD, and DW
execution. Falls back to `optimizer.plan_choice` events when the trace
has no full enumeration, and also summarizes the simulated queries,
reorganizations, and tuner decisions when present.

Usage:
    tools/trace_summarize.py fig3_trace.jsonl
    MISO_TRACE=1 ./build/bench/bench_fig3_split_profile && \
        tools/trace_summarize.py fig3_trace.jsonl
    some_run | tools/trace_summarize.py -      # read stdin

No dependencies beyond the Python standard library.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict


def format_bytes(n):
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} TiB"


def load_events(stream):
    events = defaultdict(list)
    bad = 0
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            events[record["event"]].append(record)
        except (json.JSONDecodeError, KeyError, TypeError):
            bad += 1
            print(f"warning: line {line_number} is not a trace event",
                  file=sys.stderr)
    if bad:
        print(f"warning: skipped {bad} malformed line(s)", file=sys.stderr)
    return events


def is_hv_only(plan):
    # plan_choice events carry the flag; plan_costed events carry dw_ops.
    return bool(plan.get("hv_only", plan.get("dw_ops", 1) == 0))


def print_anatomy_table(plans, title):
    print(title)
    print(f"{'plan':<5} {'TOTAL(s)':>9} {'HV-EXE':>9} {'DUMP':>8} "
          f"{'XFER':>8} {'LOAD':>8} {'DW-EXE':>8} {'migrated':>12}")
    ordered = sorted(plans, key=lambda p: p["total_s"])
    hv_only = next((p["total_s"] for p in ordered if is_hv_only(p)), None)
    for row, p in enumerate(ordered):
        note = ""
        if row == 0:
            note = "B (best)"
        if is_hv_only(p):
            note = "H (HV-only)"
        elif hv_only is not None and p["total_s"] > 1.15 * hv_only:
            note = "S (bad split)"
        print(f"{row:<5} {p['total_s']:>9.0f} {p['hv_exec_s']:>9.0f} "
              f"{p['dump_s']:>8.0f} {p['transfer_s']:>8.0f} "
              f"{p['load_s']:>8.0f} {p['dw_exec_s']:>8.1f} "
              f"{format_bytes(p['transferred_bytes']):>12} {note}")
    if hv_only:
        best = ordered[0]["total_s"]
        worst = ordered[-1]["total_s"]
        print(f"\nbest/HV-only = {best / hv_only:.2f}   "
              f"worst/HV-only = {worst / hv_only:.2f}")
    print()


def summarize_queries(queries):
    total = sum(q["completion_s"] - q["start_s"] for q in queries)
    hv = sum(q["hv_exec_s"] for q in queries)
    dump = sum(q["dump_s"] for q in queries)
    xfer_load = sum(q["transfer_load_s"] for q in queries)
    dw = sum(q["dw_exec_s"] for q in queries)
    moved = sum(q["transferred_bytes"] for q in queries)
    dw_majority = sum(
        1 for q in queries
        if q["ops_total"] > 0 and q["ops_dw"] * 2 > q["ops_total"])
    print(f"queries: {len(queries)}  total time {total:.0f} s  "
          f"(HV {hv:.0f} | dump {dump:.0f} | xfer+load {xfer_load:.0f} | "
          f"DW {dw:.0f})")
    print(f"  working sets migrated by splits: {format_bytes(moved)}; "
          f"{dw_majority} of {len(queries)} queries ran mostly in DW")
    print()


def summarize_reorgs(reorgs):
    to_dw = sum(r["bytes_to_dw"] for r in reorgs)
    to_hv = sum(r["bytes_to_hv"] for r in reorgs)
    spent = sum(r["reorg_s"] for r in reorgs)
    budget = reorgs[0]["transfer_budget"] if reorgs else 0
    print(f"reorganizations: {len(reorgs)}  "
          f"moved {format_bytes(to_dw)} -> DW, {format_bytes(to_hv)} -> HV  "
          f"({spent:.0f} s; per-reorg budget Bt = {format_bytes(budget)})")
    print()


def summarize_tuner(reorgs, decisions):
    if reorgs:
        benefit = sum(r["predicted_benefit_s"] for r in reorgs)
        items = sum(r["knapsack_items"] for r in reorgs)
        print(f"tuner: {len(reorgs)} reorg(s), {items} knapsack items, "
              f"predicted benefit {benefit:.0f} s")
    if decisions:
        counts = Counter(d["decision"] for d in decisions)
        folded = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"  view decisions: {folded}")
    if reorgs or decisions:
        print()


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="Trace schema: docs/TELEMETRY.md")
    parser.add_argument("trace", help="JSONL trace file, or - for stdin")
    args = parser.parse_args()

    if args.trace == "-":
        events = load_events(sys.stdin)
    else:
        try:
            with open(args.trace, encoding="utf-8") as f:
                events = load_events(f)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if not events:
        print("error: no trace events found (was MISO_TRACE=1 set?)",
              file=sys.stderr)
        return 1

    if events.get("optimizer.plan_costed"):
        print_anatomy_table(
            events["optimizer.plan_costed"],
            "Cost anatomy of every costed split plan (paper Fig. 3):")
    elif events.get("optimizer.plan_choice"):
        print_anatomy_table(
            events["optimizer.plan_choice"],
            "Cost anatomy of each chosen plan:")

    if events.get("sim.query"):
        summarize_queries(events["sim.query"])
    if events.get("sim.reorg"):
        summarize_reorgs(events["sim.reorg"])
    summarize_tuner(events.get("tuner.reorg", []),
                    events.get("tuner.view_decision", []))

    for kind in sorted(events):
        print(f"{len(events[kind]):6d}  {kind}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
