// Fixture: thread sleeps must fire L007 — model code advances simulated
// time, it never blocks a thread.
#include <chrono>
#include <thread>

void Backoff(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

template <typename TimePoint>
void BlockUntil(TimePoint deadline) {
  std::this_thread::sleep_until(deadline);
}
