// Fixture: telemetry-class clock reads with reasoned allow comments are
// clean, and identifiers merely containing "time" never fire.
#include <chrono>

double TuneMs(double real_time_budget) {
  // miso-lint: allow(L003) runtime-class telemetry, same contract as miso.tuner.tune_ms
  const auto start = std::chrono::steady_clock::now();
  const auto stop = std::chrono::steady_clock::now();  // miso-lint: allow(L003) telemetry end stamp
  return std::chrono::duration<double, std::milli>(stop - start).count() +
         real_time_budget;
}
