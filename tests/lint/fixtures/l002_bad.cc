// Fixture: nondeterministic randomness sources must fire L002.
#include <cstdlib>
#include <random>

int Roll() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return rand() + static_cast<int>(gen());
}
