// Fixture: referencing the declared name constants is the sanctioned way,
// and non-"miso." literals are of no interest.
#include "obs/names.h"

const char* Metric() { return miso::obs::names::kOptimizeCalls; }
const char* Other() { return "somethingelse.metric"; }
