// Fixture: summing doubles in unordered_set hash order must fire L004.
#include <unordered_set>

double Sum(const std::unordered_set<double>& terms) {
  double total = 0.0;
  for (double term : terms) {
    total += term;
  }
  return total;
}
