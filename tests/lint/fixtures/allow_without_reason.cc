// Fixture: an allow comment WITHOUT a reason is ignored — the finding
// stands. The justification is part of the escape hatch's contract.
#include <cstdlib>

const char* Home() {
  return std::getenv("HOME");  // miso-lint: allow(L001)
}
