// Fixture: the annotated Mutex with its state guarded is clean.
#include <vector>

#include "common/annotations.h"

class Registry {
 public:
  void Add(int v);

 private:
  miso::Mutex mutex_;
  std::vector<int> items_ MISO_GUARDED_BY(mutex_);
};
