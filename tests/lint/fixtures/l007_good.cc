// Fixture: identifiers merely containing "sleep", sleeps inside comments
// or string literals, and simulated-time accumulation never fire L007.
#include <string>

double SimulatedBackoff(double sleep_for_s, double now_s) {
  // A real sleep_for here would fire; this comment does not.
  const std::string doc = "breaker cooldowns never call sleep_for";
  (void)doc;
  return now_s + sleep_for_s;
}
