// Fixture: a mutex member with no GUARDED_BY reference must fire L006.
#include <mutex>
#include <vector>

class Registry {
 public:
  void Add(int v);

 private:
  std::mutex mutex_;
  std::vector<int> items_;
};
