// Fixture: the strict env wrappers are fine, and "getenv" appearing in a
// comment (like this one: getenv) or a string literal must not fire.
#include "common/env.h"

int Threads() { return miso::EnvInt("MISO_THREADS", 1, 1); }
const char* Advice() { return "route getenv through miso::Env*"; }
