// Fixture: wall-clock reads must fire L003.
#include <chrono>
#include <ctime>

double Now() {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<double>(time(nullptr));
}
