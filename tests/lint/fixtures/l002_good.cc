// Fixture: the seeded project Rng is the sanctioned randomness source.
#include "common/rng.h"

int Roll(miso::Rng& rng) { return static_cast<int>(rng.Next()) & 0x7f; }
