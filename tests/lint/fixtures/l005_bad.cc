// Fixture: a "miso." telemetry name literal outside obs/names must fire
// L005.
const char* kBadMetric = "miso.example.bad_total";
