// Fixture: a same-line allow comment WITH a reason suppresses the finding.
#include <cstdlib>

const char* Home() {
  return std::getenv("HOME");  // miso-lint: allow(L001) interop with the legacy launcher, not a miso knob
}
