// Fixture: raw std::getenv outside src/common/env.cc must fire L001.
#include <cstdlib>

const char* Home() { return std::getenv("HOME"); }
