// Fixture: the sanctioned shape — copy out, sort, then accumulate — and a
// per-element accumulator declared inside the loop body (resets every
// iteration, so it cannot pick up hash order). Neither may fire L004.
#include <algorithm>
#include <unordered_set>
#include <vector>

double Sum(const std::unordered_set<double>& terms) {
  std::vector<double> sorted_terms(terms.begin(), terms.end());
  std::sort(sorted_terms.begin(), sorted_terms.end());
  double total = 0.0;
  for (double term : sorted_terms) {
    total += term;
  }
  return total;
}

std::vector<double> PerElement(const std::unordered_set<int>& nodes) {
  std::vector<double> parts;
  for (int node : nodes) {
    double part = 0.0;
    part += static_cast<double>(node % 7);
    parts.push_back(part);
  }
  std::sort(parts.begin(), parts.end());
  return parts;
}
