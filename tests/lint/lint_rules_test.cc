// Tests for miso-lint (tools/miso_lint.{h,cc}): every rule fires on its
// known-bad fixture, stays quiet on its known-good twin, the allow-comment
// escape hatch works exactly as documented, and the shipped src/ tree is
// lint-clean. DESIGN.md section 13 documents the rules.
#include "tools/miso_lint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace miso::lint {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FixturePath(const std::string& name) {
  return std::string(MISO_REPO_ROOT) + "/tests/lint/fixtures/" + name;
}

/// Lints a fixture under a path label that matches no allowlist.
std::vector<Finding> LintFixture(const std::string& name) {
  return LintFile("tests/lint/fixtures/" + name,
                  ReadFileOrDie(FixturePath(name)));
}

std::vector<std::string> CodesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> codes;
  for (const Finding& finding : findings) codes.push_back(finding.code);
  return codes;
}

TEST(MisoLintRules, L001FiresOnRawGetenv) {
  const std::vector<Finding> findings = LintFixture("l001_bad.cc");
  EXPECT_EQ(CodesOf(findings), std::vector<std::string>{"L001"});
}

TEST(MisoLintRules, L001IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintFixture("l001_good.cc").empty());
}

TEST(MisoLintRules, L002FiresOnEveryRandomnessSource) {
  const std::vector<Finding> findings = LintFixture("l002_bad.cc");
  // random_device, mt19937, and rand() each sit on their own line.
  EXPECT_EQ(CodesOf(findings),
            (std::vector<std::string>{"L002", "L002", "L002"}));
}

TEST(MisoLintRules, L002AcceptsSeededRng) {
  EXPECT_TRUE(LintFixture("l002_good.cc").empty());
}

TEST(MisoLintRules, L003FiresOnWallClockReads) {
  const std::vector<Finding> findings = LintFixture("l003_bad.cc");
  EXPECT_EQ(CodesOf(findings), (std::vector<std::string>{"L003", "L003"}));
}

TEST(MisoLintRules, L003HonorsAllowCommentsAndWordBoundaries) {
  EXPECT_TRUE(LintFixture("l003_good.cc").empty());
}

TEST(MisoLintRules, L004FiresOnHashOrderAccumulation) {
  const std::vector<Finding> findings = LintFixture("l004_bad.cc");
  EXPECT_EQ(CodesOf(findings), std::vector<std::string>{"L004"});
}

TEST(MisoLintRules, L004AcceptsSortedAndPerElementAccumulators) {
  EXPECT_TRUE(LintFixture("l004_good.cc").empty());
}

TEST(MisoLintRules, L005FiresOnStrayTelemetryNameLiteral) {
  const std::vector<Finding> findings = LintFixture("l005_bad.cc");
  EXPECT_EQ(CodesOf(findings), std::vector<std::string>{"L005"});
}

TEST(MisoLintRules, L005AcceptsDeclaredNamesAndForeignLiterals) {
  EXPECT_TRUE(LintFixture("l005_good.cc").empty());
}

TEST(MisoLintRules, L006FiresOnUnguardedMutexMember) {
  const std::vector<Finding> findings = LintFixture("l006_bad.cc");
  EXPECT_EQ(CodesOf(findings), std::vector<std::string>{"L006"});
}

TEST(MisoLintRules, L006AcceptsGuardedMutexMember) {
  EXPECT_TRUE(LintFixture("l006_good.cc").empty());
}

TEST(MisoLintRules, L007FiresOnThreadSleeps) {
  const std::vector<Finding> findings = LintFixture("l007_bad.cc");
  EXPECT_EQ(CodesOf(findings), (std::vector<std::string>{"L007", "L007"}));
}

TEST(MisoLintRules, L007IgnoresIdentifiersCommentsAndStrings) {
  EXPECT_TRUE(LintFixture("l007_good.cc").empty());
}

TEST(MisoLintAllow, ReasonedAllowSuppresses) {
  EXPECT_TRUE(LintFixture("allow_with_reason.cc").empty());
}

TEST(MisoLintAllow, BareAllowWithoutReasonDoesNotSuppress) {
  const std::vector<Finding> findings = LintFixture("allow_without_reason.cc");
  EXPECT_EQ(CodesOf(findings), std::vector<std::string>{"L001"});
}

TEST(MisoLintAllowlists, EnvModuleMayCallGetenv) {
  // The same content that fires L001 elsewhere is clean when it carries
  // the one sanctioned path.
  const std::string content = ReadFileOrDie(FixturePath("l001_bad.cc"));
  EXPECT_TRUE(LintFile("src/common/env.cc", content).empty());
  EXPECT_EQ(CodesOf(LintFile("src/common/env_other.cc", content)),
            std::vector<std::string>{"L001"});
}

TEST(MisoLintAllowlists, ObsNamesMayHoldTelemetryLiterals) {
  const std::string content = ReadFileOrDie(FixturePath("l005_bad.cc"));
  EXPECT_TRUE(LintFile("src/obs/names.h", content).empty());
  EXPECT_TRUE(LintFile("src/obs/names.cc", content).empty());
}

TEST(MisoLintAllowlists, ThreadPoolMaySleep) {
  const std::string content = ReadFileOrDie(FixturePath("l007_bad.cc"));
  EXPECT_TRUE(LintFile("src/common/thread_pool.cc", content).empty());
  EXPECT_EQ(CodesOf(LintFile("src/server/overload.cc", content)),
            (std::vector<std::string>{"L007", "L007"}));
}

TEST(MisoLintParser, DigitSeparatorsAndBlankedLiterals) {
  // 1'000'000 must not open a character literal (env.cc relies on this),
  // and banned tokens inside string literals must stay invisible.
  const std::string content =
      "int x = 1'000'000;\n"
      "const char* p = std::getenv(\"HOME\");\n"
      "const char* q = \"rand() inside a literal\";\n";
  const std::vector<Finding> findings = LintFile("foo.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "L001");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(MisoLintTable, SevenStableCodes) {
  const std::vector<RuleInfo>& rules = Rules();
  ASSERT_EQ(rules.size(), 7u);
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].code, "L00" + std::to_string(i + 1));
  }
}

TEST(MisoLintTable, FindingFormatMirrorsVerifierStyle) {
  const Finding finding{"src/a.cc", 12, "L001", "msg"};
  EXPECT_EQ(finding.ToString(), "src/a.cc:12: [L001] msg");
}

TEST(MisoLintTree, ShippedTreeIsClean) {
  std::string error;
  const std::vector<Finding> findings = LintTree(MISO_REPO_ROOT, &error);
  EXPECT_TRUE(error.empty()) << error;
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.ToString();
  }
}

}  // namespace
}  // namespace miso::lint
