#include "datagen/record_generator.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::datagen {
namespace {

using testing_util::PaperCatalog;

TEST(RecordGeneratorTest, UnknownDatasetRejected) {
  auto gen = RecordGenerator::Create(PaperCatalog(), "nope", 1);
  EXPECT_FALSE(gen.ok());
}

TEST(RecordGeneratorTest, RecordsLookLikeJson) {
  auto gen = RecordGenerator::Create(PaperCatalog(), "twitter", 1);
  ASSERT_TRUE(gen.ok());
  const std::string record = gen->NextRecord();
  EXPECT_EQ(record.front(), '{');
  EXPECT_EQ(record.back(), '}');
  // Every schema field appears as a key.
  for (const relation::Field& f : gen->dataset().schema.fields()) {
    EXPECT_NE(record.find("\"" + f.name + "\""), std::string::npos)
        << record;
  }
}

TEST(RecordGeneratorTest, DeterministicForSeed) {
  auto g1 = RecordGenerator::Create(PaperCatalog(), "foursquare", 7);
  auto g2 = RecordGenerator::Create(PaperCatalog(), "foursquare", 7);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(g1->NextRecord(), g2->NextRecord());
  }
}

TEST(RecordGeneratorTest, BatchGeneration) {
  auto gen = RecordGenerator::Create(PaperCatalog(), "landmarks", 3);
  ASSERT_TRUE(gen.ok());
  std::vector<std::string> records = gen->Records(25);
  EXPECT_EQ(records.size(), 25u);
  EXPECT_TRUE(gen->Records(-1).empty());
}

TEST(RecordGeneratorTest, StringWidthsTrackSchema) {
  auto gen = RecordGenerator::Create(PaperCatalog(), "twitter", 5);
  ASSERT_TRUE(gen.ok());
  // The "text" field has avg width 250; generated strings should be in
  // that ballpark so synthetic volumes resemble the catalog stats.
  const std::string record = gen->NextRecord();
  const size_t pos = record.find("\"text\": \"");
  ASSERT_NE(pos, std::string::npos);
  const size_t end = record.find('"', pos + 9);
  EXPECT_GT(end - (pos + 9), 200u);
}

}  // namespace
}  // namespace miso::datagen
