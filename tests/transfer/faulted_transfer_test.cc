// Fault-injected transfers: a null injector reduces exactly to the clean
// model (zero-cost-when-disabled), interrupted streams bill partial
// bytes, staged loads retry without repeating the stream, and exhaustion
// reports an incomplete transfer instead of inventing a breakdown.

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "transfer/transfer_model.h"

namespace miso::transfer {
namespace {

fault::FaultPlan PlanWithRate(double rate) {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kChaos;
  spec.seed = 17;
  spec.rate = rate;
  return fault::FaultPlan::Resolve(spec, /*num_queries=*/32);
}

TEST(FaultedTransferTest, NullInjectorIsExactlyTheCleanModel) {
  const TransferModel model{TransferConfig{}};
  const Bytes bytes = 15 * kGiB;
  const TransferBreakdown clean = model.WorkingSetTransfer(bytes);
  const FaultedTransfer faulted = model.WorkingSetTransferFaulted(
      bytes, /*injector=*/nullptr, /*entity=*/1, RetryPolicy{});
  EXPECT_DOUBLE_EQ(faulted.ok.dump_s, clean.dump_s);
  EXPECT_DOUBLE_EQ(faulted.ok.network_s, clean.network_s);
  EXPECT_DOUBLE_EQ(faulted.ok.load_s, clean.load_s);
  EXPECT_EQ(faulted.injected, 0);
  EXPECT_EQ(faulted.retries, 0);
  EXPECT_DOUBLE_EQ(faulted.wasted_dump_s, 0.0);
  EXPECT_DOUBLE_EQ(faulted.wasted_rest_s, 0.0);
  EXPECT_DOUBLE_EQ(faulted.backoff_s, 0.0);
  EXPECT_FALSE(faulted.exhausted);
  EXPECT_DOUBLE_EQ(faulted.TotalCharged(), clean.Total());
}

TEST(FaultedTransferTest, RateZeroInjectorAlsoMatchesCleanModel) {
  const TransferModel model{TransferConfig{}};
  const fault::FaultInjector injector(PlanWithRate(0.0));
  const Bytes bytes = 15 * kGiB;
  for (uint64_t entity = 1; entity <= 8; ++entity) {
    const FaultedTransfer faulted = model.ViewTransferToDwFaulted(
        bytes, &injector, entity, RetryPolicy{});
    EXPECT_DOUBLE_EQ(faulted.TotalCharged(),
                     model.ViewTransferToDw(bytes).Total());
    EXPECT_EQ(faulted.injected, 0);
  }
}

TEST(FaultedTransferTest, SuccessfulRetryChargesPartialWasteAndBackoff) {
  // Rate 1 with max_attempts high enough never succeeds, so drive a
  // deterministic middle case instead: find an entity whose first stream
  // attempt fails but whose retry succeeds, and check the accounting.
  const TransferModel model{TransferConfig{}};
  const fault::FaultInjector injector(PlanWithRate(0.4));
  RetryPolicy retry;  // 3 attempts
  const Bytes bytes = 15 * kGiB;
  const TransferBreakdown clean = model.WorkingSetTransfer(bytes);

  bool found = false;
  for (uint64_t entity = 1; entity < 200 && !found; ++entity) {
    const FaultedTransfer t =
        model.WorkingSetTransferFaulted(bytes, &injector, entity, retry);
    if (t.exhausted || t.injected == 0) continue;
    found = true;
    // The eventually-successful attempt is billed at the clean cost.
    EXPECT_DOUBLE_EQ(t.ok.Total(), clean.Total());
    // Failed attempts charged something strictly partial, plus backoff.
    EXPECT_GT(t.wasted_dump_s + t.wasted_rest_s, 0.0);
    EXPECT_GT(t.backoff_s, 0.0);
    EXPECT_GE(t.retries, 1);
    EXPECT_EQ(t.injected, t.injected_stream + t.injected_load);
    EXPECT_GT(t.TotalCharged(), clean.Total());
    // Partial waste of one stream attempt can never exceed the full
    // per-attempt cost times the number of injections.
    EXPECT_LT(t.wasted_dump_s + t.wasted_rest_s, clean.Total() * t.injected);
  }
  ASSERT_TRUE(found) << "no entity with a recovered fault at rate 0.4";
}

TEST(FaultedTransferTest, StreamFailureWastesDumpProRata) {
  // At rate 1 every attempt of the dump+network stream fails: waste must
  // land in both wasted_dump_s (HV side) and wasted_rest_s, pro-rata to
  // the clean stage split, and the transfer exhausts with a zero `ok`.
  const TransferModel model{TransferConfig{}};
  const fault::FaultInjector injector(PlanWithRate(1.0));
  RetryPolicy retry;
  retry.max_attempts = 2;
  const Bytes bytes = 15 * kGiB;
  const FaultedTransfer t =
      model.WorkingSetTransferFaulted(bytes, &injector, /*entity=*/3, retry);
  EXPECT_TRUE(t.exhausted);
  EXPECT_DOUBLE_EQ(t.ok.Total(), 0.0);
  EXPECT_EQ(t.injected, 2);
  EXPECT_EQ(t.injected_stream, 2);
  EXPECT_EQ(t.injected_load, 0);  // the stream never completed
  EXPECT_EQ(t.retries, 1);
  EXPECT_GT(t.wasted_dump_s, 0.0);
  EXPECT_GT(t.wasted_rest_s, 0.0);
  EXPECT_DOUBLE_EQ(t.backoff_s, retry.BackoffBefore(2));
  // Pro-rata split: dump waste / rest waste == clean dump / clean network.
  const TransferBreakdown clean = model.WorkingSetTransfer(bytes);
  EXPECT_NEAR(t.wasted_dump_s / t.wasted_rest_s,
              clean.dump_s / clean.network_s, 1e-9);
}

TEST(FaultedTransferTest, AccountingViewMatchesFields) {
  const TransferModel model{TransferConfig{}};
  const fault::FaultInjector injector(PlanWithRate(1.0));
  RetryPolicy retry;
  retry.max_attempts = 2;
  const FaultedTransfer t = model.ViewTransferToHvFaulted(
      10 * kGiB, &injector, /*entity=*/5, retry);
  const fault::FaultAccounting acc = t.Accounting();
  EXPECT_EQ(acc.injected, t.injected);
  EXPECT_EQ(acc.retries, t.retries);
  EXPECT_DOUBLE_EQ(acc.wasted_s, t.wasted_dump_s + t.wasted_rest_s);
  EXPECT_DOUBLE_EQ(acc.backoff_s, t.backoff_s);
  EXPECT_EQ(acc.exhausted, t.exhausted);
}

TEST(FaultedTransferTest, DecisionsAreEntityKeyedAndReproducible) {
  const TransferModel model{TransferConfig{}};
  const fault::FaultInjector injector(PlanWithRate(0.5));
  const Bytes bytes = 15 * kGiB;
  bool saw_difference = false;
  for (uint64_t entity = 1; entity <= 32; ++entity) {
    const FaultedTransfer a =
        model.WorkingSetTransferFaulted(bytes, &injector, entity, RetryPolicy{});
    const FaultedTransfer b =
        model.WorkingSetTransferFaulted(bytes, &injector, entity, RetryPolicy{});
    EXPECT_DOUBLE_EQ(a.TotalCharged(), b.TotalCharged()) << entity;
    EXPECT_EQ(a.injected, b.injected) << entity;
    const FaultedTransfer other = model.WorkingSetTransferFaulted(
        bytes, &injector, entity + 1000, RetryPolicy{});
    saw_difference = saw_difference || other.injected != a.injected;
  }
  EXPECT_TRUE(saw_difference) << "fault stream ignores the entity id";
}

}  // namespace
}  // namespace miso::transfer
