#include "transfer/transfer_model.h"

#include <gtest/gtest.h>

namespace miso::transfer {
namespace {

TEST(TransferModelTest, WorkingSetStagesAreSerial) {
  TransferConfig config;
  TransferModel model(config);
  const Bytes size = GiB(10);
  TransferBreakdown b = model.WorkingSetTransfer(size);
  EXPECT_NEAR(b.dump_s, static_cast<double>(size) / (config.dump_mbps * 1e6),
              1e-6);
  EXPECT_NEAR(b.network_s,
              static_cast<double>(size) / (config.network_mbps * 1e6), 1e-6);
  EXPECT_NEAR(b.load_s,
              static_cast<double>(size) / (config.temp_load_mbps * 1e6),
              1e-6);
  EXPECT_NEAR(b.Total(), b.dump_s + b.network_s + b.load_s, 1e-9);
}

TEST(TransferModelTest, PermanentLoadSlowerThanTemp) {
  TransferModel model(TransferConfig{});
  const Bytes size = GiB(10);
  EXPECT_GT(model.ViewTransferToDw(size).load_s,
            model.WorkingSetTransfer(size).load_s)
      << "permanent loads build indexes";
}

TEST(TransferModelTest, ZeroBytesZeroCost) {
  TransferModel model(TransferConfig{});
  EXPECT_DOUBLE_EQ(model.WorkingSetTransfer(0).Total(), 0.0);
  EXPECT_DOUBLE_EQ(model.ViewTransferToDw(0).Total(), 0.0);
  EXPECT_DOUBLE_EQ(model.ViewTransferToHv(0).Total(), 0.0);
}

TEST(TransferModelTest, CostLinearInBytes) {
  TransferModel model(TransferConfig{});
  EXPECT_NEAR(model.WorkingSetTransfer(GiB(20)).Total(),
              2 * model.WorkingSetTransfer(GiB(10)).Total(), 1e-6);
}

TEST(TransferModelTest, ReorgMoveBackUsesExportPath) {
  TransferConfig config;
  TransferModel model(config);
  TransferBreakdown b = model.ViewTransferToHv(GiB(1));
  EXPECT_NEAR(b.dump_s,
              static_cast<double>(GiB(1)) / (config.dw_export_mbps * 1e6),
              1e-6);
  EXPECT_NEAR(b.load_s,
              static_cast<double>(GiB(1)) / (config.hdfs_write_mbps * 1e6),
              1e-6);
}

TEST(TransferModelTest, CalibrationHundredGigabytesIsTensOfKiloseconds) {
  // Figure 3's "bad plans": dumping + loading a ~100 GB working set has to
  // cost on the order of 10^3..10^4 s to make early splits catastrophic.
  TransferModel model(TransferConfig{});
  const Seconds t = model.WorkingSetTransfer(GiB(100)).Total();
  EXPECT_GT(t, 1000);
  EXPECT_LT(t, 50000);
}

}  // namespace
}  // namespace miso::transfer
