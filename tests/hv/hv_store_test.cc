#include "hv/hv_store.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::hv {
namespace {

using testing_util::PaperCatalog;

TEST(HvStoreTest, ExecuteHarvestsOpportunisticViews) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  HvStore store(HvConfig{}, 4 * kTiB);
  uint64_t next_id = 1;
  auto exec = store.Execute(plan->root(), /*query_index=*/3, /*now=*/100.0,
                            &next_id);
  ASSERT_TRUE(exec.ok());
  EXPECT_GT(exec->exec_time, 0);
  // 3 filtered map outputs + 4 job outputs.
  EXPECT_EQ(exec->produced_views.size(), 7u);
  EXPECT_EQ(next_id, 8u);
  for (const views::View& v : exec->produced_views) {
    EXPECT_EQ(v.created_by_query, 3);
    EXPECT_DOUBLE_EQ(v.created_at, 100.0);
    EXPECT_GT(v.size_bytes, 0);
  }
}

TEST(HvStoreTest, ExcludeSignatureSkipsFinalResult) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  HvStore store(HvConfig{}, 4 * kTiB);
  uint64_t next_id = 1;
  auto exec = store.Execute(plan->root(), 0, 0, &next_id,
                            /*exclude_signature=*/plan->signature());
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->produced_views.size(), 6u);
  for (const views::View& v : exec->produced_views) {
    EXPECT_NE(v.signature, plan->signature());
  }
}

TEST(HvStoreTest, ViewsAlreadyInCatalogAreNotReharvested) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  HvStore store(HvConfig{}, 4 * kTiB);
  uint64_t next_id = 1;
  auto first = store.Execute(plan->root(), 0, 0, &next_id);
  ASSERT_TRUE(first.ok());
  for (const views::View& v : first->produced_views) {
    ASSERT_TRUE(store.catalog().AddUnchecked(v).ok());
  }
  auto second = store.Execute(plan->root(), 1, 10, &next_id);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->produced_views.empty());
}

TEST(HvStoreTest, ExecutionTimeMatchesCostModel) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  HvStore store(HvConfig{}, 4 * kTiB);
  uint64_t next_id = 1;
  auto exec = store.Execute(plan->root(), 0, 0, &next_id);
  auto cost = store.cost_model().SubtreeCost(plan->root());
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(exec->exec_time, *cost);
}

}  // namespace
}  // namespace miso::hv
