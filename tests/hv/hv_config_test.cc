#include "hv/hv_config.h"

#include <gtest/gtest.h>

#include "common/store_kind.h"
#include "dw/dw_config.h"

namespace miso {
namespace {

TEST(HvConfigTest, ClusterRateScalesWithNodes) {
  hv::HvConfig config;
  config.num_nodes = 15;
  EXPECT_DOUBLE_EQ(config.ClusterRate(20.0), 15 * 20e6);
  config.num_nodes = 1;
  EXPECT_DOUBLE_EQ(config.ClusterRate(20.0), 20e6);
}

TEST(HvConfigTest, PaperClusterSizes) {
  // §5.1: 15-node HV cluster, 9-node DW cluster (HV 1.5x larger).
  EXPECT_EQ(hv::HvConfig{}.num_nodes, 15);
  EXPECT_EQ(dw::DwConfig{}.num_nodes, 9);
}

TEST(HvConfigTest, AsymmetryBetweenStores) {
  // The calibrated models must keep the paper's asymmetry: the DW
  // processes materialized data far faster per node than Hive.
  const hv::HvConfig hv;
  const dw::DwConfig dw;
  EXPECT_GT(dw.scan_mbps, 10 * hv.inter_read_mbps);
  EXPECT_GT(dw.op_mbps, 10 * hv.shuffle_mbps);
  // And Hive jobs carry a fixed floor the DW does not have.
  EXPECT_GT(hv.job_startup_s + hv.job_min_work_s,
            100 * dw.query_overhead_s);
}

TEST(StoreKindTest, Names) {
  EXPECT_EQ(StoreKindToString(StoreKind::kHv), "HV");
  EXPECT_EQ(StoreKindToString(StoreKind::kDw), "DW");
}

}  // namespace
}  // namespace miso
