#include "hv/mr_job.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::hv {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

TEST(MrJobTest, AnalystPlanSegmentsIntoOneJobPerBoundary) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto jobs = SegmentIntoJobs(plan->root());
  ASSERT_TRUE(jobs.ok());
  // Boundaries: join1, udf, join2, aggregate.
  ASSERT_EQ(jobs->size(), 4u);
  // Producer-before-consumer ordering; the last job's output is the root.
  EXPECT_EQ(jobs->back().output_node, plan->root());
  EXPECT_EQ(jobs->back().output_node->kind(), OpKind::kAggregate);
}

TEST(MrJobTest, FirstJoinJobReadsBothRawLogs) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto jobs = SegmentIntoJobs(plan->root());
  ASSERT_TRUE(jobs.ok());
  const MapReduceJob& join_job = (*jobs)[0];
  EXPECT_EQ(join_job.output_node->kind(), OpKind::kJoin);
  EXPECT_EQ(join_job.raw_input_bytes, 2 * TiB(1))
      << "map side scans twitter + foursquare raw logs";
  EXPECT_EQ(join_job.map_outputs.size(), 2u)
      << "both filtered pipelines materialize";
  // Shuffle moves the filtered map outputs.
  Bytes expected_shuffle = 0;
  for (const NodePtr& child : join_job.output_node->children()) {
    expected_shuffle += child->stats().bytes;
  }
  EXPECT_EQ(join_job.shuffle_bytes, expected_shuffle);
}

TEST(MrJobTest, UdfJobCarriesCpuBytes) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto jobs = SegmentIntoJobs(plan->root());
  ASSERT_TRUE(jobs.ok());
  const MapReduceJob* udf_job = nullptr;
  for (const MapReduceJob& job : *jobs) {
    if (job.output_node->kind() == OpKind::kUdf) udf_job = &job;
  }
  ASSERT_NE(udf_job, nullptr);
  const NodePtr input = udf_job->output_node->children()[0];
  EXPECT_DOUBLE_EQ(udf_job->udf_cpu_bytes,
                   static_cast<double>(input->stats().bytes) *
                       udf_job->output_node->udf().cpu_factor);
  EXPECT_EQ(udf_job->shuffle_bytes, 0) << "UDF stages do not shuffle";
  EXPECT_EQ(udf_job->intermediate_input_bytes, input->stats().bytes)
      << "reads the upstream join output from HDFS";
}

TEST(MrJobTest, TrailingPipelineBecomesMapOnlyJob) {
  // A plan whose root is a Filter over an Aggregate: the filter becomes a
  // trailing map-only job.
  plan::NodeFactory factory(&PaperCatalog());
  auto extract = factory.MakeExtract(*factory.MakeScan("landmarks"),
                                     {"region", "rating"});
  auto agg = factory.MakeAggregate(*extract, {"region"}, {{"count", "*"}});
  auto top = factory.MakeProject(*agg, {"region"});
  ASSERT_TRUE(top.ok());
  auto jobs = SegmentIntoJobs(*top);
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ((*jobs)[0].output_node->kind(), OpKind::kAggregate);
  EXPECT_EQ((*jobs)[1].output_node->kind(), OpKind::kProject);
  EXPECT_EQ((*jobs)[1].intermediate_input_bytes,
            (*jobs)[0].output_bytes);
}

TEST(MrJobTest, BareScanSegmentsToSingleNoWorkJob) {
  plan::NodeFactory factory(&PaperCatalog());
  auto scan = factory.MakeScan("landmarks");
  auto jobs = SegmentIntoJobs(*scan);
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 1u);
  EXPECT_TRUE((*jobs)[0].materialization_points.empty())
      << "reading a log is not a materialization";
}

TEST(MrJobTest, DwResidentViewScanIsRejected) {
  plan::NodeFactory factory(&PaperCatalog());
  auto extract = factory.MakeExtract(*factory.MakeScan("landmarks"),
                                     {"region", "rating"});
  views::View view = views::ViewFromNode(**extract);
  view.id = 1;
  NodePtr dw_scan = factory.MakeViewScan(view.id, view.signature,
                                         StoreKind::kDw, view.schema,
                                         view.stats, view.canonical);
  auto agg = factory.MakeAggregate(dw_scan, {"region"}, {{"count", "*"}});
  ASSERT_TRUE(agg.ok());
  auto jobs = SegmentIntoJobs(*agg);
  ASSERT_FALSE(jobs.ok());
  EXPECT_EQ(jobs.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MrJobTest, HvResidentViewScanReadsAsViewInput) {
  plan::NodeFactory factory(&PaperCatalog());
  auto extract = factory.MakeExtract(*factory.MakeScan("landmarks"),
                                     {"region", "rating"});
  views::View view = views::ViewFromNode(**extract);
  NodePtr hv_scan = factory.MakeViewScan(1, view.signature, StoreKind::kHv,
                                         view.schema, view.stats,
                                         view.canonical);
  auto agg = factory.MakeAggregate(hv_scan, {"region"}, {{"count", "*"}});
  auto jobs = SegmentIntoJobs(*agg);
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 1u);
  EXPECT_EQ((*jobs)[0].view_input_bytes, view.stats.bytes);
  EXPECT_EQ((*jobs)[0].raw_input_bytes, 0);
}

TEST(MrJobTest, MaterializationPointsIncludeMapAndJobOutputs) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto jobs = SegmentIntoJobs(plan->root());
  ASSERT_TRUE(jobs.ok());
  int filters = 0;
  int boundaries = 0;
  for (const MapReduceJob& job : *jobs) {
    for (const NodePtr& node : job.materialization_points) {
      if (node->kind() == OpKind::kFilter) ++filters;
      if (node->IsJobBoundary()) ++boundaries;
    }
  }
  EXPECT_EQ(filters, 3) << "twitter, foursquare, landmarks filtered inputs";
  EXPECT_EQ(boundaries, 4) << "join1, udf, join2, aggregate outputs";
}

TEST(MrJobTest, NullRootErrors) {
  auto jobs = SegmentIntoJobs(nullptr);
  EXPECT_FALSE(jobs.ok());
}

}  // namespace
}  // namespace miso::hv
