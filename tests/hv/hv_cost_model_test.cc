#include "hv/hv_cost_model.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::hv {
namespace {

using testing_util::PaperCatalog;

TEST(HvCostModelTest, JobCostComponents) {
  HvConfig config;
  HvCostModel model(config);

  MapReduceJob job;
  job.raw_input_bytes = GiB(100);
  const Seconds cost = model.JobCost(job);
  const Seconds expected_read =
      static_cast<double>(GiB(100)) /
      config.ClusterRate(config.raw_read_mbps);
  EXPECT_NEAR(cost,
              config.job_startup_s +
                  std::max<double>(expected_read, config.job_min_work_s),
              1e-6);
}

TEST(HvCostModelTest, SmallJobsHitTheFloor) {
  HvConfig config;
  HvCostModel model(config);
  MapReduceJob tiny;
  tiny.intermediate_input_bytes = MiB(1);
  tiny.output_bytes = MiB(1);
  EXPECT_NEAR(model.JobCost(tiny),
              config.job_startup_s + config.job_min_work_s, 1e-6)
      << "Hadoop-era jobs never finish faster than the task-wave floor";
}

TEST(HvCostModelTest, CostIsMonotoneInBytes) {
  HvConfig config;
  HvCostModel model(config);
  MapReduceJob small;
  small.raw_input_bytes = GiB(100);
  MapReduceJob big = small;
  big.raw_input_bytes = GiB(200);
  EXPECT_LT(model.JobCost(small), model.JobCost(big));

  MapReduceJob with_shuffle = small;
  with_shuffle.shuffle_bytes = GiB(500);
  EXPECT_LT(model.JobCost(small), model.JobCost(with_shuffle));
}

TEST(HvCostModelTest, UdfCpuIsCharged) {
  HvConfig config;
  HvCostModel model(config);
  MapReduceJob job;
  job.udf_cpu_bytes = static_cast<double>(TiB(1));
  const Seconds cost = model.JobCost(job);
  EXPECT_NEAR(cost,
              config.job_startup_s +
                  static_cast<double>(TiB(1)) /
                      config.ClusterRate(config.udf_cpu_mbps),
              1.0);
}

TEST(HvCostModelTest, SubtreeCostSumsJobs) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  HvCostModel model(HvConfig{});
  auto jobs = SegmentIntoJobs(plan->root());
  ASSERT_TRUE(jobs.ok());
  auto total = model.SubtreeCost(plan->root());
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, model.JobsCost(*jobs), 1e-9);
  // 4 jobs, each at least startup + floor.
  EXPECT_GE(*total, 4 * (model.config().job_startup_s +
                         model.config().job_min_work_s));
}

TEST(HvCostModelTest, FullAnalystQueryCostsKiloseconds) {
  // Calibration guard: a full 2 TB analyst query should cost on the order
  // of 10^3..10^4 seconds (Figure 3's HV-only plan is ~10^4 s).
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  HvCostModel model(HvConfig{});
  auto total = model.SubtreeCost(plan->root());
  ASSERT_TRUE(total.ok());
  EXPECT_GT(*total, 5000);
  EXPECT_LT(*total, 30000);
}

TEST(HvCostModelTest, MoreNodesMakeClusterFaster) {
  MapReduceJob job;
  job.raw_input_bytes = TiB(1);
  HvConfig small_cluster;
  small_cluster.num_nodes = 5;
  HvConfig big_cluster;
  big_cluster.num_nodes = 30;
  EXPECT_GT(HvCostModel(small_cluster).JobCost(job),
            HvCostModel(big_cluster).JobCost(job));
}

}  // namespace
}  // namespace miso::hv
