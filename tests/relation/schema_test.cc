#include "relation/schema.h"

#include <gtest/gtest.h>

namespace miso::relation {
namespace {

Schema MakeTestSchema() {
  return Schema({
      Field("user_id", DataType::kInt64, 8, 1000),
      Field("name", DataType::kString, 24, 900),
      Field("score", DataType::kDouble, 8, 50),
  });
}

TEST(SchemaTest, FindField) {
  Schema s = MakeTestSchema();
  auto f = s.FindField("name");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->type, DataType::kString);
  EXPECT_EQ(f->avg_width, 24);

  auto missing = s.FindField("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, HasField) {
  Schema s = MakeTestSchema();
  EXPECT_TRUE(s.HasField("score"));
  EXPECT_FALSE(s.HasField("Score")) << "names are case-sensitive";
}

TEST(SchemaTest, RecordWidthSumsFieldWidths) {
  EXPECT_EQ(MakeTestSchema().RecordWidth(), 8 + 24 + 8);
  EXPECT_EQ(Schema().RecordWidth(), 0);
}

TEST(SchemaTest, ProjectKeepsRequestedOrder) {
  Schema s = MakeTestSchema();
  auto p = s.Project({"score", "user_id"});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->num_fields(), 2);
  EXPECT_EQ(p->fields()[0].name, "score");
  EXPECT_EQ(p->fields()[1].name, "user_id");
}

TEST(SchemaTest, ProjectUnknownFieldErrors) {
  Schema s = MakeTestSchema();
  auto p = s.Project({"user_id", "ghost"});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatSuffixesDuplicates) {
  Schema left = MakeTestSchema();
  Schema right({
      Field("user_id", DataType::kInt64, 8, 500),
      Field("city", DataType::kString, 16, 100),
  });
  Schema merged = left.ConcatWith(right);
  ASSERT_EQ(merged.num_fields(), 5);
  EXPECT_TRUE(merged.HasField("user_id"));
  EXPECT_TRUE(merged.HasField("user_id_r"));
  EXPECT_TRUE(merged.HasField("city"));
  EXPECT_EQ(merged.RecordWidth(),
            left.RecordWidth() + right.RecordWidth());
}

TEST(SchemaTest, DataTypeNamesAndDefaultWidths) {
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeToString(DataType::kString), "string");
  EXPECT_EQ(DefaultWidth(DataType::kInt64), 8);
  EXPECT_EQ(DefaultWidth(DataType::kBool), 1);
  EXPECT_EQ(DefaultWidth(DataType::kString), 24);
}

}  // namespace
}  // namespace miso::relation
