#include "relation/catalog.h"

#include <gtest/gtest.h>

namespace miso::relation {
namespace {

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  LogDataset ds;
  ds.name = "logs";
  ds.raw_bytes = GiB(1);
  ds.num_records = 1000;
  ASSERT_TRUE(catalog.AddDataset(ds).ok());

  auto found = catalog.FindDataset("logs");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->raw_bytes, GiB(1));
  EXPECT_TRUE(catalog.HasDataset("logs"));
  EXPECT_FALSE(catalog.HasDataset("other"));
}

TEST(CatalogTest, RejectsDuplicatesAndInvalid) {
  Catalog catalog;
  LogDataset ds;
  ds.name = "logs";
  ds.raw_bytes = 10;
  ds.num_records = 1;
  ASSERT_TRUE(catalog.AddDataset(ds).ok());
  EXPECT_EQ(catalog.AddDataset(ds).code(), StatusCode::kAlreadyExists);

  LogDataset unnamed;
  EXPECT_EQ(catalog.AddDataset(unnamed).code(),
            StatusCode::kInvalidArgument);

  LogDataset negative;
  negative.name = "neg";
  negative.raw_bytes = -5;
  EXPECT_EQ(catalog.AddDataset(negative).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, PaperCatalogContents) {
  Catalog catalog = MakePaperCatalog();
  EXPECT_EQ(catalog.DatasetNames().size(), 3u);

  auto twitter = catalog.FindDataset("twitter");
  ASSERT_TRUE(twitter.ok());
  EXPECT_EQ(twitter->raw_bytes, TiB(1));
  EXPECT_TRUE(twitter->schema.HasField("user_id"));
  EXPECT_TRUE(twitter->schema.HasField("text"));
  EXPECT_GT(twitter->num_records, 100'000'000);

  auto foursquare = catalog.FindDataset("foursquare");
  ASSERT_TRUE(foursquare.ok());
  EXPECT_EQ(foursquare->raw_bytes, TiB(1));
  EXPECT_TRUE(foursquare->schema.HasField("checkin_loc"));

  auto landmarks = catalog.FindDataset("landmarks");
  ASSERT_TRUE(landmarks.ok());
  EXPECT_EQ(landmarks->raw_bytes, GiB(12));
  // The join key with foursquare must share the field name.
  EXPECT_TRUE(landmarks->schema.HasField("checkin_loc"));

  // ~2 TB of logs total (the paper's base data size).
  EXPECT_EQ(catalog.TotalRawBytes(), 2 * TiB(1) + GiB(12));
}

TEST(CatalogTest, ScaledCatalogShrinksEverything) {
  Catalog full = MakePaperCatalog();
  Catalog small = MakePaperCatalog(0.01);
  auto big_tw = full.FindDataset("twitter");
  auto small_tw = small.FindDataset("twitter");
  ASSERT_TRUE(big_tw.ok());
  ASSERT_TRUE(small_tw.ok());
  EXPECT_NEAR(static_cast<double>(small_tw->raw_bytes),
              0.01 * static_cast<double>(big_tw->raw_bytes),
              static_cast<double>(kMiB));
  EXPECT_LT(small_tw->num_records, big_tw->num_records);
}

TEST(CatalogTest, RawRecordWidth) {
  Catalog catalog = MakePaperCatalog();
  auto twitter = catalog.FindDataset("twitter");
  ASSERT_TRUE(twitter.ok());
  EXPECT_EQ(twitter->RawRecordWidth(),
            twitter->raw_bytes / twitter->num_records);
  LogDataset empty;
  EXPECT_EQ(empty.RawRecordWidth(), 0);
}

}  // namespace
}  // namespace miso::relation
