// End-to-end integration tests asserting the *shape* of the paper's
// headline results (§5): variant ordering, speedup magnitudes, utilization
// spread, and tuning-technique ordering. Absolute simulated seconds are
// calibration-dependent; these tests pin the qualitative claims.

#include <map>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/simulator.h"
#include "workload/background.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

class PaperShapesTest : public ::testing::Test {
 protected:
  static const std::vector<workload::WorkloadQuery>& Queries() {
    static const auto* workload = [] {
      auto w = workload::EvolutionaryWorkload::Generate(
          &PaperCatalog(), workload::WorkloadConfig{});
      return new workload::EvolutionaryWorkload(std::move(w).value());
    }();
    return workload->queries();
  }

  static const RunReport& Run(SystemVariant variant) {
    static auto* cache = new std::map<SystemVariant, RunReport>();
    auto it = cache->find(variant);
    if (it == cache->end()) {
      SimConfig config;
      config.variant = variant;
      MultistoreSimulator simulator(&PaperCatalog(), config);
      auto report = simulator.Run(Queries());
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      it = cache->emplace(variant, std::move(report).value()).first;
    }
    return it->second;
  }
};

TEST_F(PaperShapesTest, Figure4VariantOrdering) {
  const Seconds hv = Run(SystemVariant::kHvOnly).Tti();
  const Seconds dw = Run(SystemVariant::kDwOnly).Tti();
  const Seconds basic = Run(SystemVariant::kMsBasic).Tti();
  const Seconds op = Run(SystemVariant::kHvOp).Tti();
  const Seconds miso = Run(SystemVariant::kMsMiso).Tti();

  // Paper Figure 4: MS-MISO best; DW-ONLY worst (ETL-dominated, slightly
  // slower than HV-ONLY); MS-BASIC a modest improvement; HV-OP in between.
  EXPECT_LT(miso, op);
  EXPECT_LT(op, basic);
  EXPECT_LT(basic, hv);
  EXPECT_GT(dw, hv);

  EXPECT_GT(hv / miso, 2.5) << "MS-MISO speedup (paper: 4.3x)";
  EXPECT_GT(hv / op, 2.0) << "HV-OP speedup (paper: 2.4x)";
  EXPECT_LT(hv / op, 3.2);
  EXPECT_GT(hv / basic, 1.05) << "MS-BASIC speedup (paper: 1.2x)";
  EXPECT_LT(dw / hv, 1.2) << "DW-ONLY a few percent slower (paper: 3%)";
}

TEST_F(PaperShapesTest, Figure5aDwOnlyFlatUntilEtlCompletes) {
  const RunReport& dw = Run(SystemVariant::kDwOnly);
  const RunReport& miso = Run(SystemVariant::kMsMiso);
  // DW-ONLY: first query completes only after ETL; MS-MISO lets users
  // start immediately.
  EXPECT_GT(dw.TtiCurve().front(), dw.etl_s);
  EXPECT_LT(miso.TtiCurve().front(), 0.1 * dw.etl_s);
  // But DW-ONLY's post-ETL query execution is by far the fastest.
  Seconds dw_exec_total = 0;
  for (const QueryRecord& q : dw.queries) dw_exec_total += q.ExecTime();
  EXPECT_LT(dw_exec_total, 0.02 * dw.Tti());
}

TEST_F(PaperShapesTest, Figure5bExecTimeDistributions) {
  const std::vector<Seconds> buckets = {10, 100, 1000, 10000};
  const std::vector<double> dw =
      Run(SystemVariant::kDwOnly).ExecTimeCdf(buckets);
  const std::vector<double> hv =
      Run(SystemVariant::kHvOnly).ExecTimeCdf(buckets);
  const std::vector<double> miso =
      Run(SystemVariant::kMsMiso).ExecTimeCdf(buckets);
  const std::vector<double> op =
      Run(SystemVariant::kHvOp).ExecTimeCdf(buckets);

  // DW-ONLY is the top curve; HV-ONLY the bottom (paper Figure 5b).
  for (size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_GE(dw[i], miso[i]);
    EXPECT_GE(miso[i], hv[i]);
  }
  // "The systems near the top ... complete at least 30% of their queries
  // in less than 100 seconds"; HV-bound systems have none under 100 s.
  EXPECT_GE(miso[1], 0.25);
  EXPECT_DOUBLE_EQ(hv[1], 0.0);
  EXPECT_DOUBLE_EQ(op[1], 0.0);
  EXPECT_GE(dw[1], 0.9);
  // No HV-ONLY query finishes within 1000 s.
  EXPECT_LE(hv[2], 0.1);
}

TEST_F(PaperShapesTest, Figure6UtilizationSpread) {
  const RunReport& miso = Run(SystemVariant::kMsMiso);
  const RunReport& basic = Run(SystemVariant::kMsBasic);
  // MS-MISO runs several queries mostly in DW; MS-BASIC almost none.
  EXPECT_GE(miso.DwMajorityQueries(), 5);
  EXPECT_LE(basic.DwMajorityQueries(), 2);
  // "For every second spent in DW, MS-BASIC queries spend ~55 in HV;
  // MS-MISO far fewer" — assert the gap, not the exact constants. (Our
  // MISO side includes the HDFS-export job of on-demand splits in HV
  // time, so the measured ratio is higher than the paper's 1.6.)
  EXPECT_GT(basic.HvPerDwSecond(16), 3 * miso.HvPerDwSecond(16));
}

TEST_F(PaperShapesTest, Figure7TuningTechniqueOrdering) {
  // At the default budgets, MISO must beat LRU clearly and track ORA.
  const Seconds miso = Run(SystemVariant::kMsMiso).Tti();
  const Seconds lru = Run(SystemVariant::kMsLru).Tti();
  const Seconds basic = Run(SystemVariant::kMsBasic).Tti();
  const Seconds ora = Run(SystemVariant::kMsOra).Tti();
  EXPECT_LT(miso, 0.9 * lru);
  EXPECT_LT(lru, basic);
  EXPECT_LT(std::abs(miso - ora) / ora, 0.25)
      << "MISO within a quarter of the oracle";
}

TEST_F(PaperShapesTest, Section32TwoQueryExperiment) {
  // q1 = A1v2, q2 = A1v3 (consecutive versions of one analyst): MS-MISO
  // with a reorganization between them runs the pair about 2x faster than
  // HV-ONLY or MS-BASIC (paper §3.2 chart).
  std::vector<workload::WorkloadQuery> pair;
  for (const workload::WorkloadQuery& q : Queries()) {
    if (q.analyst == 0 && (q.version == 1 || q.version == 2)) {
      pair.push_back(q);
    }
  }
  ASSERT_EQ(pair.size(), 2u);

  auto run_pair = [&](SystemVariant v) {
    SimConfig config;
    config.variant = v;
    config.reorg_every = 1;  // reorganize between q1 and q2
    MultistoreSimulator simulator(&PaperCatalog(), config);
    auto report = simulator.Run(pair);
    EXPECT_TRUE(report.ok());
    return report->Tti();
  };
  const Seconds hv = run_pair(SystemVariant::kHvOnly);
  const Seconds basic = run_pair(SystemVariant::kMsBasic);
  const Seconds miso = run_pair(SystemVariant::kMsMiso);
  EXPECT_LT(miso, 0.7 * hv);
  EXPECT_LT(miso, 0.7 * basic);
  EXPECT_LT(basic, 1.02 * hv) << "MS-BASIC only marginally better";
}

TEST_F(PaperShapesTest, Table2InterferenceMatrix) {
  struct Case {
    dw::BackgroundWorkload background;
    const char* label;
  };
  const Case cases[] = {
      {workload::SpareIo40(), "IO 40%"},
      {workload::SpareIo20(), "IO 20%"},
      {workload::SpareCpu40(), "CPU 40%"},
      {workload::SpareCpu20(), "CPU 20%"},
  };
  const Seconds idle_tti = Run(SystemVariant::kMsMiso).Tti();
  for (const Case& c : cases) {
    SimConfig config;
    config.variant = SystemVariant::kMsMiso;
    config.background = c.background;
    MultistoreSimulator simulator(&PaperCatalog(), config);
    auto report = simulator.Run(Queries());
    ASSERT_TRUE(report.ok()) << c.label;
    // Table 2: DW reporting queries slow < ~2%; the multistore workload
    // slows <= ~7%.
    EXPECT_GT(report->background_slowdown, 0.0) << c.label;
    EXPECT_LT(report->background_slowdown, 0.05) << c.label;
    const double ms_slowdown = report->Tti() / idle_tti - 1.0;
    EXPECT_GT(ms_slowdown, 0.0) << c.label;
    EXPECT_LT(ms_slowdown, 0.12) << c.label;
  }
}

}  // namespace
}  // namespace miso::sim
