// End-to-end invariants of the multistore design throughout a full run
// (paper §4.1): at every reorganization, both stores respect their view
// storage budgets, the per-phase transfer budget bounds the movement, and
// Vh ∩ Vd = ∅.

#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

class DesignInvariantsTest
    : public ::testing::TestWithParam<std::tuple<SystemVariant, double>> {};

TEST_P(DesignInvariantsTest, BudgetsAndDisjointnessHoldAtEveryReorg) {
  const auto [variant, budget_fraction] = GetParam();

  auto workload = workload::EvolutionaryWorkload::Generate(
      &PaperCatalog(), workload::WorkloadConfig{});
  ASSERT_TRUE(workload.ok());

  SimConfig config;
  config.variant = variant;
  config.hv_storage_budget =
      static_cast<Bytes>(budget_fraction * 2 * kTiB);
  config.dw_storage_budget =
      static_cast<Bytes>(budget_fraction * 200 * kGiB);

  int observed = 0;
  config.reorg_observer = [&](const SimConfig::ReorgSnapshot& snapshot) {
    ++observed;
    // Post-reorg, both stores fit their budgets. (Between reorgs HV may
    // exceed its budget with fresh opportunistic views, by design.)
    EXPECT_LE(snapshot.hv_used, config.hv_storage_budget)
        << "reorg " << snapshot.reorg_index;
    EXPECT_LE(snapshot.dw_used, config.dw_storage_budget)
        << "reorg " << snapshot.reorg_index;
    // Movement bounded by the per-phase transfer budget.
    EXPECT_LE(snapshot.moved_to_dw + snapshot.moved_to_hv,
              config.transfer_budget)
        << "reorg " << snapshot.reorg_index;
    // The two designs are disjoint.
    std::set<views::ViewId> hv_ids(snapshot.hv_ids.begin(),
                                   snapshot.hv_ids.end());
    for (views::ViewId id : snapshot.dw_ids) {
      EXPECT_EQ(hv_ids.count(id), 0u)
          << "view " << id << " present in both stores";
    }
  };

  MultistoreSimulator simulator(&PaperCatalog(), config);
  auto report = simulator.Run(workload->queries());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(observed, report->reorg_count);
  EXPECT_GT(observed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndBudgets, DesignInvariantsTest,
    ::testing::Combine(::testing::Values(SystemVariant::kMsMiso,
                                         SystemVariant::kMsLru,
                                         SystemVariant::kMsOra),
                       ::testing::Values(0.125, 0.5, 2.0)));

}  // namespace
}  // namespace miso::sim
