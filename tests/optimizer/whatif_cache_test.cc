#include "optimizer/whatif_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "../test_util.h"
#include "dw/dw_cost_model.h"
#include "hv/hv_cost_model.h"
#include "optimizer/multistore_optimizer.h"
#include "plan/node_factory.h"
#include "transfer/transfer_model.h"
#include "tuner/benefit.h"
#include "views/view.h"

namespace miso::optimizer {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;
using views::View;

class WhatIfCacheTest : public ::testing::Test {
 protected:
  WhatIfCacheTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_) {}

  plan::Plan Query(const std::string& name, const std::string& topic) {
    return *testing_util::MakeAnalystPlan(&PaperCatalog(), name, topic, 0.1,
                                          /*udf_dw_compatible=*/true);
  }

  static View ViewOf(const plan::Plan& p, OpKind kind, views::ViewId id) {
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == kind) {
        View v = views::ViewFromNode(*node);
        v.id = id;
        return v;
      }
    }
    return View{};
  }

  static WhatIfKey Key(uint64_t q, uint64_t dw, uint64_t hv) {
    WhatIfKey key;
    key.query_signature = q;
    key.dw_fingerprint = dw;
    key.hv_fingerprint = hv;
    return key;
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  MultistoreOptimizer optimizer_;
};

TEST_F(WhatIfCacheTest, FingerprintIgnoresIdsAndIrrelevantViews) {
  plan::Plan q = Query("q", "c%");
  plan::Plan other = Query("other", "zzz%");
  const QueryShape shape = QueryShape::Of(q);

  View relevant = ViewOf(q, OpKind::kUdf, 1);
  View irrelevant = ViewOf(other, OpKind::kUdf, 2);
  ASSERT_TRUE(shape.Relevant(relevant));
  ASSERT_FALSE(shape.Relevant(irrelevant));

  const uint64_t base = WhatIfCache::Fingerprint(shape, {relevant});

  // Ids are materialization accidents, never cost inputs: a re-harvested
  // copy of the same view must land on the same fingerprint.
  View renumbered = relevant;
  renumbered.id = 999;
  EXPECT_EQ(WhatIfCache::Fingerprint(shape, {renumbered}), base);

  // Views the rewriter can never splice into q don't widen the key.
  EXPECT_EQ(WhatIfCache::Fingerprint(shape, {relevant, irrelevant}), base);
  EXPECT_EQ(WhatIfCache::Fingerprint(shape, {irrelevant}),
            WhatIfCache::EmptyFingerprint());

  // Anything the cost model can see (here: materialized size) must change
  // the fingerprint.
  View resized = relevant;
  resized.size_bytes += 1;
  EXPECT_NE(WhatIfCache::Fingerprint(shape, {resized}), base);

  // Order independence: the fingerprint hashes an unordered set.
  View joined = ViewOf(q, OpKind::kJoin, 3);
  ASSERT_TRUE(shape.Relevant(joined));
  EXPECT_EQ(WhatIfCache::Fingerprint(shape, {relevant, joined}),
            WhatIfCache::Fingerprint(shape, {joined, relevant}));
}

TEST_F(WhatIfCacheTest, LookupReturnsBitIdenticalCost) {
  WhatIfCache cache;
  cache.SetEpoch(1);
  // A cost with a non-trivial mantissa: the cache must hand back the exact
  // stored double, not a reformatted approximation.
  const Seconds cost = 12345.6789012345678;
  cache.Insert(Key(1, 2, 3), cost);
  auto hit = cache.Lookup(Key(1, 2, 3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::memcmp(&*hit, &cost, sizeof(Seconds)), 0);

  const WhatIfCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, WhatIfCache::kEntryBytes);
}

TEST_F(WhatIfCacheTest, EpochChangeInvalidatesWholesale) {
  const hv::HvConfig hv;
  const dw::DwConfig dw;
  const transfer::TransferConfig transfer;

  WhatIfCache cache;
  cache.SetEpoch(WhatIfCache::EpochOf(hv, dw, transfer));
  cache.Insert(Key(1, 2, 3), 10.0);
  ASSERT_TRUE(cache.Lookup(Key(1, 2, 3)).has_value());

  // Any cost-model knob change yields a different epoch...
  dw::DwConfig faster_dw = dw;
  faster_dw.scan_mbps *= 2;
  const uint64_t new_epoch = WhatIfCache::EpochOf(hv, faster_dw, transfer);
  EXPECT_NE(new_epoch, cache.epoch());

  // ...and entries stamped under the old epoch stop answering.
  cache.SetEpoch(new_epoch);
  EXPECT_FALSE(cache.Lookup(Key(1, 2, 3)).has_value());
  EXPECT_EQ(cache.GetStats().entries, 0) << "stale entry dropped on lookup";

  // Restoring the exact same config restores the exact same epoch (but the
  // entry is already gone — invalidation is not undoable).
  EXPECT_EQ(WhatIfCache::EpochOf(hv, dw, transfer),
            WhatIfCache::EpochOf(hv, dw, transfer));
}

TEST_F(WhatIfCacheTest, LruEvictsAtByteBound) {
  WhatIfCache cache(/*max_bytes=*/2 * WhatIfCache::kEntryBytes);
  cache.SetEpoch(1);
  cache.Insert(Key(1, 0, 0), 1.0);
  cache.Insert(Key(2, 0, 0), 2.0);
  EXPECT_EQ(cache.GetStats().evictions, 0);

  // Touch key 1 so key 2 becomes the LRU tail.
  ASSERT_TRUE(cache.Lookup(Key(1, 0, 0)).has_value());

  cache.Insert(Key(3, 0, 0), 3.0);
  const WhatIfCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_LE(stats.bytes, cache.max_bytes());
  EXPECT_TRUE(cache.Lookup(Key(1, 0, 0)).has_value()) << "recently touched";
  EXPECT_TRUE(cache.Lookup(Key(3, 0, 0)).has_value()) << "newest";
  EXPECT_FALSE(cache.Lookup(Key(2, 0, 0)).has_value()) << "LRU tail evicted";

  // Overwriting an existing key is an update, not an insert + eviction.
  cache.Insert(Key(3, 0, 0), 30.0);
  EXPECT_EQ(cache.GetStats().evictions, 1);
  EXPECT_EQ(*cache.Lookup(Key(3, 0, 0)), 30.0);
}

TEST_F(WhatIfCacheTest, WarmProbeIsByteIdenticalToColdProbe) {
  plan::Plan q1 = Query("q1", "c%");
  plan::Plan q2 = Query("q2", "e%");
  const std::vector<plan::Plan> window = {q1, q2, q1};
  const std::vector<View> set = {ViewOf(q1, OpKind::kUdf, 1),
                                 ViewOf(q2, OpKind::kJoin, 2)};

  // Reference: no cache anywhere (the legacy probe path).
  tuner::BenefitAnalyzer uncached(&optimizer_, 3, 0.6);
  ASSERT_TRUE(uncached.SetWindow(window).ok());
  auto reference = uncached.PerQueryBenefit(set, tuner::Placement::kBothStores);
  ASSERT_TRUE(reference.ok());

  WhatIfCache cache;
  cache.SetEpoch(WhatIfCache::EpochOf(hv::HvConfig{}, dw::DwConfig{},
                                      transfer::TransferConfig{}));

  // Cold pass fills the cache; a fresh analyzer sharing the cache (its
  // private memo empty, as after a reorg) must answer purely from cache
  // hits with bit-identical benefits.
  tuner::BenefitAnalyzer cold(&optimizer_, 3, 0.6, &cache);
  ASSERT_TRUE(cold.SetWindow(window).ok());
  auto cold_benefits = cold.PerQueryBenefit(set, tuner::Placement::kBothStores);
  ASSERT_TRUE(cold_benefits.ok());
  const WhatIfCache::Stats after_cold = cache.GetStats();
  EXPECT_GT(after_cold.misses, 0);

  tuner::BenefitAnalyzer warm(&optimizer_, 3, 0.6, &cache);
  ASSERT_TRUE(warm.SetWindow(window).ok());
  auto warm_benefits = warm.PerQueryBenefit(set, tuner::Placement::kBothStores);
  ASSERT_TRUE(warm_benefits.ok());
  const WhatIfCache::Stats warm_stats = cache.GetStats();
  EXPECT_GT(warm_stats.hits, after_cold.hits);
  EXPECT_EQ(warm_stats.misses, after_cold.misses)
      << "warm pass must not reach the optimizer";

  ASSERT_EQ(reference->size(), window.size());
  ASSERT_EQ(cold_benefits->size(), window.size());
  ASSERT_EQ(warm_benefits->size(), window.size());
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(std::memcmp(&(*reference)[i], &(*cold_benefits)[i],
                          sizeof(double)),
              0)
        << "query " << i;
    EXPECT_EQ(std::memcmp(&(*reference)[i], &(*warm_benefits)[i],
                          sizeof(double)),
              0)
        << "query " << i;
  }
}

}  // namespace
}  // namespace miso::optimizer
