// Property sweeps of the multistore optimizer over the entire paper
// workload: every query, with and without a populated design, must obey
// the structural cost invariants.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "hv/hv_store.h"
#include "optimizer/multistore_optimizer.h"
#include "workload/evolutionary.h"

namespace miso::optimizer {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

/// Fixture: the 32 workload plans plus catalogs populated from the first
/// eight queries' opportunistic views.
class OptimizerPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  struct Shared {
    Shared()
        : factory(&PaperCatalog()),
          hv_model(hv::HvConfig{}),
          dw_model(dw::DwConfig{}),
          transfer_model(transfer::TransferConfig{}),
          optimizer(&factory, &hv_model, &dw_model, &transfer_model),
          hv_views(100 * kTiB),
          dw_views(400 * kGiB) {
      auto w = workload::EvolutionaryWorkload::Generate(
          &PaperCatalog(), workload::WorkloadConfig{});
      queries = w->Plans();
      hv::HvStore store(hv::HvConfig{}, 100 * kTiB);
      uint64_t next_id = 1;
      for (int i = 0; i < 8; ++i) {
        auto exec = store.Execute(queries[static_cast<size_t>(i)].root(), i,
                                  0, &next_id,
                                  queries[static_cast<size_t>(i)].signature());
        for (views::View& v : exec->produced_views) {
          if (v.size_bytes < 2 * kGiB && dw_views.used_bytes() < 50 * kGiB) {
            dw_views.AddUnchecked(std::move(v));
          } else {
            hv_views.AddUnchecked(std::move(v));
          }
        }
      }
    }

    plan::NodeFactory factory;
    hv::HvCostModel hv_model;
    dw::DwCostModel dw_model;
    transfer::TransferModel transfer_model;
    MultistoreOptimizer optimizer;
    views::ViewCatalog hv_views;
    views::ViewCatalog dw_views;
    std::vector<plan::Plan> queries;
  };

  static Shared& shared() {
    static auto* s = new Shared();
    return *s;
  }
};

TEST_P(OptimizerPropertyTest, BestPlanInvariants) {
  Shared& s = shared();
  const plan::Plan& q = s.queries[static_cast<size_t>(GetParam())];

  auto best = s.optimizer.Optimize(q, s.dw_views, s.hv_views);
  ASSERT_TRUE(best.ok()) << q.query_name();

  // Cost components are non-negative and consistent.
  EXPECT_GE(best->cost.hv_exec_s, 0);
  EXPECT_GE(best->cost.dump_s, 0);
  EXPECT_GE(best->cost.transfer_load_s, 0);
  EXPECT_GE(best->cost.dw_exec_s, 0);
  EXPECT_GT(best->cost.Total(), 0);

  // Never worse than the no-views HV-only execution.
  views::ViewCatalog empty(0);
  auto hv_only = s.optimizer.OptimizeHvOnly(q, empty, false);
  ASSERT_TRUE(hv_only.ok());
  EXPECT_LE(best->cost.Total(), hv_only->cost.Total() + 1e-6)
      << q.query_name();

  // Never worse than ignoring the design entirely.
  auto no_views = s.optimizer.Optimize(q, empty, empty);
  ASSERT_TRUE(no_views.ok());
  EXPECT_LE(best->cost.Total(), no_views->cost.Total() + 1e-6);

  // Transfer accounting matches the cut.
  Bytes cut_bytes = 0;
  for (const NodePtr& cut : best->cut_inputs) {
    cut_bytes += cut->stats().bytes;
  }
  EXPECT_EQ(best->transferred_bytes, cut_bytes);
  if (best->HvOnly()) {
    EXPECT_EQ(best->cost.dw_exec_s, 0);
    EXPECT_EQ(best->cost.dump_s, 0);
  }
  if (best->transferred_bytes == 0) {
    EXPECT_DOUBLE_EQ(best->cost.dump_s, 0);
    EXPECT_DOUBLE_EQ(best->cost.transfer_load_s, 0);
  }

  // DW-side nodes are all DW-executable; no DW view ends up on the HV
  // side of the executed plan.
  std::unordered_set<const plan::OperatorNode*> dw_side = best->DwSideSet();
  for (const NodePtr& node : best->executed.PostOrder()) {
    if (dw_side.count(node.get()) > 0) {
      EXPECT_TRUE(node->dw_executable());
    } else if (node->kind() == OpKind::kViewScan) {
      EXPECT_EQ(node->view_scan().store, StoreKind::kHv);
    }
  }

  // The rewrite preserved semantic identity.
  EXPECT_EQ(best->executed.signature(), q.signature());
}

TEST_P(OptimizerPropertyTest, MonotoneInDesign) {
  // Adding views can only help: cost with the design <= cost without.
  Shared& s = shared();
  const plan::Plan& q = s.queries[static_cast<size_t>(GetParam())];
  views::ViewCatalog empty(0);
  auto with = s.optimizer.WhatIfCost(q, s.dw_views, s.hv_views);
  auto hv_only_views = s.optimizer.WhatIfCost(q, empty, s.hv_views);
  auto without = s.optimizer.WhatIfCost(q, empty, empty);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(hv_only_views.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LE(*with, *hv_only_views + 1e-6);
  EXPECT_LE(*hv_only_views, *without + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadQueries, OptimizerPropertyTest,
                         ::testing::Range(0, 32));

}  // namespace
}  // namespace miso::optimizer
