#include "optimizer/multistore_plan.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::optimizer {
namespace {

using testing_util::PaperCatalog;

TEST(CostBreakdownTest, TotalSumsComponents) {
  CostBreakdown cost;
  cost.hv_exec_s = 10;
  cost.dump_s = 2;
  cost.transfer_load_s = 3;
  cost.dw_exec_s = 1;
  EXPECT_DOUBLE_EQ(cost.Total(), 16);
  EXPECT_DOUBLE_EQ(CostBreakdown{}.Total(), 0);
}

TEST(MultistorePlanTest, HvOnlyAndFullyDwFlags) {
  auto q = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                         false);
  MultistorePlan hv_only;
  hv_only.executed = *q;
  EXPECT_TRUE(hv_only.HvOnly());
  EXPECT_FALSE(hv_only.FullyDw());
  EXPECT_DOUBLE_EQ(hv_only.DwOperatorFraction(), 0.0);

  MultistorePlan fully_dw;
  fully_dw.executed = *q;
  fully_dw.dw_side = q->PostOrder();
  EXPECT_FALSE(fully_dw.HvOnly());
  EXPECT_TRUE(fully_dw.FullyDw());
  EXPECT_DOUBLE_EQ(fully_dw.DwOperatorFraction(), 1.0);
  EXPECT_EQ(fully_dw.DwSideSet().size(),
            static_cast<size_t>(q->NumOperators()));
}

TEST(MultistorePlanTest, PartialSplitFraction) {
  auto q = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                         false);
  MultistorePlan partial;
  partial.executed = *q;
  partial.dw_side = {q->root()};
  partial.cut_inputs = q->root()->children();
  EXPECT_FALSE(partial.HvOnly());
  EXPECT_FALSE(partial.FullyDw());
  EXPECT_NEAR(partial.DwOperatorFraction(), 1.0 / q->NumOperators(), 1e-12);
}

TEST(MultistorePlanTest, EmptyPlanFractionIsZero) {
  MultistorePlan empty;
  EXPECT_DOUBLE_EQ(empty.DwOperatorFraction(), 0.0);
}

}  // namespace
}  // namespace miso::optimizer
