#include "optimizer/dot.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "optimizer/multistore_optimizer.h"

namespace miso::optimizer {
namespace {

using testing_util::PaperCatalog;

TEST(DotTest, PlanToDotIsWellFormed) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q1", "c%",
                                            0.1, false);
  const std::string dot = PlanToDot(*plan);
  EXPECT_EQ(dot.rfind("digraph \"q1\" {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  // One node statement per operator, one edge per parent-child pair.
  int nodes = 0;
  int edges = 0;
  for (size_t pos = 0; (pos = dot.find("[label=", pos)) != std::string::npos;
       ++pos) {
    ++nodes;
  }
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(nodes, plan->NumOperators());
  EXPECT_EQ(edges, plan->NumOperators() - 1) << "a tree has n-1 edges";
}

TEST(DotTest, MultistorePlanHighlightsCutAndDwSide) {
  plan::NodeFactory factory(&PaperCatalog());
  hv::HvCostModel hv_model{hv::HvConfig{}};
  dw::DwCostModel dw_model{dw::DwConfig{}};
  transfer::TransferModel transfer_model{transfer::TransferConfig{}};
  MultistoreOptimizer optimizer(&factory, &hv_model, &dw_model,
                                &transfer_model);
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            true);
  views::ViewCatalog empty(0);
  auto ms = optimizer.Optimize(*plan, empty, empty);
  ASSERT_TRUE(ms.ok());
  const std::string dot = MultistorePlanToDot(*ms);
  if (!ms->HvOnly()) {
    EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
    EXPECT_NE(dot.find("migrate"), std::string::npos);
  }
  EXPECT_NE(dot.find("total "), std::string::npos);
}

TEST(DotTest, LabelsAreEscaped) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q\"x", "c%",
                                            0.1, false);
  const std::string dot = PlanToDot(*plan);
  EXPECT_NE(dot.find("digraph \"q\\\"x\""), std::string::npos);
}

}  // namespace
}  // namespace miso::optimizer
