#include "optimizer/multistore_optimizer.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "hv/mr_job.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::optimizer {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;
using views::View;
using views::ViewCatalog;
using views::ViewFromNode;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_) {}

  static NodePtr FindNode(const plan::Plan& p, OpKind kind) {
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == kind) return node;
    }
    return nullptr;
  }

  View Harvest(const NodePtr& node, views::ViewId id) {
    View v = ViewFromNode(*node);
    v.id = id;
    return v;
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  MultistoreOptimizer optimizer_;
  ViewCatalog empty_{0};
};

TEST_F(OptimizerTest, EmptyDesignPicksCheapestSplit) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto best = optimizer_.Optimize(*plan, empty_, empty_);
  ASSERT_TRUE(best.ok());
  // The best plan can never be worse than HV-only.
  auto hv_only = optimizer_.OptimizeHvOnly(*plan, empty_, false);
  ASSERT_TRUE(hv_only.ok());
  EXPECT_LE(best->cost.Total(), hv_only->cost.Total());
}

TEST_F(OptimizerTest, HvOnlyPlanHasNoDwComponents) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto ms = optimizer_.OptimizeHvOnly(*plan, empty_, false);
  ASSERT_TRUE(ms.ok());
  EXPECT_TRUE(ms->HvOnly());
  EXPECT_EQ(ms->cost.dw_exec_s, 0);
  EXPECT_EQ(ms->cost.dump_s, 0);
  EXPECT_EQ(ms->transferred_bytes, 0);
  EXPECT_GT(ms->cost.hv_exec_s, 0);
}

TEST_F(OptimizerTest, EnumerateAllPlansMatchesFigure3Shape) {
  // DW-compatible UDFs so early (pre-join) splits exist, as in Figure 3.
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            true);
  auto plans = optimizer_.EnumerateAllPlans(*plan);
  ASSERT_TRUE(plans.ok());
  ASSERT_GT(plans->size(), 3u);

  Seconds best = 1e18;
  Seconds worst = 0;
  Seconds hv_only = 0;
  for (const MultistorePlan& p : *plans) {
    best = std::min(best, p.cost.Total());
    worst = std::max(worst, p.cost.Total());
    if (p.HvOnly()) hv_only = p.cost.Total();
  }
  ASSERT_GT(hv_only, 0);
  // Figure 3: the best split is modestly better than HV-only; the worst
  // (earliest) split is far more expensive.
  EXPECT_LE(best, hv_only);
  EXPECT_GE(best, 0.7 * hv_only);
  EXPECT_GT(worst, 1.2 * hv_only);
}

TEST_F(OptimizerTest, DwViewEnablesFullyDwPlan) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            /*udf_dw_compatible=*/true);
  // Materialize the second join's output into DW; only udf2/agg remain...
  // here: materialize the UDF output (everything below the landmarks join).
  NodePtr udf = FindNode(*plan, OpKind::kUdf);
  NodePtr lm_filter;
  for (const NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kFilter &&
        node->output_schema().HasField("region")) {
      lm_filter = node;
    }
  }
  ASSERT_NE(udf, nullptr);
  ASSERT_NE(lm_filter, nullptr);

  ViewCatalog dw(kTiB);
  ASSERT_TRUE(dw.Add(Harvest(udf, 1)).ok());
  ASSERT_TRUE(dw.Add(Harvest(lm_filter, 2)).ok());

  auto best = optimizer_.Optimize(*plan, dw, empty_);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->FullyDw())
      << "all leaves answered from DW views, suffix all DW-executable";
  EXPECT_EQ(best->cost.hv_exec_s, 0);
  EXPECT_LT(best->cost.Total(), 100)
      << "a fully-DW repeat runs in seconds, not kiloseconds";
}

TEST_F(OptimizerTest, DwViewBelowHvOnlyUdfFallsBack) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            /*udf_dw_compatible=*/false);
  // The twitter-side filtered view in DW sits below the HV-only UDF: the
  // DW rewrite admits no feasible split, so the optimizer must fall back
  // (and never error).
  NodePtr tw_filter;
  for (const NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kFilter &&
        node->output_schema().HasField("topic")) {
      tw_filter = node;
    }
  }
  ASSERT_NE(tw_filter, nullptr);
  ViewCatalog dw(kTiB);
  ASSERT_TRUE(dw.Add(Harvest(tw_filter, 1)).ok());

  auto best = optimizer_.Optimize(*plan, dw, empty_);
  ASSERT_TRUE(best.ok());
  // The chosen plan cannot read the DW view from HV; it must not contain
  // a DW-resident ViewScan on the HV side.
  for (const NodePtr& node : best->executed.PostOrder()) {
    if (node->kind() == OpKind::kViewScan) {
      EXPECT_EQ(node->view_scan().store, StoreKind::kDw);
    }
  }
}

TEST_F(OptimizerTest, HvViewsReduceHvCost) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  NodePtr udf = FindNode(*plan, OpKind::kUdf);
  ViewCatalog hv(kTiB);
  ASSERT_TRUE(hv.Add(Harvest(udf, 1)).ok());

  auto with_views = optimizer_.OptimizeHvOnly(*plan, hv, /*use_views=*/true);
  auto without = optimizer_.OptimizeHvOnly(*plan, hv, /*use_views=*/false);
  ASSERT_TRUE(with_views.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(with_views->cost.Total(), 0.5 * without->cost.Total());
}

TEST_F(OptimizerTest, WhatIfCostMatchesOptimize) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto best = optimizer_.Optimize(*plan, empty_, empty_);
  auto what_if = optimizer_.WhatIfCost(*plan, empty_, empty_);
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(what_if.ok());
  EXPECT_DOUBLE_EQ(*what_if, best->cost.Total());
}

TEST_F(OptimizerTest, TransferredBytesMatchCutInputs) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto plans = optimizer_.EnumerateAllPlans(*plan);
  ASSERT_TRUE(plans.ok());
  for (const MultistorePlan& p : *plans) {
    Bytes expected = 0;
    for (const NodePtr& cut : p.cut_inputs) expected += cut->stats().bytes;
    EXPECT_EQ(p.transferred_bytes, expected);
    if (p.HvOnly()) {
      EXPECT_EQ(p.transferred_bytes, 0);
    }
  }
}

TEST_F(OptimizerTest, DwOperatorFractionConsistent) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            true);
  auto plans = optimizer_.EnumerateAllPlans(*plan);
  ASSERT_TRUE(plans.ok());
  for (const MultistorePlan& p : *plans) {
    const double frac = p.DwOperatorFraction();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    if (p.HvOnly()) {
      EXPECT_DOUBLE_EQ(frac, 0.0);
    }
  }
}

}  // namespace
}  // namespace miso::optimizer
