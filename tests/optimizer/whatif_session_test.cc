// WhatIfSession exactness: the memoized what-if path (4-arg WhatIfCost)
// must return bit-identical totals to the plain path for every catalog
// shape the tuner probes with — same catalog in both stores, single-store,
// empty, and two genuinely different catalogs — on both the miss (first
// probe) and hit (repeat probe) sides of both memo levels. The session is
// an optimization layer only; see DESIGN.md §15 for the exactness
// argument and docs/PERFORMANCE.md for why it exists.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "dw/dw_cost_model.h"
#include "hv/hv_cost_model.h"
#include "hv/hv_store.h"
#include "optimizer/multistore_optimizer.h"
#include "plan/node_factory.h"
#include "transfer/transfer_model.h"
#include "verify/verify_gate.h"
#include "views/view_catalog.h"

namespace miso::optimizer {
namespace {

using testing_util::PaperCatalog;
using views::View;
using views::ViewCatalog;

class WhatIfSessionTest : public ::testing::Test {
 protected:
  WhatIfSessionTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_),
        empty_(kTiB) {
    // Harvest realistic opportunistic views from a few executed queries
    // (the same way the tuner's candidate pool is built).
    const char* topics[] = {"c%", "d%", "m%"};
    uint64_t next_id = 1;
    for (int q = 0; q < 3; ++q) {
      auto plan = *testing_util::MakeAnalystPlan(
          &PaperCatalog(), "s" + std::to_string(q), topics[q], 0.1,
          /*dw_udfs=*/true);
      hv::HvStore store(hv::HvConfig{}, kTiB * 100);
      auto exec = store.Execute(plan.root(), q, 0, &next_id,
                                plan.signature());
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      for (View& v : exec->produced_views) views_.push_back(std::move(v));
      queries_.push_back(std::move(plan));
    }
  }

  ViewCatalog CatalogOf(const std::vector<View>& views) const {
    ViewCatalog catalog(kTiB * 100);
    for (const View& v : views) EXPECT_TRUE(catalog.AddUnchecked(v).ok());
    return catalog;
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  MultistoreOptimizer optimizer_;
  ViewCatalog empty_;
  std::vector<plan::Plan> queries_;
  std::vector<View> views_;
};

TEST_F(WhatIfSessionTest, SessionTotalsMatchThePlainPathExactly) {
  // Verification off: the session path only runs when probes skip the
  // per-plan verifier (ctest pins MISO_VERIFY=1, which would bypass it).
  verify::ScopedVerification off(false);
  ASSERT_GE(views_.size(), 2u);
  const ViewCatalog hypothetical = CatalogOf(views_);
  const ViewCatalog first = CatalogOf({views_[0]});
  const ViewCatalog second = CatalogOf({views_[1]});

  WhatIfSession session;
  for (const plan::Plan& q : queries_) {
    struct Shape {
      const char* name;
      const ViewCatalog* dw;
      const ViewCatalog* hv;
    };
    // Every catalog shape the benefit analyzer produces, plus genuinely
    // different catalogs per store (exercises the combined rewrite).
    const Shape shapes[] = {
        {"both stores, same catalog", &hypothetical, &hypothetical},
        {"dw only", &hypothetical, &empty_},
        {"hv only", &empty_, &hypothetical},
        {"empty design", &empty_, &empty_},
        {"different catalogs", &first, &second},
    };
    for (const Shape& shape : shapes) {
      SCOPED_TRACE(std::string(q.query_name()) + ": " + shape.name);
      auto plain = optimizer_.WhatIfCost(q, *shape.dw, *shape.hv);
      ASSERT_TRUE(plain.ok()) << plain.status().ToString();
      // Miss side: first probe of this shape through the session.
      auto miss = optimizer_.WhatIfCost(q, *shape.dw, *shape.hv, &session);
      ASSERT_TRUE(miss.ok()) << miss.status().ToString();
      EXPECT_EQ(*plain, *miss);
      // Hit side: repeat probe answered from the probe-level memo.
      auto hit = optimizer_.WhatIfCost(q, *shape.dw, *shape.hv, &session);
      ASSERT_TRUE(hit.ok()) << hit.status().ToString();
      EXPECT_EQ(*plain, *hit);
    }
  }
}

TEST_F(WhatIfSessionTest, ProbeMemoKeysOnContentNotObjectIdentity) {
  verify::ScopedVerification off(false);
  // Two catalogs built independently from the same views (fresh objects,
  // re-numbered ids) must share memo entries — and, more importantly,
  // share answers: cost identity is content identity.
  std::vector<View> renumbered = views_;
  for (size_t i = 0; i < renumbered.size(); ++i) {
    renumbered[i].id = 1000 + i;
  }
  const ViewCatalog a = CatalogOf(views_);
  const ViewCatalog b = CatalogOf(renumbered);
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());

  WhatIfSession session;
  for (const plan::Plan& q : queries_) {
    auto via_a = optimizer_.WhatIfCost(q, a, a, &session);
    auto via_b = optimizer_.WhatIfCost(q, b, b, &session);
    ASSERT_TRUE(via_a.ok() && via_b.ok());
    EXPECT_EQ(*via_a, *via_b);
    auto plain = optimizer_.WhatIfCost(q, a, a);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(*plain, *via_a);
  }
}

TEST_F(WhatIfSessionTest, SessionPathDefersToVerifiedBuildsAndNullSession) {
  // Under verification (the ctest default) the 4-arg overload must behave
  // exactly like the plain overload — the verified path re-checks every
  // winning probe plan, which a memo hit could not.
  verify::ScopedVerification on(true);
  const ViewCatalog hypothetical = CatalogOf(views_);
  WhatIfSession session;
  for (const plan::Plan& q : queries_) {
    auto plain = optimizer_.WhatIfCost(q, hypothetical, hypothetical);
    auto gated = optimizer_.WhatIfCost(q, hypothetical, hypothetical,
                                       &session);
    ASSERT_TRUE(plain.ok() && gated.ok());
    EXPECT_EQ(*plain, *gated);
  }
  // Null session: same contract, no memo to consult.
  verify::ScopedVerification off(false);
  for (const plan::Plan& q : queries_) {
    auto plain = optimizer_.WhatIfCost(q, hypothetical, hypothetical);
    auto null_session =
        optimizer_.WhatIfCost(q, hypothetical, hypothetical, nullptr);
    ASSERT_TRUE(plain.ok() && null_session.ok());
    EXPECT_EQ(*plain, *null_session);
  }
}

}  // namespace
}  // namespace miso::optimizer
