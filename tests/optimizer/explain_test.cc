#include "optimizer/explain.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "optimizer/multistore_optimizer.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::optimizer {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_) {}

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  MultistoreOptimizer optimizer_;
  views::ViewCatalog empty_{0};
};

TEST_F(ExplainTest, HvOnlyPlanExplains) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto ms = optimizer_.OptimizeHvOnly(*plan, empty_, false);
  ASSERT_TRUE(ms.ok());
  const std::string text = ExplainMultistorePlan(*ms);
  EXPECT_NE(text.find("Multistore plan for 'q'"), std::string::npos);
  EXPECT_NE(text.find("runs entirely in HV"), std::string::npos);
  EXPECT_EQ(text.find("[DW]"), std::string::npos);
  EXPECT_EQ(text.find(">>> migrate"), std::string::npos);
}

TEST_F(ExplainTest, SplitPlanShowsMigrationPoints) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            /*udf_dw_compatible=*/true);
  auto ms = optimizer_.Optimize(*plan, empty_, empty_);
  ASSERT_TRUE(ms.ok());
  if (ms->HvOnly()) GTEST_SKIP() << "optimizer chose HV-only here";
  const std::string text = ExplainMultistorePlan(*ms);
  EXPECT_NE(text.find("[DW]"), std::string::npos);
  EXPECT_NE(text.find("[HV]"), std::string::npos);
  EXPECT_NE(text.find(">>> migrate"), std::string::npos);
  EXPECT_NE(text.find("components:"), std::string::npos);
}

TEST_F(ExplainTest, FullyDwPlanIsLabelled) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            true);
  // Materialize the UDF output and landmarks filter into DW.
  views::ViewCatalog dw(kTiB);
  for (const NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kUdf ||
        (node->kind() == OpKind::kFilter &&
         node->output_schema().HasField("region"))) {
      views::View v = views::ViewFromNode(*node);
      v.id = node->signature();
      ASSERT_TRUE(dw.Add(v).ok());
    }
  }
  auto ms = optimizer_.Optimize(*plan, dw, empty_);
  ASSERT_TRUE(ms.ok());
  ASSERT_TRUE(ms->FullyDw());
  const std::string text = ExplainMultistorePlan(*ms);
  EXPECT_NE(text.find("runs entirely in DW"), std::string::npos);
  EXPECT_EQ(text.find("[HV]"), std::string::npos);
}

}  // namespace
}  // namespace miso::optimizer
