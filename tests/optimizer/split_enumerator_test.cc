#include "optimizer/split_enumerator.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::optimizer {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

/// Checks the upward-closure invariant: if a node is on the DW side, its
/// parent must be too (data flows HV -> DW only once).
void ExpectUpwardClosed(const plan::Plan& p, const SplitCandidate& split) {
  std::unordered_set<const plan::OperatorNode*> dw;
  for (const NodePtr& n : split.dw_side) dw.insert(n.get());
  // Build child -> parent map.
  std::unordered_map<const plan::OperatorNode*, const plan::OperatorNode*>
      parent;
  for (const NodePtr& n : p.PostOrder()) {
    for (const NodePtr& c : n->children()) parent[c.get()] = n.get();
  }
  for (const plan::OperatorNode* n : dw) {
    auto it = parent.find(n);
    if (it == parent.end()) continue;  // root
    EXPECT_TRUE(dw.count(it->second) > 0)
        << "DW-side node has an HV-side parent";
  }
}

TEST(SplitEnumeratorTest, HvOnlyIsFirstCandidate) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  auto splits = EnumerateSplits(plan->root());
  ASSERT_TRUE(splits.ok());
  ASSERT_FALSE(splits->empty());
  EXPECT_TRUE((*splits)[0].dw_side.empty());
  EXPECT_TRUE((*splits)[0].cut_inputs.empty());
}

TEST(SplitEnumeratorTest, AllSplitsAreUpwardClosedAndFeasible) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            /*udf_dw_compatible=*/true);
  auto splits = EnumerateSplits(plan->root());
  ASSERT_TRUE(splits.ok());
  EXPECT_GT(splits->size(), 4u);
  std::set<size_t> distinct_sizes;
  for (const SplitCandidate& split : *splits) {
    ExpectUpwardClosed(*plan, split);
    distinct_sizes.insert(split.dw_side.size());
    for (const NodePtr& n : split.dw_side) {
      EXPECT_TRUE(n->dw_executable());
      EXPECT_NE(n->kind(), OpKind::kScan);
      EXPECT_NE(n->kind(), OpKind::kExtract);
    }
  }
  EXPECT_GT(distinct_sizes.size(), 2u) << "several distinct split depths";
}

TEST(SplitEnumeratorTest, HvOnlyUdfBlocksDeeperSplits) {
  auto blocked = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%",
                                               0.1,
                                               /*udf_dw_compatible=*/false);
  auto open = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            /*udf_dw_compatible=*/true);
  auto blocked_splits = EnumerateSplits(blocked->root());
  auto open_splits = EnumerateSplits(open->root());
  ASSERT_TRUE(blocked_splits.ok());
  ASSERT_TRUE(open_splits.ok());
  EXPECT_LT(blocked_splits->size(), open_splits->size())
      << "an HV-only UDF removes every split placing it in DW";
  for (const SplitCandidate& split : *blocked_splits) {
    for (const NodePtr& n : split.dw_side) {
      EXPECT_NE(n->kind(), OpKind::kUdf);
    }
  }
}

TEST(SplitEnumeratorTest, CutInputsAreTheDwSideFrontier) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            true);
  auto splits = EnumerateSplits(plan->root());
  ASSERT_TRUE(splits.ok());
  for (const SplitCandidate& split : *splits) {
    if (split.dw_side.empty()) continue;
    std::unordered_set<const plan::OperatorNode*> dw;
    for (const NodePtr& n : split.dw_side) dw.insert(n.get());
    // Each cut input must be the child of some DW-side node and itself on
    // the HV side.
    for (const NodePtr& cut : split.cut_inputs) {
      EXPECT_EQ(dw.count(cut.get()), 0u);
      bool is_child_of_dw = false;
      for (const NodePtr& n : split.dw_side) {
        for (const NodePtr& c : n->children()) {
          if (c == cut) is_child_of_dw = true;
        }
      }
      EXPECT_TRUE(is_child_of_dw);
    }
    // Conversely, every HV-side child of a DW-side node is a cut input.
    size_t frontier = 0;
    for (const NodePtr& n : split.dw_side) {
      for (const NodePtr& c : n->children()) {
        if (dw.count(c.get()) == 0) ++frontier;
      }
    }
    EXPECT_EQ(frontier, split.cut_inputs.size());
  }
}

class DwViewPinningTest : public ::testing::Test {
 protected:
  DwViewPinningTest() : factory_(&PaperCatalog()) {}

  NodePtr DwViewOverLandmarks() {
    auto extract = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                        {"region", "kind", "rating"});
    views::View view = views::ViewFromNode(**extract);
    return factory_.MakeViewScan(1, view.signature, StoreKind::kDw,
                                 view.schema, view.stats, view.canonical);
  }

  plan::NodeFactory factory_;
};

TEST_F(DwViewPinningTest, DwViewForcesDwSide) {
  auto agg = factory_.MakeAggregate(DwViewOverLandmarks(), {"region"},
                                    {{"count", "*"}});
  auto splits = EnumerateSplits(*agg);
  ASSERT_TRUE(splits.ok());
  for (const SplitCandidate& split : *splits) {
    // Every candidate must place the DW view (and its ancestors) in DW.
    EXPECT_FALSE(split.dw_side.empty());
    bool found = false;
    for (const NodePtr& n : split.dw_side) {
      if (n->kind() == OpKind::kViewScan) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(DwViewPinningTest, DwViewBelowHvOnlyUdfIsInfeasible) {
  plan::UdfParams udf;
  udf.name = "python_thing";
  udf.dw_compatible = false;
  auto node = factory_.MakeUdf(DwViewOverLandmarks(), udf);
  ASSERT_TRUE(node.ok());
  auto splits = EnumerateSplits(*node);
  ASSERT_FALSE(splits.ok());
  EXPECT_EQ(splits.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DwViewPinningTest, HvViewStaysOnHvSide) {
  auto extract = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                      {"region", "rating"});
  views::View view = views::ViewFromNode(**extract);
  NodePtr hv_scan = factory_.MakeViewScan(2, view.signature, StoreKind::kHv,
                                          view.schema, view.stats,
                                          view.canonical);
  auto agg = factory_.MakeAggregate(hv_scan, {"region"}, {{"count", "*"}});
  auto splits = EnumerateSplits(*agg);
  ASSERT_TRUE(splits.ok());
  for (const SplitCandidate& split : *splits) {
    for (const NodePtr& n : split.dw_side) {
      EXPECT_NE(n->kind(), OpKind::kViewScan)
          << "HV views cannot be read by the DW";
    }
  }
}

TEST(SplitEnumeratorTest, NullRootErrors) {
  auto splits = EnumerateSplits(nullptr);
  EXPECT_FALSE(splits.ok());
}

}  // namespace
}  // namespace miso::optimizer
