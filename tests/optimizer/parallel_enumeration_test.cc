// Determinism of the parallel optimizer: the chosen multistore plan, the
// full costed plan population, and every cost component must be
// bit-identical to the serial path for thread counts {1, 2, 8}, across
// several workload seeds. The parallel path only changes *where* each
// candidate is costed, never what is costed or how the winner is reduced.

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"
#include "common/thread_pool.h"
#include "hv/hv_store.h"
#include "optimizer/multistore_optimizer.h"
#include "optimizer/split_enumerator.h"
#include "workload/evolutionary.h"

namespace miso::optimizer {
namespace {

using testing_util::PaperCatalog;

/// Optimizer + designs harvested from the first 8 queries of one
/// workload seed — the same setup as the micro-benchmarks, so the
/// parallel path is exercised against realistic view catalogs.
struct Harness {
  explicit Harness(uint64_t seed)
      : factory(&PaperCatalog()),
        hv_model(hv::HvConfig{}),
        dw_model(dw::DwConfig{}),
        transfer_model(transfer::TransferConfig{}),
        optimizer(&factory, &hv_model, &dw_model, &transfer_model),
        hv_catalog(100 * kTiB),
        dw_catalog(400 * kGiB) {
    workload::WorkloadConfig wl;
    wl.seed = seed;
    auto generated =
        workload::EvolutionaryWorkload::Generate(&PaperCatalog(), wl);
    EXPECT_TRUE(generated.ok()) << generated.status().ToString();
    queries = generated->queries();

    hv::HvStore store(hv::HvConfig{}, 100 * kTiB);
    uint64_t next_id = 1;
    for (int i = 0; i < 8; ++i) {
      const plan::Plan& q = queries[static_cast<size_t>(i)].plan;
      auto exec = store.Execute(q.root(), i, 0, &next_id, q.signature());
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      for (views::View& v : exec->produced_views) {
        if (v.size_bytes < 2 * kGiB && dw_catalog.used_bytes() < 100 * kGiB) {
          (void)dw_catalog.AddUnchecked(std::move(v));
        } else {
          (void)hv_catalog.AddUnchecked(std::move(v));
        }
      }
    }
  }

  plan::NodeFactory factory;
  hv::HvCostModel hv_model;
  dw::DwCostModel dw_model;
  transfer::TransferModel transfer_model;
  MultistoreOptimizer optimizer;
  views::ViewCatalog hv_catalog;
  views::ViewCatalog dw_catalog;
  std::vector<workload::WorkloadQuery> queries;
};

/// Bit-exact equality of two multistore plans: structure by canonical
/// signatures, costs by exact double comparison (the parallel reduce is
/// the same serial scan, so not even an ULP may differ).
void ExpectIdenticalPlans(const MultistorePlan& serial,
                          const MultistorePlan& parallel) {
  EXPECT_EQ(serial.executed.signature(), parallel.executed.signature());
  ASSERT_EQ(serial.dw_side.size(), parallel.dw_side.size());
  for (size_t i = 0; i < serial.dw_side.size(); ++i) {
    EXPECT_EQ(serial.dw_side[i]->signature(), parallel.dw_side[i]->signature());
  }
  ASSERT_EQ(serial.cut_inputs.size(), parallel.cut_inputs.size());
  for (size_t i = 0; i < serial.cut_inputs.size(); ++i) {
    EXPECT_EQ(serial.cut_inputs[i]->signature(),
              parallel.cut_inputs[i]->signature());
  }
  EXPECT_EQ(serial.transferred_bytes, parallel.transferred_bytes);
  EXPECT_EQ(serial.cost.hv_exec_s, parallel.cost.hv_exec_s);
  EXPECT_EQ(serial.cost.dump_s, parallel.cost.dump_s);
  EXPECT_EQ(serial.cost.transfer_load_s, parallel.cost.transfer_load_s);
  EXPECT_EQ(serial.cost.dw_exec_s, parallel.cost.dw_exec_s);
}

class ParallelEnumerationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEnumerationTest, OptimizeIsBitIdenticalAcrossThreadCounts) {
  Harness harness(GetParam());

  // Serial reference: no pool installed at all (the legacy code path).
  std::vector<MultistorePlan> reference;
  for (size_t qi = 8; qi < 14; ++qi) {
    auto best = harness.optimizer.Optimize(harness.queries[qi].plan,
                                           harness.dw_catalog,
                                           harness.hv_catalog);
    ASSERT_TRUE(best.ok()) << best.status().ToString();
    reference.push_back(std::move(best).value());
  }

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    harness.optimizer.set_thread_pool(&pool);
    for (size_t qi = 8; qi < 14; ++qi) {
      auto best = harness.optimizer.Optimize(harness.queries[qi].plan,
                                             harness.dw_catalog,
                                             harness.hv_catalog);
      ASSERT_TRUE(best.ok()) << best.status().ToString();
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " query=" + std::to_string(qi));
      ExpectIdenticalPlans(reference[qi - 8], *best);
    }
    harness.optimizer.set_thread_pool(nullptr);
  }
}

TEST_P(ParallelEnumerationTest, PlanPopulationIsBitIdentical) {
  Harness harness(GetParam());
  const plan::Plan& query = harness.queries[3].plan;

  auto serial = harness.optimizer.EnumerateAllPlans(query);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    harness.optimizer.set_thread_pool(&pool);
    auto parallel = harness.optimizer.EnumerateAllPlans(query);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(serial->size(), parallel->size()) << "threads=" << threads;
    for (size_t i = 0; i < serial->size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " candidate=" + std::to_string(i));
      ExpectIdenticalPlans((*serial)[i], (*parallel)[i]);
    }
    harness.optimizer.set_thread_pool(nullptr);
  }
}

TEST_P(ParallelEnumerationTest, EnumerateSplitsIsIdenticalWithAPool) {
  Harness harness(GetParam());
  const plan::Plan& query = harness.queries[5].plan;

  auto serial = EnumerateSplits(query.root());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    auto parallel = EnumerateSplits(query.root(), 100000, &pool);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      // The candidate list is produced by the sequential recursion; the
      // pool only runs the verification pass, so even node identity
      // (not just structure) must match.
      ASSERT_EQ((*serial)[i].dw_side.size(), (*parallel)[i].dw_side.size());
      for (size_t k = 0; k < (*serial)[i].dw_side.size(); ++k) {
        EXPECT_EQ((*serial)[i].dw_side[k].get(),
                  (*parallel)[i].dw_side[k].get());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEnumerationTest,
                         ::testing::Values(7, 123));

}  // namespace
}  // namespace miso::optimizer
