#include "test_util.h"

namespace miso::testing_util {

Result<plan::Plan> MakeAnalystPlan(const relation::Catalog* catalog,
                                   const std::string& name,
                                   const std::string& topic_operand,
                                   double topic_sel,
                                   bool udf_dw_compatible) {
  using plan::CompareOp;
  plan::PlanBuilder b(catalog);

  auto tweets =
      b.Scan("twitter")
          .Extract({"user_id", "ts", "topic", "text"})
          .Filter({plan::MakeAtom("topic", CompareOp::kLike, topic_operand,
                                  topic_sel),
                   plan::MakeAtom("ts", CompareOp::kGt, "15000", 0.5)});
  auto checkins =
      b.Scan("foursquare")
          .Extract({"user_id", "ts", "checkin_loc", "category"})
          .Filter({plan::MakeAtom("category", CompareOp::kEq, "cuisine_x",
                                  0.15)});
  plan::UdfParams udf;
  udf.name = "sentiment_t";
  udf.size_factor = 0.5;
  udf.row_selectivity = 0.9;
  udf.cpu_factor = 4.0;
  udf.dw_compatible = udf_dw_compatible;

  auto landmarks = b.Scan("landmarks")
                       .Extract({"checkin_loc", "region", "kind", "rating"})
                       .Filter({plan::MakeAtom("region", CompareOp::kEq,
                                               "region_x", 0.05)});

  return tweets.Join(checkins, "user_id")
      .Udf(udf)
      .Join(landmarks, "checkin_loc")
      .Aggregate({"region"}, {{"count", "*"}})
      .Build(name);
}

}  // namespace miso::testing_util
