// Property sweep of the rewriter over the full workload and random view
// subsets: a rewrite must always preserve semantic identity, never grow
// the plan, and keep the estimated result close to the original's.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "hv/hv_store.h"
#include "views/rewriter.h"
#include "workload/evolutionary.h"

namespace miso::views {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

class RewriterPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct Shared {
    Shared() {
      auto w = workload::EvolutionaryWorkload::Generate(
          &PaperCatalog(), workload::WorkloadConfig{});
      queries = w->Plans();
      hv::HvStore store(hv::HvConfig{}, 100 * kTiB);
      uint64_t next_id = 1;
      for (size_t i = 0; i < queries.size(); ++i) {
        auto exec = store.Execute(queries[i].root(), static_cast<int>(i), 0,
                                  &next_id, queries[i].signature());
        for (View& v : exec->produced_views) {
          all_views.push_back(std::move(v));
        }
      }
    }
    std::vector<plan::Plan> queries;
    std::vector<View> all_views;
  };

  static Shared& shared() {
    static auto* s = new Shared();
    return *s;
  }
};

TEST_P(RewriterPropertyTest, RandomDesignsPreserveSemantics) {
  Shared& s = shared();
  Rng rng(GetParam());
  plan::NodeFactory factory(&PaperCatalog());
  Rewriter rewriter(&factory);

  for (int round = 0; round < 6; ++round) {
    // Random split of a random view subset across the two stores.
    ViewCatalog hv(100 * kTiB);
    ViewCatalog dw(100 * kTiB);
    for (const View& v : s.all_views) {
      const double draw = rng.NextDouble();
      if (draw < 0.25) {
        ASSERT_TRUE(dw.AddUnchecked(v).ok());
      } else if (draw < 0.6) {
        ASSERT_TRUE(hv.AddUnchecked(v).ok());
      }
    }

    for (const plan::Plan& q : s.queries) {
      RewriteReport report;
      auto rewritten = rewriter.Rewrite(q, dw, hv, &report);
      ASSERT_TRUE(rewritten.ok()) << q.query_name();

      // Identity preserved; plan never grows.
      EXPECT_EQ(rewritten->signature(), q.signature()) << q.query_name();
      EXPECT_LE(rewritten->NumOperators(), q.NumOperators());

      // Estimated result stays close to the original (compensation
      // selectivities compose).
      const double original =
          static_cast<double>(q.root()->stats().rows);
      const double after =
          static_cast<double>(rewritten->root()->stats().rows);
      EXPECT_NEAR(after, original, 0.25 * original + 8) << q.query_name();

      // Every ViewScan refers to a view present in the right store.
      for (const NodePtr& node : rewritten->PostOrder()) {
        if (node->kind() != OpKind::kViewScan) continue;
        const ViewCatalog& catalog =
            node->view_scan().store == StoreKind::kDw ? dw : hv;
        EXPECT_TRUE(catalog.Contains(node->view_scan().view_id));
      }

      // Report counters line up with the plan contents.
      int view_scans = 0;
      for (const NodePtr& node : rewritten->PostOrder()) {
        if (node->kind() == OpKind::kViewScan) ++view_scans;
      }
      EXPECT_EQ(view_scans, report.dw_views_used + report.hv_views_used);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace miso::views
