#include "views/view.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::views {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

TEST(ViewTest, ViewFromFilterNodeCapturesBaseAndPredicate) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  NodePtr filter;
  for (const NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kFilter) {
      filter = node;
      break;
    }
  }
  ASSERT_NE(filter, nullptr);
  View v = ViewFromNode(*filter);
  EXPECT_EQ(v.signature, filter->signature());
  EXPECT_EQ(v.canonical, filter->canonical());
  EXPECT_EQ(v.base_signature, filter->children()[0]->signature());
  EXPECT_FALSE(v.predicate.IsTrue());
  EXPECT_EQ(v.size_bytes, filter->stats().bytes);
  EXPECT_EQ(v.stats.rows, filter->stats().rows);
}

TEST(ViewTest, ViewFromNonFilterNodeHasNoBase) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  View v = ViewFromNode(*plan->root());  // aggregate root
  EXPECT_EQ(v.base_signature, 0u);
  EXPECT_TRUE(v.predicate.IsTrue());
}

TEST(ViewTest, DebugStringClipsLongCanonicals) {
  View v;
  v.id = 7;
  v.canonical = std::string(500, 'x');
  v.size_bytes = kGiB;
  const std::string s = v.DebugString();
  EXPECT_LT(s.size(), 200u);
  EXPECT_NE(s.find("v7["), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("1.00 GiB"), std::string::npos);
}

}  // namespace
}  // namespace miso::views
