#include "views/view_catalog.h"

#include <gtest/gtest.h>

namespace miso::views {
namespace {

View MakeView(ViewId id, Bytes size, uint64_t signature,
              uint64_t base_signature = 0) {
  View v;
  v.id = id;
  v.size_bytes = size;
  v.signature = signature;
  v.base_signature = base_signature;
  v.created_by_query = static_cast<int>(id);
  return v;
}

TEST(ViewCatalogTest, AddEnforcesBudget) {
  ViewCatalog catalog(100);
  ASSERT_TRUE(catalog.Add(MakeView(1, 60, 0xA)).ok());
  EXPECT_EQ(catalog.used_bytes(), 60);
  EXPECT_EQ(catalog.available_bytes(), 40);

  Status s = catalog.Add(MakeView(2, 50, 0xB));
  EXPECT_EQ(s.code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(catalog.size(), 1);
}

TEST(ViewCatalogTest, AddUncheckedAllowsOverBudget) {
  ViewCatalog catalog(100);
  ASSERT_TRUE(catalog.AddUnchecked(MakeView(1, 150, 0xA)).ok());
  EXPECT_TRUE(catalog.OverBudget());
  EXPECT_EQ(catalog.used_bytes(), 150);
}

TEST(ViewCatalogTest, DuplicateIdRejected) {
  ViewCatalog catalog(100);
  ASSERT_TRUE(catalog.Add(MakeView(1, 10, 0xA)).ok());
  EXPECT_EQ(catalog.Add(MakeView(1, 10, 0xB)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ViewCatalogTest, RemoveReleasesBytes) {
  ViewCatalog catalog(100);
  ASSERT_TRUE(catalog.Add(MakeView(1, 60, 0xA)).ok());
  ASSERT_TRUE(catalog.Remove(1).ok());
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_FALSE(catalog.Contains(1));
  EXPECT_EQ(catalog.Remove(1).code(), StatusCode::kNotFound);
}

TEST(ViewCatalogTest, FindExactBySignature) {
  ViewCatalog catalog(1000);
  catalog.Add(MakeView(1, 10, 0xAAA));
  catalog.Add(MakeView(2, 20, 0xBBB));
  auto v = catalog.FindExact(0xBBB);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id, 2u);
  EXPECT_FALSE(catalog.FindExact(0xCCC).has_value());
}

TEST(ViewCatalogTest, FindByBaseCollectsCandidates) {
  ViewCatalog catalog(1000);
  catalog.Add(MakeView(1, 10, 0x1, /*base=*/0x99));
  catalog.Add(MakeView(2, 20, 0x2, /*base=*/0x99));
  catalog.Add(MakeView(3, 30, 0x3, /*base=*/0x77));
  catalog.Add(MakeView(4, 40, 0x4, /*base=*/0));  // not a filter view
  EXPECT_EQ(catalog.FindByBase(0x99).size(), 2u);
  EXPECT_EQ(catalog.FindByBase(0x77).size(), 1u);
  EXPECT_TRUE(catalog.FindByBase(0).empty())
      << "base 0 means 'no filter root' and must never match";
}

TEST(ViewCatalogTest, TouchAdvancesLastUsed) {
  ViewCatalog catalog(1000);
  catalog.Add(MakeView(5, 10, 0xA));
  EXPECT_EQ(catalog.LastUsed(5), 5) << "starts at creation index";
  catalog.TouchView(5, 9);
  EXPECT_EQ(catalog.LastUsed(5), 9);
  catalog.TouchView(5, 7);
  EXPECT_EQ(catalog.LastUsed(5), 9) << "touches never move backwards";
  EXPECT_EQ(catalog.LastUsed(999), -1);
}

TEST(ViewCatalogTest, AllViewsIsDeterministicallyOrdered) {
  ViewCatalog catalog(1000);
  catalog.Add(MakeView(3, 1, 0x3));
  catalog.Add(MakeView(1, 1, 0x1));
  catalog.Add(MakeView(2, 1, 0x2));
  std::vector<View> all = catalog.AllViews();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, 1u);
  EXPECT_EQ(all[1].id, 2u);
  EXPECT_EQ(all[2].id, 3u);
}

TEST(ViewCatalogTest, ClearResetsState) {
  ViewCatalog catalog(1000);
  catalog.Add(MakeView(1, 10, 0xA));
  catalog.Clear();
  EXPECT_TRUE(catalog.empty());
  EXPECT_EQ(catalog.used_bytes(), 0);
}

}  // namespace
}  // namespace miso::views
