#include "views/rewriter.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/printer.h"

namespace miso::views {
namespace {

using plan::CompareOp;
using plan::MakeAtom;
using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest() : factory_(&PaperCatalog()), rewriter_(&factory_) {}

  /// Finds the first node of `kind` in post-order.
  static NodePtr FindNode(const plan::Plan& p, OpKind kind) {
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == kind) return node;
    }
    return nullptr;
  }

  static int CountViewScans(const plan::Plan& p, StoreKind store) {
    int count = 0;
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == OpKind::kViewScan &&
          node->view_scan().store == store) {
        ++count;
      }
    }
    return count;
  }

  View HarvestView(const NodePtr& node, ViewId id) {
    View v = ViewFromNode(*node);
    v.id = id;
    return v;
  }

  plan::NodeFactory factory_;
  Rewriter rewriter_;
  ViewCatalog empty_{0};
};

TEST_F(RewriterTest, NoViewsMeansNoChange) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  RewriteReport report;
  auto rewritten = rewriter_.Rewrite(*plan, empty_, empty_, &report);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(report.AnyRewrite());
  EXPECT_EQ(rewritten->root(), plan->root()) << "untouched subtrees shared";
}

TEST_F(RewriterTest, ExactMatchReplacesLargestSubtree) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  // Materialize the UDF output (the whole lower tree).
  NodePtr udf = FindNode(*plan, OpKind::kUdf);
  ASSERT_NE(udf, nullptr);
  ViewCatalog hv(kTiB);
  ASSERT_TRUE(hv.Add(HarvestView(udf, 1)).ok());

  RewriteReport report;
  auto rewritten = rewriter_.RewriteSingleStore(*plan, hv, StoreKind::kHv,
                                                &report);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(report.exact_matches, 1);
  EXPECT_EQ(CountViewScans(*rewritten, StoreKind::kHv), 1);
  EXPECT_LT(rewritten->NumOperators(), plan->NumOperators());
  // Rewrites preserve semantic identity.
  EXPECT_EQ(rewritten->signature(), plan->signature());
}

TEST_F(RewriterTest, SubsumptionAddsCompensationFilter) {
  auto v1 = testing_util::MakeAnalystPlan(&PaperCatalog(), "v1", "c%", 0.2,
                                          false);
  // v2 tightens the twitter filter: the v1 filtered view subsumes it.
  plan::PlanBuilder b(&PaperCatalog());
  auto v2_filter =
      b.Scan("twitter")
          .Extract({"user_id", "ts", "topic", "text"})
          .Filter({MakeAtom("topic", CompareOp::kLike, "c%", 0.2),
                   MakeAtom("ts", CompareOp::kGt, "15000", 0.5),
                   MakeAtom("ts", CompareOp::kGt, "15200", 0.3)});
  auto v2 = v2_filter.Aggregate({"topic"}, {{"count", "*"}}).Build("v2");
  ASSERT_TRUE(v2.ok());

  // Harvest v1's filtered-twitter view.
  NodePtr v1_filter;
  for (const NodePtr& node : v1->PostOrder()) {
    if (node->kind() == OpKind::kFilter &&
        node->children()[0]->kind() == OpKind::kExtract) {
      v1_filter = node;
      break;
    }
  }
  ASSERT_NE(v1_filter, nullptr);
  ViewCatalog hv(kTiB);
  ASSERT_TRUE(hv.Add(HarvestView(v1_filter, 1)).ok());

  RewriteReport report;
  auto rewritten = rewriter_.RewriteSingleStore(*v2, hv, StoreKind::kHv,
                                                &report);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(report.subsumption_matches, 1);
  EXPECT_EQ(CountViewScans(*rewritten, StoreKind::kHv), 1);
  // The compensation keeps the original node's canonical identity.
  EXPECT_EQ(rewritten->signature(), v2->signature());
  // Estimated output of the compensated filter tracks the original.
  NodePtr original_filter = v2->root()->children()[0];
  NodePtr rewritten_filter = rewritten->root()->children()[0];
  EXPECT_NEAR(
      static_cast<double>(rewritten_filter->stats().rows),
      static_cast<double>(original_filter->stats().rows),
      0.05 * static_cast<double>(original_filter->stats().rows) + 2);
}

TEST_F(RewriterTest, NonSubsumingViewIsIgnored) {
  // View filtered topic 'c%'; query needs topic 'd%': no reuse.
  auto v1 = testing_util::MakeAnalystPlan(&PaperCatalog(), "v1", "c%", 0.2,
                                          false);
  auto v2 = testing_util::MakeAnalystPlan(&PaperCatalog(), "v2", "d%", 0.2,
                                          false);
  NodePtr v1_filter;
  for (const NodePtr& node : v1->PostOrder()) {
    if (node->kind() == OpKind::kFilter) {
      v1_filter = node;
      break;
    }
  }
  ViewCatalog hv(kTiB);
  ASSERT_TRUE(hv.Add(HarvestView(v1_filter, 1)).ok());
  RewriteReport report;
  auto rewritten = rewriter_.RewriteSingleStore(*v2, hv, StoreKind::kHv,
                                                &report);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(report.subsumption_matches, 0);
  EXPECT_EQ(report.exact_matches, 0);
}

TEST_F(RewriterTest, DwPreferredOverHv) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  NodePtr udf = FindNode(*plan, OpKind::kUdf);
  ViewCatalog hv(kTiB);
  ViewCatalog dw(kTiB);
  ASSERT_TRUE(hv.Add(HarvestView(udf, 1)).ok());
  ASSERT_TRUE(dw.Add(HarvestView(udf, 2)).ok());

  RewriteReport report;
  auto rewritten = rewriter_.Rewrite(*plan, dw, hv, &report);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(report.dw_views_used, 1);
  EXPECT_EQ(report.hv_views_used, 0);
  EXPECT_EQ(CountViewScans(*rewritten, StoreKind::kDw), 1);
}

TEST_F(RewriterTest, SmallestApplicableViewWins) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  NodePtr filter;
  for (const NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kFilter &&
        node->children()[0]->kind() == OpKind::kExtract &&
        node->children()[0]->children()[0]->scan().dataset == "twitter") {
      filter = node;
      break;
    }
  }
  ASSERT_NE(filter, nullptr);

  // Two subsuming views over the same base; the smaller must be chosen.
  View loose = ViewFromNode(*filter);
  loose.id = 1;
  loose.predicate = plan::Predicate(
      {MakeAtom("ts", CompareOp::kGt, "15000", 0.5)});
  loose.base_signature = filter->children()[0]->signature();
  loose.size_bytes = GiB(50);
  loose.signature = 111;

  View tight = loose;
  tight.id = 2;
  tight.size_bytes = GiB(5);
  tight.signature = 222;

  ViewCatalog hv(kTiB);
  ASSERT_TRUE(hv.Add(loose).ok());
  ASSERT_TRUE(hv.Add(tight).ok());

  RewriteReport report;
  auto rewritten = rewriter_.RewriteSingleStore(*plan, hv, StoreKind::kHv,
                                                &report);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_EQ(report.views_used.size(), 1u);
  EXPECT_EQ(report.views_used[0], 2u);
}

}  // namespace
}  // namespace miso::views
