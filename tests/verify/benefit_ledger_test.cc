// Negative-path coverage for the decayed-benefit bookkeeping cross-check
// (V208): tampered weights, mismatched totals, malformed benefits, and
// size drift must all be rejected, while faithfully-built ledgers pass.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "../test_util.h"
#include "verify/design_verifier.h"

namespace miso::verify {
namespace {

/// Ledger matching the paper's tuner defaults (§5.1): history window 6,
/// epoch length 3, decay 0.6 — positions 0..2 are the old epoch (weight
/// 0.6), positions 3..5 the newest (weight 1).
BenefitLedger PaperishLedger() {
  BenefitLedger ledger;
  ledger.epoch_length = 3;
  ledger.decay = 0.6;
  ledger.per_query_benefit = {10.0, 0.0, 4.0, 7.5, 0.0, 2.0};
  ledger.weights.clear();
  ledger.predicted_total = 0;
  for (size_t pos = 0; pos < ledger.per_query_benefit.size(); ++pos) {
    const int from_newest =
        static_cast<int>(ledger.per_query_benefit.size()) - 1 -
        static_cast<int>(pos);
    const double weight =
        std::pow(ledger.decay, from_newest / ledger.epoch_length);
    ledger.weights.push_back(weight);
    ledger.predicted_total += weight * ledger.per_query_benefit[pos];
  }
  return ledger;
}

TEST(BenefitLedgerTest, AcceptsFaithfulLedger) {
  MISO_EXPECT_OK(VerifyBenefitLedger(PaperishLedger()));
}

TEST(BenefitLedgerTest, AcceptsEmptyWindow) {
  BenefitLedger ledger;
  ledger.epoch_length = 3;
  MISO_EXPECT_OK(VerifyBenefitLedger(ledger));
}

TEST(BenefitLedgerTest, NonPositiveEpochLengthMeansUnitWeights) {
  BenefitLedger ledger;
  ledger.epoch_length = 0;  // no epoching: every weight must be exactly 1
  ledger.per_query_benefit = {3.0, 5.0};
  ledger.weights = {1.0, 1.0};
  ledger.predicted_total = 8.0;
  MISO_EXPECT_OK(VerifyBenefitLedger(ledger));

  ledger.weights[0] = 0.6;  // decayed weight without epoching: drift
  ledger.predicted_total = 0.6 * 3.0 + 5.0;
  const Status status = VerifyBenefitLedger(ledger);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kBenefitBookkeepingDrift)
      << status.ToString();
}

TEST(BenefitLedgerTest, RejectsSizeMismatchWithV208) {
  BenefitLedger ledger = PaperishLedger();
  ledger.weights.pop_back();
  const Status status = VerifyBenefitLedger(ledger);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kBenefitBookkeepingDrift)
      << status.ToString();
}

TEST(BenefitLedgerTest, RejectsTamperedWeightWithV208) {
  BenefitLedger ledger = PaperishLedger();
  // A weight from the wrong epoch: the verifier recomputes decay^epoch_age
  // independently and must notice.
  ledger.weights[4] = ledger.decay;
  const Status status = VerifyBenefitLedger(ledger);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kBenefitBookkeepingDrift)
      << status.ToString();
}

TEST(BenefitLedgerTest, RejectsWrongTotalWithV208) {
  BenefitLedger ledger = PaperishLedger();
  ledger.predicted_total += 0.5;
  const Status status = VerifyBenefitLedger(ledger);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kBenefitBookkeepingDrift)
      << status.ToString();
}

TEST(BenefitLedgerTest, RejectsNegativeBenefitWithV208) {
  // Benefits are clamped savings; a negative entry means the base-cost
  // cache and the what-if probe disagreed on the same query.
  BenefitLedger ledger = PaperishLedger();
  ledger.per_query_benefit[2] = -1.0;
  const Status status = VerifyBenefitLedger(ledger);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kBenefitBookkeepingDrift)
      << status.ToString();
}

TEST(BenefitLedgerTest, RejectsNonFiniteValuesWithV208) {
  BenefitLedger nan_benefit = PaperishLedger();
  nan_benefit.per_query_benefit[0] =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ExtractVerifyCode(VerifyBenefitLedger(nan_benefit)),
            VerifyCode::kBenefitBookkeepingDrift);

  BenefitLedger inf_total = PaperishLedger();
  inf_total.predicted_total = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ExtractVerifyCode(VerifyBenefitLedger(inf_total)),
            VerifyCode::kBenefitBookkeepingDrift);
}

}  // namespace
}  // namespace miso::verify
