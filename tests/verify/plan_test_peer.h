#ifndef MISO_TESTS_VERIFY_PLAN_TEST_PEER_H_
#define MISO_TESTS_VERIFY_PLAN_TEST_PEER_H_

#include <memory>
#include <utility>
#include <vector>

#include "plan/operator.h"

namespace miso::plan {

/// Test-only backdoor for building operator graphs the NodeFactory refuses
/// to construct (cycles, wrong arities). The verifier must reject such
/// graphs, so the tests need a way to make them.
class PlanTestPeer {
 public:
  /// A bare, unannotated node of `kind` (no schema/stats/signature).
  static std::shared_ptr<OperatorNode> NewNode(OpKind kind) {
    auto node = std::make_shared<OperatorNode>();
    node->kind_ = kind;
    return node;
  }

  /// Overwrites the children edge list — the only way to form a cycle.
  /// Callers building cycles must break them again before the nodes go out
  /// of scope (a shared_ptr cycle is a leak LeakSanitizer will flag).
  static void SetChildren(const std::shared_ptr<OperatorNode>& node,
                          std::vector<NodePtr> children) {
    node->children_ = std::move(children);
  }
};

}  // namespace miso::plan

#endif  // MISO_TESTS_VERIFY_PLAN_TEST_PEER_H_
