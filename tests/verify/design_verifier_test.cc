// Negative-path coverage for the DesignVerifier: over-budget designs,
// transfer-budget violations, duplicate placements, and split merged items
// must be rejected with their specific stable error codes.

#include "verify/design_verifier.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "tuner/reorg_plan.h"
#include "views/view.h"
#include "views/view_catalog.h"

namespace miso::verify {
namespace {

views::View MakeView(views::ViewId id, Bytes size) {
  views::View view;
  view.id = id;
  view.signature = 0x1000 + id;
  view.size_bytes = size;
  view.stats.bytes = size;
  return view;
}

views::ViewCatalog MakeCatalog(Bytes budget,
                               const std::vector<views::View>& views) {
  views::ViewCatalog catalog(budget);
  for (const views::View& view : views) {
    MISO_EXPECT_OK(catalog.AddUnchecked(view));
  }
  return catalog;
}

DesignBudgets PaperishBudgets() {
  DesignBudgets budgets;
  budgets.hv_storage = 4 * kTiB;
  budgets.dw_storage = 400 * kGiB;
  budgets.transfer = 10 * kGiB;
  budgets.discretization = kGiB;
  return budgets;
}

TEST(DesignVerifierTest, AcceptsDesignWithinBudgets) {
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(1, kTiB), MakeView(2, kGiB)});
  const auto dw = MakeCatalog(400 * kGiB, {MakeView(3, 100 * kGiB)});
  MISO_EXPECT_OK(VerifyDesign(hv, dw, PaperishBudgets()));
}

TEST(DesignVerifierTest, RejectsHvOverBudgetWithV200) {
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(1, 5 * kTiB)});
  const auto dw = MakeCatalog(400 * kGiB, {});
  const Status status = VerifyDesign(hv, dw, PaperishBudgets());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kDesignHvOverBudget)
      << status.ToString();
}

TEST(DesignVerifierTest, RejectsDwOverBudgetWithV201) {
  const auto hv = MakeCatalog(4 * kTiB, {});
  const auto dw = MakeCatalog(400 * kGiB, {MakeView(2, 401 * kGiB)});
  const Status status = VerifyDesign(hv, dw, PaperishBudgets());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kDesignDwOverBudget)
      << status.ToString();
}

TEST(DesignVerifierTest, RejectsDuplicatePlacementWithV203) {
  // The same view id resident in both stores: Vh ∩ Vd must be empty.
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(7, kGiB)});
  const auto dw = MakeCatalog(400 * kGiB, {MakeView(7, kGiB)});
  const Status status = VerifyDesign(hv, dw, PaperishBudgets());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kDesignDuplicatePlacement)
      << status.ToString();
}

TEST(DesignVerifierTest, BudgetCheckUsesDiscretizationUnits) {
  // 400.5 GiB against a 400 GiB budget: over in any granularity. But a
  // budget of 400.5 GiB with 401 GiB used passes at d = 1 GiB (the
  // knapsack's ceil-unit guarantee) while failing byte-exact.
  DesignBudgets budgets = PaperishBudgets();
  const auto hv = MakeCatalog(4 * kTiB, {});

  const auto over = MakeCatalog(400 * kGiB, {MakeView(1, 400 * kGiB + kMiB)});
  EXPECT_FALSE(VerifyDesign(hv, over, budgets).ok());

  budgets.dw_storage = 400 * kGiB + kGiB / 2;
  const auto slack = MakeCatalog(401 * kGiB, {MakeView(1, 401 * kGiB)});
  MISO_EXPECT_OK(VerifyDesign(hv, slack, budgets));
  budgets.discretization = 1;  // byte-exact: now over
  EXPECT_EQ(ExtractVerifyCode(VerifyDesign(hv, slack, budgets)),
            VerifyCode::kDesignDwOverBudget);
}

TEST(ReorgVerifierTest, AcceptsFeasiblePlan) {
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(1, 2 * kGiB)});
  const auto dw = MakeCatalog(400 * kGiB, {MakeView(2, 3 * kGiB)});
  tuner::ReorgPlan plan;
  plan.move_to_dw = {MakeView(1, 2 * kGiB)};
  plan.move_to_hv = {MakeView(2, 3 * kGiB)};
  MISO_EXPECT_OK(VerifyReorgPlan(plan, hv, dw, PaperishBudgets()));
}

TEST(ReorgVerifierTest, RejectsTransferOverBudgetWithV202) {
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(1, 11 * kGiB)});
  const auto dw = MakeCatalog(400 * kGiB, {});
  tuner::ReorgPlan plan;
  plan.move_to_dw = {MakeView(1, 11 * kGiB)};  // Bt = 10 GiB
  const Status status = VerifyReorgPlan(plan, hv, dw, PaperishBudgets());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kDesignTransferOverBudget)
      << status.ToString();
}

TEST(ReorgVerifierTest, RejectsUnknownSourceViewWithV205) {
  const auto hv = MakeCatalog(4 * kTiB, {});
  const auto dw = MakeCatalog(400 * kGiB, {});
  tuner::ReorgPlan plan;
  plan.move_to_dw = {MakeView(99, kGiB)};  // not resident in HV
  const Status status = VerifyReorgPlan(plan, hv, dw, PaperishBudgets());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kReorgUnknownView)
      << status.ToString();
}

TEST(ReorgVerifierTest, RejectsViewMovedTwiceWithV206) {
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(1, kGiB)});
  const auto dw = MakeCatalog(400 * kGiB, {});
  tuner::ReorgPlan plan;
  plan.move_to_dw = {MakeView(1, kGiB)};
  plan.drop_from_hv = {1};
  const Status status = VerifyReorgPlan(plan, hv, dw, PaperishBudgets());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kReorgDuplicateMove)
      << status.ToString();
}

TEST(ReorgVerifierTest, RejectsPostReorgOverBudgetWithV201) {
  // Movement fits Bt but the resulting DW design exceeds Bd.
  DesignBudgets budgets = PaperishBudgets();
  budgets.transfer = kTiB;
  const auto hv = MakeCatalog(4 * kTiB, {MakeView(1, 300 * kGiB)});
  const auto dw = MakeCatalog(400 * kGiB, {MakeView(2, 200 * kGiB)});
  tuner::ReorgPlan plan;
  plan.move_to_dw = {MakeView(1, 300 * kGiB)};
  const Status status = VerifyReorgPlan(plan, hv, dw, budgets);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kDesignDwOverBudget)
      << status.ToString();
}

TEST(DesignVerifierTest, AccountingStaysConsistentThroughCatalogChurn) {
  // used_bytes drift (V204) cannot be provoked through the public catalog
  // API — that is exactly what the check guards against regressing — so
  // this test pins the consistent case across add/reject/remove churn.
  views::ViewCatalog hv(4 * kTiB);
  views::View v = MakeView(1, kGiB);
  MISO_EXPECT_OK(hv.AddUnchecked(v));
  v.size_bytes = 2 * kGiB;  // same id, different size: duplicate rejected
  EXPECT_FALSE(hv.AddUnchecked(v).ok());
  MISO_EXPECT_OK(hv.AddUnchecked(MakeView(2, 3 * kGiB)));
  MISO_EXPECT_OK(hv.Remove(1));
  const auto dw = MakeCatalog(400 * kGiB, {});
  MISO_EXPECT_OK(VerifyDesign(hv, dw, PaperishBudgets()));
}

TEST(AtomicPlacementTest, RejectsSplitMergedItemWithV207) {
  const std::vector<std::vector<views::ViewId>> groups = {{1, 2}, {3}};
  MISO_EXPECT_OK(VerifyAtomicPlacement(groups, {1, 2}, {3}));  // atomic
  MISO_EXPECT_OK(VerifyAtomicPlacement(groups, {}, {}));       // none placed
  const Status status = VerifyAtomicPlacement(groups, {1}, {2});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kMergedItemSplit)
      << status.ToString();
  // A member placed in both stores is also non-atomic.
  EXPECT_FALSE(VerifyAtomicPlacement(groups, {1, 2}, {1, 2}).ok());
}

}  // namespace
}  // namespace miso::verify
