// The overload-protection invariants (DESIGN.md §16): V211 pins the
// legal circuit-breaker edge set, V212 pins the shed-accounting balance
// every non-fatal overload run must satisfy at Finish.
#include "verify/server_invariants.h"

#include <gtest/gtest.h>

#include "verify/error_codes.h"

namespace miso::verify {
namespace {

TEST(VerifyBreakerTransitionTest, LegalEdgesPass) {
  EXPECT_TRUE(VerifyBreakerTransition(0, 1).ok());  // closed -> open
  EXPECT_TRUE(VerifyBreakerTransition(1, 2).ok());  // open -> half-open
  EXPECT_TRUE(VerifyBreakerTransition(2, 0).ok());  // half-open -> closed
  EXPECT_TRUE(VerifyBreakerTransition(2, 1).ok());  // half-open -> open
}

TEST(VerifyBreakerTransitionTest, IllegalEdgesCarryV211) {
  const int states[] = {0, 1, 2};
  for (int from : states) {
    for (int to : states) {
      const bool legal = (from == 0 && to == 1) || (from == 1 && to == 2) ||
                         (from == 2 && to == 0) || (from == 2 && to == 1);
      const Status status = VerifyBreakerTransition(from, to);
      EXPECT_EQ(status.ok(), legal) << from << " -> " << to;
      if (!legal) {
        EXPECT_EQ(ExtractVerifyCode(status),
                  VerifyCode::kBreakerIllegalTransition)
            << status.ToString();
      }
    }
  }
}

TEST(VerifyBreakerTransitionTest, OutOfRangeStatesCarryV211) {
  EXPECT_EQ(ExtractVerifyCode(VerifyBreakerTransition(-1, 1)),
            VerifyCode::kBreakerIllegalTransition);
  EXPECT_EQ(ExtractVerifyCode(VerifyBreakerTransition(0, 3)),
            VerifyCode::kBreakerIllegalTransition);
}

TEST(VerifyShedAccountingTest, BalancedCountsPass) {
  EXPECT_TRUE(VerifyShedAccounting(0, 0, 0, 0).ok());
  EXPECT_TRUE(VerifyShedAccounting(10, 10, 0, 0).ok());
  EXPECT_TRUE(VerifyShedAccounting(10, 4, 5, 1).ok());
}

TEST(VerifyShedAccountingTest, DriftAndNegativesCarryV212) {
  EXPECT_EQ(ExtractVerifyCode(VerifyShedAccounting(10, 4, 5, 0)),
            VerifyCode::kShedAccountingDrift);
  EXPECT_EQ(ExtractVerifyCode(VerifyShedAccounting(10, 11, 0, 0)),
            VerifyCode::kShedAccountingDrift);
  EXPECT_EQ(ExtractVerifyCode(VerifyShedAccounting(10, 11, -1, 0)),
            VerifyCode::kShedAccountingDrift);
  EXPECT_EQ(ExtractVerifyCode(VerifyShedAccounting(-1, -1, 0, 0)),
            VerifyCode::kShedAccountingDrift);
}

TEST(VerifyServerInvariantsTest, TokensAreStable) {
  EXPECT_EQ(
      ExtractVerifyCode(MakeVerifyError(VerifyCode::kServerWaveStuck, "x")),
      VerifyCode::kServerWaveStuck);
  EXPECT_NE(MakeVerifyError(VerifyCode::kBreakerIllegalTransition, "x")
                .message()
                .find("[V211]"),
            std::string::npos);
  EXPECT_NE(MakeVerifyError(VerifyCode::kShedAccountingDrift, "x")
                .message()
                .find("[V212]"),
            std::string::npos);
  EXPECT_NE(MakeVerifyError(VerifyCode::kServerWaveStuck, "x")
                .message()
                .find("[V213]"),
            std::string::npos);
}

}  // namespace
}  // namespace miso::verify
