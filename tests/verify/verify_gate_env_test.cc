// Regression tests for the MISO_VERIFY parsing contract: the gate reads
// the variable through the strict common/env parser, so garbage values
// terminate with exit code 2 instead of silently falling back (the bug
// fixed alongside lint rule L001 — verify_gate.cc used to call raw
// std::getenv and treat "yes"/"on"/typos as "unset").
#include "verify/verify_gate.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace miso::verify {
namespace {

class VerifyGateEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The gate caches its parse in a function-local static, so each check
    // must run in a fresh process. "threadsafe" re-execs the binary for
    // every EXPECT_EXIT, giving the child a clean static and the
    // environment value set just before the assertion.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }

  void TearDown() override {
    // ctest runs the whole suite with MISO_VERIFY=1; restore it for any
    // test that runs after us in this binary.
    setenv("MISO_VERIFY", "1", 1);
  }
};

TEST_F(VerifyGateEnvTest, GarbageValueExitsWithCode2) {
  setenv("MISO_VERIFY", "yes", 1);
  EXPECT_EXIT(
      {
        (void)Enabled();
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "MISO_VERIFY");
}

TEST_F(VerifyGateEnvTest, ZeroDisables) {
  setenv("MISO_VERIFY", "0", 1);
  EXPECT_EXIT(std::exit(Enabled() ? 1 : 0), ::testing::ExitedWithCode(0), "");
}

TEST_F(VerifyGateEnvTest, OneEnables) {
  setenv("MISO_VERIFY", "1", 1);
  EXPECT_EXIT(std::exit(Enabled() ? 0 : 1), ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace miso::verify
