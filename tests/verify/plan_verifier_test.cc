// Negative-path coverage for the PlanVerifier: deliberately malformed
// operator graphs and splits must be rejected with their specific stable
// error codes, and factory-built plans/splits must verify clean.

#include "verify/plan_verifier.h"

#include <set>
#include <string_view>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "optimizer/split_enumerator.h"
#include "plan/node_factory.h"
#include "plan/plan.h"
#include "plan_test_peer.h"
#include "verify/verify_gate.h"
#include "views/view.h"
#include "views/view_catalog.h"

namespace miso::verify {
namespace {

using plan::NodePtr;
using plan::OpKind;
using plan::PlanTestPeer;
using testing_util::MakeAnalystPlan;
using testing_util::PaperCatalog;

plan::Plan AnalystPlan(bool udf_dw_compatible = true) {
  auto plan = MakeAnalystPlan(&PaperCatalog(), "q", "coffee", 0.1,
                              udf_dw_compatible);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(PlanVerifierTest, AcceptsFactoryBuiltPlan) {
  MISO_EXPECT_OK(VerifyPlan(AnalystPlan()));
}

TEST(PlanVerifierTest, RejectsEmptyPlan) {
  const Status status = VerifyPlan(plan::Plan());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kPlanEmpty);
}

TEST(PlanVerifierTest, RejectsCycleWithV101) {
  auto a = PlanTestPeer::NewNode(OpKind::kFilter);
  auto b = PlanTestPeer::NewNode(OpKind::kFilter);
  PlanTestPeer::SetChildren(a, {b});
  PlanTestPeer::SetChildren(b, {a});

  const Status status = VerifyNodeGraph(a);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kPlanCycle)
      << status.ToString();

  // Break the shared_ptr cycle so LeakSanitizer stays quiet.
  PlanTestPeer::SetChildren(b, {});
}

TEST(PlanVerifierTest, RejectsWrongArityWithV102) {
  // A Join with a single child.
  auto scan = PlanTestPeer::NewNode(OpKind::kScan);
  auto join = PlanTestPeer::NewNode(OpKind::kJoin);
  PlanTestPeer::SetChildren(join, {scan});

  const Status status = VerifyNodeGraph(join);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kPlanArity)
      << status.ToString();
}

TEST(PlanVerifierTest, RejectsAggregateOverLeafWithV102) {
  auto agg = PlanTestPeer::NewNode(OpKind::kAggregate);
  const Status status = VerifyNodeGraph(agg);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kPlanArity);
}

TEST(PlanVerifierTest, RejectsDanglingViewReferenceWithV104) {
  // A DW ViewScan whose id resolves in no catalog.
  plan::NodeFactory factory(&PaperCatalog());
  const plan::Plan query = AnalystPlan();
  const NodePtr view_scan = factory.MakeViewScan(
      /*view_id=*/777, /*view_signature=*/query.signature(), StoreKind::kDw,
      query.root()->output_schema(), query.root()->stats(),
      query.root()->canonical());

  views::ViewCatalog empty_dw(/*storage_budget=*/kGiB);
  PlanVerifierOptions options;
  options.dw_views = &empty_dw;
  const Status status = VerifyNodeGraph(view_scan, options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kPlanViewUnresolved)
      << status.ToString();

  // Without a catalog to check against, the reference is not verifiable
  // and the graph passes.
  MISO_EXPECT_OK(VerifyNodeGraph(view_scan));
}

TEST(PlanVerifierTest, ResolvesViewReferenceAgainstCatalog) {
  plan::NodeFactory factory(&PaperCatalog());
  const plan::Plan query = AnalystPlan();

  views::View view = views::ViewFromNode(*query.root());
  view.id = 42;
  views::ViewCatalog dw(/*storage_budget=*/100 * kTiB);
  MISO_ASSERT_OK(dw.AddUnchecked(view));

  const NodePtr view_scan = factory.MakeViewScan(
      view.id, view.signature, StoreKind::kDw, view.schema, view.stats,
      view.canonical);
  PlanVerifierOptions options;
  options.dw_views = &dw;
  MISO_EXPECT_OK(VerifyNodeGraph(view_scan, options));
}

TEST(SplitVerifierTest, AcceptsEveryEnumeratedSplit) {
  const plan::Plan query = AnalystPlan();
  auto candidates = optimizer::EnumerateSplits(query.root());
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  ASSERT_GT(candidates->size(), 1u);
  for (const optimizer::SplitCandidate& candidate : *candidates) {
    MISO_EXPECT_OK(VerifySplit(query.root(), candidate));
  }
}

TEST(SplitVerifierTest, RejectsDwToHvBackEdgeWithV120) {
  // Put one interior DW-executable node in DW without its parent: the
  // node's output would flow DW -> HV, violating §3.1 monotonicity.
  const plan::Plan query = AnalystPlan();
  const std::vector<NodePtr> nodes = query.PostOrder();
  NodePtr dw_executable_interior;
  for (const NodePtr& node : nodes) {
    if (node != query.root() && node->dw_executable() &&
        !node->children().empty()) {
      dw_executable_interior = node;
      break;
    }
  }
  ASSERT_NE(dw_executable_interior, nullptr);

  optimizer::SplitCandidate split;
  split.dw_side = {dw_executable_interior};
  for (const NodePtr& child : dw_executable_interior->children()) {
    split.cut_inputs.push_back(child);
  }
  const Status status = VerifySplit(query.root(), split);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kSplitBackEdge)
      << status.ToString();
}

TEST(SplitVerifierTest, RejectsHvOnlyOperatorOnDwSideWithV121) {
  // The whole plan in DW, including the raw Scans/Extracts that cannot
  // execute there.
  const plan::Plan query = AnalystPlan();
  optimizer::SplitCandidate split;
  split.dw_side = query.PostOrder();
  const Status status = VerifySplit(query.root(), split);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kSplitNotDwExecutable)
      << status.ToString();
}

TEST(SplitVerifierTest, RejectsCutInputsOnHvOnlySplitWithV123) {
  const plan::Plan query = AnalystPlan();
  optimizer::SplitCandidate split;  // empty dw_side = HV-only
  split.cut_inputs = {query.root()};
  const Status status = VerifySplit(query.root(), split);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kSplitCutInconsistent);
}

TEST(SplitVerifierTest, RejectsMissingCutInputWithV123) {
  // Root-only DW side but no cut inputs for its children.
  const plan::Plan query = AnalystPlan();
  optimizer::SplitCandidate split;
  split.dw_side = {query.root()};
  const Status status = VerifySplit(query.root(), split);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kSplitCutInconsistent)
      << status.ToString();
}

TEST(SplitVerifierTest, RejectsForeignNodeWithV124) {
  const plan::Plan query = AnalystPlan();
  const plan::Plan other = AnalystPlan();  // distinct node identities
  optimizer::SplitCandidate split;
  split.dw_side = {other.root()};
  const Status status = VerifySplit(query.root(), split);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kSplitForeignNode);
}

TEST(SplitVerifierTest, RejectsTransferredBytesMismatchWithV126) {
  const plan::Plan query = AnalystPlan();
  auto candidates = optimizer::EnumerateSplits(query.root());
  ASSERT_TRUE(candidates.ok());
  // Pick a real multistore split (non-empty DW side and cut).
  const optimizer::SplitCandidate* chosen = nullptr;
  for (const optimizer::SplitCandidate& c : *candidates) {
    if (!c.dw_side.empty() && !c.cut_inputs.empty()) {
      chosen = &c;
      break;
    }
  }
  ASSERT_NE(chosen, nullptr);

  optimizer::MultistorePlan ms;
  ms.executed = query;
  ms.dw_side = chosen->dw_side;
  ms.cut_inputs = chosen->cut_inputs;
  ms.transferred_bytes = -1;  // deliberately wrong
  const Status status = VerifyMultistorePlan(ms);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ExtractVerifyCode(status), VerifyCode::kSplitBytesMismatch)
      << status.ToString();
}

TEST(SplitVerifierTest, EnumeratorSelfVerifiesWhenEnabled) {
  // The wiring inside EnumerateSplits runs the verifier on every
  // candidate when the gate is on; a factory-built plan must still pass.
  ScopedVerification on(true);
  const plan::Plan query = AnalystPlan(/*udf_dw_compatible=*/false);
  auto candidates = optimizer::EnumerateSplits(query.root());
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  EXPECT_GE(candidates->size(), 1u);
}

TEST(VerifyGateTest, ScopedVerificationRestores) {
  const bool before = Enabled();
  {
    ScopedVerification on(true);
    EXPECT_TRUE(Enabled());
    {
      ScopedVerification off(false);
      EXPECT_FALSE(Enabled());
    }
    EXPECT_TRUE(Enabled());
  }
  EXPECT_EQ(Enabled(), before);
}

TEST(ErrorCodeTest, TokensAreStableAndDistinct) {
  const VerifyCode codes[] = {
      VerifyCode::kPlanEmpty,          VerifyCode::kPlanCycle,
      VerifyCode::kPlanArity,          VerifyCode::kPlanSchema,
      VerifyCode::kPlanViewUnresolved, VerifyCode::kPlanTooLarge,
      VerifyCode::kSplitBackEdge,      VerifyCode::kSplitNotDwExecutable,
      VerifyCode::kSplitViewWrongSide, VerifyCode::kSplitCutInconsistent,
      VerifyCode::kSplitForeignNode,   VerifyCode::kSplitDuplicateNode,
      VerifyCode::kSplitBytesMismatch, VerifyCode::kDesignHvOverBudget,
      VerifyCode::kDesignDwOverBudget, VerifyCode::kDesignTransferOverBudget,
      VerifyCode::kDesignDuplicatePlacement,
      VerifyCode::kDesignAccountingDrift, VerifyCode::kReorgUnknownView,
      VerifyCode::kReorgDuplicateMove, VerifyCode::kMergedItemSplit,
  };
  std::set<std::string_view> tokens;
  for (VerifyCode code : codes) {
    const std::string_view token = VerifyCodeToken(code);
    EXPECT_NE(token, "V???");
    EXPECT_TRUE(tokens.insert(token).second) << "duplicate token " << token;
    // Round-trip through a Status.
    const Status status = MakeVerifyError(code, "detail");
    EXPECT_EQ(ExtractVerifyCode(status), code);
  }
}

TEST(ErrorCodeTest, NonVerifierStatusYieldsNoCode) {
  EXPECT_EQ(ExtractVerifyCode(Status::OK()), VerifyCode::kOk);
  EXPECT_FALSE(
      ExtractVerifyCode(Status::Internal("plain error")).has_value());
}

}  // namespace
}  // namespace miso::verify
