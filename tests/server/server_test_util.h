#ifndef MISO_TESTS_SERVER_SERVER_TEST_UTIL_H_
#define MISO_TESTS_SERVER_SERVER_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "../test_util.h"
#include "obs/trace.h"
#include "server/miso_server.h"
#include "server/replay.h"

namespace miso::server_testing {

/// A pool of distinct analyst queries cycled to `n` sessions. Repeated
/// shapes are exactly what an evolving analyst stream produces, and they
/// exercise the harvest-dedup path (wave-mates producing the same view).
inline std::vector<workload::WorkloadQuery> CycledQueries(int n) {
  const relation::Catalog* catalog = &testing_util::PaperCatalog();
  struct Spec {
    const char* name;
    const char* topic;
    double sel;
    bool dw_ok;
  };
  const std::vector<Spec> specs = {
      {"trend_a", "superbowl", 0.05, true},
      {"trend_b", "elections", 0.08, true},
      {"trend_c", "olympics", 0.03, false},
      {"trend_d", "quake", 0.10, true},
      {"trend_e", "oscars", 0.06, false},
      {"trend_f", "ipo", 0.04, true},
      {"trend_g", "worldcup", 0.07, true},
      {"trend_h", "royals", 0.09, false},
  };
  std::vector<workload::WorkloadQuery> queries;
  queries.reserve(static_cast<size_t>(n));
  std::vector<plan::Plan> plans;
  for (const Spec& s : specs) {
    Result<plan::Plan> plan = testing_util::MakeAnalystPlan(
        catalog, s.name, s.topic, s.sel, s.dw_ok);
    if (!plan.ok()) {
      ADD_FAILURE() << plan.status().ToString();
      return queries;
    }
    plans.push_back(std::move(*plan));
  }
  for (int i = 0; i < n; ++i) {
    workload::WorkloadQuery q;
    q.plan = plans[static_cast<size_t>(i) % plans.size()];
    queries.push_back(std::move(q));
  }
  return queries;
}

struct ServedRun {
  sim::RunReport report;
  std::vector<std::string> trace;
  std::vector<server::SessionResult> sessions;  // in admission order
};

/// Submits every query session-by-session, collects each future, and
/// returns report + drained trace + per-session results. `threads <= 0`
/// leaves MISO_THREADS resolution alone; otherwise the env var is pinned
/// for the run (the byte-identity sweeps exercise {1, 2, 8}).
inline Result<ServedRun> ServeAll(
    const server::ServerConfig& config,
    const std::vector<workload::WorkloadQuery>& queries, int threads) {
  obs::Trace().Drain();
  if (threads > 0) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", threads);
    setenv("MISO_THREADS", buf, /*overwrite=*/1);
  }
  ServedRun run;
  {
    server::ServerConfig cfg = config;
    if (cfg.expected_sessions == 0) {
      cfg.expected_sessions = static_cast<int>(queries.size());
    }
    server::MisoServer server(&testing_util::PaperCatalog(), cfg);
    std::vector<std::future<server::SessionResult>> futures;
    futures.reserve(queries.size());
    for (const workload::WorkloadQuery& q : queries) {
      futures.push_back(server.Submit(q));
    }
    server.Close();
    for (std::future<server::SessionResult>& f : futures) {
      run.sessions.push_back(f.get());
    }
    Result<sim::RunReport> report = server.Finish();
    if (threads > 0) unsetenv("MISO_THREADS");
    if (!report.ok()) return report.status();
    run.report = std::move(*report);
  }
  run.trace = obs::Trace().Drain();
  return run;
}

inline int CountEvents(const std::vector<std::string>& trace,
                       const char* kind) {
  const std::string needle = std::string("{\"event\":\"") + kind + "\"";
  int count = 0;
  for (const std::string& line : trace) {
    if (line.rfind(needle, 0) == 0) ++count;
  }
  return count;
}

}  // namespace miso::server_testing

#endif  // MISO_TESTS_SERVER_SERVER_TEST_UTIL_H_
