// Overload protection for the online server (DESIGN.md §16): the
// DW-health circuit breaker state machine, deadline-driven load
// shedding with priority classes, session retry budgets as terminal
// per-session outcomes, the stuck-wave watchdog, the V211/V212
// invariants — and the two contracts that make the whole layer safe to
// ship: byte-identity across thread counts with everything on, and
// byte-identity with the pre-overload serving path with everything off
// (or enabled but never triggering).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "server/overload.h"
#include "server_test_util.h"
#include "sim/report_io.h"
#include "verify/error_codes.h"

namespace miso::server {
namespace {

using server_testing::CountEvents;
using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;
using testing_util::PaperCatalog;

OverloadConfig BreakerCfg(int threshold, Seconds cooldown, int half_open) {
  OverloadConfig cfg;
  cfg.breaker = true;
  cfg.breaker_failure_threshold = threshold;
  cfg.breaker_cooldown_s = cooldown;
  cfg.breaker_half_open_successes = half_open;
  return cfg;
}

TEST(DwCircuitBreakerTest, TripsOnlyOnConsecutiveDwFaults) {
  DwCircuitBreaker breaker(BreakerCfg(3, 100, 2));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(breaker.RecordOutcome(true, true, 0).has_value());
  EXPECT_FALSE(breaker.RecordOutcome(true, true, 1).has_value());
  // A clean DW contact resets the consecutive-failure streak.
  EXPECT_FALSE(breaker.RecordOutcome(true, false, 2).has_value());
  EXPECT_FALSE(breaker.RecordOutcome(true, true, 3).has_value());
  EXPECT_FALSE(breaker.RecordOutcome(true, true, 4).has_value());
  const std::optional<DwCircuitBreaker::Edge> edge =
      breaker.RecordOutcome(true, true, 5);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->from, BreakerState::kClosed);
  EXPECT_EQ(edge->to, BreakerState::kOpen);
  EXPECT_EQ(edge->failures, 3);
  EXPECT_EQ(edge->at, 5.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.transitions(), 1);
  EXPECT_TRUE(breaker.status().ok()) << breaker.status().ToString();
}

TEST(DwCircuitBreakerTest, NonDwContactSessionsAreNeutral) {
  DwCircuitBreaker breaker(BreakerCfg(1, 100, 1));
  // HV-only / degraded sessions carry no DW health signal either way.
  EXPECT_FALSE(breaker.RecordOutcome(false, true, 0).has_value());
  EXPECT_FALSE(breaker.RecordOutcome(false, true, 1).has_value());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.RecordOutcome(true, true, 2).has_value());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(DwCircuitBreakerTest, CooldownProbesHalfOpenThenCleanContactsClose) {
  DwCircuitBreaker breaker(BreakerCfg(1, 100, 2));
  ASSERT_TRUE(breaker.RecordOutcome(true, true, 10).has_value());
  EXPECT_FALSE(breaker.AdvanceTime(50).has_value());
  EXPECT_EQ(breaker.OpenSeconds(50), 40.0);
  // Faults and successes while open are neutral (the server serves
  // HV-only anyway; nothing it sees is a DW health signal).
  EXPECT_FALSE(breaker.RecordOutcome(true, true, 60).has_value());
  const std::optional<DwCircuitBreaker::Edge> half_open =
      breaker.AdvanceTime(110);
  ASSERT_TRUE(half_open.has_value());
  EXPECT_EQ(half_open->from, BreakerState::kOpen);
  EXPECT_EQ(half_open->to, BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.OpenSeconds(110), 100.0);
  // First clean probe is not yet enough to close at half_open = 2.
  EXPECT_FALSE(breaker.RecordOutcome(true, false, 120).has_value());
  const std::optional<DwCircuitBreaker::Edge> closed =
      breaker.RecordOutcome(true, false, 130);
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->to, BreakerState::kClosed);
  EXPECT_EQ(breaker.transitions(), 3);
  EXPECT_EQ(breaker.transition_epoch(), 3u);
  // Closed again: open seconds stop accumulating.
  EXPECT_EQ(breaker.OpenSeconds(500), 100.0);
  EXPECT_TRUE(breaker.status().ok());
}

TEST(DwCircuitBreakerTest, HalfOpenFaultReopensAndRestartsCooldown) {
  DwCircuitBreaker breaker(BreakerCfg(1, 100, 2));
  ASSERT_TRUE(breaker.RecordOutcome(true, true, 0).has_value());
  ASSERT_TRUE(breaker.AdvanceTime(100).has_value());  // -> half-open
  const std::optional<DwCircuitBreaker::Edge> reopened =
      breaker.RecordOutcome(true, true, 101);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->from, BreakerState::kHalfOpen);
  EXPECT_EQ(reopened->to, BreakerState::kOpen);
  // The cooldown restarts from the re-open stamp, not the original trip.
  EXPECT_FALSE(breaker.AdvanceTime(150).has_value());
  EXPECT_TRUE(breaker.AdvanceTime(201).has_value());
  EXPECT_EQ(breaker.transitions(), 4);
}

TEST(DwCircuitBreakerTest, ThresholdsClampToAtLeastOne) {
  DwCircuitBreaker breaker(BreakerCfg(0, 100, 0));
  EXPECT_TRUE(breaker.RecordOutcome(true, true, 0).has_value());  // trip
  ASSERT_TRUE(breaker.AdvanceTime(100).has_value());
  EXPECT_TRUE(breaker.RecordOutcome(true, false, 101).has_value());  // close
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(DwCircuitBreakerTest, StateNamesMatchTraceVocabulary) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

TEST(FaultSiteTest, DwPathSitesAreTransferAndLoad) {
  EXPECT_FALSE(fault::IsDwPathSite(fault::FaultSite::kHvJob));
  EXPECT_TRUE(fault::IsDwPathSite(fault::FaultSite::kTransfer));
  EXPECT_TRUE(fault::IsDwPathSite(fault::FaultSite::kDwLoad));
  EXPECT_FALSE(fault::IsDwPathSite(fault::FaultSite::kReorg));
}

// ---------------------------------------------------------------------
// Deadline-driven load shedding.

ServerConfig ShedConfig() {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.wave_size = 4;
  config.overload.admission_deadlines = true;
  // Two tiers: gold (never shed) and batch (one simulated hour). All
  // sessions arrive at t=0, so queue wait is the simulated clock itself
  // and every batch session reducing after the first hour is shed.
  config.overload.classes = {{"gold", 0}, {"batch", 3600}};
  config.overload.classifier = [](const workload::WorkloadQuery&,
                                  int session_id) { return session_id % 2; };
  return config;
}

TEST(ServerOverloadShedTest, DeadlineExceededBatchSessionsAreShed) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(40);
  const ServerConfig config = ShedConfig();
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));
  // The run completing at all means V212 held at Finish (overload is
  // enabled, so the shed-accounting balance was verified there).
  EXPECT_EQ(run.report.sessions_admitted, 40);
  EXPECT_GT(run.report.sessions_shed, 0);
  EXPECT_EQ(run.report.sessions_failed, 0);
  EXPECT_EQ(static_cast<int>(run.report.queries.size()) +
                run.report.sessions_shed,
            run.report.sessions_admitted);
  int shed_seen = 0;
  for (const SessionResult& s : run.sessions) {
    if (s.outcome == SessionOutcome::kShed) {
      shed_seen += 1;
      EXPECT_EQ(s.session_id % 2, 1) << "gold sessions are never shed";
      EXPECT_EQ(s.status.code(), StatusCode::kOutOfBudget)
          << s.status.ToString();
      EXPECT_NE(s.status.message().find("shed"), std::string::npos);
    } else {
      EXPECT_EQ(s.outcome, SessionOutcome::kCompleted);
      EXPECT_TRUE(s.status.ok()) << s.status.ToString();
    }
  }
  EXPECT_EQ(shed_seen, run.report.sessions_shed);
  // Shed sessions leave no record: completed records keep a gap-free
  // admission-order story of the answered sessions only.
  for (const sim::QueryRecord& q : run.report.queries) {
    EXPECT_EQ(q.index % 2 == 1 && q.completion_time > 3600, false)
        << "batch session " << q.index << " completed past its deadline";
  }
}

TEST(ServerOverloadShedTest, ArrivalIntervalExtendsDeadlines) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(40);
  ServerConfig config = ShedConfig();
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun packed,
                            ServeAll(config, queries, /*threads=*/2));
  // Spacing arrivals out shrinks every session's simulated queue wait,
  // so strictly fewer (or equal) sessions get shed.
  config.overload.arrival_interval_s = 2000;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun spaced,
                            ServeAll(config, queries, /*threads=*/2));
  EXPECT_LT(spaced.report.sessions_shed, packed.report.sessions_shed);
}

// ---------------------------------------------------------------------
// Breaker × chaos server integration.

fault::FaultSpec HarshChaos(uint64_t seed, double rate, int attempts) {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kChaos;
  spec.seed = seed;
  spec.rate = rate;
  spec.retry.max_attempts = attempts;
  return spec;
}

ServerConfig BreakerChaosConfig() {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.sim.reorg_every = 5;
  config.wave_size = 5;
  config.online_reorg = true;
  config.sim.fault = HarshChaos(/*seed=*/5, /*rate=*/0.3, /*attempts=*/2);
  // The cooldown must dwarf a session's simulated runtime (thousands of
  // seconds here), or the breaker re-probes before a single wave ever
  // plans against the open state.
  config.overload = BreakerCfg(/*threshold=*/2, /*cooldown=*/100000,
                               /*half_open=*/2);
  return config;
}

TEST(ServerOverloadBreakerTest, BreakerOpensUnderChaosAndTracesEveryEdge) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  const ServerConfig config = BreakerChaosConfig();
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));
  EXPECT_GT(run.report.breaker_transitions, 0) << "breaker never tripped";
  EXPECT_GT(run.report.breaker_open_s, 0.0);
  EXPECT_GT(run.report.breaker_degraded_sessions, 0);
  EXPECT_EQ(CountEvents(run.trace, "server.breaker"),
            run.report.breaker_transitions);
  int breaker_degraded = 0;
  for (const sim::QueryRecord& q : run.report.queries) {
    if (q.breaker_degraded) {
      breaker_degraded += 1;
      EXPECT_TRUE(q.degraded);
      EXPECT_EQ(q.breakdown.dw_exec_s, 0.0);
      EXPECT_EQ(q.breakdown.transfer_load_s, 0.0);
    }
  }
  EXPECT_EQ(breaker_degraded, run.report.breaker_degraded_sessions);
  EXPECT_GE(run.report.degraded_queries, run.report.breaker_degraded_sessions);
}

TEST(ServerOverloadBreakerTest, RetryExhaustionIsTerminalPerSessionWithBreakerOn) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  ServerConfig config = BreakerChaosConfig();

  // The same chaos with overload protection off: retry exhaustion
  // surfaces as the run-level error the batch simulator would abort
  // with (the lowest-indexed failing session's status).
  config.overload = OverloadConfig{};
  const Result<sim::RunReport> off =
      ReplayWorkload(&PaperCatalog(), config, queries);
  ASSERT_FALSE(off.ok()) << "chaos too mild: no session exhausted retries";
  EXPECT_NE(off.status().message().find("exhausted"), std::string::npos)
      << off.status().ToString();

  // Breaker on: the identical chaos completes with zero run-level
  // errors; exhausted sessions are charged to sessions_failed and the
  // accounting balances (V212 ran at Finish).
  config.overload = BreakerCfg(2, 5000, 2);
  MISO_ASSERT_OK_AND_ASSIGN(const sim::RunReport on,
                            ReplayWorkload(&PaperCatalog(), config, queries));
  EXPECT_GT(on.sessions_failed, 0);
  EXPECT_EQ(on.sessions_admitted, 150);
  EXPECT_EQ(static_cast<int>(on.queries.size()) + on.sessions_shed +
                on.sessions_failed,
            on.sessions_admitted);
}

TEST(ServerOverloadBreakerTest, EveryBreakerEdgeInvalidatesThePlanCache) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  ServerConfig config = BreakerChaosConfig();
  config.plan_cache = true;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));
  ASSERT_GT(run.report.breaker_transitions, 0);
  // Wholesale invalidations come from published design flips, DW-outage
  // edges, and breaker edges — one apiece. Flips + breaker edges are a
  // hard floor within the run itself.
  EXPECT_GE(run.report.plan_cache_invalidations,
            static_cast<int64_t>(run.report.epochs_published) +
                run.report.breaker_transitions);
}

// ---------------------------------------------------------------------
// Determinism: model-class outputs with the full overload stack on are
// a pure function of admission order (thread count is wall-clock only)
// and replayable from the fault seed.

ServerConfig FullOverloadConfig() {
  ServerConfig config = BreakerChaosConfig();
  config.overload.admission_deadlines = true;
  config.overload.classes = {{"gold", 0}, {"batch", 30000}};
  config.overload.classifier = [](const workload::WorkloadQuery&,
                                  int session_id) { return session_id % 2; };
  return config;
}

TEST(ServerOverloadDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  const ServerConfig config = FullOverloadConfig();
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun one,
                            ServeAll(config, queries, /*threads=*/1));
  EXPECT_GT(one.report.sessions_shed + one.report.sessions_failed, 0);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("MISO_THREADS=" + std::to_string(threads));
    MISO_ASSERT_OK_AND_ASSIGN(const ServedRun many,
                              ServeAll(config, queries, threads));
    EXPECT_EQ(many.report.sessions_shed, one.report.sessions_shed);
    EXPECT_EQ(many.report.sessions_failed, one.report.sessions_failed);
    EXPECT_EQ(many.report.breaker_transitions, one.report.breaker_transitions);
    EXPECT_EQ(many.report.breaker_open_s, one.report.breaker_open_s);
    EXPECT_EQ(many.report.breaker_degraded_sessions,
              one.report.breaker_degraded_sessions);
    EXPECT_EQ(sim::QueriesToCsv(one.report), sim::QueriesToCsv(many.report));
    EXPECT_EQ(sim::SummaryToCsv(one.report, /*with_header=*/false),
              sim::SummaryToCsv(many.report, /*with_header=*/false));
    EXPECT_EQ(one.trace, many.trace);
  }
}

TEST(ServerOverloadDeterminismTest, ReplayableFromFaultSeed) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  const ServerConfig config = FullOverloadConfig();
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun a,
                            ServeAll(config, queries, /*threads=*/2));
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun b,
                            ServeAll(config, queries, /*threads=*/2));
  EXPECT_EQ(sim::QueriesToCsv(a.report), sim::QueriesToCsv(b.report));
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.report.sessions_shed, b.report.sessions_shed);
  // A different fault seed is a different chaos universe: same
  // machinery, different shed/failed/breaker story.
  ServerConfig reseeded = config;
  reseeded.sim.fault.seed = 6;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun c,
                            ServeAll(reseeded, queries, /*threads=*/2));
  EXPECT_NE(sim::QueriesToCsv(a.report), sim::QueriesToCsv(c.report));
}

// ---------------------------------------------------------------------
// Zero-cost contract (tools/check.sh --overload requires these by
// name): overload disabled — and enabled but never triggering — serves
// byte-identically to the pre-overload pipeline, traces included.

TEST(ServerOverloadZeroCost, DisabledConfigMatchesBaselineByteForByte) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(96);
  ServerConfig baseline;
  baseline.sim.variant = sim::SystemVariant::kMsMiso;
  baseline.sim.trace = true;
  baseline.sim.reorg_every = 8;
  baseline.wave_size = 4;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun base,
                            ServeAll(baseline, queries, /*threads=*/2));

  // A default-constructed OverloadConfig is the disabled state; pin it.
  ServerConfig disabled = baseline;
  disabled.overload = OverloadConfig{};
  ASSERT_FALSE(disabled.overload.Enabled());
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun off,
                            ServeAll(disabled, queries, /*threads=*/2));
  EXPECT_EQ(sim::QueriesToCsv(base.report), sim::QueriesToCsv(off.report));
  EXPECT_EQ(sim::SummaryToCsv(base.report, /*with_header=*/false),
            sim::SummaryToCsv(off.report, /*with_header=*/false));
  EXPECT_EQ(base.trace, off.trace);
  EXPECT_EQ(off.report.sessions_shed, 0);
  EXPECT_EQ(off.report.breaker_transitions, 0);
}

TEST(ServerOverloadZeroCost, IdleEnabledOverloadMatchesDisabledByteForByte) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(96);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.sim.reorg_every = 8;
  config.wave_size = 4;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun off,
                            ServeAll(config, queries, /*threads=*/2));

  // Everything armed, nothing triggering: deadline-free classes, a
  // breaker that cannot trip without faults, a watchdog that cannot fire
  // on completing waves.
  ServerConfig idle = config;
  idle.overload.admission_deadlines = true;
  idle.overload.classes = {{"gold", 0}};
  idle.overload.breaker = true;
  idle.overload.breaker_failure_threshold = 1000000;
  idle.overload.watchdog_stuck_waves = 1000000;
  ASSERT_TRUE(idle.overload.Enabled());
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun armed,
                            ServeAll(idle, queries, /*threads=*/2));
  EXPECT_EQ(sim::QueriesToCsv(off.report), sim::QueriesToCsv(armed.report));
  EXPECT_EQ(sim::SummaryToCsv(off.report, /*with_header=*/false),
            sim::SummaryToCsv(armed.report, /*with_header=*/false));
  EXPECT_EQ(off.trace, armed.trace);
  EXPECT_EQ(armed.report.sessions_shed, 0);
  EXPECT_EQ(armed.report.sessions_failed, 0);
  EXPECT_EQ(armed.report.breaker_transitions, 0);
  EXPECT_EQ(armed.report.breaker_open_s, 0.0);
  // With overload enabled the admitted/terminal balance is reported
  // (and was V212-checked at Finish).
  EXPECT_EQ(armed.report.sessions_admitted, 96);
}

// ---------------------------------------------------------------------
// Stuck-wave watchdog.

TEST(ServerOverloadWatchdogTest, AllShedWavesFailFastWithV213) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(40);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.wave_size = 4;
  config.overload.admission_deadlines = true;
  // One class with a deadline no session can meet once the clock has
  // moved at all: after the first completed session every later wave
  // sheds wholesale, and the watchdog fails the run fast instead of
  // grinding through hundreds of doomed waves.
  config.overload.classes = {{"doomed", 1e-9}};
  config.overload.watchdog_stuck_waves = 3;
  const Result<ServedRun> run = ServeAll(config, queries, /*threads=*/2);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(verify::ExtractVerifyCode(run.status()),
            verify::VerifyCode::kServerWaveStuck)
      << run.status().ToString();
  EXPECT_NE(run.status().message().find("watchdog"), std::string::npos);
}

TEST(ServerOverloadWatchdogTest, CompletingWavesResetTheWatchdog) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(40);
  ServerConfig config = ShedConfig();  // gold tier always completes
  config.overload.watchdog_stuck_waves = 3;
  // Every wave of 4 holds two gold sessions, so no wave is ever stuck
  // and the watchdog never fires even though half the run is shed.
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));
  EXPECT_GT(run.report.sessions_shed, 0);
}

}  // namespace
}  // namespace miso::server
