// The design-epoch plan cache's identity and invalidation contract
// (DESIGN.md §14): a cached plan may only be served while the design it
// was planned against is provably unchanged — (query signature, HV/DW
// catalog content fingerprints, cost-model epoch) all match — and the
// cache is wiped wholesale at every published design flip and every
// DW-outage degradation edge. DW-outage HV-only replans bypass the cache
// entirely: they neither hit nor populate the normal-path entries.
//
// The ByteIdentityMatrix is the headline: per-session records, run
// summary, and the JSONL trace are byte-identical whether the cache is
// on, off, or thrashing under a one-entry byte budget, across
// MISO_THREADS {1, 2, 8}. The cache trades wall-clock only.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.h"
#include "server_test_util.h"
#include "server/plan_cache.h"
#include "sim/report_io.h"

namespace miso::server {
namespace {

using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;

ServerConfig CacheConfig(bool online_reorg, int reorg_every) {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.reorg_every = reorg_every;
  config.wave_size = 8;
  config.online_reorg = online_reorg;
  config.admission_capacity = 64;
  // Serial waves isolate the cache contract from pipelining (which has
  // its own battery in server_pipeline_test.cc).
  config.pipeline_waves = false;
  return config;
}

TEST(ServerPlanCacheTest, FlipInvalidatesCacheWholesale) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(96);

  ServerConfig with_flips = CacheConfig(/*online_reorg=*/true,
                                        /*reorg_every=*/16);
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun flips,
                            ServeAll(with_flips, queries, /*threads=*/1));

  // Every non-degraded session does exactly one counted lookup, decided
  // serially in admission order; no outage here, so all 96 count.
  EXPECT_EQ(flips.report.plan_cache_hits + flips.report.plan_cache_misses,
            96);
  // One wholesale invalidation per published flip, and nothing else: a
  // rolled-back or outage-skipped reorganization leaves both catalogs
  // untouched, so the monotone-growth window stays open.
  EXPECT_GT(flips.report.epochs_published, 0);
  EXPECT_EQ(flips.report.plan_cache_invalidations,
            flips.report.epochs_published);

  // A flip-free serve of the same stream keeps every window open and can
  // only hit more: the cycled templates re-plan against a stable design.
  ServerConfig no_flips = CacheConfig(/*online_reorg=*/false,
                                      /*reorg_every=*/0);
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun stable,
                            ServeAll(no_flips, queries, /*threads=*/1));
  EXPECT_EQ(stable.report.plan_cache_invalidations, 0);
  EXPECT_GT(stable.report.plan_cache_hits, 0);
  EXPECT_GE(stable.report.plan_cache_hits, flips.report.plan_cache_hits);
}

TEST(ServerPlanCacheTest, OutageWindowNeitherHitsNorPopulates) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(96);

  ServerConfig config = CacheConfig(/*online_reorg=*/false,
                                    /*reorg_every=*/0);
  config.sim.fault.profile = fault::FaultProfile::kOutage;
  config.sim.fault.rate = 0.0;  // the outage window only, no transients
  config.sim.fault.seed = 1;
  config.sim.fault.dw_outages = {{/*begin_query=*/16, /*end_query=*/48}};

  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/1));

  // The 32 in-window sessions degrade to HV-only plans...
  EXPECT_EQ(run.report.degraded_queries, 32);
  // ...and bypass the cache entirely: only the 64 normal-path sessions
  // ever perform a counted lookup.
  EXPECT_EQ(run.report.plan_cache_hits + run.report.plan_cache_misses,
            96 - 32);
  // Two degradation edges (entering and leaving the window), each wiping
  // the cache so no stale pre-outage plan survives the transition.
  EXPECT_EQ(run.report.plan_cache_invalidations, 2);

  // Degraded replans are byte-identical with the cache off: outage
  // handling never flows through the cache in either direction.
  ServerConfig cache_off = config;
  cache_off.plan_cache = false;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun off,
                            ServeAll(cache_off, queries, /*threads=*/1));
  EXPECT_EQ(off.report.plan_cache_hits, 0);
  EXPECT_EQ(off.report.plan_cache_misses, 0);
  EXPECT_EQ(sim::QueriesToCsv(run.report), sim::QueriesToCsv(off.report));
  EXPECT_EQ(run.report.Tti(), off.report.Tti());
}

TEST(ServerPlanCacheTest, ByteIdentityAcrossCacheModesAndThreadCounts) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(96);

  // Baseline: cache off, serial waves, one thread, trace on — the exact
  // serving path of the previous generation of the server.
  ServerConfig baseline = CacheConfig(/*online_reorg=*/true,
                                      /*reorg_every=*/16);
  baseline.sim.trace = true;
  baseline.plan_cache = false;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun base,
                            ServeAll(baseline, queries, /*threads=*/1));
  ASSERT_EQ(base.report.queries.size(), queries.size());
  EXPECT_FALSE(base.trace.empty());

  struct Variant {
    const char* label;
    bool cache;
    Bytes cache_bytes;
    bool pipeline;
  };
  const std::vector<Variant> variants = {
      {"cache-on", true, PlanCache::kDefaultMaxBytes, false},
      // A budget below one entry's floor keeps exactly one resident
      // entry and evicts on every insert — the eviction-heavy extreme.
      {"cache-tiny", true, PlanCache::kEntryBaseBytes, false},
      // Cache and speculative wave pipelining together: the full
      // serving-path fast configuration against the slow baseline.
      {"cache-on-pipelined", true, PlanCache::kDefaultMaxBytes, true},
      {"cache-off-pipelined", false, PlanCache::kDefaultMaxBytes, true},
  };
  for (const Variant& v : variants) {
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(v.label) +
                   " MISO_THREADS=" + std::to_string(threads));
      ServerConfig config = baseline;
      config.plan_cache = v.cache;
      config.plan_cache_bytes = v.cache_bytes;
      config.pipeline_waves = v.pipeline;
      MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                                ServeAll(config, queries, threads));
      EXPECT_EQ(sim::QueriesToCsv(base.report), sim::QueriesToCsv(run.report));
      EXPECT_EQ(sim::SummaryToCsv(base.report, /*with_header=*/false),
                sim::SummaryToCsv(run.report, /*with_header=*/false));
      EXPECT_EQ(base.report.Tti(), run.report.Tti());
      EXPECT_EQ(base.trace, run.trace);
    }
  }

  // The counters themselves are model-class for fixed knobs: the same
  // configuration replays the same hit/miss/eviction totals at any
  // thread count.
  ServerConfig tiny = baseline;
  tiny.plan_cache = true;
  tiny.plan_cache_bytes = PlanCache::kEntryBaseBytes;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun tiny_one,
                            ServeAll(tiny, queries, /*threads=*/1));
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun tiny_eight,
                            ServeAll(tiny, queries, /*threads=*/8));
  EXPECT_EQ(tiny_one.report.plan_cache_hits,
            tiny_eight.report.plan_cache_hits);
  EXPECT_EQ(tiny_one.report.plan_cache_misses,
            tiny_eight.report.plan_cache_misses);
  EXPECT_EQ(tiny_one.report.plan_cache_evictions,
            tiny_eight.report.plan_cache_evictions);
  // The one-entry budget really thrashes: every colliding insert evicts.
  EXPECT_GT(tiny_one.report.plan_cache_evictions, 0);
}

}  // namespace
}  // namespace miso::server
