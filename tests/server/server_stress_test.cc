// The server's headline determinism contract under load: ~2,000 query
// sessions pushed through the bounded admission queue with background
// reorganization enabled are byte-identical — per-session records, cost
// anatomy, run summary, and the JSONL trace — across MISO_THREADS in
// {1, 2, 8}. Threads and producer/consumer interleavings trade wall-clock
// only; every model-class output is a pure function of admission order.
//
// Also pins the batch-compatibility corner: `wave_size = 1` with
// `online_reorg = false` reproduces `MultistoreSimulator::Run`
// record-for-record.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "server_test_util.h"
#include "sim/report_io.h"
#include "sim/simulator.h"

namespace miso::server {
namespace {

using server_testing::CountEvents;
using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;
using testing_util::PaperCatalog;

ServerConfig StressConfig() {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  // A coarser cadence than the simulator default keeps the tuner load
  // proportionate to 2,000 sessions; every boundary still runs the full
  // background pipeline (tune, flip, step walk, movement gates).
  config.sim.reorg_every = 24;
  config.wave_size = 8;
  config.online_reorg = true;
  config.admission_capacity = 64;  // real backpressure on the submitter
  return config;
}

TEST(ServerStressTest, TwoThousandSessionsByteIdenticalAcrossThreadCounts) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(2000);
  ASSERT_EQ(queries.size(), 2000u);
  const ServerConfig config = StressConfig();

  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun one,
                            ServeAll(config, queries, /*threads=*/1));

  // Non-vacuity: the online machinery actually ran.
  ASSERT_EQ(one.report.queries.size(), queries.size());
  EXPECT_GT(one.report.epochs_published, 0);
  EXPECT_GT(one.report.waves, 0);
  EXPECT_GT(one.report.reorg_count, 0);
  EXPECT_GT(one.report.hv_exe_s, 0.0);
  EXPECT_GT(one.report.dw_exe_s, 0.0);
  EXPECT_GT(one.report.transfer_s, 0.0);
  EXPECT_EQ(CountEvents(one.trace, "server.session"),
            static_cast<int>(queries.size()));
  EXPECT_EQ(CountEvents(one.trace, "server.epoch"), one.report.reorg_count);

  // Every session future carries the same record the report does, in
  // admission order.
  for (size_t i = 0; i < one.sessions.size(); ++i) {
    const SessionResult& s = one.sessions[i];
    ASSERT_TRUE(s.status.ok()) << s.status.ToString();
    EXPECT_EQ(s.session_id, static_cast<int>(i));
    EXPECT_EQ(s.record.index, one.report.queries[i].index);
    EXPECT_EQ(s.record.epoch, one.report.queries[i].epoch);
    EXPECT_EQ(s.record.completion_time,
              one.report.queries[i].completion_time);
    EXPECT_EQ(s.record.breakdown.Total(),
              one.report.queries[i].breakdown.Total());
  }

  for (int threads : {2, 8}) {
    SCOPED_TRACE("MISO_THREADS=" + std::to_string(threads));
    MISO_ASSERT_OK_AND_ASSIGN(const ServedRun many,
                              ServeAll(config, queries, threads));
    EXPECT_EQ(sim::QueriesToCsv(one.report), sim::QueriesToCsv(many.report));
    EXPECT_EQ(sim::SummaryToCsv(one.report, /*with_header=*/false),
              sim::SummaryToCsv(many.report, /*with_header=*/false));
    EXPECT_EQ(one.report.Tti(), many.report.Tti());
    EXPECT_EQ(one.report.epochs_published, many.report.epochs_published);
    EXPECT_EQ(one.report.reorg_overlap_saved_s,
              many.report.reorg_overlap_saved_s);
    EXPECT_EQ(one.trace, many.trace);
    ASSERT_EQ(one.sessions.size(), many.sessions.size());
    for (size_t i = 0; i < one.sessions.size(); ++i) {
      EXPECT_EQ(one.sessions[i].record.completion_time,
                many.sessions[i].record.completion_time);
      EXPECT_EQ(one.sessions[i].epoch, many.sessions[i].epoch);
    }
  }
}

TEST(ServerStressTest, StopTheWorldWaveOfOneMatchesSimulatorExactly) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(48);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.wave_size = 1;
  config.online_reorg = false;

  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun served,
                            ServeAll(config, queries, /*threads=*/1));
  sim::MultistoreSimulator simulator(&PaperCatalog(), config.sim);
  MISO_ASSERT_OK_AND_ASSIGN(const sim::RunReport batch,
                            simulator.Run(queries));

  EXPECT_EQ(sim::QueriesToCsv(served.report), sim::QueriesToCsv(batch));
  EXPECT_EQ(sim::SummaryToCsv(served.report, /*with_header=*/false),
            sim::SummaryToCsv(batch, /*with_header=*/false));
  EXPECT_EQ(served.report.Tti(), batch.Tti());
  EXPECT_EQ(served.report.reorg_count, batch.reorg_count);
}

TEST(ServerStressTest, SubmitAfterCloseFailsFast) {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  MisoServer server(&PaperCatalog(), config);
  server.Close();
  std::vector<workload::WorkloadQuery> queries = CycledQueries(1);
  std::future<SessionResult> rejected = server.Submit(queries[0]);
  const SessionResult result = rejected.get();
  EXPECT_FALSE(result.status.ok());
  MISO_ASSERT_OK_AND_ASSIGN(const sim::RunReport report, server.Finish());
  EXPECT_TRUE(report.queries.empty());
}

TEST(ServerStressTest, BaselineVariantsAreRejected) {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kHvOnly;
  MisoServer server(&PaperCatalog(), config);
  std::vector<workload::WorkloadQuery> queries = CycledQueries(1);
  const SessionResult result = server.Submit(queries[0]).get();
  EXPECT_FALSE(result.status.ok());
  const Result<sim::RunReport> report = server.Finish();
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace miso::server
