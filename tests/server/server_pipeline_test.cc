// Wave pipelining (DESIGN.md §14): while wave N's serial reduce runs,
// wave N+1's planning speculates on the worker pool against a frozen
// design snapshot, validated by catalog content fingerprint at the join.
// The pipeline trades wall-clock only — records and traces are
// byte-identical with it off — and every scheduler exit path joins the
// in-flight speculation first, so a fatal mid-reduce can never leave a
// worker writing into freed wave state or a submitter holding a future
// that will never resolve.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "server_test_util.h"
#include "sim/report_io.h"

namespace miso::server {
namespace {

using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;
using testing_util::PaperCatalog;

ServerConfig PipelineConfig() {
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.reorg_every = 0;
  config.wave_size = 8;
  config.online_reorg = false;
  config.admission_capacity = 64;
  config.pipeline_waves = true;
  return config;
}

// A fatal during wave N's reduce (here: a failing reduce observer, the
// hook a deployment would use for result shipping) must drain the
// speculatively planned wave N+1 — join its workers, then fail its
// sessions — not abandon it. Sessions reduced before the fatal keep
// their results; everything at and after the poisoned session fails
// with the server status; no future is left unresolved (a stuck future
// would hang this test, and a worker writing into a destroyed wave
// would trip ASan/TSan in the sanitizer runs of this label).
TEST(ServerPipelineTest, FatalMidReduceDrainsSpeculativeWave) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(32);
  ServerConfig config = PipelineConfig();
  config.wave_size = 4;
  constexpr int kPoisoned = 5;
  config.reduce_observer = [](const sim::QueryRecord& record) -> Status {
    if (record.index == kPoisoned) {
      return Status::Internal("result sink rejected session");
    }
    return Status::OK();
  };

  setenv("MISO_THREADS", "4", /*overwrite=*/1);
  std::vector<std::future<SessionResult>> futures;
  {
    MisoServer server(&PaperCatalog(), config);
    futures.reserve(queries.size());
    for (const workload::WorkloadQuery& q : queries) {
      futures.push_back(server.Submit(q));
    }
    server.Close();
    for (size_t i = 0; i < futures.size(); ++i) {
      const SessionResult result = futures[i].get();
      if (i < static_cast<size_t>(kPoisoned)) {
        EXPECT_TRUE(result.status.ok())
            << "session " << i << ": " << result.status.ToString();
      } else {
        EXPECT_FALSE(result.status.ok()) << "session " << i;
      }
    }
    const Result<sim::RunReport> report = server.Finish();
    EXPECT_FALSE(report.ok());
  }
  unsetenv("MISO_THREADS");
}

// Submitting nothing after a fatal also fails fast instead of queueing
// into a dead scheduler.
TEST(ServerPipelineTest, SubmitAfterFatalFailsFast) {
  std::vector<workload::WorkloadQuery> queries = CycledQueries(2);
  ServerConfig config = PipelineConfig();
  config.wave_size = 1;
  config.reduce_observer = [](const sim::QueryRecord&) {
    return Status::Internal("always fatal");
  };
  MisoServer server(&PaperCatalog(), config);
  const SessionResult first = server.Submit(queries[0]).get();
  EXPECT_FALSE(first.status.ok());
  const SessionResult second = server.Submit(queries[1]).get();
  EXPECT_FALSE(second.status.ok());
  EXPECT_FALSE(server.Finish().ok());
}

TEST(ServerPipelineTest, PipeliningIsByteIdenticalAndObservable) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(256);

  ServerConfig serial = PipelineConfig();
  serial.sim.trace = true;
  serial.pipeline_waves = false;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun off,
                            ServeAll(serial, queries, /*threads=*/1));
  ASSERT_EQ(off.report.queries.size(), queries.size());
  EXPECT_EQ(off.report.waves_speculative, 0);

  ServerConfig pipelined = PipelineConfig();
  pipelined.sim.trace = true;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun on,
                            ServeAll(pipelined, queries, /*threads=*/4));

  // Model-class outputs are untouched by speculation: accepted waves
  // were planned against a fingerprint-validated frozen snapshot, and
  // rejected ones were replanned from scratch.
  EXPECT_EQ(sim::QueriesToCsv(off.report), sim::QueriesToCsv(on.report));
  EXPECT_EQ(sim::SummaryToCsv(off.report, /*with_header=*/false),
            sim::SummaryToCsv(on.report, /*with_header=*/false));
  EXPECT_EQ(off.report.Tti(), on.report.Tti());
  EXPECT_EQ(off.trace, on.trace);

  // Runtime-class observability: with a warm queue of 32 waves and no
  // reorganization boundaries, speculation really ran. (How *often* is
  // timing-dependent — that is exactly why these two counters live
  // outside the determinism contract.)
  EXPECT_GT(on.report.waves_speculative, 0);
  EXPECT_LE(on.report.waves_replanned, on.report.waves_speculative);
}

}  // namespace
}  // namespace miso::server
