// Fault-interplay regressions for the online server: a DW outage that
// opens mid-run degrades in-window sessions to HV-only planning while
// the server keeps serving and defers reorganizations; injected
// mid-reorganization crashes recover on the background thread — resume
// completes the journal, rollback restores the pre-reorg design
// byte-exactly (the reorganizer fails the run with an internal error if
// it does not) — and the whole faulted pipeline stays byte-identical
// across thread counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server_test_util.h"
#include "sim/report_io.h"

namespace miso::server {
namespace {

using server_testing::CountEvents;
using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;

TEST(ServerFaultTest, DwOutageMidRunDegradesSessionsAndDefersReorgs) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(40);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.sim.reorg_every = 4;
  config.wave_size = 4;
  config.online_reorg = true;
  config.sim.fault.profile = fault::FaultProfile::kOutage;
  config.sim.fault.rate = 0.0;  // outage only, no transient failures
  config.sim.fault.seed = 7;
  config.sim.fault.dw_outages.push_back(fault::OutageWindow{10, 20});

  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));

  // In-window sessions complete, degraded to HV-only; everyone else
  // keeps the multistore plan.
  for (const SessionResult& s : run.sessions) {
    ASSERT_TRUE(s.status.ok()) << s.status.ToString();
    const bool in_window = s.session_id >= 10 && s.session_id < 20;
    EXPECT_EQ(s.record.degraded, in_window) << "session " << s.session_id;
    if (in_window) {
      EXPECT_EQ(s.record.breakdown.dw_exec_s, 0.0);
      EXPECT_EQ(s.record.breakdown.transfer_load_s, 0.0);
      EXPECT_GT(s.record.breakdown.hv_exec_s, 0.0);
    }
  }
  EXPECT_EQ(run.report.degraded_queries, 10);
  // Boundary sessions 11, 15, 19 fall inside the outage: their
  // reorganizations are deferred, not attempted against a down DW.
  EXPECT_EQ(run.report.reorgs_skipped, 3);
  EXPECT_GT(run.report.epochs_published, 0);
  EXPECT_GT(CountEvents(run.trace, "fault.query"), 0);
}

fault::FaultSpec ChaosSpec(RecoveryPolicy recovery) {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kChaos;
  spec.seed = 5;
  spec.rate = 0.12;
  spec.retry.max_attempts = 6;
  spec.recovery = recovery;
  return spec;
}

TEST(ServerFaultTest, ReorgCrashWithResumeRecoversAndPublishes) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.sim.reorg_every = 5;
  config.wave_size = 5;
  config.online_reorg = true;
  config.sim.fault = ChaosSpec(RecoveryPolicy::kResume);

  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));
  EXPECT_GT(run.report.reorg_crashes, 0) << "no reorg crash was injected";
  // Resume completes the journal: every crashed reorganization still
  // publishes its epoch (no rollbacks under this policy; `reorg_count`
  // already excludes outage-deferred boundaries).
  EXPECT_EQ(run.report.reorgs_rolled_back, 0);
  EXPECT_EQ(run.report.epochs_published, run.report.reorg_count);
  EXPECT_EQ(CountEvents(run.trace, "fault.reorg_recovery"),
            run.report.reorg_crashes);
  for (const SessionResult& s : run.sessions) {
    EXPECT_TRUE(s.status.ok()) << s.status.ToString();
  }
}

TEST(ServerFaultTest, ReorgCrashWithRollbackRestoresDesignByteExactly) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.sim.reorg_every = 5;
  config.wave_size = 5;
  config.online_reorg = true;
  config.sim.fault = ChaosSpec(RecoveryPolicy::kRollback);

  std::vector<EpochSnapshot> snapshots;
  config.epoch_observer = [&snapshots](const EpochSnapshot& snapshot) {
    snapshots.push_back(snapshot);
  };

  // The background reorganizer compares (id, signature) fingerprints and
  // used-byte counts around every rollback and fails the run if recovery
  // did not restore the pre-reorg design byte-exactly — so an OK run
  // with rollbacks observed IS the byte-exactness assertion.
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun run,
                            ServeAll(config, queries, /*threads=*/2));
  EXPECT_GT(run.report.reorg_crashes, 0) << "no reorg crash was injected";
  EXPECT_GT(run.report.reorgs_rolled_back, 0) << "no rollback happened";
  EXPECT_EQ(run.report.reorgs_rolled_back, run.report.reorg_crashes);
  bool saw_rollback_snapshot = false;
  for (const EpochSnapshot& s : snapshots) {
    if (s.rolled_back) {
      saw_rollback_snapshot = true;
      // A rollback still crossed the link twice (partial + undo), so the
      // movement gate charged real bytes without publishing anything.
      EXPECT_GT(s.moved_to_dw + s.moved_to_hv, 0u);
    }
  }
  EXPECT_TRUE(saw_rollback_snapshot);
}

TEST(ServerFaultTest, FaultedServerRunIsByteIdenticalAcrossThreadCounts) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(150);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.trace = true;
  config.sim.reorg_every = 5;
  config.wave_size = 5;
  config.online_reorg = true;
  config.sim.fault = ChaosSpec(RecoveryPolicy::kResume);

  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun one,
                            ServeAll(config, queries, /*threads=*/1));
  EXPECT_GT(one.report.fault_injected, 0);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("MISO_THREADS=" + std::to_string(threads));
    MISO_ASSERT_OK_AND_ASSIGN(const ServedRun many,
                              ServeAll(config, queries, threads));
    EXPECT_EQ(sim::QueriesToCsv(one.report), sim::QueriesToCsv(many.report));
    EXPECT_EQ(sim::SummaryToCsv(one.report, /*with_header=*/false),
              sim::SummaryToCsv(many.report, /*with_header=*/false));
    EXPECT_EQ(one.trace, many.trace);
  }
}

}  // namespace
}  // namespace miso::server
