// Property battery for the epoch/snapshot discipline: across seeded
// combinations of wave size, reorganization cadence, thread count, and
// chaos fault injection, no interleaving of journal steps with query
// admission ever surfaces a half-applied design. The suite runs with
// MISO_VERIFY=1 (ctest sets it), so V209 journal-consistency runs after
// *every* background step and V210 design invariants run at every flip —
// any violation fails the run, and therefore the test.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "server_test_util.h"

namespace miso::server {
namespace {

using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;

fault::FaultSpec ChaosSpec(int seed, RecoveryPolicy recovery) {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kChaos;
  spec.seed = seed;
  spec.rate = 0.10;
  spec.retry.max_attempts = 6;
  spec.recovery = recovery;
  return spec;
}

TEST(ServerPropertyTest, RandomizedInterleavingsNeverExposeHalfAppliedDesign) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(120);
  const int threads_of[] = {1, 2, 8};

  for (int seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ServerConfig config;
    config.sim.variant = sim::SystemVariant::kMsMiso;
    config.wave_size = 1 + (seed * 3) % 7;
    config.sim.reorg_every = 2 + seed % 5;
    config.online_reorg = true;
    config.admission_capacity = 16 + static_cast<size_t>(seed) * 8;
    config.sim.fault =
        ChaosSpec(seed, seed % 2 == 0 ? RecoveryPolicy::kRollback
                                      : RecoveryPolicy::kResume);

    std::vector<EpochSnapshot> snapshots;
    config.epoch_observer = [&snapshots](const EpochSnapshot& snapshot) {
      snapshots.push_back(snapshot);
    };

    MISO_ASSERT_OK_AND_ASSIGN(
        const ServedRun run,
        ServeAll(config, queries, threads_of[seed % 3]));

    // The run completing at all means every per-step V209 check and every
    // post-flip V210 check passed. On top of that, assert the observable
    // discipline at each resolution point.
    ASSERT_FALSE(snapshots.empty()) << "no reorganization ever resolved";
    int last_epoch = 0;
    for (const EpochSnapshot& s : snapshots) {
      // Vh and Vd never intersect at an observation point.
      std::set<views::ViewId> hv_ids(s.hv_ids.begin(), s.hv_ids.end());
      for (views::ViewId id : s.dw_ids) {
        EXPECT_EQ(hv_ids.count(id), 0u)
            << "view " << id << " present in both stores after reorg "
            << s.reorg_index;
      }
      if (s.rolled_back) {
        // A rollback publishes nothing: the epoch number does not move.
        EXPECT_EQ(s.epoch, last_epoch);
      } else {
        EXPECT_EQ(s.epoch, last_epoch + 1);
        // A published design fits the HV budget (the DW budget and the
        // transfer budget are enforced by the V210 pass the run just
        // survived; HV is the one a test can check without slack terms).
        EXPECT_LE(s.hv_used, config.sim.hv_storage_budget);
      }
      last_epoch = s.epoch;
    }
    EXPECT_EQ(last_epoch, run.report.epochs_published);
    EXPECT_EQ(static_cast<int>(snapshots.size()),
              run.report.epochs_published + run.report.reorgs_rolled_back);

    // Every session resolved, and each planned against a design epoch
    // that actually existed when it was reduced.
    for (const SessionResult& s : run.sessions) {
      ASSERT_TRUE(s.status.ok()) << s.status.ToString();
      EXPECT_GE(s.epoch, 0);
      EXPECT_LE(s.epoch, run.report.epochs_published);
    }
    // Session epochs are monotone in admission order: the design only
    // ever moves forward.
    for (size_t i = 1; i < run.sessions.size(); ++i) {
      EXPECT_GE(run.sessions[i].epoch, run.sessions[i - 1].epoch);
    }
  }
}

}  // namespace
}  // namespace miso::server
