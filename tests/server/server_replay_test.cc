// Online-vs-batch replay comparisons — the acceptance criterion of the
// online cadence: the server runs the full paper workload with
// background reorganization, produces the same per-session plans and
// cost anatomies as the batch simulator (the flip-at-boundary protocol
// publishes the new design before the next session plans), and its total
// time-to-insight is never worse than the stop-the-world cadence on the
// same admission sequence — the difference is exactly the movement time
// the server overlapped with query execution.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/multistore_system.h"
#include "server_test_util.h"
#include "sim/simulator.h"

namespace miso::server {
namespace {

using server_testing::CycledQueries;
using server_testing::ServeAll;
using server_testing::ServedRun;
using testing_util::PaperCatalog;

TEST(ServerReplayTest, OnlinePaperWorkloadMatchesSimulatorPlanForPlan) {
  sim::SimConfig sim_config;
  sim_config.variant = sim::SystemVariant::kMsMiso;
  MISO_ASSERT_OK_AND_ASSIGN(
      const sim::RunReport batch,
      sim::RunPaperWorkload(&PaperCatalog(), sim_config));

  ServerConfig config;
  config.sim = sim_config;
  config.wave_size = 1;  // freshest catalogs for every session
  config.online_reorg = true;
  MISO_ASSERT_OK_AND_ASSIGN(
      const sim::RunReport online,
      ReplayPaperWorkload(&PaperCatalog(), config));

  // Same designs at every boundary, hence the same plans and the same
  // cost anatomy per query; only the clock placement differs.
  ASSERT_EQ(online.queries.size(), batch.queries.size());
  for (size_t i = 0; i < batch.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const sim::QueryRecord& a = online.queries[i];
    const sim::QueryRecord& b = batch.queries[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.breakdown.Total(), b.breakdown.Total());
    EXPECT_EQ(a.ops_total, b.ops_total);
    EXPECT_EQ(a.ops_dw, b.ops_dw);
    EXPECT_EQ(a.transferred_bytes, b.transferred_bytes);
    EXPECT_EQ(a.views_used, b.views_used);
  }
  EXPECT_EQ(online.reorg_count, batch.reorg_count);
  EXPECT_EQ(online.epochs_published, online.reorg_count);

  // The overlap can only help: online TTI <= batch TTI, and the gap is
  // exactly the movement time hidden behind query execution.
  EXPECT_LE(online.Tti(), batch.Tti() + 1e-6);
  EXPECT_GE(online.reorg_overlap_saved_s, 0.0);
  EXPECT_NEAR(batch.Tti() - online.Tti(), online.reorg_overlap_saved_s, 1e-6);
}

TEST(ServerReplayTest, OnlineNeverWorseThanStopTheWorldAtSameCadence) {
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(96);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.reorg_every = 8;
  config.wave_size = 4;

  config.online_reorg = false;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun stop_the_world,
                            ServeAll(config, queries, /*threads=*/2));
  config.online_reorg = true;
  MISO_ASSERT_OK_AND_ASSIGN(const ServedRun online,
                            ServeAll(config, queries, /*threads=*/2));

  ASSERT_EQ(online.report.queries.size(), stop_the_world.report.queries.size());
  for (size_t i = 0; i < online.report.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    EXPECT_DOUBLE_EQ(online.report.queries[i].breakdown.Total(),
                     stop_the_world.report.queries[i].breakdown.Total());
    EXPECT_LE(online.report.queries[i].completion_time,
              stop_the_world.report.queries[i].completion_time + 1e-6);
  }
  EXPECT_EQ(online.report.reorg_count, stop_the_world.report.reorg_count);
  EXPECT_LE(online.report.Tti(), stop_the_world.report.Tti() + 1e-6);
  EXPECT_NEAR(stop_the_world.report.Tti() - online.report.Tti(),
              online.report.reorg_overlap_saved_s, 1e-6);
}

TEST(ServerReplayTest, FatalMidRunClosesAdmissionAndDrainsEveryFuture) {
  // Regression for the replay early-return path: a server-level fatal
  // fired by the reduce observer used to propagate out of ReplayWorkload
  // before admission was closed, leaving producers blocked on a full
  // admission queue. The admission capacity here is far below the
  // session count, so the test completing at all (instead of deadlocking
  // in Submit) is the close+drain assertion; the returned status is the
  // observer's.
  const std::vector<workload::WorkloadQuery> queries = CycledQueries(64);
  ServerConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.wave_size = 4;
  config.admission_capacity = 4;
  config.reduce_observer = [](const sim::QueryRecord& record) {
    return record.index == 5 ? Status::Internal("SLO breach: hard stop")
                             : Status();
  };
  const Result<sim::RunReport> result =
      ReplayWorkload(&PaperCatalog(), config, queries);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("hard stop"), std::string::npos)
      << result.status().ToString();
}

TEST(ServerReplayTest, MultistoreSystemServeFacade) {
  MisoConfig miso_config;
  miso_config.sim.variant = sim::SystemVariant::kMsMiso;
  MultistoreSystem system(miso_config);

  ServerConfig server_config;
  server_config.wave_size = 4;
  MISO_ASSERT_OK_AND_ASSIGN(const sim::RunReport report,
                            system.ServePaperWorkload(server_config));
  EXPECT_EQ(report.queries.size(), 32u);
  EXPECT_GT(report.reorg_count, 0);
  EXPECT_GT(report.waves, 0);
  EXPECT_GT(report.epochs_published, 0);
  for (size_t i = 0; i < report.queries.size(); ++i) {
    EXPECT_EQ(report.queries[i].index, static_cast<int>(i));
  }

  // The facade ignores any sim config smuggled in via the server config —
  // the system's own engine configuration wins.
  ServerConfig mismatched = server_config;
  mismatched.sim.variant = sim::SystemVariant::kHvOnly;
  auto workload = workload::EvolutionaryWorkload::Generate(
      &system.catalog(), workload::WorkloadConfig{});
  MISO_ASSERT_OK(workload.status());
  MISO_ASSERT_OK_AND_ASSIGN(
      const sim::RunReport served,
      system.Serve(mismatched, workload->queries()));
  EXPECT_EQ(served.queries.size(), 32u);
}

}  // namespace
}  // namespace miso::server
