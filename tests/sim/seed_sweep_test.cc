// Property sweep: the headline orderings must hold across workload seeds,
// not just the default one — the reproduction is robust to the particular
// random draws of analyst parameters.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static Seconds Run(SystemVariant variant,
                     const workload::EvolutionaryWorkload& workload) {
    SimConfig config;
    config.variant = variant;
    MultistoreSimulator simulator(&PaperCatalog(), config);
    auto report = simulator.Run(workload.queries());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->Tti() : 0;
  }
};

TEST_P(SeedSweepTest, VariantOrderingHoldsAcrossSeeds) {
  workload::WorkloadConfig wl;
  wl.seed = GetParam();
  auto workload =
      workload::EvolutionaryWorkload::Generate(&PaperCatalog(), wl);
  ASSERT_TRUE(workload.ok());

  const Seconds hv = Run(SystemVariant::kHvOnly, *workload);
  const Seconds basic = Run(SystemVariant::kMsBasic, *workload);
  const Seconds op = Run(SystemVariant::kHvOp, *workload);
  const Seconds miso = Run(SystemVariant::kMsMiso, *workload);

  EXPECT_LT(miso, op) << "seed " << GetParam();
  EXPECT_LT(op, basic) << "seed " << GetParam();
  EXPECT_LT(basic, hv) << "seed " << GetParam();
  EXPECT_GT(hv / miso, 2.0) << "seed " << GetParam();
  EXPECT_GT(hv / op, 1.8) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(7, 123, 2026));

}  // namespace
}  // namespace miso::sim
