#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/background.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

class SimulatorTest : public ::testing::Test {
 protected:
  static const std::vector<workload::WorkloadQuery>& Queries() {
    static const auto* workload = [] {
      auto w = workload::EvolutionaryWorkload::Generate(
          &PaperCatalog(), workload::WorkloadConfig{});
      return new workload::EvolutionaryWorkload(std::move(w).value());
    }();
    return workload->queries();
  }

  static RunReport Run(SystemVariant variant) {
    SimConfig config;
    config.variant = variant;
    MultistoreSimulator simulator(&PaperCatalog(), config);
    auto report = simulator.Run(Queries());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  }
};

TEST_F(SimulatorTest, AllVariantsCompleteAllQueries) {
  const SystemVariant variants[] = {
      SystemVariant::kHvOnly, SystemVariant::kDwOnly,
      SystemVariant::kMsBasic, SystemVariant::kHvOp,
      SystemVariant::kMsMiso, SystemVariant::kMsLru,
      SystemVariant::kMsOff, SystemVariant::kMsOra};
  for (SystemVariant v : variants) {
    RunReport report = Run(v);
    ASSERT_EQ(report.queries.size(), Queries().size());
    Seconds prev_completion = 0;
    for (const QueryRecord& q : report.queries) {
      EXPECT_GE(q.ExecTime(), 0);
      EXPECT_GE(q.completion_time, q.start_time);
      EXPECT_GE(q.start_time, prev_completion)
          << "queries run serially with reorgs in between";
      prev_completion = q.completion_time;
    }
    EXPECT_GT(report.Tti(), 0);
  }
}

TEST_F(SimulatorTest, HvOnlyUsesOnlyHv) {
  RunReport report = Run(SystemVariant::kHvOnly);
  EXPECT_EQ(report.dw_exe_s, 0);
  EXPECT_EQ(report.transfer_s, 0);
  EXPECT_EQ(report.tune_s, 0);
  EXPECT_EQ(report.etl_s, 0);
  EXPECT_EQ(report.reorg_count, 0);
  EXPECT_GT(report.hv_exe_s, 0);
}

TEST_F(SimulatorTest, DwOnlyPaysEtlUpFront) {
  RunReport report = Run(SystemVariant::kDwOnly);
  EXPECT_GT(report.etl_s, 0);
  EXPECT_EQ(report.hv_exe_s, 0);
  EXPECT_GE(report.queries.front().start_time, report.etl_s)
      << "no query starts before the ETL completes (Figure 5a)";
  EXPECT_EQ(report.DwMajorityQueries(),
            static_cast<int>(report.queries.size()));
}

TEST_F(SimulatorTest, MsBasicNeverRetainsViews) {
  RunReport report = Run(SystemVariant::kMsBasic);
  for (const QueryRecord& q : report.queries) {
    EXPECT_EQ(q.views_used, 0);
  }
  EXPECT_EQ(report.reorg_count, 0);
}

TEST_F(SimulatorTest, MisoReorganizesPeriodically) {
  RunReport report = Run(SystemVariant::kMsMiso);
  // 32 queries, reorg every 3 (skipping the end): 10 phases.
  EXPECT_EQ(report.reorg_count, 10);
  EXPECT_GT(report.tune_s, 0);
  EXPECT_GT(report.bytes_moved_to_dw, 0);
  EXPECT_LE(report.bytes_moved_to_dw,
            static_cast<Bytes>(report.reorg_count) * 10 * kGiB)
      << "per-reorg transfer budget bounds total movement";
}

TEST_F(SimulatorTest, MisoBeatsTheNonTunedVariants) {
  const RunReport hv_only = Run(SystemVariant::kHvOnly);
  const RunReport basic = Run(SystemVariant::kMsBasic);
  const RunReport miso = Run(SystemVariant::kMsMiso);
  EXPECT_LT(miso.Tti(), 0.5 * hv_only.Tti())
      << "MS-MISO must be a multiple faster than HV-ONLY (paper: 4.3x)";
  EXPECT_LT(miso.Tti(), basic.Tti());
  EXPECT_LT(basic.Tti(), hv_only.Tti());
}

TEST_F(SimulatorTest, MisoUsesViewsOnRepeatQueries) {
  RunReport report = Run(SystemVariant::kMsMiso);
  int queries_with_views = 0;
  for (const QueryRecord& q : report.queries) {
    if (q.views_used > 0) ++queries_with_views;
  }
  EXPECT_GE(queries_with_views, 16)
      << "most non-initial queries should reuse opportunistic views";
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  RunReport r1 = Run(SystemVariant::kMsMiso);
  RunReport r2 = Run(SystemVariant::kMsMiso);
  ASSERT_EQ(r1.queries.size(), r2.queries.size());
  EXPECT_DOUBLE_EQ(r1.Tti(), r2.Tti());
  for (size_t i = 0; i < r1.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.queries[i].ExecTime(), r2.queries[i].ExecTime());
  }
}

TEST_F(SimulatorTest, ComponentTotalsAreConsistent) {
  RunReport report = Run(SystemVariant::kMsMiso);
  Seconds sum = report.etl_s + report.tune_s;
  for (const QueryRecord& q : report.queries) sum += q.ExecTime();
  EXPECT_NEAR(report.Tti(), sum, 1.0)
      << "TTI decomposes into ETL + tuning + query execution";

  Seconds hv = 0;
  Seconds dw = 0;
  for (const QueryRecord& q : report.queries) {
    hv += q.breakdown.hv_exec_s;
    dw += q.breakdown.dw_exec_s;
  }
  EXPECT_NEAR(report.hv_exe_s, hv, 1e-6);
  EXPECT_NEAR(report.dw_exe_s, dw, 1e-6);
}

TEST_F(SimulatorTest, BackgroundWorkloadProducesTicksAndSlowdown) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.background = workload::SpareIo40();
  MultistoreSimulator simulator(&PaperCatalog(), config);
  auto report = simulator.Run(Queries());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->dw_ticks.empty());
  EXPECT_GT(report->background_slowdown, 0.0);
  EXPECT_LT(report->background_slowdown, 0.06)
      << "Table 2: background reporting queries slow by a few percent";
  // The multistore run itself is slightly slower than on an idle DW.
  RunReport idle = Run(SystemVariant::kMsMiso);
  EXPECT_GT(report->Tti(), idle.Tti());
  EXPECT_LT(report->Tti(), 1.10 * idle.Tti())
      << "Table 2: multistore slowdown is a few percent";
}

TEST_F(SimulatorTest, SmallBudgetsDegradeButStillBeatNoTuning) {
  SimConfig small;
  small.variant = SystemVariant::kMsMiso;
  small.hv_storage_budget = Bytes(0.125 * 2 * kTiB);
  small.dw_storage_budget = Bytes(0.125 * 200 * kGiB);
  MultistoreSimulator simulator(&PaperCatalog(), small);
  auto small_run = simulator.Run(Queries());
  ASSERT_TRUE(small_run.ok());
  RunReport default_run = Run(SystemVariant::kMsMiso);
  RunReport basic = Run(SystemVariant::kMsBasic);
  EXPECT_GE(small_run->Tti(), default_run.Tti());
  EXPECT_LT(small_run->Tti(), basic.Tti());
}

TEST_F(SimulatorTest, RunPaperWorkloadConvenience) {
  SimConfig config;
  config.variant = SystemVariant::kHvOnly;
  auto report = RunPaperWorkload(&PaperCatalog(), config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries.size(), 32u);
}

}  // namespace
}  // namespace miso::sim
