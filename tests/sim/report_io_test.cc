#include "sim/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/simulator.h"
#include "workload/background.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

RunReport SmallRun(bool with_background) {
  workload::WorkloadConfig wl;
  wl.num_analysts = 2;
  wl.versions_per_analyst = 2;
  auto workload = workload::EvolutionaryWorkload::Generate(&PaperCatalog(),
                                                           wl);
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  if (with_background) config.background = workload::SpareIo40();
  MultistoreSimulator simulator(&PaperCatalog(), config);
  auto report = simulator.Run(workload->queries());
  EXPECT_TRUE(report.ok());
  return std::move(report).value();
}

int CountLines(const std::string& s) {
  int lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(ReportIoTest, QueriesCsvHasHeaderAndOneRowPerQuery) {
  RunReport report = SmallRun(false);
  const std::string csv = QueriesToCsv(report);
  EXPECT_EQ(CountLines(csv), static_cast<int>(report.queries.size()) + 1);
  EXPECT_EQ(csv.rfind("index,name,start_s", 0), 0u);
  EXPECT_NE(csv.find("A1v1"), std::string::npos);
}

TEST(ReportIoTest, TicksCsvEmptyWithoutBackground) {
  RunReport report = SmallRun(false);
  EXPECT_EQ(CountLines(TicksToCsv(report)), 1) << "header only";
}

TEST(ReportIoTest, TicksCsvPopulatedWithBackground) {
  RunReport report = SmallRun(true);
  const std::string csv = TicksToCsv(report);
  EXPECT_GT(CountLines(csv), 100);
  EXPECT_EQ(csv.rfind("time_s,io_used", 0), 0u);
}

TEST(ReportIoTest, SummaryCsvRoundNumbers) {
  RunReport report = SmallRun(false);
  const std::string with = SummaryToCsv(report, /*with_header=*/true);
  const std::string without = SummaryToCsv(report, /*with_header=*/false);
  EXPECT_EQ(CountLines(with), 2);
  EXPECT_EQ(CountLines(without), 1);
  EXPECT_NE(with.find("MS-MISO"), std::string::npos);
}

TEST(ReportIoTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/miso_report_test.csv";
  RunReport report = SmallRun(false);
  MISO_ASSERT_OK(WriteFile(path, QueriesToCsv(report)));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), QueriesToCsv(report));
  std::remove(path.c_str());
}

TEST(ReportIoTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent_dir_xyz/file.csv", "x").ok());
}

// Field-by-field equality, bit-exact on doubles (%.17g round-trips IEEE
// exactly). A field added to RunReport/QueryRecord without JSON support
// fails here loudly instead of being dropped silently.
void ExpectReportsEqual(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.variant, b.variant);
  EXPECT_EQ(a.variant_name, b.variant_name);
  EXPECT_EQ(a.etl_s, b.etl_s);
  EXPECT_EQ(a.tune_s, b.tune_s);
  EXPECT_EQ(a.hv_exe_s, b.hv_exe_s);
  EXPECT_EQ(a.dw_exe_s, b.dw_exe_s);
  EXPECT_EQ(a.transfer_s, b.transfer_s);
  EXPECT_EQ(a.reorg_count, b.reorg_count);
  EXPECT_EQ(a.bytes_moved_to_dw, b.bytes_moved_to_dw);
  EXPECT_EQ(a.bytes_moved_to_hv, b.bytes_moved_to_hv);
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.fault_wasted_s, b.fault_wasted_s);
  EXPECT_EQ(a.fault_backoff_s, b.fault_backoff_s);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(a.reorg_crashes, b.reorg_crashes);
  EXPECT_EQ(a.reorgs_skipped, b.reorgs_skipped);
  EXPECT_EQ(a.waves, b.waves);
  EXPECT_EQ(a.epochs_published, b.epochs_published);
  EXPECT_EQ(a.reorgs_rolled_back, b.reorgs_rolled_back);
  EXPECT_EQ(a.reorg_overlap_saved_s, b.reorg_overlap_saved_s);
  EXPECT_EQ(a.plan_cache_hits, b.plan_cache_hits);
  EXPECT_EQ(a.plan_cache_misses, b.plan_cache_misses);
  EXPECT_EQ(a.plan_cache_evictions, b.plan_cache_evictions);
  EXPECT_EQ(a.plan_cache_invalidations, b.plan_cache_invalidations);
  EXPECT_EQ(a.waves_speculative, b.waves_speculative);
  EXPECT_EQ(a.waves_replanned, b.waves_replanned);
  EXPECT_EQ(a.sessions_admitted, b.sessions_admitted);
  EXPECT_EQ(a.sessions_shed, b.sessions_shed);
  EXPECT_EQ(a.sessions_failed, b.sessions_failed);
  EXPECT_EQ(a.breaker_degraded_sessions, b.breaker_degraded_sessions);
  EXPECT_EQ(a.breaker_transitions, b.breaker_transitions);
  EXPECT_EQ(a.breaker_open_s, b.breaker_open_s);
  EXPECT_EQ(a.background_slowdown, b.background_slowdown);
  EXPECT_EQ(a.avg_background_latency_s, b.avg_background_latency_s);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryRecord& qa = a.queries[i];
    const QueryRecord& qb = b.queries[i];
    EXPECT_EQ(qa.index, qb.index);
    EXPECT_EQ(qa.name, qb.name);
    EXPECT_EQ(qa.start_time, qb.start_time);
    EXPECT_EQ(qa.completion_time, qb.completion_time);
    EXPECT_EQ(qa.breakdown.hv_exec_s, qb.breakdown.hv_exec_s);
    EXPECT_EQ(qa.breakdown.dump_s, qb.breakdown.dump_s);
    EXPECT_EQ(qa.breakdown.transfer_load_s, qb.breakdown.transfer_load_s);
    EXPECT_EQ(qa.breakdown.dw_exec_s, qb.breakdown.dw_exec_s);
    EXPECT_EQ(qa.ops_total, qb.ops_total);
    EXPECT_EQ(qa.ops_dw, qb.ops_dw);
    EXPECT_EQ(qa.transferred_bytes, qb.transferred_bytes);
    EXPECT_EQ(qa.views_used, qb.views_used);
    EXPECT_EQ(qa.degraded, qb.degraded);
    EXPECT_EQ(qa.fault_injected, qb.fault_injected);
    EXPECT_EQ(qa.fault_retries, qb.fault_retries);
    EXPECT_EQ(qa.fault_wasted_s, qb.fault_wasted_s);
    EXPECT_EQ(qa.fault_backoff_s, qb.fault_backoff_s);
    EXPECT_EQ(qa.epoch, qb.epoch);
    EXPECT_EQ(qa.reorg_wait_s, qb.reorg_wait_s);
    EXPECT_EQ(qa.breaker_degraded, qb.breaker_degraded);
  }
  ASSERT_EQ(a.dw_ticks.size(), b.dw_ticks.size());
  for (size_t i = 0; i < a.dw_ticks.size(); ++i) {
    SCOPED_TRACE("tick " + std::to_string(i));
    EXPECT_EQ(a.dw_ticks[i].time, b.dw_ticks[i].time);
    EXPECT_EQ(a.dw_ticks[i].io_used, b.dw_ticks[i].io_used);
    EXPECT_EQ(a.dw_ticks[i].cpu_used, b.dw_ticks[i].cpu_used);
    EXPECT_EQ(a.dw_ticks[i].bg_query_latency_s, b.dw_ticks[i].bg_query_latency_s);
    EXPECT_EQ(a.dw_ticks[i].activity, b.dw_ticks[i].activity);
  }
}

TEST(ReportIoJsonTest, RoundTripSimulatorRunWithTicks) {
  RunReport report = SmallRun(true);
  ASSERT_FALSE(report.queries.empty());
  ASSERT_FALSE(report.dw_ticks.empty());
  MISO_ASSERT_OK_AND_ASSIGN(const RunReport parsed,
                            ReportFromJson(ReportToJson(report)));
  ExpectReportsEqual(report, parsed);
}

TEST(ReportIoJsonTest, RoundTripCoversEveryCounterAddedSincePr7) {
  // The fields the CSVs do not carry, hand-set to distinct values so a
  // dropped field cannot hide behind a zero default: the plan-cache and
  // pipelining counters, and the overload-protection block.
  RunReport report = SmallRun(false);
  report.plan_cache_hits = 101;
  report.plan_cache_misses = 102;
  report.plan_cache_evictions = 103;
  report.plan_cache_invalidations = 104;
  report.waves_speculative = 105;
  report.waves_replanned = 106;
  report.sessions_admitted = 107;
  report.sessions_shed = 108;
  report.sessions_failed = 109;
  report.breaker_degraded_sessions = 110;
  report.breaker_transitions = 111;
  report.breaker_open_s = 112.25;
  report.waves = 113;
  report.epochs_published = 114;
  report.reorgs_rolled_back = 115;
  report.reorg_overlap_saved_s = 116.5;
  report.reorgs_skipped = 117;
  // Awkward doubles round-trip bit-exactly, and int64 counters survive
  // above 2^53 (where a double-typed parse would round).
  report.etl_s = 0.1 + 0.2;
  report.plan_cache_hits = (int64_t{1} << 53) + 1;
  ASSERT_FALSE(report.queries.empty());
  report.queries[0].degraded = true;
  report.queries[0].breaker_degraded = true;
  report.queries[0].fault_injected = 3;
  report.queries[0].reorg_wait_s = 7.75;
  report.queries[0].epoch = 2;
  report.queries[0].name = "needs \"escaping\"\n\ttoo\x01";
  MISO_ASSERT_OK_AND_ASSIGN(const RunReport parsed,
                            ReportFromJson(ReportToJson(report)));
  ExpectReportsEqual(report, parsed);
}

TEST(ReportIoJsonTest, AbsentKeysKeepDefaultsAndUnknownKeysAreIgnored) {
  MISO_ASSERT_OK_AND_ASSIGN(
      const RunReport parsed,
      ReportFromJson(
          "{\"waves\": 7, \"future_field\": [1, {\"x\": null}], "
          "\"variant_name\": \"MS-MISO\"}"));
  EXPECT_EQ(parsed.waves, 7);
  EXPECT_EQ(parsed.variant_name, "MS-MISO");
  EXPECT_EQ(parsed.sessions_shed, 0);
  EXPECT_TRUE(parsed.queries.empty());
}

TEST(ReportIoJsonTest, MalformedAndMistypedInputsFail) {
  EXPECT_FALSE(ReportFromJson("").ok());
  EXPECT_FALSE(ReportFromJson("[1,2]").ok());
  EXPECT_FALSE(ReportFromJson("{\"waves\": 7").ok());
  EXPECT_FALSE(ReportFromJson("{\"waves\": \"seven\"}").ok());
  EXPECT_FALSE(ReportFromJson("{\"queries\": 3}").ok());
  EXPECT_FALSE(ReportFromJson("{\"queries\": [42]}").ok());
  EXPECT_FALSE(ReportFromJson("{} trailing").ok());
}

}  // namespace
}  // namespace miso::sim
