#include "sim/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/simulator.h"
#include "workload/background.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

RunReport SmallRun(bool with_background) {
  workload::WorkloadConfig wl;
  wl.num_analysts = 2;
  wl.versions_per_analyst = 2;
  auto workload = workload::EvolutionaryWorkload::Generate(&PaperCatalog(),
                                                           wl);
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  if (with_background) config.background = workload::SpareIo40();
  MultistoreSimulator simulator(&PaperCatalog(), config);
  auto report = simulator.Run(workload->queries());
  EXPECT_TRUE(report.ok());
  return std::move(report).value();
}

int CountLines(const std::string& s) {
  int lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(ReportIoTest, QueriesCsvHasHeaderAndOneRowPerQuery) {
  RunReport report = SmallRun(false);
  const std::string csv = QueriesToCsv(report);
  EXPECT_EQ(CountLines(csv), static_cast<int>(report.queries.size()) + 1);
  EXPECT_EQ(csv.rfind("index,name,start_s", 0), 0u);
  EXPECT_NE(csv.find("A1v1"), std::string::npos);
}

TEST(ReportIoTest, TicksCsvEmptyWithoutBackground) {
  RunReport report = SmallRun(false);
  EXPECT_EQ(CountLines(TicksToCsv(report)), 1) << "header only";
}

TEST(ReportIoTest, TicksCsvPopulatedWithBackground) {
  RunReport report = SmallRun(true);
  const std::string csv = TicksToCsv(report);
  EXPECT_GT(CountLines(csv), 100);
  EXPECT_EQ(csv.rfind("time_s,io_used", 0), 0u);
}

TEST(ReportIoTest, SummaryCsvRoundNumbers) {
  RunReport report = SmallRun(false);
  const std::string with = SummaryToCsv(report, /*with_header=*/true);
  const std::string without = SummaryToCsv(report, /*with_header=*/false);
  EXPECT_EQ(CountLines(with), 2);
  EXPECT_EQ(CountLines(without), 1);
  EXPECT_NE(with.find("MS-MISO"), std::string::npos);
}

TEST(ReportIoTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/miso_report_test.csv";
  RunReport report = SmallRun(false);
  MISO_ASSERT_OK(WriteFile(path, QueriesToCsv(report)));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), QueriesToCsv(report));
  std::remove(path.c_str());
}

TEST(ReportIoTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent_dir_xyz/file.csv", "x").ok());
}

}  // namespace
}  // namespace miso::sim
