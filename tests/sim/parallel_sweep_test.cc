// Determinism of the multi-seed sweep: RunSeedSweep must return, for any
// thread count, reports that are byte-identical (via their CSV
// serializations and exact TTI components) to a serial RunPaperWorkload
// of each seed, merged back in seed order.

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"
#include "sim/report_io.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

const std::vector<uint64_t>& SweepSeeds() {
  static const std::vector<uint64_t> seeds = {7, 123};
  return seeds;
}

SimConfig BaseConfig() {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  return config;
}

TEST(ParallelSweepTest, SweepMatchesSerialRunsByteForByteAcrossThreadCounts) {
  const SimConfig base = BaseConfig();

  // Serial references, one per seed, through the single-run entry point.
  std::vector<RunReport> reference;
  for (uint64_t seed : SweepSeeds()) {
    auto report = RunPaperWorkload(&PaperCatalog(), base, seed);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reference.push_back(std::move(report).value());
  }

  for (int threads : {1, 2, 8}) {
    SimConfig config = base;
    config.threads = threads;
    auto sweep = RunSeedSweep(&PaperCatalog(), config, SweepSeeds());
    ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
    ASSERT_EQ(sweep->size(), SweepSeeds().size());
    for (size_t i = 0; i < sweep->size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " seed=" + std::to_string(SweepSeeds()[i]));
      const RunReport& serial = reference[i];
      const RunReport& parallel = (*sweep)[i];
      // Byte-identical serializations cover every per-query field and the
      // TTI summary in one comparison each.
      EXPECT_EQ(QueriesToCsv(serial), QueriesToCsv(parallel));
      EXPECT_EQ(SummaryToCsv(serial, /*with_header=*/false),
                SummaryToCsv(parallel, /*with_header=*/false));
      EXPECT_EQ(TicksToCsv(serial), TicksToCsv(parallel));
      EXPECT_EQ(serial.Tti(), parallel.Tti());
    }
  }
}

TEST(ParallelSweepTest, SweepIsDeterministicAcrossRepeatedParallelRuns) {
  // Two independent parallel sweeps with the same seeds must agree with
  // each other bit-for-bit (catches scheduling-dependent state leaks
  // between concurrently running seeds).
  SimConfig config = BaseConfig();
  config.threads = 4;
  auto first = RunSeedSweep(&PaperCatalog(), config, SweepSeeds());
  auto second = RunSeedSweep(&PaperCatalog(), config, SweepSeeds());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(QueriesToCsv((*first)[i]), QueriesToCsv((*second)[i]));
    EXPECT_EQ(TicksToCsv((*first)[i]), TicksToCsv((*second)[i]));
  }
}

TEST(ParallelSweepTest, EmptySeedListYieldsEmptyReportVector) {
  SimConfig config = BaseConfig();
  config.threads = 4;
  auto sweep = RunSeedSweep(&PaperCatalog(), config, {});
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_TRUE(sweep->empty());
}

TEST(ParallelSweepTest, VariantOrderingHoldsUnderParallelSweep) {
  // The paper's headline ordering must be unaffected by the thread knob:
  // MISO < HV-only on TTI for every swept seed.
  SimConfig miso_config = BaseConfig();
  miso_config.threads = 2;
  SimConfig hv_config = miso_config;
  hv_config.variant = SystemVariant::kHvOnly;

  auto miso = RunSeedSweep(&PaperCatalog(), miso_config, SweepSeeds());
  auto hv = RunSeedSweep(&PaperCatalog(), hv_config, SweepSeeds());
  ASSERT_TRUE(miso.ok()) << miso.status().ToString();
  ASSERT_TRUE(hv.ok()) << hv.status().ToString();
  for (size_t i = 0; i < SweepSeeds().size(); ++i) {
    EXPECT_LT((*miso)[i].Tti(), (*hv)[i].Tti())
        << "seed " << SweepSeeds()[i];
  }
}

}  // namespace
}  // namespace miso::sim
