#include "sim/report.h"

#include <gtest/gtest.h>

namespace miso::sim {
namespace {

QueryRecord Record(int index, Seconds hv, Seconds dw, Seconds completion) {
  QueryRecord r;
  r.index = index;
  r.name = "q";
  r.name += std::to_string(index);
  r.breakdown.hv_exec_s = hv;
  r.breakdown.dw_exec_s = dw;
  r.completion_time = completion;
  return r;
}

RunReport SampleReport() {
  RunReport report;
  report.variant = SystemVariant::kMsMiso;
  report.variant_name = "MS-MISO";
  report.queries.push_back(Record(0, 100, 0, 100));    // all-HV
  report.queries.push_back(Record(1, 10, 90, 200));    // DW-heavy
  report.queries.push_back(Record(2, 50, 50, 300));    // even
  report.queries.push_back(Record(3, 0, 5, 305));      // fully DW
  return report;
}

TEST(RunReportTest, TtiIsLastCompletion) {
  EXPECT_DOUBLE_EQ(SampleReport().Tti(), 305);
  RunReport empty;
  empty.etl_s = 42;
  EXPECT_DOUBLE_EQ(empty.Tti(), 42) << "ETL-only run";
}

TEST(RunReportTest, TtiCurveIsCompletionTimes) {
  std::vector<Seconds> curve = SampleReport().TtiCurve();
  EXPECT_EQ(curve, (std::vector<Seconds>{100, 200, 300, 305}));
}

TEST(RunReportTest, ExecTimeCdf) {
  RunReport report = SampleReport();
  // Exec times: 100, 100, 100, 5.
  std::vector<double> cdf = report.ExecTimeCdf({10, 101, 1000});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.25);
  EXPECT_DOUBLE_EQ(cdf[1], 1.0);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(RunReportTest, RankByDwUtilization) {
  std::vector<int> ranked = SampleReport().RankByDwUtilization();
  // Shares: q0=0, q1=0.9, q2=0.5, q3=1.0 -> order 3,1,2,0.
  EXPECT_EQ(ranked, (std::vector<int>{3, 1, 2, 0}));
}

TEST(RunReportTest, DwMajorityCount) {
  EXPECT_EQ(SampleReport().DwMajorityQueries(), 2);
}

TEST(RunReportTest, HvPerDwSecondOverTopK) {
  RunReport report = SampleReport();
  // Top 2 by DW share: q3 (0/5) and q1 (10/90): 10 / 95.
  EXPECT_NEAR(report.HvPerDwSecond(2), 10.0 / 95.0, 1e-12);
  EXPECT_DOUBLE_EQ(RunReport{}.HvPerDwSecond(5), 0.0);
}

TEST(RunReportTest, SummaryMentionsVariantAndTti) {
  const std::string s = SampleReport().Summary();
  EXPECT_NE(s.find("MS-MISO"), std::string::npos);
  EXPECT_NE(s.find("305"), std::string::npos);
}

TEST(SystemVariantTest, AllNamesDistinct) {
  const SystemVariant all[] = {
      SystemVariant::kHvOnly, SystemVariant::kDwOnly,
      SystemVariant::kMsBasic, SystemVariant::kHvOp,
      SystemVariant::kMsMiso, SystemVariant::kMsLru,
      SystemVariant::kMsOff, SystemVariant::kMsOra};
  std::set<std::string_view> names;
  for (SystemVariant v : all) {
    EXPECT_TRUE(names.insert(SystemVariantToString(v)).second);
  }
}

}  // namespace
}  // namespace miso::sim
