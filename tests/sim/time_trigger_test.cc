#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

const std::vector<workload::WorkloadQuery>& Queries() {
  static const auto* workload = [] {
    auto w = workload::EvolutionaryWorkload::Generate(
        &PaperCatalog(), workload::WorkloadConfig{});
    return new workload::EvolutionaryWorkload(std::move(w).value());
  }();
  return workload->queries();
}

TEST(TimeTriggerTest, TimeBasedReorganizationFires) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.reorg_every = 0;              // disable the query-based trigger
  config.reorg_every_seconds = 20000;  // ~every 2-3 first-phase queries
  MultistoreSimulator simulator(&PaperCatalog(), config);
  auto report = simulator.Run(Queries());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->reorg_count, 2);
  EXPECT_LT(report->reorg_count, 32);
}

TEST(TimeTriggerTest, BothTriggersDisabledMeansNoReorgs) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.reorg_every = 0;
  config.reorg_every_seconds = 0;
  MultistoreSimulator simulator(&PaperCatalog(), config);
  auto report = simulator.Run(Queries());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reorg_count, 0);
  EXPECT_EQ(report->bytes_moved_to_dw, 0);
}

TEST(TimeTriggerTest, TimeTriggerStillAdaptsTheDesign) {
  // A time-triggered MISO must still clearly beat MS-BASIC.
  SimConfig time_config;
  time_config.variant = SystemVariant::kMsMiso;
  time_config.reorg_every = 0;
  time_config.reorg_every_seconds = 15000;
  MultistoreSimulator time_sim(&PaperCatalog(), time_config);
  auto time_run = time_sim.Run(Queries());
  ASSERT_TRUE(time_run.ok());

  SimConfig basic;
  basic.variant = SystemVariant::kMsBasic;
  MultistoreSimulator basic_sim(&PaperCatalog(), basic);
  auto basic_run = basic_sim.Run(Queries());
  ASSERT_TRUE(basic_run.ok());

  EXPECT_LT(time_run->Tti(), 0.6 * basic_run->Tti());
}

}  // namespace
}  // namespace miso::sim
