#include "sim/etl.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/evolutionary.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

class EtlTest : public ::testing::Test {
 protected:
  std::vector<plan::Plan> Workload() {
    auto w = workload::EvolutionaryWorkload::Generate(&PaperCatalog(),
                                                      workload::WorkloadConfig{});
    return w->Plans();
  }
};

TEST_F(EtlTest, ExtractsUnionOfAccessedFields) {
  auto etl = ComputeEtl(PaperCatalog(), Workload(), hv::HvConfig{},
                        transfer::TransferConfig{}, EtlConfig{});
  ASSERT_TRUE(etl.ok());
  // The relevant relational subset is much smaller than the 2 TB raw logs
  // but still a couple hundred GB (the paper's "200 GB relevant portion").
  EXPECT_GT(etl->extracted_bytes, GiB(50));
  EXPECT_LT(etl->extracted_bytes, GiB(500));
}

TEST_F(EtlTest, EtlDominatedByHeavyStages) {
  auto etl = ComputeEtl(PaperCatalog(), Workload(), hv::HvConfig{},
                        transfer::TransferConfig{}, EtlConfig{});
  ASSERT_TRUE(etl.ok());
  EXPECT_GT(etl->extract_s, 0);
  EXPECT_GT(etl->transform_s, 0);
  EXPECT_GT(etl->load_s, 0);
  EXPECT_NEAR(etl->Total(), etl->extract_s + etl->transform_s + etl->load_s,
              1e-9);
  // Calibration guard: ETL lands in the same order of magnitude as a full
  // HV-ONLY pass over the workload (Figure 4's DW-ONLY shape).
  EXPECT_GT(etl->Total(), 100'000);
  EXPECT_LT(etl->Total(), 500'000);
}

TEST_F(EtlTest, OverheadFactorScalesLinearly) {
  EtlConfig base;
  base.overhead_factor = 1.0;
  EtlConfig doubled;
  doubled.overhead_factor = 2.0;
  auto e1 = ComputeEtl(PaperCatalog(), Workload(), hv::HvConfig{},
                       transfer::TransferConfig{}, base);
  auto e2 = ComputeEtl(PaperCatalog(), Workload(), hv::HvConfig{},
                       transfer::TransferConfig{}, doubled);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_NEAR(e2->Total(), 2 * e1->Total(), 1e-6);
}

TEST_F(EtlTest, EmptyWorkloadHasNoEtl) {
  auto etl = ComputeEtl(PaperCatalog(), {}, hv::HvConfig{},
                        transfer::TransferConfig{}, EtlConfig{});
  ASSERT_TRUE(etl.ok());
  EXPECT_EQ(etl->extracted_bytes, 0);
  EXPECT_DOUBLE_EQ(etl->Total(), 0);
}

TEST_F(EtlTest, DwOnlyQueriesAreFastPostEtl) {
  dw::DwCostModel model{dw::DwConfig{}};
  int under_100s = 0;
  std::vector<plan::Plan> plans = Workload();
  for (const plan::Plan& q : plans) {
    auto cost = DwOnlyQueryCost(q, model);
    ASSERT_TRUE(cost.ok());
    EXPECT_GT(*cost, 0);
    if (*cost < 100) ++under_100s;
  }
  // Figure 5b: the DW-ONLY curve is the top curve — nearly all queries
  // complete within 100 s once the data is loaded.
  EXPECT_GE(under_100s, static_cast<int>(plans.size()) - 4);
}

}  // namespace
}  // namespace miso::sim
