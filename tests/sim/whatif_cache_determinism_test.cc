// The what-if cache contract (docs/DESIGN.md §11): caching is exact. A
// full simulated run — every per-query record, the TTI summary, the
// resource ticks, and the decision trace — is byte-identical with the
// cache on or off, and, cache-warm, across MISO_THREADS in {1, 2, 8}.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../test_util.h"
#include "obs/trace.h"
#include "sim/report_io.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

struct TracedReport {
  RunReport report;
  std::vector<std::string> trace;
};

/// One paper-workload run with the decision trace captured, `threads`
/// resolved through MISO_THREADS (the knob the contract is stated in).
TracedReport TracedRun(const SimConfig& base, int threads) {
  obs::Trace().Drain();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("MISO_THREADS", buf, /*overwrite=*/1);
  SimConfig config = base;
  config.threads = 0;  // resolve through MISO_THREADS
  config.trace = true;
  auto report = RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  unsetenv("MISO_THREADS");
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {std::move(report).value(), obs::Trace().Drain()};
}

void ExpectByteIdentical(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(QueriesToCsv(a), QueriesToCsv(b));
  EXPECT_EQ(SummaryToCsv(a, /*with_header=*/false),
            SummaryToCsv(b, /*with_header=*/false));
  EXPECT_EQ(TicksToCsv(a), TicksToCsv(b));
  EXPECT_EQ(a.Tti(), b.Tti());
}

TEST(WhatIfCacheDeterminismTest, CacheOnAndOffAreByteIdentical) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;

  SimConfig cached = config;
  cached.whatif_cache = true;
  SimConfig uncached = config;
  uncached.whatif_cache = false;

  const TracedReport with_cache = TracedRun(cached, /*threads=*/1);
  const TracedReport without_cache = TracedRun(uncached, /*threads=*/1);
  ASSERT_FALSE(with_cache.trace.empty());
  ExpectByteIdentical(with_cache.report, without_cache.report);
  EXPECT_EQ(with_cache.trace, without_cache.trace);
}

TEST(WhatIfCacheDeterminismTest,
     CachedRunIsByteIdenticalAcrossThreadCounts) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.whatif_cache = true;

  const TracedReport one = TracedRun(config, 1);
  ASSERT_FALSE(one.trace.empty());
  for (int threads : {2, 8}) {
    SCOPED_TRACE("MISO_THREADS=" + std::to_string(threads));
    const TracedReport many = TracedRun(config, threads);
    ExpectByteIdentical(one.report, many.report);
    EXPECT_EQ(one.trace, many.trace);
  }
}

TEST(WhatIfCacheDeterminismTest, TinyCacheStillExact) {
  // A byte bound of two entries forces constant eviction; the cache then
  // behaves as an always-cold cache, which must still be invisible in the
  // outputs.
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.whatif_cache = true;
  config.whatif_cache_bytes = 2 * optimizer::WhatIfCache::kEntryBytes;

  SimConfig unbounded = config;
  unbounded.whatif_cache_bytes = optimizer::WhatIfCache::kDefaultMaxBytes;

  const TracedReport tiny = TracedRun(config, /*threads=*/2);
  const TracedReport big = TracedRun(unbounded, /*threads=*/2);
  ExpectByteIdentical(tiny.report, big.report);
  EXPECT_EQ(tiny.trace, big.trace);
}

}  // namespace
}  // namespace miso::sim
