// DW-outage degradation: queries arriving inside an outage window are
// re-planned as HV-only splits (they complete, slower, with zero DW
// operators), reorganizations falling inside the window are deferred,
// and store-confined variants are untouched by the outage.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "fault/fault.h"
#include "sim/report_io.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

/// Outage-only spec: DW down for queries [5, 11), no transient faults.
fault::FaultSpec OutageOnlySpec() {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kOutage;
  spec.seed = 13;
  spec.rate = 0.0;  // pure outage: no retryable fault stream
  spec.dw_outages.push_back(fault::OutageWindow{5, 11});
  return spec;
}

RunReport MustRun(const SimConfig& config) {
  auto report = RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

TEST(DwOutageTest, WindowQueriesDegradeToHvOnlyPlansAndStillComplete) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = OutageOnlySpec();
  const RunReport report = MustRun(config);

  ASSERT_EQ(report.queries.size(), 32u);
  EXPECT_EQ(report.degraded_queries, 6);
  for (const QueryRecord& q : report.queries) {
    const bool in_window = q.index >= 5 && q.index < 11;
    EXPECT_EQ(q.degraded, in_window) << "query " << q.index;
    if (in_window) {
      // HV-only re-plan: nothing runs DW-side during the outage.
      EXPECT_EQ(q.ops_dw, 0) << "query " << q.index;
      EXPECT_DOUBLE_EQ(q.breakdown.dw_exec_s, 0.0) << "query " << q.index;
    }
    // Degradation, not failure: every query completed.
    EXPECT_GT(q.completion_time, q.start_time) << "query " << q.index;
  }
  // No transient faults were configured, so no retries anywhere.
  EXPECT_EQ(report.fault_injected, 0);
  EXPECT_EQ(report.fault_retries, 0);
  EXPECT_DOUBLE_EQ(report.fault_wasted_s, 0.0);
}

TEST(DwOutageTest, ReorgBoundariesInsideTheWindowAreDeferred) {
  // reorg_every = 3 puts boundaries after queries 2, 5, 8, ... — two of
  // which (5 and 8) fall inside the [5, 11) outage window.
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = OutageOnlySpec();
  const RunReport outage = MustRun(config);

  SimConfig clean_config;
  clean_config.variant = SystemVariant::kMsMiso;
  const RunReport clean = MustRun(clean_config);

  EXPECT_EQ(outage.reorgs_skipped, 2);
  EXPECT_EQ(outage.reorg_count, clean.reorg_count - 2);
  EXPECT_EQ(clean.reorgs_skipped, 0);
  EXPECT_EQ(clean.degraded_queries, 0);
}

TEST(DwOutageTest, OutageCostsTimeAgainstTheCleanRun) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  const RunReport clean = MustRun(config);
  config.fault = OutageOnlySpec();
  const RunReport outage = MustRun(config);
  // Six queries lost the DW's help: the workload takes longer even though
  // two reorganizations were skipped.
  EXPECT_GT(outage.Tti(), clean.Tti());
}

TEST(DwOutageTest, StoreConfinedVariantsIgnoreTheOutage) {
  for (SystemVariant variant :
       {SystemVariant::kHvOnly, SystemVariant::kHvOp, SystemVariant::kDwOnly}) {
    SimConfig config;
    config.variant = variant;
    config.fault = OutageOnlySpec();
    const RunReport report = MustRun(config);
    EXPECT_EQ(report.degraded_queries, 0)
        << "variant " << static_cast<int>(variant);
    for (const QueryRecord& q : report.queries) {
      EXPECT_FALSE(q.degraded);
    }
  }
}

TEST(DwOutageTest, DerivedWindowIsStableAcrossRuns) {
  // No explicit window: the outage profile derives one from (fault seed,
  // workload length). Two runs must agree byte-for-byte.
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault.profile = fault::FaultProfile::kOutage;
  config.fault.seed = 21;
  config.fault.rate = 0.0;
  const RunReport a = MustRun(config);
  const RunReport b = MustRun(config);
  EXPECT_GT(a.degraded_queries, 0);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(QueriesToCsv(a), QueriesToCsv(b));
  EXPECT_EQ(SummaryToCsv(a, false), SummaryToCsv(b, false));
}

}  // namespace
}  // namespace miso::sim
