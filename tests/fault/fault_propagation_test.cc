// Error propagation under injection: when the retry budget runs dry the
// simulation aborts with the canonical exhaustion error — it does not
// fabricate a completion time for work that never finished — and
// RunSeedSweep surfaces that error through its parallel fan-out instead
// of swallowing it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "fault/fault.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

/// Certain death: every attempt of every retryable operation fails, and
/// the policy allows only two of them.
fault::FaultSpec LethalSpec() {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kTransient;
  spec.seed = 1;
  spec.rate = 1.0;
  spec.retry.max_attempts = 2;
  return spec;
}

TEST(FaultPropagationTest, ExhaustionAbortsTheRunWithTheCanonicalError) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = LethalSpec();
  auto report = RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  ASSERT_FALSE(report.ok()) << "a rate-1.0 two-attempt run cannot succeed";
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("fault:"), std::string::npos)
      << report.status().ToString();
  EXPECT_NE(report.status().message().find("exhausted 2 attempts"),
            std::string::npos)
      << report.status().ToString();
}

TEST(FaultPropagationTest, RunSeedSweepPropagatesAFailingSeed) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = LethalSpec();
  config.threads = 2;  // exercise the parallel fan-out path
  const std::vector<uint64_t> seeds = {7, 123, 2026};
  auto reports = RunSeedSweep(&PaperCatalog(), config, seeds);
  ASSERT_FALSE(reports.ok())
      << "the sweep swallowed its seeds' exhaustion errors";
  EXPECT_EQ(reports.status().code(), StatusCode::kInternal);
  EXPECT_NE(reports.status().message().find("exhausted"), std::string::npos)
      << reports.status().ToString();
}

TEST(FaultPropagationTest, AmpleRetryBudgetSurvivesTheSameFaultRate) {
  // The same 100% failure rate is survivable when only the *first*
  // attempt is doomed — verify exhaustion is about the budget, not the
  // mere presence of faults. Rate 1.0 fails every attempt, so instead
  // drop the rate and raise the budget: the run must complete.
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault.profile = fault::FaultProfile::kTransient;
  config.fault.seed = 1;
  config.fault.rate = 0.10;
  config.fault.retry.max_attempts = 8;
  auto report = RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->fault_injected, 0);
  EXPECT_TRUE(report->queries.size() == 32u);
}

}  // namespace
}  // namespace miso::sim
