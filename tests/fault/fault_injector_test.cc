// The fault oracle contract: decisions are a pure, stateless hash of
// (seed, site, entity, attempt) — order- and thread-independent — the
// profile/rate/seed knobs resolve strictly from the environment, and the
// derived DW outage window is deterministic in (seed, workload length).

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace miso::fault {
namespace {

FaultSpec ChaosSpec(int64_t seed = 7, double rate = 0.3) {
  FaultSpec spec;
  spec.profile = FaultProfile::kChaos;
  spec.seed = seed;
  spec.rate = rate;
  return spec;
}

class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { Clear(); }
  void TearDown() override { Clear(); }
  static void Clear() {
    unsetenv("MISO_FAULT_PROFILE");
    unsetenv("MISO_FAULT_RATE");
    unsetenv("MISO_FAULT_SEED");
  }
};

TEST_F(FaultEnvTest, DefaultSpecResolvesToOff) {
  const FaultPlan plan = FaultPlan::Resolve(FaultSpec{}, /*num_queries=*/32);
  EXPECT_FALSE(plan.Enabled());
  EXPECT_DOUBLE_EQ(plan.hv_job_rate, 0.0);
  EXPECT_DOUBLE_EQ(plan.reorg_crash_rate, 0.0);
  EXPECT_TRUE(plan.dw_outages.empty());
}

TEST_F(FaultEnvTest, ProfileRateAndSeedResolveFromEnvironment) {
  setenv("MISO_FAULT_PROFILE", "transient", 1);
  setenv("MISO_FAULT_RATE", "0.25", 1);
  setenv("MISO_FAULT_SEED", "99", 1);
  const FaultPlan plan = FaultPlan::Resolve(FaultSpec{}, 32);
  EXPECT_TRUE(plan.Enabled());
  EXPECT_EQ(plan.profile, FaultProfile::kTransient);
  EXPECT_DOUBLE_EQ(plan.hv_job_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.transfer_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.dw_load_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.reorg_crash_rate, 0.0);  // crashes are chaos-only
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_TRUE(plan.dw_outages.empty());  // no outage in transient
}

TEST_F(FaultEnvTest, ExplicitSpecFieldsWinOverEnvironment) {
  setenv("MISO_FAULT_PROFILE", "off", 1);
  setenv("MISO_FAULT_RATE", "0.9", 1);
  const FaultPlan plan = FaultPlan::Resolve(ChaosSpec(/*seed=*/3, 0.1), 32);
  EXPECT_EQ(plan.profile, FaultProfile::kChaos);
  EXPECT_DOUBLE_EQ(plan.hv_job_rate, 0.1);
  EXPECT_EQ(plan.seed, 3u);
}

// Satellite: the MISO_FAULT_* knobs obey the strict-parsing contract —
// garbage terminates with exit 2 and a diagnostic naming the knob, never
// a silent fallback to a configuration the user did not ask for.
TEST_F(FaultEnvTest, GarbageProfileDies) {
  setenv("MISO_FAULT_PROFILE", "sometimes", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2),
              "MISO_FAULT_PROFILE='sometimes' is invalid.*"
              "off\\|transient\\|outage\\|chaos");
}

TEST_F(FaultEnvTest, GarbageRateDies) {
  setenv("MISO_FAULT_PROFILE", "transient", 1);
  setenv("MISO_FAULT_RATE", "lots", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2), "MISO_FAULT_RATE='lots' is invalid");
}

TEST_F(FaultEnvTest, GarbageRateDiesEvenWhenTheProfileIsOff) {
  // Strictness is unconditional: the off profile reads no rate, but a
  // malformed knob still dies — same contract as MISO_THREADS.
  setenv("MISO_FAULT_RATE", "lots", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2), "MISO_FAULT_RATE='lots' is invalid");
}

TEST_F(FaultEnvTest, OutOfRangeRateDies) {
  setenv("MISO_FAULT_PROFILE", "transient", 1);
  setenv("MISO_FAULT_RATE", "1.5", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2), "expected a number in \\[0, 1\\]");
  setenv("MISO_FAULT_RATE", "-0.1", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2), "invalid");
}

TEST_F(FaultEnvTest, NanRateDies) {
  setenv("MISO_FAULT_PROFILE", "transient", 1);
  setenv("MISO_FAULT_RATE", "nan", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2), "invalid");
}

TEST_F(FaultEnvTest, GarbageSeedDies) {
  setenv("MISO_FAULT_SEED", "abc", 1);
  EXPECT_EXIT(FaultPlan::Resolve(FaultSpec{}, 32),
              ::testing::ExitedWithCode(2), "MISO_FAULT_SEED='abc' is invalid");
}

TEST(FaultDecisionTest, PureFunctionOfSeedSiteEntityAttempt) {
  const FaultPlan plan = FaultPlan::Resolve(ChaosSpec(), 32);
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (uint64_t entity = 0; entity < 200; ++entity) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const FaultDecision da = a.Decide(FaultSite::kHvJob, entity, attempt);
      const FaultDecision db = b.Decide(FaultSite::kHvJob, entity, attempt);
      EXPECT_EQ(da.fail, db.fail);
      EXPECT_DOUBLE_EQ(da.partial_fraction, db.partial_fraction);
    }
  }
}

TEST(FaultDecisionTest, OrderOfProbingDoesNotMatter) {
  // The whole point of the stateless oracle: interleaving probes of other
  // (site, entity, attempt) keys cannot perturb any decision — this is
  // what makes fault runs thread-count independent.
  const FaultInjector injector(FaultPlan::Resolve(ChaosSpec(), 32));
  std::vector<FaultDecision> forward;
  for (uint64_t e = 0; e < 64; ++e) {
    forward.push_back(injector.Decide(FaultSite::kTransfer, e, 1));
  }
  std::vector<FaultDecision> backward(64);
  for (int e = 63; e >= 0; --e) {
    injector.Decide(FaultSite::kDwLoad, static_cast<uint64_t>(e) * 13, 2);
    backward[e] =
        injector.Decide(FaultSite::kTransfer, static_cast<uint64_t>(e), 1);
  }
  for (size_t e = 0; e < 64; ++e) {
    EXPECT_EQ(forward[e].fail, backward[e].fail) << e;
    EXPECT_DOUBLE_EQ(forward[e].partial_fraction, backward[e].partial_fraction);
  }
}

TEST(FaultDecisionTest, RateBoundsFailureFrequency) {
  FaultSpec spec = ChaosSpec(/*seed=*/11, /*rate=*/0.2);
  const FaultInjector injector(FaultPlan::Resolve(spec, 32));
  int failures = 0;
  const int kTrials = 5000;
  for (int e = 0; e < kTrials; ++e) {
    const FaultDecision d =
        injector.Decide(FaultSite::kHvJob, static_cast<uint64_t>(e), 1);
    if (d.fail) {
      ++failures;
      EXPECT_GE(d.partial_fraction, 0.05);
      EXPECT_LE(d.partial_fraction, 0.95);
    } else {
      EXPECT_DOUBLE_EQ(d.partial_fraction, 0.0);
    }
  }
  // 0.2 ± generous tolerance for 5000 hash draws.
  EXPECT_GT(failures, kTrials * 0.15);
  EXPECT_LT(failures, kTrials * 0.25);
}

TEST(FaultDecisionTest, RateZeroNeverFailsRateOneAlwaysFails) {
  const FaultInjector never(FaultPlan::Resolve(ChaosSpec(1, 0.0), 32));
  const FaultInjector always(FaultPlan::Resolve(ChaosSpec(1, 1.0), 32));
  for (uint64_t e = 0; e < 100; ++e) {
    EXPECT_FALSE(never.Decide(FaultSite::kHvJob, e, 1).fail);
    EXPECT_TRUE(always.Decide(FaultSite::kHvJob, e, 1).fail);
  }
}

TEST(FaultDecisionTest, SitesAreIndependentStreams) {
  const FaultInjector injector(FaultPlan::Resolve(ChaosSpec(5, 0.5), 32));
  bool differs = false;
  for (uint64_t e = 0; e < 64 && !differs; ++e) {
    differs = injector.Decide(FaultSite::kHvJob, e, 1).fail !=
              injector.Decide(FaultSite::kTransfer, e, 1).fail;
  }
  EXPECT_TRUE(differs) << "hv_job and transfer streams are identical";
}

TEST(OutageWindowTest, DerivedWindowIsDeterministicAndInRange) {
  const int n = 32;
  const FaultPlan a = FaultPlan::Resolve(ChaosSpec(42), n);
  const FaultPlan b = FaultPlan::Resolve(ChaosSpec(42), n);
  ASSERT_EQ(a.dw_outages.size(), 1u);
  ASSERT_EQ(b.dw_outages.size(), 1u);
  EXPECT_EQ(a.dw_outages[0].begin_query, b.dw_outages[0].begin_query);
  EXPECT_EQ(a.dw_outages[0].end_query, b.dw_outages[0].end_query);
  EXPECT_GE(a.dw_outages[0].begin_query, n / 4);
  EXPECT_LT(a.dw_outages[0].begin_query, n / 2);
  EXPECT_LE(a.dw_outages[0].end_query, n);
  EXPECT_GT(a.dw_outages[0].end_query, a.dw_outages[0].begin_query);
}

TEST(OutageWindowTest, ExplicitWindowsWinAndDriveDwDownForQuery) {
  FaultSpec spec = ChaosSpec();
  spec.dw_outages.push_back(OutageWindow{5, 8});
  spec.dw_outages.push_back(OutageWindow{20, 21});
  const FaultInjector injector(FaultPlan::Resolve(spec, 32));
  EXPECT_FALSE(injector.DwDownForQuery(4));
  EXPECT_TRUE(injector.DwDownForQuery(5));
  EXPECT_TRUE(injector.DwDownForQuery(7));
  EXPECT_FALSE(injector.DwDownForQuery(8));  // end is exclusive
  EXPECT_TRUE(injector.DwDownForQuery(20));
  EXPECT_FALSE(injector.DwDownForQuery(21));
}

TEST(ReorgCrashTest, CrashPointAlwaysLandsBetweenMoves) {
  FaultSpec spec = ChaosSpec(9, 1.0);  // chaos + rate 1 => crash rate 1
  const FaultInjector injector(FaultPlan::Resolve(spec, 32));
  for (uint64_t reorg = 0; reorg < 50; ++reorg) {
    for (int entries : {2, 3, 7, 20}) {
      const int point = injector.ReorgCrashPoint(reorg, entries);
      ASSERT_GE(point, 1) << "reorg " << reorg << " entries " << entries;
      ASSERT_LT(point, entries);
    }
  }
}

TEST(ReorgCrashTest, SingleStepReorgsNeverCrash) {
  const FaultInjector injector(FaultPlan::Resolve(ChaosSpec(9, 1.0), 32));
  EXPECT_EQ(injector.ReorgCrashPoint(0, 0), -1);
  EXPECT_EQ(injector.ReorgCrashPoint(0, 1), -1);
}

TEST(ReorgCrashTest, NonChaosProfilesNeverCrash) {
  FaultSpec spec = ChaosSpec(9, 1.0);
  spec.profile = FaultProfile::kOutage;
  const FaultInjector injector(FaultPlan::Resolve(spec, 32));
  for (uint64_t reorg = 0; reorg < 20; ++reorg) {
    EXPECT_EQ(injector.ReorgCrashPoint(reorg, 10), -1);
  }
}

TEST(ExhaustedErrorTest, DiagnosticNamesSiteEntityAndAttempts) {
  const Status status = ExhaustedError(FaultSite::kTransfer, 12, 3);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("transfer entity 12 exhausted 3 attempts"),
            std::string::npos)
      << status.ToString();
}

TEST(FaultAccountingTest, MergeCountsInjectionsFromRetryStats) {
  RetryStats two_retries;
  two_retries.attempts = 3;
  two_retries.wasted_s = 20;
  two_retries.backoff_s = 6;
  FaultAccounting acc;
  acc.Merge(two_retries);
  EXPECT_EQ(acc.injected, 2);
  EXPECT_EQ(acc.retries, 2);
  EXPECT_FALSE(acc.exhausted);
  EXPECT_TRUE(acc.Any());

  RetryStats clean;
  clean.attempts = 1;
  acc.Merge(clean);
  EXPECT_EQ(acc.injected, 2);  // a clean run adds nothing

  RetryStats dead;
  dead.attempts = 2;
  dead.exhausted = true;
  acc.Merge(dead);
  EXPECT_EQ(acc.injected, 4);  // one retry + the final unrecovered failure
  EXPECT_TRUE(acc.exhausted);
}

}  // namespace
}  // namespace miso::fault
