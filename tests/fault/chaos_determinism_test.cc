// The chaos determinism contract: a fully fault-injected run — transient
// HV/transfer/DW-load failures with retries, a DW outage window, and
// mid-reorganization crashes with journal recovery — is byte-identical
// across MISO_THREADS in {1, 2, 8}, because every fault decision is a
// pure hash of (fault seed, site, entity, attempt), independent of
// evaluation order. The sweep is non-vacuous: it asserts faults of every
// class actually fired.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "../test_util.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "sim/report_io.h"
#include "sim/simulator.h"

namespace miso::sim {
namespace {

using testing_util::PaperCatalog;

fault::FaultSpec ChaosSpec(RecoveryPolicy recovery) {
  fault::FaultSpec spec;
  spec.profile = fault::FaultProfile::kChaos;
  spec.seed = 5;
  spec.rate = 0.12;
  // Generous retry budget: the sweep tests determinism under faults, not
  // exhaustion (rate^max_attempts makes run-aborting exhaustion
  // vanishingly unlikely and, being hash-driven, fully reproducible).
  spec.retry.max_attempts = 6;
  spec.recovery = recovery;
  return spec;
}

struct TracedReport {
  RunReport report;
  std::vector<std::string> trace;
};

TracedReport TracedChaosRun(const SimConfig& base, int threads) {
  obs::Trace().Drain();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("MISO_THREADS", buf, /*overwrite=*/1);
  SimConfig config = base;
  config.threads = 0;  // resolve through MISO_THREADS
  config.trace = true;
  auto report = RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  unsetenv("MISO_THREADS");
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {std::move(report).value(), obs::Trace().Drain()};
}

void ExpectByteIdentical(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(QueriesToCsv(a), QueriesToCsv(b));
  EXPECT_EQ(SummaryToCsv(a, /*with_header=*/false),
            SummaryToCsv(b, /*with_header=*/false));
  EXPECT_EQ(TicksToCsv(a), TicksToCsv(b));
  EXPECT_EQ(a.Tti(), b.Tti());
}

int CountEvents(const std::vector<std::string>& trace, const char* kind) {
  const std::string needle = std::string("{\"event\":\"") + kind + "\"";
  int count = 0;
  for (const std::string& line : trace) {
    if (line.rfind(needle, 0) == 0) ++count;
  }
  return count;
}

TEST(ChaosDeterminismTest, ChaosRunIsByteIdenticalAcrossThreadCounts) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = ChaosSpec(RecoveryPolicy::kResume);

  const TracedReport one = TracedChaosRun(config, 1);

  // Non-vacuity: every fault class actually fired in this configuration.
  EXPECT_GT(one.report.fault_injected, 0) << "no faults injected";
  EXPECT_GT(one.report.fault_retries, 0) << "no retries happened";
  EXPECT_GT(one.report.fault_wasted_s, 0.0);
  EXPECT_GT(one.report.fault_backoff_s, 0.0);
  EXPECT_GT(one.report.degraded_queries, 0) << "no DW outage degradation";
  EXPECT_GT(one.report.reorg_crashes, 0) << "no reorg crash was injected";
  EXPECT_GT(CountEvents(one.trace, "fault.query"), 0);
  EXPECT_GT(CountEvents(one.trace, "fault.reorg_recovery"), 0);
  EXPECT_EQ(CountEvents(one.trace, "fault.reorg_recovery"),
            one.report.reorg_crashes);

  for (int threads : {2, 8}) {
    SCOPED_TRACE("MISO_THREADS=" + std::to_string(threads));
    const TracedReport many = TracedChaosRun(config, threads);
    ExpectByteIdentical(one.report, many.report);
    EXPECT_EQ(one.trace, many.trace);
  }
}

TEST(ChaosDeterminismTest, RollbackRecoveryIsAlsoDeterministic) {
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = ChaosSpec(RecoveryPolicy::kRollback);

  const TracedReport one = TracedChaosRun(config, 1);
  EXPECT_GT(one.report.reorg_crashes, 0) << "no reorg crash was injected";
  EXPECT_GT(CountEvents(one.trace, "fault.reorg_recovery"), 0);
  // Every recovery line carries the rollback policy.
  for (const std::string& line : one.trace) {
    if (line.rfind("{\"event\":\"fault.reorg_recovery\"", 0) == 0) {
      EXPECT_NE(line.find("\"policy\":\"rollback\""), std::string::npos)
          << line;
    }
  }
  const TracedReport many = TracedChaosRun(config, 8);
  ExpectByteIdentical(one.report, many.report);
  EXPECT_EQ(one.trace, many.trace);
}

TEST(ChaosDeterminismTest, FaultSeedSelectsTheFaultPattern) {
  // Same workload, different fault seed: a genuinely different run (the
  // stream is seed-keyed), while re-running either seed replays exactly.
  SimConfig config;
  config.variant = SystemVariant::kMsMiso;
  config.fault = ChaosSpec(RecoveryPolicy::kResume);

  const TracedReport a1 = TracedChaosRun(config, 1);
  const TracedReport a2 = TracedChaosRun(config, 1);
  ExpectByteIdentical(a1.report, a2.report);
  EXPECT_EQ(a1.trace, a2.trace);

  config.fault.seed = 6;
  const TracedReport b = TracedChaosRun(config, 1);
  EXPECT_NE(QueriesToCsv(a1.report), QueriesToCsv(b.report))
      << "changing the fault seed changed nothing";
}

TEST(ChaosDeterminismTest, DisabledInjectionMatchesTheLegacyRunExactly) {
  // Zero-cost discipline: an explicit kOff spec and the default spec (no
  // MISO_FAULT_* in the ctest environment) must both take the unfaulted
  // code path and produce byte-identical reports and traces.
  SimConfig off;
  off.variant = SystemVariant::kMsMiso;
  off.fault.profile = fault::FaultProfile::kOff;
  SimConfig defaulted;
  defaulted.variant = SystemVariant::kMsMiso;

  const TracedReport a = TracedChaosRun(off, 2);
  const TracedReport b = TracedChaosRun(defaulted, 2);
  ExpectByteIdentical(a.report, b.report);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.report.fault_injected, 0);
  EXPECT_EQ(a.report.reorg_crashes, 0);
  EXPECT_EQ(a.report.degraded_queries, 0);
  EXPECT_EQ(CountEvents(a.trace, "fault.query"), 0);
  EXPECT_EQ(CountEvents(a.trace, "fault.reorg_recovery"), 0);
}

}  // namespace
}  // namespace miso::sim
