#include "plan/predicate.h"

#include <gtest/gtest.h>

namespace miso::plan {
namespace {

PredicateAtom Atom(const std::string& field, CompareOp op,
                   const std::string& operand, double sel = 0.5) {
  return MakeAtom(field, op, operand, sel);
}

TEST(PredicateAtomTest, NumericParsing) {
  EXPECT_TRUE(Atom("ts", CompareOp::kGt, "100").numeric.has_value());
  EXPECT_DOUBLE_EQ(*Atom("ts", CompareOp::kGt, "100").numeric, 100.0);
  EXPECT_TRUE(Atom("x", CompareOp::kLt, "-2.5").numeric.has_value());
  EXPECT_FALSE(Atom("topic", CompareOp::kEq, "coffee").numeric.has_value());
  EXPECT_FALSE(Atom("t", CompareOp::kEq, "12abc").numeric.has_value());
}

TEST(PredicateAtomTest, CanonicalString) {
  EXPECT_EQ(Atom("ts", CompareOp::kGt, "100").CanonicalString(), "ts > 100");
  EXPECT_EQ(Atom("topic", CompareOp::kLike, "c%").CanonicalString(),
            "topic LIKE c%");
}

TEST(PredicateAtomTest, SameAtomIgnoresSelectivity) {
  EXPECT_TRUE(Atom("a", CompareOp::kEq, "x", 0.1)
                  .SameAtom(Atom("a", CompareOp::kEq, "x", 0.9)));
  EXPECT_FALSE(Atom("a", CompareOp::kEq, "x")
                   .SameAtom(Atom("a", CompareOp::kEq, "y")));
  EXPECT_FALSE(Atom("a", CompareOp::kEq, "x")
                   .SameAtom(Atom("b", CompareOp::kEq, "x")));
}

// ---- AtomImplies: exhaustive range-implication truth table. ------------

struct ImplicationCase {
  CompareOp strong_op;
  double strong_val;
  CompareOp weak_op;
  double weak_val;
  bool expected;
};

class AtomImpliesTest : public ::testing::TestWithParam<ImplicationCase> {};

TEST_P(AtomImpliesTest, RangeImplication) {
  const ImplicationCase& c = GetParam();
  const PredicateAtom strong =
      Atom("ts", c.strong_op, std::to_string(c.strong_val));
  const PredicateAtom weak =
      Atom("ts", c.weak_op, std::to_string(c.weak_val));
  EXPECT_EQ(AtomImplies(strong, weak), c.expected)
      << strong.CanonicalString() << " => " << weak.CanonicalString();
}

INSTANTIATE_TEST_SUITE_P(
    GreaterFamily, AtomImpliesTest,
    ::testing::Values(
        // (x > 200) => (x > 100); not vice versa.
        ImplicationCase{CompareOp::kGt, 200, CompareOp::kGt, 100, true},
        ImplicationCase{CompareOp::kGt, 100, CompareOp::kGt, 200, false},
        ImplicationCase{CompareOp::kGt, 100, CompareOp::kGt, 100, true},
        // (x >= 100) does NOT imply (x > 100): x = 100 violates.
        ImplicationCase{CompareOp::kGe, 100, CompareOp::kGt, 100, false},
        ImplicationCase{CompareOp::kGe, 101, CompareOp::kGt, 100, true},
        // (x > 100) => (x >= 100).
        ImplicationCase{CompareOp::kGt, 100, CompareOp::kGe, 100, true},
        ImplicationCase{CompareOp::kGe, 100, CompareOp::kGe, 100, true},
        ImplicationCase{CompareOp::kGe, 99, CompareOp::kGe, 100, false},
        // (x = 150) => (x > 100), (x >= 150).
        ImplicationCase{CompareOp::kEq, 150, CompareOp::kGt, 100, true},
        ImplicationCase{CompareOp::kEq, 100, CompareOp::kGt, 100, false},
        ImplicationCase{CompareOp::kEq, 150, CompareOp::kGe, 150, true}));

INSTANTIATE_TEST_SUITE_P(
    LessFamily, AtomImpliesTest,
    ::testing::Values(
        ImplicationCase{CompareOp::kLt, 100, CompareOp::kLt, 200, true},
        ImplicationCase{CompareOp::kLt, 200, CompareOp::kLt, 100, false},
        ImplicationCase{CompareOp::kLe, 100, CompareOp::kLt, 100, false},
        ImplicationCase{CompareOp::kLe, 99, CompareOp::kLt, 100, true},
        ImplicationCase{CompareOp::kLt, 100, CompareOp::kLe, 100, true},
        ImplicationCase{CompareOp::kEq, 50, CompareOp::kLt, 100, true},
        ImplicationCase{CompareOp::kEq, 100, CompareOp::kLe, 100, true},
        ImplicationCase{CompareOp::kEq, 101, CompareOp::kLe, 100, false}));

TEST(AtomImpliesTest, DifferentFieldsNeverImply) {
  EXPECT_FALSE(AtomImplies(Atom("a", CompareOp::kGt, "5"),
                           Atom("b", CompareOp::kGt, "1")));
}

TEST(AtomImpliesTest, IdenticalNonNumericAtomsImply) {
  EXPECT_TRUE(AtomImplies(Atom("topic", CompareOp::kLike, "c%"),
                          Atom("topic", CompareOp::kLike, "c%")));
  EXPECT_FALSE(AtomImplies(Atom("topic", CompareOp::kLike, "c%"),
                           Atom("topic", CompareOp::kLike, "d%")));
}

TEST(AtomImpliesTest, CrossDirectionNeverImplies) {
  EXPECT_FALSE(AtomImplies(Atom("x", CompareOp::kGt, "5"),
                           Atom("x", CompareOp::kLt, "10")));
}

// ---- Predicate (conjunctions). -----------------------------------------

TEST(PredicateTest, EmptyIsTrue) {
  Predicate p;
  EXPECT_TRUE(p.IsTrue());
  EXPECT_DOUBLE_EQ(p.Selectivity(), 1.0);
  EXPECT_EQ(p.CanonicalString(), "true");
}

TEST(PredicateTest, SelectivityIsProduct) {
  Predicate p({Atom("a", CompareOp::kEq, "x", 0.2),
               Atom("b", CompareOp::kGt, "1", 0.5)});
  EXPECT_DOUBLE_EQ(p.Selectivity(), 0.1);
}

TEST(PredicateTest, CanonicalStringIsOrderIndependent) {
  Predicate p1({Atom("a", CompareOp::kEq, "x"), Atom("b", CompareOp::kGt, "1")});
  Predicate p2({Atom("b", CompareOp::kGt, "1"), Atom("a", CompareOp::kEq, "x")});
  EXPECT_EQ(p1.CanonicalString(), p2.CanonicalString());
}

TEST(PredicateTest, AndDropsExactDuplicates) {
  Predicate p1({Atom("a", CompareOp::kEq, "x", 0.2)});
  Predicate p2({Atom("a", CompareOp::kEq, "x", 0.2),
                Atom("b", CompareOp::kGt, "1", 0.5)});
  Predicate merged = p1.And(p2);
  EXPECT_EQ(merged.size(), 2);
  EXPECT_DOUBLE_EQ(merged.Selectivity(), 0.1);
}

TEST(PredicateTest, ConjunctSupersetImplies) {
  Predicate weak({Atom("a", CompareOp::kEq, "x")});
  Predicate strong({Atom("a", CompareOp::kEq, "x"),
                    Atom("b", CompareOp::kGt, "1")});
  EXPECT_TRUE(strong.Implies(weak));
  EXPECT_FALSE(weak.Implies(strong));
  EXPECT_TRUE(strong.Implies(Predicate())) << "everything implies true";
}

TEST(PredicateTest, RangeBasedPredicateImplication) {
  Predicate weak({Atom("ts", CompareOp::kGt, "100")});
  Predicate strong({Atom("ts", CompareOp::kGt, "200"),
                    Atom("topic", CompareOp::kEq, "coffee")});
  EXPECT_TRUE(strong.Implies(weak));
}

TEST(CompensationTest, ExactAtomsAbsorbed) {
  Predicate view({Atom("a", CompareOp::kEq, "x", 0.2)});
  Predicate query({Atom("a", CompareOp::kEq, "x", 0.2),
                   Atom("b", CompareOp::kGt, "1", 0.5)});
  Predicate comp = CompensationPredicate(query, view);
  ASSERT_EQ(comp.size(), 1);
  EXPECT_EQ(comp.atoms()[0].field, "b");
  EXPECT_DOUBLE_EQ(comp.atoms()[0].selectivity, 0.5);
}

TEST(CompensationTest, WeakerRangeAtomRescalesSelectivity) {
  // View kept ts > 100 (sel 0.5); query needs ts > 200 (sel 0.25).
  // Conditional selectivity given the view = 0.25 / 0.5 = 0.5.
  Predicate view({Atom("ts", CompareOp::kGt, "100", 0.5)});
  Predicate query({Atom("ts", CompareOp::kGt, "200", 0.25)});
  Predicate comp = CompensationPredicate(query, view);
  ASSERT_EQ(comp.size(), 1);
  EXPECT_DOUBLE_EQ(comp.atoms()[0].selectivity, 0.5);
}

TEST(CompensationTest, IdenticalPredicatesYieldTrue) {
  Predicate p({Atom("a", CompareOp::kEq, "x", 0.2)});
  EXPECT_TRUE(CompensationPredicate(p, p).IsTrue());
}

TEST(CompensationTest, SelectivityComposition) {
  // Applying the compensation to the view must approximate the query:
  // sel(view) * sel(comp) == sel(query) when atoms rescale.
  Predicate view({Atom("ts", CompareOp::kGt, "100", 0.5),
                  Atom("topic", CompareOp::kEq, "c", 0.1)});
  Predicate query({Atom("ts", CompareOp::kGt, "250", 0.2),
                   Atom("topic", CompareOp::kEq, "c", 0.1),
                   Atom("lang", CompareOp::kEq, "en", 0.6)});
  ASSERT_TRUE(query.Implies(view));
  Predicate comp = CompensationPredicate(query, view);
  EXPECT_NEAR(view.Selectivity() * comp.Selectivity(), query.Selectivity(),
              1e-12);
}

}  // namespace
}  // namespace miso::plan
