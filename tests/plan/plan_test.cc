#include "plan/plan.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::plan {
namespace {

using testing_util::PaperCatalog;

TEST(PlanTest, EmptyPlanProperties) {
  Plan empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.signature(), 0u);
  EXPECT_EQ(empty.NumOperators(), 0);
  EXPECT_TRUE(empty.PostOrder().empty());
  EXPECT_FALSE(empty.FullyDwExecutable());
}

TEST(PlanTest, PostOrderVisitsChildrenFirst) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  ASSERT_TRUE(plan.ok());
  std::vector<NodePtr> order = plan->PostOrder();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.back(), plan->root()) << "the root comes last";
  // Every node appears after all of its children.
  for (size_t i = 0; i < order.size(); ++i) {
    for (const NodePtr& child : order[i]->children()) {
      bool child_before = false;
      for (size_t j = 0; j < i; ++j) {
        if (order[j] == child) child_before = true;
      }
      EXPECT_TRUE(child_before);
    }
  }
}

TEST(PlanTest, PostOrderIsDeterministic) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  std::vector<NodePtr> a = plan->PostOrder();
  std::vector<NodePtr> b = plan->PostOrder();
  EXPECT_EQ(a, b);
}

TEST(PlanTest, PlansShareSubtreesAfterCopy) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  Plan copy = *plan;  // cheap: shared root
  EXPECT_EQ(copy.root(), plan->root());
  EXPECT_EQ(copy.signature(), plan->signature());
}

TEST(PlanTest, FullyDwExecutableRequiresViewLeaves) {
  NodeFactory factory(&PaperCatalog());
  auto extract = factory.MakeExtract(*factory.MakeScan("landmarks"),
                                     {"region", "rating"});
  views::View view = views::ViewFromNode(**extract);
  NodePtr scan = factory.MakeViewScan(1, view.signature, StoreKind::kDw,
                                      view.schema, view.stats,
                                      view.canonical);
  auto agg = factory.MakeAggregate(scan, {"region"}, {{"count", "*"}});
  Plan dw_plan("q", *agg);
  EXPECT_TRUE(dw_plan.FullyDwExecutable());

  Plan raw_plan("q", *extract);
  EXPECT_FALSE(raw_plan.FullyDwExecutable());
}

}  // namespace
}  // namespace miso::plan
