#include "plan/builder.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::plan {
namespace {

using testing_util::PaperCatalog;

TEST(BuilderTest, ScanExtractFilterChain) {
  PlanBuilder b(&PaperCatalog());
  auto fragment =
      b.Scan("twitter")
          .Extract({"user_id", "topic"})
          .Filter({MakeAtom("topic", CompareOp::kEq, "coffee", 0.01)});
  auto plan = fragment.Aggregate({"topic"}, {{"count", "*"}}).Build("q");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query_name(), "q");
  EXPECT_EQ(plan->NumOperators(), 4);
  EXPECT_EQ(plan->root()->kind(), OpKind::kAggregate);
}

TEST(BuilderTest, UnknownDatasetLatchesError) {
  PlanBuilder b(&PaperCatalog());
  auto fragment = b.Scan("no_such_log").Extract({"x"});
  auto plan = fragment.Build("q");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(BuilderTest, UnknownFieldInExtractErrors) {
  PlanBuilder b(&PaperCatalog());
  auto plan = b.Scan("twitter").Extract({"no_field"}).Build("q");
  EXPECT_FALSE(plan.ok());
}

TEST(BuilderTest, FilterOnUnextractedFieldErrors) {
  PlanBuilder b(&PaperCatalog());
  auto plan = b.Scan("twitter")
                  .Extract({"user_id"})
                  .Filter({MakeAtom("topic", CompareOp::kEq, "x", 0.1)})
                  .Build("q");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, InvalidSelectivityErrors) {
  PlanBuilder b(&PaperCatalog());
  auto plan = b.Scan("twitter")
                  .Extract({"topic"})
                  .Filter({MakeAtom("topic", CompareOp::kEq, "x", 0.0)})
                  .Build("q");
  ASSERT_FALSE(plan.ok());
  auto plan2 = b.Scan("twitter")
                   .Extract({"topic"})
                   .Filter({MakeAtom("topic", CompareOp::kEq, "x", 1.5)})
                   .Build("q");
  ASSERT_FALSE(plan2.ok());
}

TEST(BuilderTest, JoinRequiresSharedKey) {
  PlanBuilder b(&PaperCatalog());
  auto tweets = b.Scan("twitter").Extract({"user_id", "topic"});
  auto landmarks = b.Scan("landmarks").Extract({"checkin_loc", "region"});
  auto bad = tweets.Join(landmarks, "user_id").Build("q");
  EXPECT_FALSE(bad.ok()) << "landmarks has no user_id";

  auto checkins = b.Scan("foursquare").Extract({"user_id", "checkin_loc"});
  auto good = tweets.Join(checkins, "user_id").Aggregate(
      {"topic"}, {{"count", "*"}});
  EXPECT_TRUE(good.Build("q").ok());
}

TEST(BuilderTest, AggregateRequiresFunctions) {
  PlanBuilder b(&PaperCatalog());
  auto plan =
      b.Scan("twitter").Extract({"topic"}).Aggregate({"topic"}, {}).Build(
          "q");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, UdfParameterValidation) {
  PlanBuilder b(&PaperCatalog());
  UdfParams bad;
  bad.name = "u";
  bad.size_factor = -1;
  auto plan = b.Scan("twitter").Extract({"text"}).Udf(bad).Build("q");
  EXPECT_FALSE(plan.ok());

  UdfParams good;
  good.name = "u";
  auto plan2 = b.Scan("twitter").Extract({"text"}).Udf(good).Build("q");
  EXPECT_TRUE(plan2.ok());
}

TEST(BuilderTest, EmptyFragmentErrors) {
  PlanBuilder b(&PaperCatalog());
  PlanBuilder::Fragment fragment = b.Scan("twitter");
  // A bare scan is still a valid (if useless) plan; only errored or empty
  // fragments fail.
  EXPECT_TRUE(fragment.Build("q").ok());
}

TEST(BuilderTest, AnalystPlanHelperBuilds) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "A1v1",
                                            "cat%", 0.1, false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumOperators(), 13);
  EXPECT_FALSE(plan->FullyDwExecutable())
      << "raw scans pin the plan to HV";
}

TEST(BuilderTest, DwExecutabilityFlags) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            /*udf_dw_compatible=*/false);
  ASSERT_TRUE(plan.ok());
  for (const NodePtr& node : plan->PostOrder()) {
    switch (node->kind()) {
      case OpKind::kScan:
      case OpKind::kExtract:
        EXPECT_FALSE(node->dw_executable());
        break;
      case OpKind::kUdf:
        EXPECT_EQ(node->dw_executable(), node->udf().dw_compatible);
        break;
      default:
        EXPECT_TRUE(node->dw_executable());
    }
  }
}

}  // namespace
}  // namespace miso::plan
