#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/node_factory.h"

namespace miso::plan {
namespace {

using testing_util::PaperCatalog;

class EstimatorTest : public ::testing::Test {
 protected:
  NodeFactory factory_{&PaperCatalog()};
};

TEST_F(EstimatorTest, ScanMatchesCatalog) {
  auto scan = factory_.MakeScan("twitter");
  ASSERT_TRUE(scan.ok());
  auto ds = PaperCatalog().FindDataset("twitter");
  EXPECT_EQ((*scan)->stats().rows, ds->num_records);
  EXPECT_EQ((*scan)->stats().bytes, ds->raw_bytes);
}

TEST_F(EstimatorTest, ExtractShrinksToRelationalWidth) {
  auto scan = factory_.MakeScan("twitter");
  auto extract = factory_.MakeExtract(*scan, {"user_id", "ts"});
  ASSERT_TRUE(extract.ok());
  EXPECT_EQ((*extract)->stats().rows, (*scan)->stats().rows);
  EXPECT_EQ((*extract)->stats().bytes, (*extract)->stats().rows * 16);
  EXPECT_LT((*extract)->stats().bytes, (*scan)->stats().bytes);
}

TEST_F(EstimatorTest, ExtractRequiresScanChild) {
  auto scan = factory_.MakeScan("twitter");
  auto extract = factory_.MakeExtract(*scan, {"user_id"});
  auto nested = factory_.MakeExtract(*extract, {"user_id"});
  EXPECT_FALSE(nested.ok());
}

TEST_F(EstimatorTest, FilterScalesRowsAndBytes) {
  auto scan = factory_.MakeScan("twitter");
  auto extract = factory_.MakeExtract(*scan, {"user_id", "topic"});
  Predicate pred({MakeAtom("topic", CompareOp::kEq, "x", 0.25)});
  auto filter = factory_.MakeFilter(*extract, pred);
  ASSERT_TRUE(filter.ok());
  EXPECT_NEAR(static_cast<double>((*filter)->stats().rows),
              0.25 * static_cast<double>((*extract)->stats().rows), 1.0);
  EXPECT_NEAR(static_cast<double>((*filter)->stats().bytes),
              0.25 * static_cast<double>((*extract)->stats().bytes), 1.0);
}

TEST_F(EstimatorTest, FilterCapsNdvAtRowCount) {
  auto scan = factory_.MakeScan("twitter");
  auto extract = factory_.MakeExtract(*scan, {"user_id", "topic"});
  Predicate pred({MakeAtom("topic", CompareOp::kEq, "x", 1e-6)});
  auto filter = factory_.MakeFilter(*extract, pred);
  ASSERT_TRUE(filter.ok());
  auto user = (*filter)->output_schema().FindField("user_id");
  ASSERT_TRUE(user.ok());
  EXPECT_LE(user->distinct_values, (*filter)->stats().rows);
}

TEST_F(EstimatorTest, JoinUsesMaxNdvRule) {
  auto t = factory_.MakeExtract(*factory_.MakeScan("twitter"),
                                {"user_id", "topic"});
  auto f = factory_.MakeExtract(*factory_.MakeScan("foursquare"),
                                {"user_id", "checkin_loc"});
  auto join = factory_.MakeJoin(*t, *f, "user_id");
  ASSERT_TRUE(join.ok());
  const int64_t t_rows = (*t)->stats().rows;
  const int64_t f_rows = (*f)->stats().rows;
  // max ndv of user_id: twitter 40M vs foursquare 25M.
  const double expected = static_cast<double>(t_rows) / 40'000'000.0 *
                          static_cast<double>(f_rows);
  EXPECT_NEAR(static_cast<double>((*join)->stats().rows), expected,
              expected * 0.01);
}

TEST_F(EstimatorTest, JoinOutputWidthIsConcat) {
  auto t = factory_.MakeExtract(*factory_.MakeScan("twitter"),
                                {"user_id", "topic"});
  auto f = factory_.MakeExtract(*factory_.MakeScan("foursquare"),
                                {"user_id", "checkin_loc"});
  auto join = factory_.MakeJoin(*t, *f, "user_id");
  ASSERT_TRUE(join.ok());
  const Bytes width = (*join)->output_schema().RecordWidth();
  EXPECT_EQ(width, (*t)->output_schema().RecordWidth() +
                       (*f)->output_schema().RecordWidth());
  EXPECT_EQ((*join)->stats().bytes, (*join)->stats().rows * width);
}

TEST_F(EstimatorTest, AggregateCappedByGroupNdv) {
  auto lm = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                 {"region", "rating"});
  auto agg = factory_.MakeAggregate(*lm, {"region"}, {{"count", "*"}});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ((*agg)->stats().rows, 2000) << "region has 2000 distinct values";
}

TEST_F(EstimatorTest, AggregateCappedByInputRows) {
  auto lm = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                 {"checkin_loc", "region"});
  Predicate tiny({MakeAtom("region", CompareOp::kEq, "r", 1e-6)});
  auto filtered = factory_.MakeFilter(*lm, tiny);
  auto agg =
      factory_.MakeAggregate(*filtered, {"checkin_loc"}, {{"count", "*"}});
  ASSERT_TRUE(agg.ok());
  EXPECT_LE((*agg)->stats().rows, (*filtered)->stats().rows);
}

TEST_F(EstimatorTest, UdfAppliesSizeAndRowFactors) {
  auto t = factory_.MakeExtract(*factory_.MakeScan("twitter"), {"text"});
  UdfParams udf;
  udf.name = "sent";
  udf.size_factor = 0.5;
  udf.row_selectivity = 0.9;
  auto node = factory_.MakeUdf(*t, udf);
  ASSERT_TRUE(node.ok());
  EXPECT_NEAR(static_cast<double>((*node)->stats().bytes),
              0.5 * static_cast<double>((*t)->stats().bytes), 1.0);
  EXPECT_NEAR(static_cast<double>((*node)->stats().rows),
              0.9 * static_cast<double>((*t)->stats().rows), 1.0);
}

TEST_F(EstimatorTest, RebuildPreservesAnnotations) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  ASSERT_TRUE(plan.ok());
  const NodePtr root = plan->root();
  std::vector<NodePtr> children = root->children();
  auto rebuilt = factory_.Rebuild(*root, std::move(children));
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->signature(), root->signature());
  EXPECT_EQ((*rebuilt)->stats().rows, root->stats().rows);
  EXPECT_EQ((*rebuilt)->stats().bytes, root->stats().bytes);
}

// Property: tightening a filter never increases estimated output.
class FilterMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(FilterMonotonicityTest, MoreSelectiveNeverBigger) {
  NodeFactory factory(&PaperCatalog());
  auto extract = factory.MakeExtract(*factory.MakeScan("twitter"),
                                     {"user_id", "ts", "topic"});
  const double sel = GetParam();
  Predicate loose({MakeAtom("ts", CompareOp::kGt, "100", sel)});
  Predicate tight({MakeAtom("ts", CompareOp::kGt, "100", sel),
                   MakeAtom("topic", CompareOp::kEq, "x", 0.5)});
  auto loose_node = factory.MakeFilter(*extract, loose);
  auto tight_node = factory.MakeFilter(*extract, tight);
  ASSERT_TRUE(loose_node.ok());
  ASSERT_TRUE(tight_node.ok());
  EXPECT_LE((*tight_node)->stats().rows, (*loose_node)->stats().rows);
  EXPECT_LE((*tight_node)->stats().bytes, (*loose_node)->stats().bytes);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, FilterMonotonicityTest,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace miso::plan
