#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/node_factory.h"

namespace miso::plan {
namespace {

using testing_util::PaperCatalog;

class SignatureTest : public ::testing::Test {
 protected:
  NodeFactory factory_{&PaperCatalog()};

  NodePtr TwitterExtract() {
    return *factory_.MakeExtract(*factory_.MakeScan("twitter"),
                                 {"user_id", "topic"});
  }
  NodePtr FoursquareExtract() {
    return *factory_.MakeExtract(*factory_.MakeScan("foursquare"),
                                 {"user_id", "checkin_loc"});
  }
};

TEST_F(SignatureTest, IdenticalExpressionsShareSignatures) {
  auto p1 = testing_util::MakeAnalystPlan(&PaperCatalog(), "a", "c%", 0.1,
                                          false);
  auto p2 = testing_util::MakeAnalystPlan(&PaperCatalog(), "b", "c%", 0.1,
                                          false);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->signature(), p2->signature())
      << "query names do not affect semantic identity";
}

TEST_F(SignatureTest, DifferentPredicatesDiffer) {
  auto p1 = testing_util::MakeAnalystPlan(&PaperCatalog(), "a", "c%", 0.1,
                                          false);
  auto p2 = testing_util::MakeAnalystPlan(&PaperCatalog(), "a", "d%", 0.1,
                                          false);
  EXPECT_NE(p1->signature(), p2->signature());
}

TEST_F(SignatureTest, SelectivityDoesNotAffectSignature) {
  // Two systems may estimate the same predicate differently; identity is
  // syntactic.
  auto p1 = testing_util::MakeAnalystPlan(&PaperCatalog(), "a", "c%", 0.1,
                                          false);
  auto p2 = testing_util::MakeAnalystPlan(&PaperCatalog(), "a", "c%", 0.2,
                                          false);
  EXPECT_EQ(p1->signature(), p2->signature());
}

TEST_F(SignatureTest, JoinIsCommutative) {
  auto j1 = factory_.MakeJoin(TwitterExtract(), FoursquareExtract(),
                              "user_id");
  auto j2 = factory_.MakeJoin(FoursquareExtract(), TwitterExtract(),
                              "user_id");
  ASSERT_TRUE(j1.ok());
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ((*j1)->signature(), (*j2)->signature());
  EXPECT_EQ((*j1)->canonical(), (*j2)->canonical());
}

TEST_F(SignatureTest, ExtractFieldOrderIsCanonicalized) {
  auto e1 = factory_.MakeExtract(*factory_.MakeScan("twitter"),
                                 {"user_id", "topic"});
  auto e2 = factory_.MakeExtract(*factory_.MakeScan("twitter"),
                                 {"topic", "user_id"});
  EXPECT_EQ((*e1)->signature(), (*e2)->signature());
}

TEST_F(SignatureTest, FilterAtomOrderIsCanonicalized) {
  auto base = TwitterExtract();
  Predicate p1({MakeAtom("topic", CompareOp::kEq, "x", 0.1),
                MakeAtom("user_id", CompareOp::kGt, "5", 0.5)});
  Predicate p2({MakeAtom("user_id", CompareOp::kGt, "5", 0.5),
                MakeAtom("topic", CompareOp::kEq, "x", 0.1)});
  EXPECT_EQ((*factory_.MakeFilter(base, p1))->signature(),
            (*factory_.MakeFilter(base, p2))->signature());
}

TEST_F(SignatureTest, UdfNameDistinguishes) {
  auto base = TwitterExtract();
  UdfParams u1;
  u1.name = "udf_a";
  UdfParams u2;
  u2.name = "udf_b";
  EXPECT_NE((*factory_.MakeUdf(base, u1))->signature(),
            (*factory_.MakeUdf(base, u2))->signature());
}

TEST_F(SignatureTest, AggregateKeysAndFnsDistinguish) {
  auto lm = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                 {"region", "kind", "rating"});
  auto a1 = factory_.MakeAggregate(*lm, {"region"}, {{"count", "*"}});
  auto a2 = factory_.MakeAggregate(*lm, {"kind"}, {{"count", "*"}});
  auto a3 = factory_.MakeAggregate(*lm, {"region"}, {{"avg", "rating"}});
  EXPECT_NE((*a1)->signature(), (*a2)->signature());
  EXPECT_NE((*a1)->signature(), (*a3)->signature());
}

TEST_F(SignatureTest, RecanonicalizeOverridesIdentity) {
  auto node = TwitterExtract();
  NodePtr renamed = factory_.Recanonicalize(node, "custom_form");
  EXPECT_EQ(renamed->canonical(), "custom_form");
  EXPECT_NE(renamed->signature(), node->signature());
  EXPECT_EQ(renamed->stats().rows, node->stats().rows);
}

TEST_F(SignatureTest, AllSubexpressionsDistinctWithinPlan) {
  auto plan = testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                            false);
  ASSERT_TRUE(plan.ok());
  std::vector<NodePtr> nodes = plan->PostOrder();
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      EXPECT_NE(nodes[i]->signature(), nodes[j]->signature())
          << nodes[i]->canonical() << " vs " << nodes[j]->canonical();
    }
  }
}

}  // namespace
}  // namespace miso::plan
