#include "plan/printer.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::plan {
namespace {

TEST(PrinterTest, PlanRendersAllOperators) {
  auto plan = testing_util::MakeAnalystPlan(&testing_util::PaperCatalog(),
                                            "A1v1", "cat%", 0.1, false);
  ASSERT_TRUE(plan.ok());
  const std::string text = PrintPlan(*plan);
  EXPECT_NE(text.find("Plan 'A1v1'"), std::string::npos);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("Join key=user_id"), std::string::npos);
  EXPECT_NE(text.find("Udf sentiment_t (hv-only)"), std::string::npos);
  EXPECT_NE(text.find("Scan twitter"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

TEST(PrinterTest, IndentationReflectsDepth) {
  auto plan = testing_util::MakeAnalystPlan(&testing_util::PaperCatalog(),
                                            "q", "c%", 0.1, false);
  const std::string text = PrintSubtree(plan->root());
  // The root is unindented; at least one child line is indented.
  EXPECT_EQ(text.rfind("Aggregate", 0), 0u);
  EXPECT_NE(text.find("\n  "), std::string::npos);
}

TEST(PrinterTest, DescribeNodeIsOneLine) {
  auto plan = testing_util::MakeAnalystPlan(&testing_util::PaperCatalog(),
                                            "q", "c%", 0.1, false);
  for (const NodePtr& node : plan->PostOrder()) {
    const std::string line = DescribeNode(*node);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_FALSE(line.empty());
  }
}

}  // namespace
}  // namespace miso::plan
