#include "dw/dw_cost_model.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::dw {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

class DwCostModelTest : public ::testing::Test {
 protected:
  DwCostModelTest() : factory_(&PaperCatalog()), model_(DwConfig{}) {}

  /// A small all-DW plan: Filter over a DW view, then aggregate.
  struct DwPlan {
    plan::Plan plan;
    NodePtr view_scan;
    NodePtr filter;
    NodePtr agg;
  };

  DwPlan MakeDwPlan(double filter_sel) {
    auto extract = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                        {"region", "kind", "rating"});
    views::View view = views::ViewFromNode(**extract);
    NodePtr scan = factory_.MakeViewScan(1, view.signature, StoreKind::kDw,
                                         view.schema, view.stats,
                                         view.canonical);
    auto filter = factory_.MakeFilter(
        scan, plan::Predicate({plan::MakeAtom("region", plan::CompareOp::kEq,
                                              "r1", filter_sel)}));
    auto agg =
        factory_.MakeAggregate(*filter, {"kind"}, {{"count", "*"}});
    return DwPlan{plan::Plan("q", *agg), scan, *filter, *agg};
  }

  static std::unordered_set<const plan::OperatorNode*> AllNodes(
      const plan::Plan& p) {
    std::unordered_set<const plan::OperatorNode*> set;
    for (const NodePtr& n : p.PostOrder()) set.insert(n.get());
    return set;
  }

  plan::NodeFactory factory_;
  DwCostModel model_;
};

TEST_F(DwCostModelTest, EmptySideCostsNothing) {
  auto cost = model_.CostDwSide({}, {});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
}

TEST_F(DwCostModelTest, NonEmptySidePaysQueryOverhead) {
  DwPlan p = MakeDwPlan(0.5);
  auto cost = model_.CostDwSide(AllNodes(p.plan), {});
  ASSERT_TRUE(cost.ok());
  EXPECT_GE(*cost, model_.config().query_overhead_s);
}

TEST_F(DwCostModelTest, IndexFloorPrunesSelectiveFilters) {
  // A highly selective filter over a permanent view reads only the index
  // floor fraction; a non-selective one reads its actual fraction.
  DwPlan selective = MakeDwPlan(0.001);
  DwPlan broad = MakeDwPlan(0.5);
  auto cost_selective = model_.CostDwSide(AllNodes(selective.plan), {});
  auto cost_broad = model_.CostDwSide(AllNodes(broad.plan), {});
  ASSERT_TRUE(cost_selective.ok());
  ASSERT_TRUE(cost_broad.ok());
  EXPECT_LT(*cost_selective, *cost_broad);
}

TEST_F(DwCostModelTest, TempInputsAreSlower) {
  DwPlan p = MakeDwPlan(0.5);
  std::unordered_set<const plan::OperatorNode*> temp = {
      p.view_scan.get()};
  auto cost_temp = model_.CostDwSide(AllNodes(p.plan), temp);
  auto cost_perm = model_.CostDwSide(AllNodes(p.plan), {});
  ASSERT_TRUE(cost_temp.ok());
  ASSERT_TRUE(cost_perm.ok());
  EXPECT_GT(*cost_temp, *cost_perm);
}

TEST_F(DwCostModelTest, HvOnlyOperatorRejected) {
  auto extract = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                      {"region", "rating"});
  std::unordered_set<const plan::OperatorNode*> side = {extract->get()};
  auto cost = model_.CostDwSide(side, {});
  ASSERT_FALSE(cost.ok());
  EXPECT_EQ(cost.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DwCostModelTest, UdfCpuWeightSlowsExecution) {
  auto extract = factory_.MakeExtract(*factory_.MakeScan("landmarks"),
                                      {"region", "rating"});
  views::View view = views::ViewFromNode(**extract);
  NodePtr scan = factory_.MakeViewScan(1, view.signature, StoreKind::kDw,
                                       view.schema, view.stats,
                                       view.canonical);
  plan::UdfParams cheap;
  cheap.name = "u";
  cheap.cpu_factor = 1.0;
  cheap.dw_compatible = true;
  plan::UdfParams heavy = cheap;
  heavy.cpu_factor = 10.0;

  auto cheap_node = factory_.MakeUdf(scan, cheap);
  auto heavy_node = factory_.MakeUdf(scan, heavy);
  std::unordered_set<const plan::OperatorNode*> cheap_side = {
      scan.get(), cheap_node->get()};
  std::unordered_set<const plan::OperatorNode*> heavy_side = {
      scan.get(), heavy_node->get()};
  auto cheap_cost = model_.CostDwSide(cheap_side, {});
  auto heavy_cost = model_.CostDwSide(heavy_side, {});
  ASSERT_TRUE(cheap_cost.ok());
  ASSERT_TRUE(heavy_cost.ok());
  EXPECT_GT(*heavy_cost, *cheap_cost);
}

TEST_F(DwCostModelTest, DwIsMuchFasterThanHvOnSameData) {
  // The asymmetry at the heart of the paper: processing a few-GB view in
  // the DW is orders of magnitude cheaper than re-running Hadoop jobs.
  DwPlan p = MakeDwPlan(0.5);
  auto dw_cost = model_.FullPlanCost(p.plan);
  ASSERT_TRUE(dw_cost.ok());
  EXPECT_LT(*dw_cost, 10.0) << "a 128 MiB view pipeline is sub-10s in DW";
}

}  // namespace
}  // namespace miso::dw
