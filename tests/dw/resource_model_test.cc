#include "dw/resource_model.h"

#include <gtest/gtest.h>

namespace miso::dw {
namespace {

BackgroundWorkload IoHeavyBackground() {
  BackgroundWorkload bg;
  bg.io_demand = 0.6;
  bg.cpu_demand = 0.2;
  bg.base_query_latency_s = 1.06;
  return bg;
}

TEST(ResourceLedgerTest, ActivityStretchedByBackground) {
  ResourceLedger ledger(IoHeavyBackground(), ContentionConfig{});
  const Seconds stretched = ledger.RecordActivity(
      DwActivityKind::kReorgTransfer, 0, 100, /*io=*/1.3, /*cpu=*/0.3);
  // stretch = 1 + 0.3 * max(0.6, 0.2) = 1.18.
  EXPECT_NEAR(stretched, 118.0, 1e-9);
}

TEST(ResourceLedgerTest, CpuBoundActivityStretchedByCpuDemand) {
  BackgroundWorkload bg;
  bg.io_demand = 0.1;
  bg.cpu_demand = 0.8;
  ResourceLedger ledger(bg, ContentionConfig{});
  const Seconds stretched = ledger.RecordActivity(
      DwActivityKind::kQueryExec, 0, 100, /*io=*/0.2, /*cpu=*/0.9);
  EXPECT_NEAR(stretched, 100 * (1 + 0.3 * 0.8), 1e-9);
}

TEST(ResourceLedgerTest, TransfersSplitIntoBurstAndSteadyPhases) {
  ResourceLedger ledger(IoHeavyBackground(), ContentionConfig{});
  ledger.RecordActivity(DwActivityKind::kReorgTransfer, 0, 100, 1.3, 0.3);
  ASSERT_EQ(ledger.activities().size(), 2u);
  const DwActivity& burst = ledger.activities()[0];
  const DwActivity& steady = ledger.activities()[1];
  EXPECT_DOUBLE_EQ(burst.io_demand, 1.3);
  EXPECT_NEAR(burst.duration, 118.0 * 0.02, 1e-9);
  EXPECT_DOUBLE_EQ(steady.io_demand, 0.25);
  EXPECT_NEAR(burst.duration + steady.duration, 118.0, 1e-9);
}

TEST(ResourceLedgerTest, NoBackgroundMeansNoStretch) {
  BackgroundWorkload idle;
  idle.io_demand = 0;
  idle.cpu_demand = 0;
  ResourceLedger ledger(idle, ContentionConfig{});
  EXPECT_DOUBLE_EQ(
      ledger.RecordActivity(DwActivityKind::kQueryExec, 0, 50, 1.0, 1.0),
      50.0);
}

TEST(ResourceLedgerTest, TickSeriesShowsSpikesDuringTransfers) {
  ContentionConfig contention;
  contention.transfer_burst_duty = 0.5;  // long bursts for a clear spike
  ResourceLedger ledger(IoHeavyBackground(), contention);
  ledger.RecordActivity(DwActivityKind::kReorgTransfer, 100, 50, 1.3, 0.3);
  std::vector<DwTickSample> series = ledger.TickSeries(300);
  ASSERT_EQ(series.size(), 30u);
  // Quiet tick: background only.
  EXPECT_NEAR(series[0].io_used, 0.6, 1e-9);
  EXPECT_TRUE(series[0].activity.empty());
  // Tick fully inside the burst: saturated IO, labeled R, latency spike.
  const DwTickSample& busy = series[11];  // t in [110, 120)
  EXPECT_DOUBLE_EQ(busy.io_used, 1.0) << "clamped at 100%";
  EXPECT_EQ(busy.activity, "R");
  EXPECT_GT(busy.bg_query_latency_s, 4 * series[0].bg_query_latency_s);
}

TEST(ResourceLedgerTest, BackgroundLatencySaturationLaw) {
  ResourceLedger ledger(IoHeavyBackground(), ContentionConfig{});
  // A saturating query-exec activity (not burst-split): total io =
  // 0.6 + 1.3 = 1.9 -> excess 0.9 -> share max(0.125, 0.1) = 0.125 ->
  // latency 1.06 / 0.125 = 8.48.
  ledger.RecordActivity(DwActivityKind::kQueryExec, 0, 100, 1.3, 0.3);
  std::vector<DwTickSample> series = ledger.TickSeries(10);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series[0].bg_query_latency_s, 1.06 / 0.125, 1e-6);
}

TEST(ResourceLedgerTest, SlowdownIsSmallWhenActivityIsRare) {
  ResourceLedger ledger(IoHeavyBackground(), ContentionConfig{});
  // One 100-second transfer inside a 10,000-second horizon.
  ledger.RecordActivity(DwActivityKind::kReorgTransfer, 5000, 100, 1.3,
                        0.3);
  const double slowdown = ledger.BackgroundSlowdown(10000);
  EXPECT_GT(slowdown, 0.0);
  EXPECT_LT(slowdown, 0.1) << "brief spikes barely move the average";
}

TEST(ResourceLedgerTest, PartialTickOverlapIsProportional) {
  ResourceLedger ledger(IoHeavyBackground(), ContentionConfig{});
  // Unstretched duration 5 s; the stretch against the 0.6 background is
  // 1 + 0.3 * 0.6 = 1.18, so 5.9 s of the 10 s tick.
  ledger.RecordActivity(DwActivityKind::kQueryExec, 0, 5, 0.4, 0.0);
  std::vector<DwTickSample> series = ledger.TickSeries(10);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series[0].io_used, 0.6 + 0.4 * 0.59, 1e-9);
}

TEST(ResourceLedgerTest, ActivityKindLabels) {
  EXPECT_EQ(DwActivityKindToString(DwActivityKind::kReorgTransfer), "R");
  EXPECT_EQ(DwActivityKindToString(DwActivityKind::kWorkingSetTransfer),
            "T");
  EXPECT_EQ(DwActivityKindToString(DwActivityKind::kQueryExec), "Q");
}

}  // namespace
}  // namespace miso::dw
