#include "core/multistore_system.h"

#include <gtest/gtest.h>

namespace miso {
namespace {

TEST(MultistoreSystemTest, DefaultConfigRunsWorkload) {
  MisoConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  MultistoreSystem system(config);
  auto workload = workload::EvolutionaryWorkload::Generate(
      &system.catalog(), workload::WorkloadConfig{});
  ASSERT_TRUE(workload.ok());
  auto report = system.Execute(workload->queries());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries.size(), 32u);
  EXPECT_GT(report->reorg_count, 0);
}

TEST(MultistoreSystemTest, ScaledCatalog) {
  MisoConfig config;
  config.catalog_scale = 0.1;
  MultistoreSystem system(config);
  auto twitter = system.catalog().FindDataset("twitter");
  ASSERT_TRUE(twitter.ok());
  EXPECT_LT(twitter->raw_bytes, TiB(1) / 5);
}

TEST(MultistoreSystemTest, ExecutePlansWrapsBarePlans) {
  MisoConfig config;
  config.sim.variant = sim::SystemVariant::kHvOnly;
  MultistoreSystem system(config);
  plan::PlanBuilder builder = system.MakePlanBuilder();
  auto plan = builder.Scan("landmarks")
                  .Extract({"region", "rating"})
                  .Aggregate({"region"}, {{"avg", "rating"}})
                  .Build("adhoc");
  ASSERT_TRUE(plan.ok());
  auto report = system.ExecutePlans({*plan});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 1u);
  EXPECT_EQ(report->queries[0].name, "adhoc");
  EXPECT_GT(report->queries[0].ExecTime(), 0);
}

}  // namespace
}  // namespace miso
