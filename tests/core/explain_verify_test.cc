// EXPLAIN / EXPLAIN VERIFY facade: one structured record carrying the
// chosen split plan, the five-part cost anatomy, and — for the VERIFY
// flavour — the [Vnnn] verdict of every verifier pass, run without the
// MISO_VERIFY debug gate.

#include <gtest/gtest.h>

#include <string>

#include "../test_util.h"
#include "core/multistore_system.h"
#include "obs/trace.h"
#include "views/view.h"
#include "views/view_catalog.h"
#include "workload/evolutionary.h"

namespace miso {
namespace {

using testing_util::PaperCatalog;

class ExplainVerifyTest : public ::testing::Test {
 protected:
  static const MultistoreSystem& System() {
    static const MultistoreSystem* system =
        new MultistoreSystem(MisoConfig{});
    return *system;
  }

  static const plan::Plan& FirstQuery() {
    static const plan::Plan* plan = [] {
      workload::WorkloadConfig wl;
      auto workload =
          workload::EvolutionaryWorkload::Generate(&System().catalog(), wl);
      EXPECT_TRUE(workload.ok()) << workload.status().ToString();
      return new plan::Plan(workload->queries()[0].plan);
    }();
    return *plan;
  }
};

TEST_F(ExplainVerifyTest, ExplainReturnsPlanAndFivePartAnatomy) {
  auto report = System().Explain(FirstQuery());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->verify_ran);
  EXPECT_TRUE(report->verdicts.empty());
  EXPECT_FALSE(report->AllVerified());  // nothing ran, nothing verified

  // The unfolded anatomy re-adds to the optimizer's cost breakdown.
  const core::CostAnatomy& anatomy = report->anatomy;
  EXPECT_NEAR(anatomy.Total(), report->plan.cost.Total(),
              1e-9 * report->plan.cost.Total());
  EXPECT_DOUBLE_EQ(anatomy.hv_exec_s, report->plan.cost.hv_exec_s);
  EXPECT_DOUBLE_EQ(anatomy.dump_s, report->plan.cost.dump_s);
  EXPECT_NEAR(anatomy.transfer_s + anatomy.load_s,
              report->plan.cost.transfer_load_s,
              1e-12 + 1e-9 * report->plan.cost.transfer_load_s);
  EXPECT_DOUBLE_EQ(anatomy.dw_exec_s, report->plan.cost.dw_exec_s);
  // A fresh system has no views, so the plan migrates a working set.
  EXPECT_GT(report->plan.transferred_bytes, 0u);
  EXPECT_GT(anatomy.dump_s, 0);
  EXPECT_GT(anatomy.load_s, 0);
}

TEST_F(ExplainVerifyTest, ExplainVerifyRunsAllVerdictsWithoutDebugGate) {
  // The debug gate is irrelevant here: EXPLAIN VERIFY always verifies.
  auto report = System().ExplainVerify(FirstQuery());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_ran);
  ASSERT_EQ(report->verdicts.size(), 4u);
  EXPECT_EQ(report->verdicts[0].check, "query_graph");
  EXPECT_EQ(report->verdicts[1].check, "split_shape");
  EXPECT_EQ(report->verdicts[2].check, "multistore_plan");
  EXPECT_EQ(report->verdicts[3].check, "design_budgets");
  for (const core::VerifierVerdict& verdict : report->verdicts) {
    EXPECT_TRUE(verdict.ok) << verdict.check << ": " << verdict.message;
    EXPECT_EQ(verdict.code, "V000");
  }
  EXPECT_TRUE(report->AllVerified());
}

TEST_F(ExplainVerifyTest, ReportSerializesAsOneStructuredRecord) {
  auto report = System().ExplainVerify(FirstQuery());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = report->ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"query\":\"A1v1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"anatomy\":{\"hv_exec_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"transfer_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"load_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"verified\":true"), std::string::npos);
  EXPECT_NE(json.find("\"verdicts\":[{\"check\":\"query_graph\""),
            std::string::npos);

  const std::string text = report->ToString();
  EXPECT_NE(text.find("anatomy: HV "), std::string::npos);
  EXPECT_NE(text.find("verify split_shape: OK [V000]"), std::string::npos);
}

TEST_F(ExplainVerifyTest, CorruptedDesignSurfacesFailingVerdictNotError) {
  // Error propagation, facade level: a corrupted design — the same view
  // resident in both stores, which VerifyDesign rejects with V203 — must
  // come back as a *failing verdict* in the EXPLAIN VERIFY report, not as
  // a silent pass and not as a Status error (the caller asked to see the
  // evidence).
  views::View dup;
  dup.id = 7001;
  dup.signature = 0x9999;
  dup.size_bytes = kGiB;
  dup.stats.bytes = kGiB;
  views::ViewCatalog hv_views(4 * kTiB);
  views::ViewCatalog dw_views(400 * kGiB);
  MISO_ASSERT_OK(hv_views.AddUnchecked(dup));
  MISO_ASSERT_OK(dw_views.AddUnchecked(dup));

  auto report = core::ExplainQuery(System().catalog(), sim::SimConfig{},
                                   FirstQuery(), dw_views, hv_views,
                                   /*run_verifiers=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verify_ran);
  EXPECT_FALSE(report->AllVerified());
  ASSERT_EQ(report->verdicts.size(), 4u);
  const core::VerifierVerdict& design = report->verdicts[3];
  EXPECT_EQ(design.check, "design_budgets");
  EXPECT_FALSE(design.ok);
  EXPECT_EQ(design.code, "V203") << design.message;
  EXPECT_NE(design.message.find("both"), std::string::npos) << design.message;

  // The verdict survives both serializations.
  EXPECT_NE(report->ToJson().find("\"verified\":false"), std::string::npos);
  EXPECT_NE(report->ToString().find("verify design_budgets: FAIL [V203]"),
            std::string::npos);
}

TEST_F(ExplainVerifyTest, EmitsTraceEventsWhenTracingIsOn) {
  obs::Trace().Drain();
  {
    obs::ScopedTrace on(true);
    auto report = System().ExplainVerify(FirstQuery());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  // The embedded Optimize emits its plan choice, then the explain stub.
  const auto lines = obs::Trace().Drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"event\":\"optimizer.plan_choice\"", 0), 0u)
      << lines[0];
  EXPECT_EQ(lines[1].rfind("{\"event\":\"core.explain_verify\"", 0), 0u)
      << lines[1];
  EXPECT_NE(lines[1].find("\"failed\":0"), std::string::npos) << lines[1];
}

}  // namespace
}  // namespace miso
