// The telemetry determinism contract (docs/TELEMETRY.md): for a fixed
// workload seed, the JSONL trace and every "model"-class metric are
// byte-identical across MISO_THREADS in {1, 2, 8}. Only the miso.pool.*
// runtime metrics may vary with thread count.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "../test_util.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace miso::obs {
namespace {

using testing_util::PaperCatalog;

/// Registry snapshot minus the runtime-class rows (miso.pool.*, wall-clock
/// latencies) — the declared exclusion list lives in obs/names.
std::string ModelMetricsString() {
  std::stringstream out;
  for (const MetricRow& row : Metrics().Snapshot().rows) {
    if (IsRuntimeClassMetric(row.name)) continue;
    std::stringstream one;
    MetricsSnapshot single;
    single.rows.push_back(row);
    out << single.ToString();
  }
  return out.str();
}

/// One full MS-MISO paper-workload run under `threads` workers, with the
/// trace and metrics gates on; returns (trace lines, model metrics).
std::pair<std::vector<std::string>, std::string> TracedRun(int threads) {
  Trace().Drain();
  Metrics().Reset();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("MISO_THREADS", buf, /*overwrite=*/1);
  sim::SimConfig config;
  config.variant = sim::SystemVariant::kMsMiso;
  config.threads = 0;  // resolve through MISO_THREADS
  config.trace = true;
  config.metrics = true;
  auto report = sim::RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  unsetenv("MISO_THREADS");
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {Trace().Drain(), ModelMetricsString()};
}

TEST(TraceDeterminismTest, RunTraceIsByteIdenticalAcrossThreadCounts) {
  const auto [trace1, metrics1] = TracedRun(1);
  const auto [trace2, metrics2] = TracedRun(2);
  const auto [trace8, metrics8] = TracedRun(8);

  ASSERT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(trace1, trace8);
  EXPECT_FALSE(metrics1.empty());
  EXPECT_EQ(metrics1, metrics2);
  EXPECT_EQ(metrics1, metrics8);

  // The trace covers every instrumented layer of a tuned run.
  bool saw_plan_choice = false, saw_query = false, saw_reorg = false,
       saw_view_decision = false;
  for (const std::string& line : trace1) {
    if (line.rfind("{\"event\":\"optimizer.plan_choice\"", 0) == 0) {
      saw_plan_choice = true;
    }
    if (line.rfind("{\"event\":\"sim.query\"", 0) == 0) saw_query = true;
    if (line.rfind("{\"event\":\"sim.reorg\"", 0) == 0) saw_reorg = true;
    if (line.rfind("{\"event\":\"tuner.view_decision\"", 0) == 0) {
      saw_view_decision = true;
    }
  }
  EXPECT_TRUE(saw_plan_choice);
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_reorg);
  EXPECT_TRUE(saw_view_decision);
}

TEST(TraceDeterminismTest, SeedSweepTraceMergesInSeedOrderForAnyPool) {
  const std::vector<uint64_t> seeds = {7, 123};
  auto sweep = [&](int threads) {
    Trace().Drain();
    sim::SimConfig config;
    config.variant = sim::SystemVariant::kMsMiso;
    config.threads = threads;
    config.trace = true;
    auto reports = sim::RunSeedSweep(&PaperCatalog(), config, seeds);
    EXPECT_TRUE(reports.ok()) << reports.status().ToString();
    return Trace().Drain();
  };
  const std::vector<std::string> serial = sweep(1);
  const std::vector<std::string> parallel = sweep(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(TraceDeterminismTest, DisabledGatesEmitNothing) {
  if (std::getenv("MISO_METRICS") != nullptr ||
      std::getenv("MISO_TRACE") != nullptr) {
    GTEST_SKIP() << "telemetry forced on via the environment "
                    "(check.sh --obs); default-off does not apply";
  }
  Trace().Drain();
  Metrics().Reset();
  sim::SimConfig config;
  config.variant = sim::SystemVariant::kMsMiso;
  config.threads = 1;
  // metrics/trace left false and the env gates are unset, so nothing may
  // be emitted anywhere in the run.
  auto report = sim::RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Trace().size(), 0u);
  for (const MetricRow& row : Metrics().Snapshot().rows) {
    if (row.kind == MetricRow::Kind::kCounter) {
      EXPECT_EQ(row.counter_value, 0) << row.name;
    }
  }
}

}  // namespace
}  // namespace miso::obs
