// Metrics registry semantics: counters/gauges/histograms behave as their
// contracts say, registration is first-use-wins with stable pointers, and
// snapshots come back name-sorted regardless of registration order.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace miso::obs {
namespace {

TEST(MetricsGateTest, OffByDefaultAndScoped) {
  // Off unless the environment opted in (tools/check.sh --obs forces
  // MISO_METRICS=1 onto this very test).
  const bool initial = MetricsOn();
  if (std::getenv("MISO_METRICS") == nullptr) {
    EXPECT_FALSE(initial);
  }
  {
    ScopedMetrics on(true);
    EXPECT_TRUE(MetricsOn());
    {
      ScopedMetrics off(false);
      EXPECT_FALSE(MetricsOn());
    }
    EXPECT_TRUE(MetricsOn());
  }
  EXPECT_EQ(MetricsOn(), initial);
}

TEST(MetricsTest, CounterAddsAndIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  EXPECT_EQ(counter->value(), 0);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42);
}

TEST(MetricsTest, GaugeSetAndMonotoneMax) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(3.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 3.5);
  gauge->Max(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(gauge->value(), 3.5);
  gauge->Max(7.25);
  EXPECT_DOUBLE_EQ(gauge->value(), 7.25);
  gauge->Set(1.0);  // Set always overwrites
  EXPECT_DOUBLE_EQ(gauge->value(), 1.0);
}

TEST(MetricsTest, HistogramBucketsObservationsAtFixedBounds) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {1.0, 10.0});
  histogram->Observe(0.5);   // <= 1      -> bucket 0
  histogram->Observe(1.0);   // == bound  -> bucket 0 (inclusive upper)
  histogram->Observe(5.0);   // <= 10     -> bucket 1
  histogram->Observe(100.0); // overflow  -> bucket 2
  EXPECT_EQ(histogram->BucketCounts(), (std::vector<int64_t>{2, 1, 1}));
  EXPECT_EQ(histogram->count(), 4);
  EXPECT_DOUBLE_EQ(histogram->sum(), 106.5);
}

TEST(MetricsTest, RegistrationIsFirstUseWinsWithStablePointers) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("same");
  Counter* second = registry.GetCounter("same");
  EXPECT_EQ(first, second);
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {99.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsTest, SnapshotIsNameSortedAcrossKinds) {
  MetricsRegistry registry;
  registry.GetHistogram("zz", {1.0})->Observe(0.5);
  registry.GetCounter("mm")->Add(7);
  registry.GetGauge("aa")->Set(2.0);
  registry.GetCounter("bb")->Add(1);
  const MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const MetricRow& row : snapshot.rows) names.push_back(row.name);
  EXPECT_EQ(names, (std::vector<std::string>{"aa", "bb", "mm", "zz"}));
  EXPECT_EQ(snapshot.rows[0].kind, MetricRow::Kind::kGauge);
  EXPECT_EQ(snapshot.rows[2].counter_value, 7);
  EXPECT_EQ(snapshot.rows[3].kind, MetricRow::Kind::kHistogram);
  EXPECT_EQ(snapshot.ToString(),
            "gauge aa = 2\n"
            "counter bb = 1\n"
            "counter mm = 7\n"
            "histogram zz count=1 sum=0.5 buckets=1|0\n");
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h", {1.0});
  counter->Add(5);
  gauge->Set(5);
  histogram->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(counter, registry.GetCounter("c"));  // same object survives
  EXPECT_EQ(counter->value(), 0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0);
  EXPECT_EQ(histogram->BucketCounts(), (std::vector<int64_t>{0, 0}));
}

TEST(MetricsTest, WithLabelSpellsTheCanonicalForm) {
  EXPECT_EQ(WithLabel("miso.sim.moved_bytes_total", "dir", "to_dw"),
            "miso.sim.moved_bytes_total{dir=\"to_dw\"}");
}

TEST(MetricsTest, HistogramCaptureDefersObservationsUntilReplay) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("cap", {1.0, 2.0});
  std::vector<ScopedHistogramCapture::Observation> deferred;
  {
    ScopedHistogramCapture capture;
    histogram->Observe(0.5);  // deferred, not applied
    histogram->Observe(1.5);
    EXPECT_EQ(histogram->count(), 0);
    EXPECT_DOUBLE_EQ(histogram->sum(), 0);
    deferred = capture.TakeObservations();
    EXPECT_EQ(deferred.size(), 2u);
    // Capture continues empty after the take.
    histogram->Observe(3.0);
    EXPECT_EQ(capture.TakeObservations().size(), 1u);
  }
  // Capture closed: observations apply directly again.
  histogram->Observe(0.25);
  EXPECT_EQ(histogram->count(), 1);
  ScopedHistogramCapture::Replay(deferred);
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.25 + 0.5 + 1.5);
  EXPECT_EQ(histogram->BucketCounts(), (std::vector<int64_t>{2, 1, 0}));
}

TEST(MetricsTest, HistogramCapturesNestInnermostWins) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("nest", {1.0});
  ScopedHistogramCapture outer;
  histogram->Observe(0.1);
  {
    ScopedHistogramCapture inner;
    histogram->Observe(0.2);
    EXPECT_EQ(inner.TakeObservations().size(), 1u);
  }
  histogram->Observe(0.3);
  const auto outer_obs = outer.TakeObservations();
  ASSERT_EQ(outer_obs.size(), 2u);
  EXPECT_DOUBLE_EQ(outer_obs[0].value, 0.1);
  EXPECT_DOUBLE_EQ(outer_obs[1].value, 0.3);
  EXPECT_EQ(histogram->count(), 0);
}

}  // namespace
}  // namespace miso::obs
