// The telemetry contract is enforceable, not aspirational: every name in
// src/obs/names.h must be documented in docs/TELEMETRY.md, and everything
// a live traced run emits must be declared in names.h. A new metric that
// skips the doc — or an emission site inventing an undeclared name —
// fails here.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "../test_util.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "sim/simulator.h"

#ifndef MISO_REPO_ROOT
#error "telemetry_doc_test needs MISO_REPO_ROOT (see tests/CMakeLists.txt)"
#endif

namespace miso::obs {
namespace {

using testing_util::PaperCatalog;

std::string ReadTelemetryDoc() {
  const std::string path = std::string(MISO_REPO_ROOT) + "/docs/TELEMETRY.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TelemetryDocTest, EveryDeclaredMetricNameIsDocumented) {
  const std::string doc = ReadTelemetryDoc();
  for (const char* name : AllMetricNames()) {
    EXPECT_NE(doc.find(name), std::string::npos)
        << "metric `" << name << "` is missing from docs/TELEMETRY.md";
  }
}

TEST(TelemetryDocTest, EveryDeclaredTraceEventKindIsDocumented) {
  const std::string doc = ReadTelemetryDoc();
  for (const char* kind : AllTraceEventKinds()) {
    EXPECT_NE(doc.find(kind), std::string::npos)
        << "trace event `" << kind << "` is missing from docs/TELEMETRY.md";
  }
}

TEST(TelemetryDocTest, LiveRunEmitsOnlyDeclaredNames) {
  Trace().Drain();
  Metrics().Reset();
  {
    sim::SimConfig config;
    config.variant = sim::SystemVariant::kMsMiso;
    config.threads = 1;
    config.trace = true;
    config.metrics = true;
    auto report = sim::RunPaperWorkload(&PaperCatalog(), config, /*seed=*/42);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  std::set<std::string> declared_metrics;
  for (const char* name : AllMetricNames()) declared_metrics.insert(name);
  int live_metrics = 0;
  for (const MetricRow& row : Metrics().Snapshot().rows) {
    EXPECT_EQ(declared_metrics.count(row.name), 1u)
        << "registry holds undeclared metric `" << row.name
        << "` — add it to src/obs/names.h and docs/TELEMETRY.md";
    ++live_metrics;
  }
  EXPECT_GT(live_metrics, 10);

  std::set<std::string> declared_kinds;
  for (const char* kind : AllTraceEventKinds()) declared_kinds.insert(kind);
  int live_lines = 0;
  for (const std::string& line : Trace().Drain()) {
    const std::string prefix = "{\"event\":\"";
    ASSERT_EQ(line.rfind(prefix, 0), 0u) << line;
    const size_t end = line.find('"', prefix.size());
    ASSERT_NE(end, std::string::npos) << line;
    const std::string kind = line.substr(prefix.size(), end - prefix.size());
    EXPECT_EQ(declared_kinds.count(kind), 1u)
        << "trace emits undeclared event kind `" << kind << "`";
    ++live_lines;
  }
  EXPECT_GT(live_lines, 30);
}

}  // namespace
}  // namespace miso::obs
