// Trace sink semantics: the gate is off by default, events serialize to
// stable JSONL (insertion order, %.17g doubles, escaped strings), and
// thread-local captures redirect emission for deterministic merges.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace miso::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Trace().Drain(); }
  void TearDown() override { Trace().Drain(); }
};

TEST_F(TraceTest, GateOffByDefaultAndEmitIsNoOp) {
  if (std::getenv("MISO_TRACE") != nullptr) {
    GTEST_SKIP() << "MISO_TRACE is set (check.sh --obs); default-off does "
                    "not apply";
  }
  EXPECT_FALSE(TraceOn());
  Emit(TraceEvent("nope").Int("x", 1));
  EXPECT_EQ(Trace().size(), 0u);
}

TEST_F(TraceTest, EventSerializesFieldsInInsertionOrder) {
  TraceEvent event("kind.a");
  event.Str("s", "v").Int("i", -7).Double("d", 0.25).Bool("b", true);
  EXPECT_EQ(event.ToJsonl(),
            "{\"event\":\"kind.a\",\"s\":\"v\",\"i\":-7,\"d\":0.25,"
            "\"b\":true}");
}

TEST_F(TraceTest, EventEscapesStrings) {
  TraceEvent event("k");
  event.Str("s", "a\"b\\c\nd");
  EXPECT_EQ(event.ToJsonl(), "{\"event\":\"k\",\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST_F(TraceTest, DoublesRoundTripByteStable) {
  TraceEvent event("k");
  event.Double("d", 8625.6323206039451);
  EXPECT_EQ(event.ToJsonl(), "{\"event\":\"k\",\"d\":8625.6323206039451}");
}

TEST_F(TraceTest, EmitAppendsToGlobalSinkWhenOn) {
  ScopedTrace on(true);
  Emit(TraceEvent("one").Int("x", 1));
  Emit(TraceEvent("two").Int("x", 2));
  const std::vector<std::string> lines = Trace().Drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"event\":\"one\",\"x\":1}");
  EXPECT_EQ(lines[1], "{\"event\":\"two\",\"x\":2}");
  EXPECT_EQ(Trace().size(), 0u);  // drained
}

TEST_F(TraceTest, CaptureRedirectsEmissionAndNests) {
  ScopedTrace on(true);
  {
    ScopedTraceCapture outer;
    Emit(TraceEvent("outer1"));
    {
      ScopedTraceCapture inner;
      Emit(TraceEvent("inner1"));
      const std::vector<std::string> inner_lines = inner.TakeLines();
      ASSERT_EQ(inner_lines.size(), 1u);
      EXPECT_EQ(inner_lines[0], "{\"event\":\"inner1\"}");
    }
    Emit(TraceEvent("outer2"));
    const std::vector<std::string> outer_lines = outer.TakeLines();
    ASSERT_EQ(outer_lines.size(), 2u);
    EXPECT_EQ(outer_lines[0], "{\"event\":\"outer1\"}");
    EXPECT_EQ(outer_lines[1], "{\"event\":\"outer2\"}");
  }
  EXPECT_EQ(Trace().size(), 0u);  // nothing leaked to the global sink
  Emit(TraceEvent("global"));
  EXPECT_EQ(Trace().size(), 1u);  // after the capture, back to the sink
}

TEST_F(TraceTest, DrainToFileWritesJsonl) {
  ScopedTrace on(true);
  Emit(TraceEvent("a").Int("x", 1));
  Emit(TraceEvent("b").Int("x", 2));
  const std::string path =
      ::testing::TempDir() + "/miso_trace_test_drain.jsonl";
  ASSERT_TRUE(Trace().DrainToFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(),
            "{\"event\":\"a\",\"x\":1}\n{\"event\":\"b\",\"x\":2}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace miso::obs
