#include "workload/background.h"

#include <gtest/gtest.h>

namespace miso::workload {
namespace {

TEST(BackgroundTest, SpareCapacityArithmetic) {
  // "Spare X%" means the reporting stream consumes 1 - X of the resource.
  EXPECT_DOUBLE_EQ(SpareIo40().io_demand, 0.60);
  EXPECT_DOUBLE_EQ(SpareIo20().io_demand, 0.80);
  EXPECT_DOUBLE_EQ(SpareCpu40().cpu_demand, 0.60);
  EXPECT_DOUBLE_EQ(SpareCpu20().cpu_demand, 0.80);
}

TEST(BackgroundTest, IoStreamsAreIoDominant) {
  EXPECT_GT(SpareIo40().io_demand, SpareIo40().cpu_demand);
  EXPECT_GT(SpareIo20().io_demand, SpareIo20().cpu_demand);
}

TEST(BackgroundTest, CpuStreamsAreCpuDominant) {
  EXPECT_GT(SpareCpu40().cpu_demand, SpareCpu40().io_demand);
  EXPECT_GT(SpareCpu20().cpu_demand, SpareCpu20().io_demand);
}

TEST(BackgroundTest, BaseLatencyMatchesPaper) {
  // The paper measures q3 at 1.06 s with no multistore load.
  EXPECT_DOUBLE_EQ(SpareIo40().base_query_latency_s, 1.06);
  EXPECT_DOUBLE_EQ(SpareCpu20().base_query_latency_s, 1.06);
}

TEST(BackgroundTest, IdleDwHasNoDemand) {
  EXPECT_DOUBLE_EQ(IdleDw().io_demand, 0.0);
  EXPECT_DOUBLE_EQ(IdleDw().cpu_demand, 0.0);
}

}  // namespace
}  // namespace miso::workload
