#include "workload/evolutionary.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::workload {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;

WorkloadConfig DefaultConfig() { return WorkloadConfig{}; }

TEST(EvolutionaryWorkloadTest, GeneratesPaperShape) {
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->size(), 32) << "8 analysts x 4 versions";
  std::map<int, int> per_analyst;
  for (const WorkloadQuery& q : workload->queries()) {
    per_analyst[q.analyst]++;
    EXPECT_FALSE(q.plan.empty());
  }
  EXPECT_EQ(per_analyst.size(), 8u);
  for (const auto& [analyst, count] : per_analyst) EXPECT_EQ(count, 4);
}

TEST(EvolutionaryWorkloadTest, DeterministicForSeed) {
  auto w1 = EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  auto w2 = EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  for (int i = 0; i < w1->size(); ++i) {
    EXPECT_EQ(w1->queries()[static_cast<size_t>(i)].plan.signature(),
              w2->queries()[static_cast<size_t>(i)].plan.signature());
  }
}

TEST(EvolutionaryWorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig other = DefaultConfig();
  other.seed = 777;
  auto w1 = EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  auto w2 = EvolutionaryWorkload::Generate(&PaperCatalog(), other);
  int same = 0;
  for (int i = 0; i < w1->size(); ++i) {
    if (w1->queries()[static_cast<size_t>(i)].plan.signature() ==
        w2->queries()[static_cast<size_t>(i)].plan.signature()) {
      ++same;
    }
  }
  EXPECT_LT(same, w1->size());
}

TEST(EvolutionaryWorkloadTest, InterleavedArrivalOrder) {
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  ASSERT_TRUE(workload.ok());
  // Phase-interleaved: all v1s first, then all v2s, ...
  for (int i = 0; i < workload->size(); ++i) {
    const WorkloadQuery& q = workload->queries()[static_cast<size_t>(i)];
    EXPECT_EQ(q.version, i / 8);
    EXPECT_EQ(q.analyst, i % 8);
  }
}

TEST(EvolutionaryWorkloadTest, AnalystMajorOrder) {
  WorkloadConfig config = DefaultConfig();
  config.interleave = false;
  auto workload = EvolutionaryWorkload::Generate(&PaperCatalog(), config);
  ASSERT_TRUE(workload.ok());
  for (int i = 0; i < workload->size(); ++i) {
    const WorkloadQuery& q = workload->queries()[static_cast<size_t>(i)];
    EXPECT_EQ(q.analyst, i / 4);
    EXPECT_EQ(q.version, i % 4);
  }
}

TEST(EvolutionaryWorkloadTest, AllQueriesDistinct) {
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  std::set<uint64_t> signatures;
  for (const WorkloadQuery& q : workload->queries()) {
    EXPECT_TRUE(signatures.insert(q.plan.signature()).second)
        << q.plan.query_name() << " duplicates another query";
  }
}

TEST(EvolutionaryWorkloadTest, VersionsOverlapWithinAnalyst) {
  // Consecutive versions must share subexpressions (that is the whole
  // point of the evolutionary workload): count common node signatures.
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  int analysts_with_overlap = 0;
  for (int a = 0; a < 8; ++a) {
    std::set<uint64_t> v1_nodes;
    std::set<uint64_t> v2_nodes;
    for (const WorkloadQuery& q : workload->queries()) {
      if (q.analyst != a) continue;
      for (const NodePtr& node : q.plan.PostOrder()) {
        if (q.version == 0) v1_nodes.insert(node->signature());
        if (q.version == 1) v2_nodes.insert(node->signature());
      }
    }
    int common = 0;
    for (uint64_t sig : v2_nodes) {
      if (v1_nodes.count(sig) > 0) ++common;
    }
    if (common >= 3) ++analysts_with_overlap;
  }
  EXPECT_EQ(analysts_with_overlap, 8);
}

TEST(EvolutionaryWorkloadTest, TightenedPredicatesAreSubsumable) {
  // v3 (tighten-predicate) must imply v1's source filter so the old
  // filtered view can answer it with compensation.
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  int checked = 0;
  for (int a = 0; a < 8; ++a) {
    const WorkloadQuery* v1 = nullptr;
    const WorkloadQuery* v3 = nullptr;
    for (const WorkloadQuery& q : workload->queries()) {
      if (q.analyst != a) continue;
      if (q.version == 0) v1 = &q;
      if (q.version == 2) v3 = &q;
    }
    ASSERT_NE(v1, nullptr);
    ASSERT_NE(v3, nullptr);
    if (v3->mutation != MutationKind::kTightenPredicate) continue;
    plan::Predicate v1_pred(
        [&] {
          std::vector<plan::PredicateAtom> atoms;
          for (const FilterSpec& f : v1->spec.left.filters) {
            atoms.push_back(
                plan::MakeAtom(f.field, f.op, f.operand, f.selectivity));
          }
          return atoms;
        }());
    plan::Predicate v3_pred(
        [&] {
          std::vector<plan::PredicateAtom> atoms;
          for (const FilterSpec& f : v3->spec.left.filters) {
            atoms.push_back(
                plan::MakeAtom(f.field, f.op, f.operand, f.selectivity));
          }
          return atoms;
        }());
    EXPECT_TRUE(v3_pred.Implies(v1_pred))
        << "analyst " << a << ": tightened filter must imply the base";
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

TEST(EvolutionaryWorkloadTest, UdfPlacementMix) {
  // Some chains are fully DW-eligible, some are pinned to HV — Figure 6's
  // utilization spread depends on this mix.
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  int hv_pinned_queries = 0;
  int dw_eligible_chains = 0;
  for (const WorkloadQuery& q : workload->queries()) {
    bool has_hv_udf = false;
    for (const NodePtr& node : q.plan.PostOrder()) {
      if (node->kind() == OpKind::kUdf && !node->udf().dw_compatible) {
        has_hv_udf = true;
      }
    }
    if (has_hv_udf) {
      ++hv_pinned_queries;
    } else {
      ++dw_eligible_chains;
    }
  }
  EXPECT_GT(hv_pinned_queries, 8);
  EXPECT_GT(dw_eligible_chains, 8);
}

TEST(EvolutionaryWorkloadTest, MutationKindLabels) {
  EXPECT_EQ(MutationKindToString(MutationKind::kBase), "base");
  EXPECT_EQ(MutationKindToString(MutationKind::kTightenPredicate),
            "tighten-predicate");
  EXPECT_EQ(MutationKindToString(MutationKind::kWidenSchema),
            "widen-schema");
}

TEST(EvolutionaryWorkloadTest, InvalidConfigRejected) {
  WorkloadConfig bad;
  bad.num_analysts = 0;
  EXPECT_FALSE(EvolutionaryWorkload::Generate(&PaperCatalog(), bad).ok());
}

TEST(EvolutionaryWorkloadTest, PlansAccessorMatchesQueries) {
  auto workload =
      EvolutionaryWorkload::Generate(&PaperCatalog(), DefaultConfig());
  std::vector<plan::Plan> plans = workload->Plans();
  ASSERT_EQ(plans.size(), static_cast<size_t>(workload->size()));
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].signature(), workload->queries()[i].plan.signature());
  }
}

}  // namespace
}  // namespace miso::workload
