#include "workload/query_spec.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace miso::workload {
namespace {

using plan::OpKind;
using testing_util::PaperCatalog;

QuerySpec TwoSourceSpec() {
  QuerySpec spec;
  spec.name.assign("t");
  spec.left.dataset = "twitter";
  spec.left.fields = {"user_id", "topic"};
  spec.left.filters.push_back(
      {"topic", plan::CompareOp::kLike, "c%", 0.1});
  spec.right.dataset = "foursquare";
  spec.right.fields = {"user_id", "category"};
  spec.join1_key = "user_id";
  spec.group_by = {"category"};
  spec.aggregates = {{"count", "*"}};
  return spec;
}

TEST(QuerySpecTest, TwoSourcePlanShape) {
  auto plan = BuildQueryFromSpec(&PaperCatalog(), TwoSourceSpec());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->kind(), OpKind::kAggregate);
  // scan+extract+filter, scan+extract, join, agg = 7 operators.
  EXPECT_EQ(plan->NumOperators(), 7);
}

TEST(QuerySpecTest, UdfStagesInserted) {
  QuerySpec spec = TwoSourceSpec();
  spec.udf1.present = true;
  spec.udf1.name = "u1";
  spec.udf2.present = true;
  spec.udf2.name = "u2";
  auto plan = BuildQueryFromSpec(&PaperCatalog(), spec);
  ASSERT_TRUE(plan.ok());
  int udfs = 0;
  for (const plan::NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kUdf) ++udfs;
  }
  EXPECT_EQ(udfs, 2);
}

TEST(QuerySpecTest, ThirdSourceAddsSecondJoin) {
  QuerySpec spec = TwoSourceSpec();
  spec.right.fields.push_back("checkin_loc");
  SourceSpec lm;
  lm.dataset = "landmarks";
  lm.fields = {"checkin_loc", "region"};
  spec.third = lm;
  spec.join2_key = "checkin_loc";
  spec.group_by = {"region"};
  auto plan = BuildQueryFromSpec(&PaperCatalog(), spec);
  ASSERT_TRUE(plan.ok());
  int joins = 0;
  for (const plan::NodePtr& node : plan->PostOrder()) {
    if (node->kind() == OpKind::kJoin) ++joins;
  }
  EXPECT_EQ(joins, 2);
}

TEST(QuerySpecTest, InvalidSpecPropagatesError) {
  QuerySpec spec = TwoSourceSpec();
  spec.join1_key = "not_a_field";
  EXPECT_FALSE(BuildQueryFromSpec(&PaperCatalog(), spec).ok());
}

}  // namespace
}  // namespace miso::workload
