// Strict env parsing: a knob set to garbage must terminate with a
// diagnostic (exit 2), never silently fall back to a default — running an
// experiment under a configuration the user did not ask for is worse than
// not running it (satellite bugfix for the old atoi MISO_THREADS path).

#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace miso {
namespace {

constexpr char kKnob[] = "MISO_TEST_KNOB";

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv(kKnob); }
  void TearDown() override { unsetenv(kKnob); }
};

TEST_F(EnvTest, IntReturnsFallbackWhenUnset) {
  EXPECT_EQ(EnvInt(kKnob, 42, 1), 42);
}

TEST_F(EnvTest, IntParsesDecimal) {
  setenv(kKnob, "8", 1);
  EXPECT_EQ(EnvInt(kKnob, 42, 1), 8);
  setenv(kKnob, "1", 1);
  EXPECT_EQ(EnvInt(kKnob, 42, 1), 1);
}

TEST_F(EnvTest, IntDiesOnGarbage) {
  setenv(kKnob, "abc", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2),
              "MISO_TEST_KNOB='abc' is invalid");
}

TEST_F(EnvTest, IntDiesOnTrailingJunk) {
  setenv(kKnob, "4x", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2),
              "expected an integer in \\[1, 1000000\\]");
}

TEST_F(EnvTest, IntDiesOnEmptyValue) {
  setenv(kKnob, "", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2), "invalid");
}

TEST_F(EnvTest, IntDiesBelowMinimum) {
  setenv(kKnob, "0", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2),
              "expected an integer in \\[1, 1000000\\]");
  setenv(kKnob, "-3", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2), "invalid");
}

TEST_F(EnvTest, IntDiesAboveMaximum) {
  // The diagnostic must describe the rejection: 2000000 is a well-formed
  // integer >= min, so the message has to name the upper bound too.
  setenv(kKnob, "2000000", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2),
              "expected an integer in \\[1, 1000000\\]");
}

TEST_F(EnvTest, IntDiesOnOverflow) {
  setenv(kKnob, "99999999999999999999", 1);
  EXPECT_EXIT(EnvInt(kKnob, 42, 1), ::testing::ExitedWithCode(2), "invalid");
}

TEST_F(EnvTest, FlagReturnsFallbackWhenUnset) {
  EXPECT_FALSE(EnvFlag(kKnob, false));
  EXPECT_TRUE(EnvFlag(kKnob, true));
}

TEST_F(EnvTest, FlagParsesZeroAndOne) {
  setenv(kKnob, "0", 1);
  EXPECT_FALSE(EnvFlag(kKnob, true));
  setenv(kKnob, "1", 1);
  EXPECT_TRUE(EnvFlag(kKnob, false));
}

TEST_F(EnvTest, DoubleReturnsFallbackWhenUnset) {
  EXPECT_DOUBLE_EQ(EnvDouble(kKnob, 0.08, 0.0, 1.0), 0.08);
}

TEST_F(EnvTest, DoubleParsesDecimalAndScientific) {
  setenv(kKnob, "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble(kKnob, 0.08, 0.0, 1.0), 0.25);
  setenv(kKnob, "1e-2", 1);
  EXPECT_DOUBLE_EQ(EnvDouble(kKnob, 0.08, 0.0, 1.0), 0.01);
  setenv(kKnob, "0", 1);
  EXPECT_DOUBLE_EQ(EnvDouble(kKnob, 0.08, 0.0, 1.0), 0.0);
  setenv(kKnob, "1", 1);
  EXPECT_DOUBLE_EQ(EnvDouble(kKnob, 0.08, 0.0, 1.0), 1.0);
}

TEST_F(EnvTest, DoubleDiesOnGarbage) {
  setenv(kKnob, "lots", 1);
  EXPECT_EXIT(EnvDouble(kKnob, 0.08, 0.0, 1.0), ::testing::ExitedWithCode(2),
              "MISO_TEST_KNOB='lots' is invalid");
  setenv(kKnob, "0.5x", 1);
  EXPECT_EXIT(EnvDouble(kKnob, 0.08, 0.0, 1.0), ::testing::ExitedWithCode(2),
              "expected a number in \\[0, 1\\]");
  setenv(kKnob, "", 1);
  EXPECT_EXIT(EnvDouble(kKnob, 0.08, 0.0, 1.0), ::testing::ExitedWithCode(2),
              "invalid");
}

TEST_F(EnvTest, DoubleDiesOutOfRange) {
  setenv(kKnob, "1.5", 1);
  EXPECT_EXIT(EnvDouble(kKnob, 0.08, 0.0, 1.0), ::testing::ExitedWithCode(2),
              "expected a number in \\[0, 1\\]");
  setenv(kKnob, "-0.1", 1);
  EXPECT_EXIT(EnvDouble(kKnob, 0.08, 0.0, 1.0), ::testing::ExitedWithCode(2),
              "invalid");
}

TEST_F(EnvTest, DoubleDiesOnNanBecauseComparisonsAreNanSafe) {
  // !(NaN >= min) must reject: a plain (parsed < min || parsed > max)
  // check would let NaN through.
  setenv(kKnob, "nan", 1);
  EXPECT_EXIT(EnvDouble(kKnob, 0.08, 0.0, 1.0), ::testing::ExitedWithCode(2),
              "invalid");
}

TEST_F(EnvTest, ChoiceReturnsFallbackWhenUnset) {
  static const char* const kChoices[] = {"off", "transient", "outage",
                                         "chaos"};
  EXPECT_EQ(EnvChoice(kKnob, 0, kChoices, 4), 0);
  EXPECT_EQ(EnvChoice(kKnob, 2, kChoices, 4), 2);
}

TEST_F(EnvTest, ChoiceMatchesExactTokensOnly) {
  static const char* const kChoices[] = {"off", "transient", "outage",
                                         "chaos"};
  setenv(kKnob, "chaos", 1);
  EXPECT_EQ(EnvChoice(kKnob, 0, kChoices, 4), 3);
  setenv(kKnob, "transient", 1);
  EXPECT_EQ(EnvChoice(kKnob, 0, kChoices, 4), 1);
}

TEST_F(EnvTest, ChoiceDiesOnUnknownTokenListingTheAlternatives) {
  static const char* const kChoices[] = {"off", "transient", "outage",
                                         "chaos"};
  setenv(kKnob, "Chaos", 1);  // case-sensitive: not a silent match
  EXPECT_EXIT(EnvChoice(kKnob, 0, kChoices, 4), ::testing::ExitedWithCode(2),
              "expected one of off\\|transient\\|outage\\|chaos");
  setenv(kKnob, "", 1);
  EXPECT_EXIT(EnvChoice(kKnob, 0, kChoices, 4), ::testing::ExitedWithCode(2),
              "invalid");
}

TEST_F(EnvTest, FlagDiesOnAnythingElse) {
  setenv(kKnob, "yes", 1);
  EXPECT_EXIT(EnvFlag(kKnob, false), ::testing::ExitedWithCode(2),
              "expected 0 or 1");
  setenv(kKnob, "2", 1);
  EXPECT_EXIT(EnvFlag(kKnob, false), ::testing::ExitedWithCode(2),
              "expected 0 or 1");
  setenv(kKnob, "", 1);
  EXPECT_EXIT(EnvFlag(kKnob, false), ::testing::ExitedWithCode(2),
              "expected 0 or 1");
}

}  // namespace
}  // namespace miso
