#include "common/units.h"

#include <gtest/gtest.h>

namespace miso {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kKiB, 1024);
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(kGiB, int64_t{1024} * 1024 * 1024);
  EXPECT_EQ(kTiB, int64_t{1024} * kGiB);
}

TEST(UnitsTest, FractionalConstructors) {
  EXPECT_EQ(KiB(1.5), 1536);
  EXPECT_EQ(MiB(2.0), 2 * kMiB);
  EXPECT_EQ(GiB(0.5), kGiB / 2);
  EXPECT_EQ(TiB(1.0), kTiB);
  EXPECT_EQ(GiB(-3.0), 0) << "negative sizes clamp to zero";
}

TEST(UnitsTest, ScaleBytes) {
  EXPECT_EQ(ScaleBytes(1000, 0.5), 500);
  EXPECT_EQ(ScaleBytes(1000, 0.0), 0);
  EXPECT_EQ(ScaleBytes(1000, 2.0), 2000);
  EXPECT_EQ(ScaleBytes(3, 0.5), 2) << "rounds to nearest";
  EXPECT_EQ(ScaleBytes(1000, -1.0), 0) << "never negative";
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(kKiB), "1.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB / 2), "1.50 MiB");
  EXPECT_EQ(FormatBytes(kGiB), "1.00 GiB");
  EXPECT_EQ(FormatBytes(2 * kTiB), "2.00 TiB");
}

TEST(UnitsTest, FormatSecondsPicksUnit) {
  EXPECT_EQ(FormatSeconds(12.0), "12.00 s");
  EXPECT_EQ(FormatSeconds(90.0), "1.50 min");
  EXPECT_EQ(FormatSeconds(7200.0), "2.00 h");
}

}  // namespace
}  // namespace miso
