// The server's admission-queue primitive: bounded FIFO backpressure,
// close-and-drain semantics, and FIFO ordering under concurrent
// producers/consumers.

#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

namespace miso {
namespace {

TEST(BoundedQueueTest, FifoOrderSingleThreaded) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    std::optional<int> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full — no blocking
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(3));     // closed: push fails
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop().value(), 1);  // admitted work still drains
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // drained: end of stream
  EXPECT_FALSE(queue.Pop().has_value());  // idempotent
}

TEST(BoundedQueueTest, PushBlocksOnFullUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  // The producer cannot complete while the queue is full. (A sleep-based
  // "still blocked" probe would be flaky; the ordering assertion below is
  // the real check.)
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  EXPECT_TRUE(full.Push(1));
  std::thread producer([&] {
    EXPECT_FALSE(full.Push(2));  // blocked on full, then woken by Close
  });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] {
    EXPECT_FALSE(empty.Pop().has_value());  // blocked on empty, then woken
  });
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersLoseNothing) {
  // 4 producers x 250 items through a tiny queue into 4 consumers: every
  // item arrives exactly once and per-producer order is preserved (the
  // global FIFO implies each producer's items stay in sequence).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);
  std::vector<std::vector<int>> consumed(kProducers);
  Mutex consumed_mutex;

  std::vector<std::thread> consumers;
  for (int c = 0; c < kProducers; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> item = queue.Pop()) {
        const int producer = *item / kPerProducer;
        MutexLock lock(consumed_mutex);
        consumed[static_cast<size_t>(producer)].push_back(*item);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  int total = 0;
  for (int p = 0; p < kProducers; ++p) {
    auto& items = consumed[static_cast<size_t>(p)];
    total += static_cast<int>(items.size());
    // Each consumer may interleave, but the union per producer is the
    // full, duplicate-free range.
    std::sort(items.begin(), items.end());
    for (int i = 0; i < static_cast<int>(items.size()); ++i) {
      EXPECT_EQ(items[static_cast<size_t>(i)], p * kPerProducer + i);
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_GE(queue.high_water(), 1u);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

// TryPopBatch is all-or-nothing while the queue is open: the server's
// wave former never starts a short wave just because admission is slow.
TEST(BoundedQueueTest, TryPopBatchAllOrNothingWhileOpen) {
  BoundedQueue<int> queue(8);
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(3, &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_EQ(queue.TryPopBatch(3, &out), 0u) << "2 of 3 items, still open";
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(queue.size(), 2u) << "a refused batch must not consume items";
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.TryPopBatch(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

// Close flips the semantics to drain: a partial batch is taken so the
// final, short wave of a run is still formed, then an empty closed queue
// returns 0 forever.
TEST(BoundedQueueTest, TryPopBatchDrainsPartialBatchAfterClose) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(5, &out), 0u) << "open: all-or-nothing";
  queue.Close();
  EXPECT_EQ(queue.TryPopBatch(5, &out), 2u) << "closed: drain what remains";
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.TryPopBatch(5, &out), 0u) << "pop after close + empty";
  EXPECT_EQ(queue.TryPopBatch(1, &out), 0u);
  EXPECT_EQ(out.size(), 2u) << "out is append-only, never cleared";
}

TEST(BoundedQueueTest, TryPopBatchCapacityOneQueue) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(7));
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(2, &out), 0u) << "wave larger than capacity";
  EXPECT_EQ(queue.TryPopBatch(1, &out), 1u);
  EXPECT_EQ(out, std::vector<int>{7});
  // The batch pop released capacity: the next push must go through
  // without blocking.
  EXPECT_TRUE(queue.Push(8));
  queue.Close();
  EXPECT_EQ(queue.TryPopBatch(3, &out), 1u);
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
}

}  // namespace
}  // namespace miso
