#include "common/logging.h"

#include <gtest/gtest.h>

namespace miso {
namespace {

/// Restores the global threshold after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::threshold(); }
  void TearDown() override { Logger::SetThreshold(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, ThresholdRoundTrips) {
  Logger::SetThreshold(LogLevel::kError);
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
  Logger::SetThreshold(LogLevel::kDebug);
  EXPECT_EQ(Logger::threshold(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacroStreamsArbitraryTypes) {
  Logger::SetThreshold(LogLevel::kError);  // suppress actual output
  // Must compile and not crash for mixed operands.
  MISO_LOG(kInfo) << "views=" << 3 << " bytes=" << 1.5 << " ok=" << true;
  MISO_LOG(kWarning) << std::string("string operand");
  SUCCEED();
}

TEST_F(LoggingTest, SuppressedLevelsDoNotEmit) {
  // Behavioral check via the public API only: logging below threshold is
  // a no-op (no crash, no state change).
  Logger::SetThreshold(LogLevel::kError);
  Logger::Log(LogLevel::kDebug, "dropped");
  Logger::Log(LogLevel::kInfo, "dropped");
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
}

}  // namespace
}  // namespace miso
