#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace miso {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MISO_ASSIGN_OR_RETURN(int h, Half(x));
  MISO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> inner_fail = Quarter(6);  // 6/2=3 is odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace miso
