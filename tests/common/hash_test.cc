#include "common/hash.h"

#include <gtest/gtest.h>

namespace miso {
namespace {

TEST(HashTest, StableAcrossRuns) {
  // Signatures are persistent identities; the hash must never change.
  EXPECT_EQ(HashBytes(""), kFnvOffsetBasis);
  EXPECT_EQ(HashBytes("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(HashBytes("scan(twitter)"), HashBytes("scan(twitter)"));
}

TEST(HashTest, DifferentInputsDiffer) {
  EXPECT_NE(HashBytes("scan(twitter)"), HashBytes("scan(foursquare)"));
  EXPECT_NE(HashBytes("ab"), HashBytes("ba"));
}

TEST(HashTest, CombineIsOrderDependent) {
  const uint64_t a = HashBytes("left");
  const uint64_t b = HashBytes("right");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashTest, CombineUnorderedIsCommutative) {
  const uint64_t a = HashBytes("p1");
  const uint64_t b = HashBytes("p2");
  const uint64_t c = HashBytes("p3");
  EXPECT_EQ(HashCombineUnordered(a, b), HashCombineUnordered(b, a));
  EXPECT_EQ(HashCombineUnordered(HashCombineUnordered(a, b), c),
            HashCombineUnordered(HashCombineUnordered(c, b), a));
}

}  // namespace
}  // namespace miso
