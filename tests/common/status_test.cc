#include "common/status.h"

#include <gtest/gtest.h>

namespace miso {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfBudget("d"), StatusCode::kOutOfBudget, "OutOfBudget"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing view");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "missing view");
}

Status FailsThenPropagates(bool fail) {
  MISO_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace miso
