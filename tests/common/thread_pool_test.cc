// The thread pool is the only concurrency primitive in the library, so
// its contracts carry the determinism guarantees of everything above it:
// FIFO dequeue order, bounded-queue backpressure, drain-on-destruction,
// per-index slot writes under heavy oversubscription, and ParallelFor's
// lowest-index exception propagation.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace miso {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountAndDefaultsCapacity) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.queue_capacity(), 4u);
  ThreadPool wide(3, 2);
  EXPECT_EQ(wide.num_threads(), 3);
  EXPECT_EQ(wide.queue_capacity(), 2u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  // With one worker the FIFO queue is a total order: tasks must observe
  // exactly the sequence they were submitted in.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (std::future<void>& f : futures) f.get();
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, OversubscriptionRunsEveryTaskExactlyOnce) {
  // Far more tasks than workers and a tiny queue: backpressure blocks
  // the producer, but every task still runs exactly once.
  ThreadPool pool(2, /*queue_capacity=*/3);
  constexpr int kTasks = 500;
  std::vector<int> hits(kTasks, 0);
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&hits, &completed, i] {
      ++hits[static_cast<size_t>(i)];  // own slot: no synchronization needed
      completed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(completed.load(), kTasks);
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasksWhileBusy) {
  // Destroy the pool while tasks are queued behind a slow one: shutdown
  // must drain — everything already submitted runs before join.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool joins here
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  std::future<void> good = pool.Submit([] {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_NO_THROW(good.get());  // one task's failure never poisons others
}

TEST(ParallelForTest, WritesEverySlotForAnyThreadCount) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr int kN = 257;  // deliberately not a multiple of any chunking
    std::vector<int> out(kN, -1);
    ParallelFor(&pool, kN, [&out](int i) {
      out[static_cast<size_t>(i)] = 3 * i;
    });
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], 3 * i) << "threads=" << threads;
    }
  }
}

TEST(ParallelForTest, NullPoolAndEmptyRangeAreSerialNoOps) {
  std::vector<int> out(5, 0);
  ParallelFor(nullptr, 5, [&out](int i) { out[static_cast<size_t>(i)] = 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 1, 1, 1, 1}));
  ParallelFor(nullptr, 0, [](int) { FAIL() << "body must not run for n=0"; });
}

TEST(ParallelForTest, RethrowsTheLowestIndexedChunkException) {
  ThreadPool pool(4);
  // Two throwing indices far apart: the chunk containing the lower index
  // must win regardless of which worker finishes first.
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      ParallelFor(&pool, 64, [](int i) {
        if (i == 5) throw std::out_of_range("low");
        if (i == 60) throw std::runtime_error("high");
      });
      FAIL() << "expected an exception";
    } catch (const std::out_of_range& e) {
      EXPECT_STREQ(e.what(), "low");
    }
  }
}

TEST(ParallelForTest, NestedCallFromWorkerRunsInline) {
  // ParallelFor from inside a pool task must not deadlock on the bounded
  // queue: it detects the worker thread and runs the body serially.
  ThreadPool pool(2, /*queue_capacity=*/2);
  std::vector<int> outer(4, 0);
  ParallelFor(&pool, 4, [&pool, &outer](int i) {
    EXPECT_TRUE(pool.InWorkerThread());
    std::vector<int> inner(16, 0);
    ParallelFor(&pool, 16, [&inner](int j) {
      inner[static_cast<size_t>(j)] = j + 1;
    });
    int sum = 0;
    for (int v : inner) sum += v;
    outer[static_cast<size_t>(i)] = sum;
  });
  EXPECT_EQ(outer, (std::vector<int>{136, 136, 136, 136}));
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsMisoThreadsEnv) {
  // ctest does not set MISO_THREADS globally, so mutate and restore.
  const char* saved = std::getenv("MISO_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("MISO_THREADS", "7", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 7);
  unsetenv("MISO_THREADS");  // unset: falls back to hardware
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  // Garbage no longer silently falls back — it terminates with a
  // diagnostic (exit 2). The full syntax matrix lives in env_test.cc.
  setenv("MISO_THREADS", "0", 1);
  EXPECT_EXIT(ThreadPool::DefaultThreadCount(),
              testing::ExitedWithCode(2), "MISO_THREADS='0' is invalid");
  if (saved != nullptr) {
    setenv("MISO_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("MISO_THREADS");
  }
}

TEST(ParallelForTest, GrainNeverChangesTheOutput) {
  // Byte-identity across grains: the same slots get the same values for
  // every (threads, grain) combination — grain only changes how indices
  // are packed into pool tasks, never which indices run.
  constexpr int kN = 257;
  for (int threads : {1, 2, 8}) {
    for (int grain : {1, 16, 256, 1024}) {
      ThreadPool pool(threads);
      std::vector<int> out(kN, -1);
      ParallelFor(
          &pool, kN,
          [&out](int i) { out[static_cast<size_t>(i)] = 3 * i; },
          ParallelForOptions{grain});
      for (int i = 0; i < kN; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)], 3 * i)
            << "threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelForTest, SmallRangesRunInlineUnderTheGrain) {
  // n <= grain must not touch the pool at all: the whole point of
  // batching is that tiny fan-outs cost zero submits.
  ThreadPool pool(4);
  std::vector<int> out(8, 0);
  ParallelFor(
      &pool, 8, [&out](int i) { out[static_cast<size_t>(i)] = 1; },
      ParallelForOptions{/*grain=*/16});
  EXPECT_EQ(pool.GetStats().submits, 0);
  for (int v : out) EXPECT_EQ(v, 1);

  // One past the grain: the pool is used again.
  std::vector<int> big(17, 0);
  ParallelFor(
      &pool, 17, [&big](int i) { big[static_cast<size_t>(i)] = 1; },
      ParallelForOptions{/*grain=*/16});
  EXPECT_GT(pool.GetStats().submits, 0);
}

TEST(ParallelForTest, GrainEnvOverrideWins) {
  // MISO_PARALLEL_GRAIN overrides the per-call grain (used by the grain
  // sweeps in the concurrency suite). Mutate and restore, as above.
  const char* saved = std::getenv("MISO_PARALLEL_GRAIN");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("MISO_PARALLEL_GRAIN", "64", /*overwrite=*/1);
  ThreadPool pool(4);
  std::vector<int> out(32, 0);
  ParallelFor(
      &pool, 32, [&out](int i) { out[static_cast<size_t>(i)] = i; },
      ParallelForOptions{/*grain=*/1});  // env says 64: runs inline
  EXPECT_EQ(pool.GetStats().submits, 0);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  if (saved != nullptr) {
    setenv("MISO_PARALLEL_GRAIN", saved_value.c_str(), 1);
  } else {
    unsetenv("MISO_PARALLEL_GRAIN");
  }
}

TEST(ThreadPoolTest, StatsCountSubmitsAndTasksRun) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  for (std::future<void>& f : futures) f.get();
  const ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.submits, 10);
  EXPECT_EQ(stats.tasks_run, 10);
  EXPECT_GE(stats.queue_high_water, 1);
  EXPECT_LE(stats.queue_high_water,
            static_cast<int64_t>(pool.queue_capacity()));
}

}  // namespace
}  // namespace miso
