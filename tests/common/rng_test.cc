#include "common/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace miso {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Uniform(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values in [3,7] should appear";
}

TEST(RngTest, UniformRealWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliRoughlyMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.03);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent1(42);
  Rng child1 = parent1.Fork();
  Rng parent2(42);
  Rng child2 = parent2.Fork();
  // Children from identically-seeded parents match ...
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.Next(), child2.Next());
  // ... and differ from the parent stream.
  Rng parent3(42);
  Rng child3 = parent3.Fork();
  EXPECT_NE(child3.Next(), parent3.Next());
}

}  // namespace
}  // namespace miso
