// RetryPolicy/RunWithRetry: exponential simulated backoff with a clamp,
// honest accounting of wasted vs successful seconds, and a deterministic
// loop (all randomness lives in the caller's attempt callback).

#include "common/retry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace miso {
namespace {

TEST(RetryPolicyTest, BackoffIsExponentialWithClamp) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_s = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 10.0;

  EXPECT_DOUBLE_EQ(policy.BackoffBefore(1), 0.0);  // first attempt is free
  EXPECT_DOUBLE_EQ(policy.BackoffBefore(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBefore(3), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBefore(4), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBefore(5), 10.0);  // clamped from 16
  EXPECT_DOUBLE_EQ(policy.BackoffBefore(6), 10.0);

  EXPECT_DOUBLE_EQ(policy.TotalBackoff(1), 0.0);
  EXPECT_DOUBLE_EQ(policy.TotalBackoff(3), 6.0);
  EXPECT_DOUBLE_EQ(policy.TotalBackoff(6), 34.0);
}

TEST(RunWithRetryTest, FirstAttemptSuccessChargesNoBackoff) {
  const RetryStats stats =
      RunWithRetry(RetryPolicy{}, [](int attempt, Seconds* cost) {
        EXPECT_EQ(attempt, 1);
        *cost = 100.0;
        return true;
      });
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries(), 0);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_DOUBLE_EQ(stats.success_s, 100.0);
  EXPECT_DOUBLE_EQ(stats.wasted_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.TotalCharged(), 100.0);
}

TEST(RunWithRetryTest, FailuresChargeWasteBackoffAndFinalSuccess) {
  RetryPolicy policy;  // 3 attempts, 2s initial backoff, x2
  const RetryStats stats =
      RunWithRetry(policy, [](int attempt, Seconds* cost) {
        *cost = (attempt < 3) ? 10.0 : 50.0;  // partial work, then done
        return attempt == 3;
      });
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries(), 2);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_DOUBLE_EQ(stats.wasted_s, 20.0);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 6.0);  // 2 + 4
  EXPECT_DOUBLE_EQ(stats.success_s, 50.0);
  EXPECT_DOUBLE_EQ(stats.TotalCharged(), 76.0);
}

TEST(RunWithRetryTest, ExhaustionKeepsAllWasteAndNoSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  const RetryStats stats = RunWithRetry(policy, [](int, Seconds* cost) {
    *cost = 7.0;
    return false;
  });
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_DOUBLE_EQ(stats.wasted_s, 14.0);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 2.0);
  EXPECT_DOUBLE_EQ(stats.success_s, 0.0);
}

TEST(RunWithRetryTest, SingleAttemptPolicyMeansNoRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int calls = 0;
  const RetryStats stats = RunWithRetry(policy, [&](int, Seconds* cost) {
    ++calls;
    *cost = 1.0;
    return false;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 0.0);
}

TEST(RunWithRetryTest, AttemptNumbersArePassedInOrder) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  std::vector<int> seen;
  RunWithRetry(policy, [&](int attempt, Seconds* cost) {
    seen.push_back(attempt);
    *cost = 0.0;
    return false;
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
}

TEST(RecoveryPolicyTest, NamesAreStable) {
  EXPECT_EQ(std::string(RecoveryPolicyName(RecoveryPolicy::kResume)),
            "resume");
  EXPECT_EQ(std::string(RecoveryPolicyName(RecoveryPolicy::kRollback)),
            "rollback");
}

}  // namespace
}  // namespace miso
