#include "tuner/miso_tuner.h"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "hv/hv_store.h"
#include "tuner/baseline_tuners.h"

namespace miso::tuner {
namespace {

using testing_util::PaperCatalog;
using views::View;
using views::ViewCatalog;

class MisoTunerTest : public ::testing::Test {
 protected:
  MisoTunerTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_) {}

  MisoTunerConfig Config(Bytes bh, Bytes bd, Bytes bt) {
    MisoTunerConfig config;
    config.hv_storage_budget = bh;
    config.dw_storage_budget = bd;
    config.transfer_budget = bt;
    return config;
  }

  /// Runs a query in HV and fills `hv` with its opportunistic views.
  plan::Plan ExecuteAndHarvest(const std::string& name,
                               const std::string& topic, bool dw_udfs,
                               ViewCatalog* hv) {
    auto plan = *testing_util::MakeAnalystPlan(&PaperCatalog(), name, topic,
                                               0.1, dw_udfs);
    hv::HvStore store(hv::HvConfig{}, kTiB * 100);
    auto exec =
        store.Execute(plan.root(), 0, 0, &next_id_, plan.signature());
    EXPECT_TRUE(exec.ok());
    for (View& v : exec->produced_views) {
      EXPECT_TRUE(hv->AddUnchecked(std::move(v)).ok());
    }
    return plan;
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  optimizer::MultistoreOptimizer optimizer_;
  uint64_t next_id_ = 1;
};

TEST_F(MisoTunerTest, EmptyCandidatesYieldEmptyPlan) {
  MisoTuner tuner(&optimizer_, Config(kTiB, kTiB, 10 * kGiB));
  ViewCatalog hv(kTiB);
  ViewCatalog dw(kTiB);
  auto plan = tuner.Tune(hv, dw, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Empty());
}

TEST_F(MisoTunerTest, MovesBeneficialViewsToDwWithinBt) {
  ViewCatalog hv(100 * kTiB);
  ViewCatalog dw(400 * kGiB);
  plan::Plan q =
      ExecuteAndHarvest("q", "c%", /*dw_udfs=*/true, &hv);
  ASSERT_GT(hv.size(), 0);

  const Bytes bt = 10 * kGiB;
  MisoTuner tuner(&optimizer_, Config(100 * kTiB, 400 * kGiB, bt));
  auto plan = tuner.Tune(hv, dw, {q});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->move_to_dw.empty())
      << "a DW-eligible chain should promote views";
  EXPECT_LE(plan->BytesToDw(), bt) << "transfer budget respected";
}

TEST_F(MisoTunerTest, DesignsStayDisjointAndWithinBudgets) {
  ViewCatalog hv(100 * kTiB);
  ViewCatalog dw(400 * kGiB);
  plan::Plan q1 = ExecuteAndHarvest("q1", "c%", true, &hv);
  plan::Plan q2 = ExecuteAndHarvest("q2", "d%", false, &hv);

  const Bytes bh = 60 * kGiB;
  const Bytes bd = 20 * kGiB;
  const Bytes bt = 10 * kGiB;
  MisoTuner tuner(&optimizer_, Config(bh, bd, bt));
  auto plan = tuner.Tune(hv, dw, {q1, q2});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ApplyReorgPlan(*plan, &hv, &dw).ok());

  EXPECT_LE(hv.used_bytes(), bh);
  EXPECT_LE(dw.used_bytes(), bd);
  EXPECT_LE(plan->BytesToDw() + plan->BytesToHv(), bt);

  std::set<views::ViewId> hv_ids;
  for (const View& v : hv.AllViews()) hv_ids.insert(v.id);
  for (const View& v : dw.AllViews()) {
    EXPECT_EQ(hv_ids.count(v.id), 0u) << "Vh and Vd must stay disjoint";
  }
}

TEST_F(MisoTunerTest, HvOnlyUdfViewsStayInHv) {
  // With store-specific benefits, views pinned below an HV-only UDF have
  // zero DW benefit and must not consume the transfer budget.
  ViewCatalog hv(100 * kTiB);
  ViewCatalog dw(400 * kGiB);
  plan::Plan q = ExecuteAndHarvest("q", "c%", /*dw_udfs=*/false, &hv);
  MisoTuner tuner(&optimizer_, Config(100 * kTiB, 400 * kGiB, 100 * kGiB));
  auto plan = tuner.Tune(hv, dw, {q});
  ASSERT_TRUE(plan.ok());
  // Views above the HV-only UDF chain (join2/udf2 outputs) may move; the
  // filtered inputs below it must not.
  for (const View& v : plan->move_to_dw) {
    EXPECT_EQ(v.base_signature, 0u)
        << "filtered (subsumable) views below the UDF should stay: "
        << v.DebugString();
  }
}

TEST_F(MisoTunerTest, RetainsUnselectedViewsWhileSpaceRemains) {
  ViewCatalog hv(100 * kTiB);
  ViewCatalog dw(400 * kGiB);
  plan::Plan q1 = ExecuteAndHarvest("q1", "c%", true, &hv);
  plan::Plan q2 = ExecuteAndHarvest("q2", "d%", true, &hv);
  const int before = hv.size() + dw.size();

  // Window only contains q2: q1's views have zero benefit but plenty of
  // space remains, so they must survive.
  MisoTuner tuner(&optimizer_, Config(100 * kTiB, 400 * kGiB, 10 * kGiB));
  auto plan = tuner.Tune(hv, dw, {q2});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->drop_from_hv.empty());
  ASSERT_TRUE(ApplyReorgPlan(*plan, &hv, &dw).ok());
  EXPECT_EQ(hv.size() + dw.size(), before);
}

TEST_F(MisoTunerTest, PaperLiteralModeDropsUnselectedViews) {
  ViewCatalog hv(100 * kTiB);
  ViewCatalog dw(400 * kGiB);
  plan::Plan q1 = ExecuteAndHarvest("q1", "c%", true, &hv);
  plan::Plan q2 = ExecuteAndHarvest("q2", "d%", true, &hv);

  MisoTunerConfig config = Config(100 * kTiB, 400 * kGiB, 10 * kGiB);
  config.retain_unselected_views = false;
  MisoTuner tuner(&optimizer_, config);
  auto plan = tuner.Tune(hv, dw, {q2});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->drop_from_hv.empty())
      << "q1's zero-benefit views are dropped under Algorithm-1 literal "
         "semantics";
}

TEST_F(MisoTunerTest, TinyTransferBudgetBlocksMoves) {
  ViewCatalog hv(100 * kTiB);
  ViewCatalog dw(400 * kGiB);
  plan::Plan q = ExecuteAndHarvest("q", "c%", true, &hv);
  MisoTuner tuner(&optimizer_, Config(100 * kTiB, 400 * kGiB, /*bt=*/0));
  auto plan = tuner.Tune(hv, dw, {q});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->move_to_dw.empty());
  EXPECT_TRUE(plan->move_to_hv.empty());
}

TEST_F(MisoTunerTest, LruTunerKeepsMostRecentlyUsed) {
  MisoTunerConfig config = Config(/*bh=*/GiB(200), /*bd=*/GiB(3),
                                  /*bt=*/GiB(10));
  LruTuner tuner(config);
  ViewCatalog hv(GiB(200));
  ViewCatalog dw(GiB(3));
  for (uint64_t id = 1; id <= 5; ++id) {
    View v;
    v.id = id;
    v.size_bytes = GiB(2);
    v.signature = id;
    v.created_by_query = static_cast<int>(id);  // id 5 most recent
    ASSERT_TRUE(hv.AddUnchecked(v).ok());
  }
  auto plan = tuner.Tune(hv, dw);
  ASSERT_TRUE(plan.ok());
  // DW (3 GiB) fits exactly the single most recently used 2 GiB view.
  ASSERT_EQ(plan->move_to_dw.size(), 1u);
  EXPECT_EQ(plan->move_to_dw[0].id, 5u);
}

}  // namespace
}  // namespace miso::tuner
