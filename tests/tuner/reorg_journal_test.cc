// Crash-safe reorganization: the journal flattens a ReorgPlan into
// atomic per-view steps, a crash between steps leaves a recoverable
// half-applied design, resume completes it / rollback reverts it —
// idempotently — and byte accounting covers recovery work too.

#include "tuner/reorg_journal.h"

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"
#include "tuner/reorg_plan.h"
#include "verify/design_verifier.h"
#include "views/view.h"
#include "views/view_catalog.h"

namespace miso::tuner {
namespace {

views::View MakeView(views::ViewId id, Bytes size) {
  views::View view;
  view.id = id;
  view.signature = 0x2000 + id;
  view.size_bytes = size;
  view.stats.bytes = size;
  return view;
}

/// hv: {1, 2, 3}, dw: {4, 5}; plan: 1,2 -> DW; 4 -> HV; drop 3 (HV), 5 (DW).
struct Fixture {
  views::ViewCatalog hv{4 * kTiB};
  views::ViewCatalog dw{400 * kGiB};
  ReorgPlan plan;

  Fixture() {
    for (views::ViewId id : {1, 2, 3}) {
      EXPECT_TRUE(hv.AddUnchecked(MakeView(id, id * kGiB)).ok());
    }
    for (views::ViewId id : {4, 5}) {
      EXPECT_TRUE(dw.AddUnchecked(MakeView(id, id * kGiB)).ok());
    }
    plan.move_to_dw = {MakeView(1, kGiB), MakeView(2, 2 * kGiB)};
    plan.move_to_hv = {MakeView(4, 4 * kGiB)};
    plan.drop_from_hv = {3};
    plan.drop_from_dw = {5};
  }
};

TEST(ReorgJournalTest, CreateFlattensMovesThenDrops) {
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  ASSERT_EQ(journal.num_entries(), 5);
  EXPECT_EQ(journal.entries()[0].kind, ReorgJournal::Kind::kToDw);
  EXPECT_EQ(journal.entries()[1].kind, ReorgJournal::Kind::kToDw);
  EXPECT_EQ(journal.entries()[2].kind, ReorgJournal::Kind::kToHv);
  EXPECT_EQ(journal.entries()[3].kind, ReorgJournal::Kind::kDropHv);
  EXPECT_EQ(journal.entries()[4].kind, ReorgJournal::Kind::kDropDw);
  EXPECT_EQ(journal.num_applied(), 0);
  EXPECT_FALSE(journal.Complete());
  // Drops snapshot the *full* view record so rollback can re-insert it.
  EXPECT_EQ(journal.entries()[3].view.size_bytes, 3 * kGiB);
  EXPECT_EQ(journal.entries()[4].view.size_bytes, 5 * kGiB);
}

TEST(ReorgJournalTest, CreateRejectsMissingSourceView) {
  Fixture f;
  ReorgPlan bad = f.plan;
  bad.move_to_dw.push_back(MakeView(99, kGiB));  // not resident in HV
  EXPECT_FALSE(ReorgJournal::Create(bad, f.hv, f.dw).ok());
  ReorgPlan bad_drop = f.plan;
  bad_drop.drop_from_dw.push_back(77);
  EXPECT_FALSE(ReorgJournal::Create(bad_drop, f.hv, f.dw).ok());
}

TEST(ReorgJournalTest, FullApplyMatchesApplyReorgPlan) {
  Fixture journaled;
  Fixture direct;
  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal journal,
      ReorgJournal::Create(journaled.plan, journaled.hv, journaled.dw));
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal::Outcome outcome,
                            journal.Apply(&journaled.hv, &journaled.dw));
  MISO_ASSERT_OK(ApplyReorgPlan(direct.plan, &direct.hv, &direct.dw));

  EXPECT_EQ(outcome.steps, 5);
  EXPECT_EQ(outcome.bytes_to_dw, 3 * kGiB);
  EXPECT_EQ(outcome.bytes_to_hv, 4 * kGiB);
  EXPECT_TRUE(journal.Complete());
  EXPECT_EQ(journaled.hv.used_bytes(), direct.hv.used_bytes());
  EXPECT_EQ(journaled.dw.used_bytes(), direct.dw.used_bytes());
  for (views::ViewId id : {1, 2}) {
    EXPECT_TRUE(journaled.dw.Contains(id));
    EXPECT_FALSE(journaled.hv.Contains(id));
  }
  EXPECT_TRUE(journaled.hv.Contains(4));
  EXPECT_FALSE(journaled.hv.Contains(3));
  EXPECT_FALSE(journaled.dw.Contains(5));
}

TEST(ReorgJournalTest, CrashLeavesPrefixAppliedThenResumeCompletes) {
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal::Outcome partial,
                            journal.Apply(&f.hv, &f.dw, /*crash_before=*/2));
  EXPECT_EQ(partial.steps, 2);
  EXPECT_EQ(partial.bytes_to_dw, 3 * kGiB);  // views 1 and 2 moved
  EXPECT_EQ(partial.bytes_to_hv, 0u);
  EXPECT_EQ(journal.num_applied(), 2);
  EXPECT_FALSE(journal.Complete());
  // Half-applied design visible in the catalogs.
  EXPECT_TRUE(f.dw.Contains(1));
  EXPECT_TRUE(f.dw.Contains(2));
  EXPECT_FALSE(f.hv.Contains(4));  // step 2 (kToHv) never ran
  EXPECT_TRUE(f.hv.Contains(3));   // drop never ran

  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal::Outcome recovery,
      journal.Recover(RecoveryPolicy::kResume, &f.hv, &f.dw));
  EXPECT_EQ(recovery.steps, 3);
  EXPECT_EQ(recovery.bytes_to_dw, 0u);
  EXPECT_EQ(recovery.bytes_to_hv, 4 * kGiB);
  EXPECT_TRUE(journal.Complete());
  EXPECT_TRUE(journal.recovered());
  EXPECT_EQ(journal.recovery_policy(), RecoveryPolicy::kResume);
  // Final design identical to an uncrashed apply.
  EXPECT_TRUE(f.hv.Contains(4));
  EXPECT_FALSE(f.hv.Contains(3));
  EXPECT_FALSE(f.dw.Contains(5));
  MISO_EXPECT_OK(verify::VerifyJournalConsistency(journal, f.hv, f.dw));
}

TEST(ReorgJournalTest, RollbackRestoresThePreReorgDesign) {
  Fixture f;
  const Bytes hv_before = f.hv.used_bytes();
  const Bytes dw_before = f.dw.used_bytes();
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK(journal.Apply(&f.hv, &f.dw, /*crash_before=*/4).status());
  EXPECT_EQ(journal.num_applied(), 4);

  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal::Outcome undo,
      journal.Recover(RecoveryPolicy::kRollback, &f.hv, &f.dw));
  EXPECT_EQ(undo.steps, 4);
  // Undoing a HV->DW move transfers the bytes back: the 3 GiB that went
  // to DW come home, the 4 GiB that went to HV return to DW.
  EXPECT_EQ(undo.bytes_to_hv, 3 * kGiB);
  EXPECT_EQ(undo.bytes_to_dw, 4 * kGiB);
  EXPECT_EQ(journal.num_applied(), 0);
  EXPECT_TRUE(journal.recovered());
  EXPECT_EQ(journal.recovery_policy(), RecoveryPolicy::kRollback);
  // Byte-exact pre-reorg state.
  EXPECT_EQ(f.hv.used_bytes(), hv_before);
  EXPECT_EQ(f.dw.used_bytes(), dw_before);
  for (views::ViewId id : {1, 2, 3}) EXPECT_TRUE(f.hv.Contains(id));
  for (views::ViewId id : {4, 5}) EXPECT_TRUE(f.dw.Contains(id));
  MISO_EXPECT_OK(verify::VerifyJournalConsistency(journal, f.hv, f.dw));
}

TEST(ReorgJournalTest, RollbackReinsertsDroppedViews) {
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK(journal.Apply(&f.hv, &f.dw).status());  // all 5 steps
  EXPECT_FALSE(f.hv.Contains(3));
  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal::Outcome undo,
      journal.Recover(RecoveryPolicy::kRollback, &f.hv, &f.dw));
  EXPECT_EQ(undo.steps, 5);
  EXPECT_TRUE(f.hv.Contains(3));  // dropped view resurrected from snapshot
  EXPECT_TRUE(f.dw.Contains(5));
  MISO_ASSERT_OK_AND_ASSIGN(views::View resurrected, f.hv.Find(3));
  EXPECT_EQ(resurrected.size_bytes, 3 * kGiB);
}

TEST(ReorgJournalTest, RecoveryIsIdempotent) {
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK(journal.Apply(&f.hv, &f.dw, /*crash_before=*/3).status());
  MISO_ASSERT_OK(
      journal.Recover(RecoveryPolicy::kResume, &f.hv, &f.dw).status());
  const Bytes hv_after = f.hv.used_bytes();
  const Bytes dw_after = f.dw.used_bytes();
  // A second resume recovery is a no-op: every step is already applied.
  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal::Outcome again,
      journal.Recover(RecoveryPolicy::kResume, &f.hv, &f.dw));
  EXPECT_EQ(again.steps, 0);
  EXPECT_EQ(f.hv.used_bytes(), hv_after);
  EXPECT_EQ(f.dw.used_bytes(), dw_after);
  EXPECT_EQ(journal.recovery_policy(), RecoveryPolicy::kResume);
  EXPECT_TRUE(journal.Complete());
}

TEST(ReorgJournalTest, CrashBeforeZeroAppliesNothingAndResumeDoesItAll) {
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal::Outcome none,
                            journal.Apply(&f.hv, &f.dw, /*crash_before=*/0));
  EXPECT_EQ(none.steps, 0);
  EXPECT_EQ(journal.num_applied(), 0);
  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal::Outcome all,
      journal.Recover(RecoveryPolicy::kResume, &f.hv, &f.dw));
  EXPECT_EQ(all.steps, 5);
  EXPECT_TRUE(journal.Complete());
}

TEST(ReorgJournalTest, ApplyStepWalksTheJournalOneAtomicStepAtATime) {
  // The online server's protocol: a full sequence of ApplyStep calls must
  // be step-for-step identical to one Apply — same catalogs, same charges
  // — with a journal-consistent design after *every* step.
  Fixture stepped;
  Fixture batch;
  MISO_ASSERT_OK_AND_ASSIGN(
      ReorgJournal step_journal,
      ReorgJournal::Create(stepped.plan, stepped.hv, stepped.dw));
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal batch_journal,
                            ReorgJournal::Create(batch.plan, batch.hv, batch.dw));

  ReorgJournal::Outcome total;
  for (int i = 0; i < step_journal.num_entries(); ++i) {
    EXPECT_EQ(step_journal.next_unapplied(), i);
    MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal::Outcome one,
                              step_journal.ApplyStep(&stepped.hv, &stepped.dw));
    EXPECT_EQ(one.steps, 1);
    total.steps += one.steps;
    total.bytes_to_dw += one.bytes_to_dw;
    total.bytes_to_hv += one.bytes_to_hv;
    EXPECT_EQ(step_journal.num_applied(), i + 1);
    // V209 holds at every step boundary — the invariant the server's
    // epoch discipline relies on.
    MISO_EXPECT_OK(
        verify::VerifyJournalConsistency(step_journal, stepped.hv, stepped.dw));
  }
  EXPECT_TRUE(step_journal.Complete());
  EXPECT_EQ(step_journal.next_unapplied(), step_journal.num_entries());

  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal::Outcome batch_outcome,
                            batch_journal.Apply(&batch.hv, &batch.dw));
  EXPECT_EQ(total.steps, batch_outcome.steps);
  EXPECT_EQ(total.bytes_to_dw, batch_outcome.bytes_to_dw);
  EXPECT_EQ(total.bytes_to_hv, batch_outcome.bytes_to_hv);
  EXPECT_EQ(stepped.hv.used_bytes(), batch.hv.used_bytes());
  EXPECT_EQ(stepped.dw.used_bytes(), batch.dw.used_bytes());

  // On a complete journal, ApplyStep is a no-op.
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal::Outcome extra,
                            step_journal.ApplyStep(&stepped.hv, &stepped.dw));
  EXPECT_EQ(extra.steps, 0);
  EXPECT_EQ(extra.bytes_to_dw, 0u);
  EXPECT_EQ(extra.bytes_to_hv, 0u);
}

TEST(ReorgJournalTest, ApplyStepThenRollbackRestoresThePreReorgDesign) {
  // Stepping part-way and rolling back must behave exactly like a crash
  // at the same boundary: the pre-reorg design comes back byte-exact.
  Fixture f;
  const Bytes hv_before = f.hv.used_bytes();
  const Bytes dw_before = f.dw.used_bytes();
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK(journal.ApplyStep(&f.hv, &f.dw).status());
  MISO_ASSERT_OK(journal.ApplyStep(&f.hv, &f.dw).status());
  EXPECT_EQ(journal.num_applied(), 2);
  MISO_ASSERT_OK(
      journal.Recover(RecoveryPolicy::kRollback, &f.hv, &f.dw).status());
  EXPECT_EQ(f.hv.used_bytes(), hv_before);
  EXPECT_EQ(f.dw.used_bytes(), dw_before);
  for (views::ViewId id : {1, 2, 3}) EXPECT_TRUE(f.hv.Contains(id));
  for (views::ViewId id : {4, 5}) EXPECT_TRUE(f.dw.Contains(id));
}

TEST(JournalVerifierTest, HalfAppliedJournalFailsV209UntilRecovered) {
  // A crash whose recovery never ran: the catalogs match the journal
  // entry-by-entry (so no V209), but... mutate the catalogs behind the
  // journal's back and the inconsistency is caught.
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK(journal.Apply(&f.hv, &f.dw, /*crash_before=*/2).status());
  MISO_EXPECT_OK(verify::VerifyJournalConsistency(journal, f.hv, f.dw));

  // Sabotage: view 1 is journaled as applied (moved to DW) but someone
  // removed it from DW — the design no longer matches the journal.
  MISO_ASSERT_OK(f.dw.Remove(1));
  const Status status = verify::VerifyJournalConsistency(journal, f.hv, f.dw);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(verify::ExtractVerifyCode(status),
            verify::VerifyCode::kReorgJournalInconsistent)
      << status.ToString();
}

TEST(JournalVerifierTest, NonTerminalRecoveredJournalFailsV210) {
  // recovered() implies a terminal state: resume => all applied,
  // rollback => none applied. Force the broken middle state by crashing
  // the recovery pass itself (undo via a fresh half-applied journal).
  Fixture f;
  MISO_ASSERT_OK_AND_ASSIGN(ReorgJournal journal,
                            ReorgJournal::Create(f.plan, f.hv, f.dw));
  MISO_ASSERT_OK(journal.Apply(&f.hv, &f.dw, /*crash_before=*/2).status());
  // Simulate a recovery that was *recorded* but did not finish: resume
  // recovery with a deliberately broken catalog so it errors mid-way.
  views::ViewCatalog broken_dw(400 * kGiB);  // step 2 (kToHv) will fail:
  // view 4 is not in this catalog, so Recover returns an error after
  // having marked the journal recovered.
  const auto recovery =
      journal.Recover(RecoveryPolicy::kResume, &f.hv, &broken_dw);
  EXPECT_FALSE(recovery.ok());
  const Status status = verify::VerifyJournalConsistency(journal, f.hv, f.dw);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(verify::ExtractVerifyCode(status),
            verify::VerifyCode::kReorgRecoveryIncomplete)
      << status.ToString();
}

}  // namespace
}  // namespace miso::tuner
