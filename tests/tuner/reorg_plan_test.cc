#include "tuner/reorg_plan.h"

#include <gtest/gtest.h>

#include "views/view_catalog.h"

namespace miso::tuner {
namespace {

views::View MakeView(views::ViewId id, Bytes size) {
  views::View v;
  v.id = id;
  v.size_bytes = size;
  v.signature = id * 1000;
  return v;
}

TEST(ReorgPlanTest, ByteAccounting) {
  ReorgPlan plan;
  plan.move_to_dw.push_back(MakeView(1, GiB(2)));
  plan.move_to_dw.push_back(MakeView(2, GiB(3)));
  plan.move_to_hv.push_back(MakeView(3, GiB(1)));
  EXPECT_EQ(plan.BytesToDw(), GiB(5));
  EXPECT_EQ(plan.BytesToHv(), GiB(1));
  EXPECT_FALSE(plan.Empty());
  EXPECT_TRUE(ReorgPlan{}.Empty());
}

TEST(ReorgPlanTest, SummaryMentionsCounts) {
  ReorgPlan plan;
  plan.move_to_dw.push_back(MakeView(1, GiB(2)));
  plan.drop_from_hv.push_back(7);
  const std::string s = plan.Summary();
  EXPECT_NE(s.find("1 views -> DW"), std::string::npos);
  EXPECT_NE(s.find("1 dropped from HV"), std::string::npos);
}

TEST(ReorgPlanTest, ApplyMovesViewsBetweenCatalogs) {
  views::ViewCatalog hv(GiB(100));
  views::ViewCatalog dw(GiB(100));
  ASSERT_TRUE(hv.Add(MakeView(1, GiB(2))).ok());
  ASSERT_TRUE(hv.Add(MakeView(2, GiB(1))).ok());
  ASSERT_TRUE(dw.Add(MakeView(3, GiB(4))).ok());

  ReorgPlan plan;
  plan.move_to_dw.push_back(*hv.Find(1));
  plan.move_to_hv.push_back(*dw.Find(3));
  plan.drop_from_hv.push_back(2);
  ASSERT_TRUE(ApplyReorgPlan(plan, &hv, &dw).ok());

  EXPECT_TRUE(dw.Contains(1));
  EXPECT_FALSE(hv.Contains(1));
  EXPECT_TRUE(hv.Contains(3));
  EXPECT_FALSE(dw.Contains(3));
  EXPECT_FALSE(hv.Contains(2));
  EXPECT_EQ(hv.used_bytes(), GiB(4));
  EXPECT_EQ(dw.used_bytes(), GiB(2));
}

TEST(ReorgPlanTest, ApplyFailsOnMissingView) {
  views::ViewCatalog hv(GiB(10));
  views::ViewCatalog dw(GiB(10));
  ReorgPlan plan;
  plan.move_to_dw.push_back(MakeView(99, GiB(1)));  // not in HV
  EXPECT_FALSE(ApplyReorgPlan(plan, &hv, &dw).ok());
}

}  // namespace
}  // namespace miso::tuner
