// Grain-sweep determinism: a full tuning pass and a full optimizer
// enumeration must be byte-identical for every combination of
// MISO_THREADS {1, 2, 8} and MISO_PARALLEL_GRAIN {1, 16, 256}. Batching
// many body indices into one pool task (ParallelForOptions::grain) may
// only change how work is packed onto workers — never which probes run,
// what any of them returns, or how results are reduced (reductions are
// serial in index order). This pins the contract documented in
// docs/PERFORMANCE.md and DESIGN.md §15.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../test_util.h"
#include "common/thread_pool.h"
#include "hv/hv_store.h"
#include "tuner/miso_tuner.h"
#include "tuner/reorg_plan.h"
#include "verify/verify_gate.h"

namespace miso::tuner {
namespace {

using testing_util::PaperCatalog;
using views::View;
using views::ViewCatalog;

/// Saves/restores one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    old_value_ = had_old_ ? old : "";
    setenv(name, value.c_str(), /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_value_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_value_;
};

/// Exact equality of two reorganization plans: same views, same order,
/// same bytes. Catalog ids are deterministic, so id-level equality pins
/// the whole decision.
void ExpectIdenticalReorg(const ReorgPlan& a, const ReorgPlan& b) {
  ASSERT_EQ(a.move_to_dw.size(), b.move_to_dw.size());
  for (size_t i = 0; i < a.move_to_dw.size(); ++i) {
    EXPECT_EQ(a.move_to_dw[i].id, b.move_to_dw[i].id);
    EXPECT_EQ(a.move_to_dw[i].size_bytes, b.move_to_dw[i].size_bytes);
  }
  ASSERT_EQ(a.move_to_hv.size(), b.move_to_hv.size());
  for (size_t i = 0; i < a.move_to_hv.size(); ++i) {
    EXPECT_EQ(a.move_to_hv[i].id, b.move_to_hv[i].id);
  }
  EXPECT_EQ(a.drop_from_hv, b.drop_from_hv);
  EXPECT_EQ(a.drop_from_dw, b.drop_from_dw);
  EXPECT_EQ(a.BytesToDw(), b.BytesToDw());
  EXPECT_EQ(a.BytesToHv(), b.BytesToHv());
}

class GrainIdentityTest : public ::testing::Test {
 protected:
  GrainIdentityTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_),
        hv_(100 * kTiB),
        dw_(400 * kGiB) {
    // A small but interaction-rich window: overlapping topics so several
    // candidate pairs share benefited queries.
    const char* topics[] = {"c%", "c%", "d%", "m%"};
    uint64_t next_id = 1;
    for (int q = 0; q < 4; ++q) {
      auto plan = *testing_util::MakeAnalystPlan(
          &PaperCatalog(), "g" + std::to_string(q), topics[q], 0.1,
          /*dw_udfs=*/true);
      hv::HvStore store(hv::HvConfig{}, kTiB * 100);
      auto exec =
          store.Execute(plan.root(), q, 0, &next_id, plan.signature());
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      for (View& v : exec->produced_views) {
        EXPECT_TRUE(hv_.AddUnchecked(std::move(v)).ok());
      }
      window_.push_back(std::move(plan));
    }
  }

  Result<ReorgPlan> TuneOnce(ThreadPool* pool) {
    optimizer_.set_thread_pool(pool);
    MisoTunerConfig config;
    config.hv_storage_budget = 100 * kTiB;
    config.dw_storage_budget = 400 * kGiB;
    config.transfer_budget = 10 * kGiB;
    MisoTuner tuner(&optimizer_, config);
    auto plan = tuner.Tune(hv_, dw_, window_);
    optimizer_.set_thread_pool(nullptr);
    return plan;
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  optimizer::MultistoreOptimizer optimizer_;
  ViewCatalog hv_;
  ViewCatalog dw_;
  std::vector<plan::Plan> window_;
};

TEST_F(GrainIdentityTest, TuningIsByteIdenticalAcrossThreadsAndGrains) {
  // Reference: the serial legacy path — no pool, grain 1.
  ReorgPlan reference;
  {
    ScopedEnv grain_env("MISO_PARALLEL_GRAIN", "1");
    auto plan = TuneOnce(nullptr);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    reference = std::move(*plan);
  }

  for (int threads : {1, 2, 8}) {
    for (int grain : {1, 16, 256}) {
      ScopedEnv grain_env("MISO_PARALLEL_GRAIN", std::to_string(grain));
      ThreadPool pool(threads);
      auto plan = TuneOnce(&pool);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " grain=" + std::to_string(grain));
      ExpectIdenticalReorg(reference, *plan);
    }
  }
}

TEST_F(GrainIdentityTest, TuningIsIdenticalWithAndWithoutVerification) {
  // ctest pins MISO_VERIFY=1, under which what-if probes take the plain
  // (per-probe verified) optimizer path. With verification off they take
  // the WhatIfSession memo path instead — which must reach the very same
  // reorganization. A second Tune through the same tuner re-answers every
  // probe from the now-warm session memo, so it pins the hit side too.
  auto verified = TuneOnce(nullptr);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();

  verify::ScopedVerification off(false);
  MisoTunerConfig config;
  config.hv_storage_budget = 100 * kTiB;
  config.dw_storage_budget = 400 * kGiB;
  config.transfer_budget = 10 * kGiB;
  MisoTuner tuner(&optimizer_, config);
  auto cold = tuner.Tune(hv_, dw_, window_);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ExpectIdenticalReorg(*verified, *cold);

  auto warm = tuner.Tune(hv_, dw_, window_);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectIdenticalReorg(*verified, *warm);
}

TEST_F(GrainIdentityTest, OptimizerCostsAreBitIdenticalAcrossGrains) {
  // The optimizer's candidate costing fans out through the same batched
  // ParallelFor; its winning plan cost must not move by an ULP.
  auto reference = optimizer_.Optimize(window_[0], dw_, hv_);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int threads : {2, 8}) {
    for (int grain : {1, 16, 256}) {
      ScopedEnv grain_env("MISO_PARALLEL_GRAIN", std::to_string(grain));
      ThreadPool pool(threads);
      optimizer_.set_thread_pool(&pool);
      auto plan = optimizer_.Optimize(window_[0], dw_, hv_);
      optimizer_.set_thread_pool(nullptr);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " grain=" + std::to_string(grain));
      EXPECT_EQ(reference->executed.signature(), plan->executed.signature());
      EXPECT_EQ(reference->cost.hv_exec_s, plan->cost.hv_exec_s);
      EXPECT_EQ(reference->cost.dump_s, plan->cost.dump_s);
      EXPECT_EQ(reference->cost.transfer_load_s, plan->cost.transfer_load_s);
      EXPECT_EQ(reference->cost.dw_exec_s, plan->cost.dw_exec_s);
      EXPECT_EQ(reference->transferred_bytes, plan->transferred_bytes);
    }
  }
}

}  // namespace
}  // namespace miso::tuner
