#include "tuner/knapsack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/rng.h"
#include "common/units.h"

namespace miso::tuner {
namespace {

MKnapsackItem Item(int id, int64_t storage, int64_t transfer,
                   double benefit) {
  MKnapsackItem item;
  item.id = id;
  item.storage_units = storage;
  item.transfer_units = transfer;
  item.benefit = benefit;
  return item;
}

TEST(ToBudgetUnitsTest, RoundsUp) {
  EXPECT_EQ(ToBudgetUnits(0, kGiB), 0);
  EXPECT_EQ(ToBudgetUnits(1, kGiB), 1);
  EXPECT_EQ(ToBudgetUnits(kGiB, kGiB), 1);
  EXPECT_EQ(ToBudgetUnits(kGiB + 1, kGiB), 2);
  EXPECT_EQ(ToBudgetUnits(-5, kGiB), 0);
}

TEST(KnapsackTest, EmptyInstance) {
  auto solution = SolveMKnapsack({}, 10, 10);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->chosen_ids.empty());
  EXPECT_DOUBLE_EQ(solution->total_benefit, 0);
}

TEST(KnapsackTest, NegativeBudgetRejected) {
  EXPECT_FALSE(SolveMKnapsack({}, -1, 0).ok());
  EXPECT_FALSE(SolveMKnapsack({Item(0, -1, 0, 1)}, 10, 10).ok());
}

TEST(KnapsackTest, PacksEverythingWhenRoomy) {
  std::vector<MKnapsackItem> items = {Item(0, 2, 1, 5.0), Item(1, 3, 0, 7.0),
                                      Item(2, 1, 1, 2.0)};
  auto solution = SolveMKnapsack(items, 100, 100);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->chosen_ids.size(), 3u);
  EXPECT_DOUBLE_EQ(solution->total_benefit, 14.0);
  EXPECT_EQ(solution->storage_used, 6);
  EXPECT_EQ(solution->transfer_used, 2);
}

TEST(KnapsackTest, StorageDimensionBinds) {
  std::vector<MKnapsackItem> items = {Item(0, 6, 0, 10.0),
                                      Item(1, 5, 0, 6.0),
                                      Item(2, 5, 0, 6.0)};
  auto solution = SolveMKnapsack(items, 10, 0);
  ASSERT_TRUE(solution.ok());
  // 5+5 = 12 beats the single 10.
  EXPECT_DOUBLE_EQ(solution->total_benefit, 12.0);
  EXPECT_EQ(solution->chosen_ids, (std::vector<int>{1, 2}));
}

TEST(KnapsackTest, TransferDimensionBinds) {
  // Both fit storage; transfer budget admits only one (paper §4.4.1 Case
  // 1: HV-resident views consume Bt).
  std::vector<MKnapsackItem> items = {Item(0, 1, 8, 10.0),
                                      Item(1, 1, 8, 9.0)};
  auto solution = SolveMKnapsack(items, 10, 10);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->chosen_ids, (std::vector<int>{0}));
}

TEST(KnapsackTest, ZeroTransferItemsIgnoreTransferBudget) {
  // Paper §4.4.1 Case 2: views already in the target store need no
  // transfer and must be packable with Bt exhausted.
  std::vector<MKnapsackItem> items = {Item(0, 4, 0, 3.0),
                                      Item(1, 4, 0, 3.0)};
  auto solution = SolveMKnapsack(items, 10, 0);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->chosen_ids.size(), 2u);
}

TEST(KnapsackTest, NonPositiveBenefitNeverPacked) {
  std::vector<MKnapsackItem> items = {Item(0, 1, 0, 0.0),
                                      Item(1, 1, 0, -5.0),
                                      Item(2, 1, 0, 1.0)};
  auto solution = SolveMKnapsack(items, 10, 10);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->chosen_ids, (std::vector<int>{2}));
}

TEST(KnapsackTest, ZeroSizeItemsAlwaysFit) {
  std::vector<MKnapsackItem> items = {Item(0, 0, 0, 1.0),
                                      Item(1, 0, 0, 1.0)};
  auto solution = SolveMKnapsack(items, 0, 0);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->chosen_ids.size(), 2u);
}

// ---- Sparse/dense equivalence: same set, bit-identical total. -----------

/// Both solvers must agree exactly — same chosen ids, total equal with
/// EXPECT_EQ (no tolerance): the sparse frontier DP is specified as a
/// drop-in for the dense grid, so `SolveMKnapsack`'s plane-size dispatch
/// can never change a tuning decision.
void ExpectSolversIdentical(const std::vector<MKnapsackItem>& items,
                            int64_t b, int64_t t) {
  auto dense = SolveMKnapsackDense(items, b, t);
  auto sparse = SolveMKnapsackSparse(items, b, t);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->chosen_ids, dense->chosen_ids) << "b=" << b << " t=" << t;
  EXPECT_EQ(sparse->total_benefit, dense->total_benefit);
  EXPECT_EQ(sparse->storage_used, dense->storage_used);
  EXPECT_EQ(sparse->transfer_used, dense->transfer_used);
}

TEST(KnapsackSparseTest, MatchesDenseOnDegenerateBudgets) {
  const std::vector<MKnapsackItem> items = {
      Item(0, 0, 0, 1.5), Item(1, 1, 0, 2.0), Item(2, 1, 1, 2.0),
      Item(3, 3, 2, -1.0), Item(4, 2, 1, 4.0)};
  ExpectSolversIdentical(items, 0, 0);
  ExpectSolversIdentical(items, 1, 0);
  ExpectSolversIdentical(items, 0, 1);
  ExpectSolversIdentical(items, 1, 1);
}

TEST(KnapsackSparseTest, HandlesBudgetsTheDensePlaneCannotAllocate) {
  // INT64_MAX budgets: the dense plane would be ~10^37 cells. The sparse
  // solver's suffix-slack clamp collapses both dimensions to a single
  // state and packs every positive item.
  const std::vector<MKnapsackItem> items = {
      Item(0, kGiB, kMiB, 3.0), Item(1, 4 * kGiB, 0, 1.0),
      Item(2, 2 * kGiB, kGiB, -2.0)};
  const int64_t huge = std::numeric_limits<int64_t>::max();
  auto solution = SolveMKnapsack(items, huge, huge);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->chosen_ids, (std::vector<int>{0, 1}));
  EXPECT_EQ(solution->total_benefit, 4.0);
}

TEST(KnapsackSparseTest, TieBreakMatchesDenseSkipOnTie) {
  // Two indistinguishable items and room for one: the dense DP takes an
  // item only when it strictly improves, so the *later* cell update keeps
  // the earlier item. The sparse reconstruction must replicate that
  // choice, not merely the total.
  const std::vector<MKnapsackItem> items = {Item(0, 2, 0, 5.0),
                                            Item(1, 2, 0, 5.0)};
  ExpectSolversIdentical(items, 2, 0);
  auto dense = SolveMKnapsackDense(items, 2, 0);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->chosen_ids, (std::vector<int>{0}));
}

TEST(KnapsackSparseTest, DispatchUsesDenseOnlyForSmallPlanes) {
  // Pin the dispatch boundary so the tuner's own budgets keep exercising
  // both solvers: the DW knapsack plane (401 x 11) stays dense, the HV
  // plane (4097 x 11) goes sparse.
  EXPECT_LE((400 + 1) * (10 + 1), kDenseKnapsackPlaneLimit);
  EXPECT_GT((4096 + 1) * (10 + 1), kDenseKnapsackPlaneLimit);
}

// ---- Property: DP matches exhaustive search on random instances. -------

double BruteForceBest(const std::vector<MKnapsackItem>& items, int64_t b,
                      int64_t t) {
  const int n = static_cast<int>(items.size());
  double best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    int64_t storage = 0;
    int64_t transfer = 0;
    double benefit = 0;
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1) {
        storage += items[static_cast<size_t>(k)].storage_units;
        transfer += items[static_cast<size_t>(k)].transfer_units;
        benefit += items[static_cast<size_t>(k)].benefit;
      }
    }
    if (storage <= b && transfer <= t) best = std::max(best, benefit);
  }
  return best;
}

class KnapsackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnapsackPropertyTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.Uniform(1, 12));
    std::vector<MKnapsackItem> items;
    for (int k = 0; k < n; ++k) {
      items.push_back(Item(k, rng.Uniform(0, 8), rng.Uniform(0, 5),
                           rng.UniformReal(-2.0, 10.0)));
    }
    const int64_t b = rng.Uniform(0, 20);
    const int64_t t = rng.Uniform(0, 8);
    auto solution = SolveMKnapsack(items, b, t);
    ASSERT_TRUE(solution.ok());
    EXPECT_NEAR(solution->total_benefit, BruteForceBest(items, b, t), 1e-9)
        << "n=" << n << " b=" << b << " t=" << t << " seed=" << GetParam();
    // The reconstructed choice must be consistent and within budget.
    int64_t storage = 0;
    int64_t transfer = 0;
    double benefit = 0;
    for (int id : solution->chosen_ids) {
      storage += items[static_cast<size_t>(id)].storage_units;
      transfer += items[static_cast<size_t>(id)].transfer_units;
      benefit += items[static_cast<size_t>(id)].benefit;
    }
    EXPECT_LE(storage, b);
    EXPECT_LE(transfer, t);
    EXPECT_NEAR(benefit, solution->total_benefit, 1e-9);
    EXPECT_EQ(storage, solution->storage_used);
    EXPECT_EQ(transfer, solution->transfer_used);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace miso::tuner
