#include "tuner/interaction.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "views/view.h"

namespace miso::tuner {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;
using views::View;

class InteractionTest : public ::testing::Test {
 protected:
  InteractionTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_) {}

  static View ViewOf(const plan::Plan& p, OpKind kind, views::ViewId id) {
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == kind) {
        View v = views::ViewFromNode(*node);
        v.id = id;
        return v;
      }
    }
    return View{};
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  optimizer::MultistoreOptimizer optimizer_;
};

TEST_F(InteractionTest, SubstituteViewsInteractNegatively) {
  auto q = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                          true);
  // The UDF view and the join view answer overlapping parts of q.
  std::vector<View> candidates = {ViewOf(q, OpKind::kUdf, 1),
                                  ViewOf(q, OpKind::kJoin, 2)};
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  ASSERT_TRUE(analyzer.SetWindow({q}).ok());
  auto interactions =
      ComputeInteractions(candidates, &analyzer, InteractionConfig{});
  ASSERT_TRUE(interactions.ok());
  ASSERT_EQ(interactions->size(), 1u);
  EXPECT_FALSE((*interactions)[0].IsPositive());
  EXPECT_GT((*interactions)[0].magnitude, 0);
}

TEST_F(InteractionTest, ViewsOfUnrelatedQueriesDoNotInteract) {
  auto q1 = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q1", "c%", 0.1,
                                           true);
  auto q2 = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q2", "z%", 0.1,
                                           true);
  std::vector<View> candidates = {ViewOf(q1, OpKind::kUdf, 1),
                                  ViewOf(q2, OpKind::kUdf, 2)};
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  ASSERT_TRUE(analyzer.SetWindow({q1, q2}).ok());
  auto interactions =
      ComputeInteractions(candidates, &analyzer, InteractionConfig{});
  ASSERT_TRUE(interactions.ok());
  EXPECT_TRUE(interactions->empty())
      << "no window query benefits from both views";
}

TEST_F(InteractionTest, PrunedPairsProduceNoInteraction) {
  // Three candidates, two query topics: the UDF and join views of q1
  // overlap each other, while q2's view shares no benefiting query with
  // either. The bitset prune must drop both cross-topic pairs before any
  // joint probe, so no interaction may ever mention candidate 2 — and the
  // surviving pair must be found whether the pair probes run serially or
  // fanned out over a pool.
  auto q1 = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q1", "c%", 0.1,
                                           true);
  auto q2 = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q2", "z%", 0.1,
                                           true);
  std::vector<View> candidates = {ViewOf(q1, OpKind::kUdf, 1),
                                  ViewOf(q1, OpKind::kJoin, 2),
                                  ViewOf(q2, OpKind::kUdf, 3)};
  auto run = [&](ThreadPool* pool) {
    BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
    EXPECT_TRUE(analyzer.SetWindow({q1, q2}).ok());
    return ComputeInteractions(candidates, &analyzer, InteractionConfig{},
                               pool);
  };

  auto serial = run(nullptr);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->size(), 1u);
  EXPECT_EQ((*serial)[0].a, 0);
  EXPECT_EQ((*serial)[0].b, 1);
  for (const Interaction& interaction : *serial) {
    EXPECT_NE(interaction.a, 2);
    EXPECT_NE(interaction.b, 2);
  }

  ThreadPool pool(4);
  auto parallel = run(&pool);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), serial->size());
  EXPECT_EQ((*parallel)[0].a, (*serial)[0].a);
  EXPECT_EQ((*parallel)[0].b, (*serial)[0].b);
  EXPECT_EQ((*parallel)[0].magnitude, (*serial)[0].magnitude);
}

TEST(StablePartitionTest, UnionsTransitively) {
  std::vector<Interaction> interactions;
  Interaction i1;
  i1.a = 0;
  i1.b = 1;
  Interaction i2;
  i2.a = 1;
  i2.b = 2;
  interactions.push_back(i1);
  interactions.push_back(i2);
  auto parts = StablePartition(5, interactions);
  // {0,1,2}, {3}, {4}
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parts[1], (std::vector<int>{3}));
  EXPECT_EQ(parts[2], (std::vector<int>{4}));
}

TEST(StablePartitionTest, NoInteractionsMeansSingletons) {
  auto parts = StablePartition(3, {});
  ASSERT_EQ(parts.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parts[static_cast<size_t>(i)],
              std::vector<int>{i});
  }
}

TEST(StablePartitionTest, EmptyUniverse) {
  EXPECT_TRUE(StablePartition(0, {}).empty());
}

}  // namespace
}  // namespace miso::tuner
