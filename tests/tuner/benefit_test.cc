#include "tuner/benefit.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "hv/hv_cost_model.h"
#include "plan/node_factory.h"
#include "views/view.h"

namespace miso::tuner {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;
using views::View;

class BenefitTest : public ::testing::Test {
 protected:
  BenefitTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_) {}

  plan::Plan Query(const std::string& name, const std::string& topic) {
    return *testing_util::MakeAnalystPlan(&PaperCatalog(), name, topic, 0.1,
                                          /*udf_dw_compatible=*/true);
  }

  View UdfView(const plan::Plan& p, views::ViewId id) {
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == OpKind::kUdf) {
        View v = views::ViewFromNode(*node);
        v.id = id;
        return v;
      }
    }
    return View{};
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  optimizer::MultistoreOptimizer optimizer_;
};

TEST_F(BenefitTest, EpochDecayWeights) {
  BenefitAnalyzer analyzer(&optimizer_, /*epoch_len=*/3, /*decay=*/0.5);
  std::vector<plan::Plan> window(6, Query("q", "c%"));
  ASSERT_TRUE(analyzer.SetWindow(window).ok());
  // Oldest 3 queries are one epoch old (weight 0.5); newest 3 weight 1.
  EXPECT_DOUBLE_EQ(analyzer.Weight(0), 0.5);
  EXPECT_DOUBLE_EQ(analyzer.Weight(2), 0.5);
  EXPECT_DOUBLE_EQ(analyzer.Weight(3), 1.0);
  EXPECT_DOUBLE_EQ(analyzer.Weight(5), 1.0);
}

TEST_F(BenefitTest, RelevantViewHasPositiveBenefit) {
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  plan::Plan q = Query("q", "c%");
  ASSERT_TRUE(analyzer.SetWindow({q}).ok());
  View v = UdfView(q, 1);
  auto benefits = analyzer.PerQueryBenefit({v}, Placement::kBothStores);
  ASSERT_TRUE(benefits.ok());
  ASSERT_EQ(benefits->size(), 1u);
  EXPECT_GT((*benefits)[0], 1000)
      << "the UDF view answers most of its creator query";
}

TEST_F(BenefitTest, IrrelevantViewHasZeroBenefit) {
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  plan::Plan q1 = Query("q1", "c%");
  plan::Plan q2 = Query("q2", "zzz%");  // different topic: no reuse
  ASSERT_TRUE(analyzer.SetWindow({q2}).ok());
  View v = UdfView(q1, 1);
  auto benefits = analyzer.PerQueryBenefit({v}, Placement::kBothStores);
  ASSERT_TRUE(benefits.ok());
  EXPECT_DOUBLE_EQ((*benefits)[0], 0.0);
}

TEST_F(BenefitTest, DwPlacementBeatsHvPlacement) {
  // For a DW-eligible chain, the view is worth more in the DW (execution
  // asymmetry), which is what drives the DW-first packing.
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  plan::Plan q = Query("q", "c%");
  ASSERT_TRUE(analyzer.SetWindow({q}).ok());
  View v = UdfView(q, 1);
  auto dw = analyzer.PredictedBenefit({v}, Placement::kDwOnly);
  auto hv = analyzer.PredictedBenefit({v}, Placement::kHvOnly);
  ASSERT_TRUE(dw.ok());
  ASSERT_TRUE(hv.ok());
  EXPECT_GT(*dw, *hv);
  EXPECT_GT(*hv, 0);
}

TEST_F(BenefitTest, HvOnlyUdfMakesDwPlacementWorthless) {
  // A filtered view below an HV-only UDF cannot be used from the DW at
  // all: its DW-only benefit must be zero while its HV benefit is not.
  auto q = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                          /*udf_dw_compatible=*/false);
  View filtered;
  for (const NodePtr& node : q.PostOrder()) {
    if (node->kind() == OpKind::kFilter &&
        node->output_schema().HasField("topic")) {
      filtered = views::ViewFromNode(*node);
      filtered.id = 1;
    }
  }
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  ASSERT_TRUE(analyzer.SetWindow({q}).ok());
  auto dw = analyzer.PredictedBenefit({filtered}, Placement::kDwOnly);
  auto hv = analyzer.PredictedBenefit({filtered}, Placement::kHvOnly);
  ASSERT_TRUE(dw.ok());
  ASSERT_TRUE(hv.ok());
  EXPECT_DOUBLE_EQ(*dw, 0.0);
  EXPECT_GT(*hv, 0.0);
}

TEST_F(BenefitTest, DecayedTotalWeighsRecentQueriesMore) {
  BenefitAnalyzer analyzer(&optimizer_, /*epoch_len=*/1, /*decay=*/0.1);
  plan::Plan hit = Query("hit", "c%");
  plan::Plan miss = Query("miss", "zzz%");
  View v = UdfView(hit, 1);

  // Hit in the newest epoch -> full weight.
  ASSERT_TRUE(analyzer.SetWindow({miss, hit}).ok());
  auto recent = analyzer.PredictedBenefit({v}, Placement::kBothStores);
  // Hit in the oldest epoch -> decayed weight.
  BenefitAnalyzer analyzer2(&optimizer_, 1, 0.1);
  ASSERT_TRUE(analyzer2.SetWindow({hit, miss}).ok());
  auto old = analyzer2.PredictedBenefit({v}, Placement::kBothStores);
  ASSERT_TRUE(recent.ok());
  ASSERT_TRUE(old.ok());
  EXPECT_GT(*recent, 5.0 * *old);
}

TEST_F(BenefitTest, JointBenefitOfSubstitutesIsSubAdditive) {
  plan::Plan q = Query("q", "c%");
  // Two views along the same chain substitute for each other.
  View udf_view = UdfView(q, 1);
  View join_view;
  for (const NodePtr& node : q.PostOrder()) {
    if (node->kind() == OpKind::kJoin) {
      join_view = views::ViewFromNode(*node);
      join_view.id = 2;
      break;
    }
  }
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  ASSERT_TRUE(analyzer.SetWindow({q}).ok());
  auto both = analyzer.PredictedBenefit({udf_view, join_view},
                                        Placement::kBothStores);
  auto a = analyzer.PredictedBenefit({udf_view}, Placement::kBothStores);
  auto b = analyzer.PredictedBenefit({join_view}, Placement::kBothStores);
  ASSERT_TRUE(both.ok());
  EXPECT_LT(*both, *a + *b - 1.0) << "strongly negative interaction";
}

TEST_F(BenefitTest, SubsetReductionNeverChangesAPairRow) {
  // The subset-reduction layer reads a pair's per-query benefit from the
  // memoized single-view row when only one member is relevant to the
  // query. It must be invisible in the results: the pair row computed
  // with singles memoized first (reduction active) equals the row from a
  // fresh analyzer that probes the pair directly.
  plan::Plan q1 = Query("q1", "c%");
  plan::Plan q2 = Query("q2", "d%");  // disjoint topic: only v2 relevant
  View v1 = UdfView(q1, 1);
  View v2 = UdfView(q2, 2);

  BenefitAnalyzer memoized(&optimizer_, 3, 0.6);
  ASSERT_TRUE(memoized.SetWindow({q1, q2}).ok());
  ASSERT_TRUE(memoized.PerQueryBenefit({v1}, Placement::kBothStores).ok());
  ASSERT_TRUE(memoized.PerQueryBenefit({v2}, Placement::kBothStores).ok());
  auto reduced = memoized.PerQueryBenefit({v1, v2}, Placement::kBothStores);

  BenefitAnalyzer fresh(&optimizer_, 3, 0.6);
  ASSERT_TRUE(fresh.SetWindow({q1, q2}).ok());
  auto direct = fresh.PerQueryBenefit({v1, v2}, Placement::kBothStores);

  ASSERT_TRUE(reduced.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(reduced->size(), direct->size());
  for (size_t i = 0; i < reduced->size(); ++i) {
    EXPECT_EQ((*reduced)[i], (*direct)[i]) << "query " << i;
  }
  // And the reduction actually had something to reduce: each view is
  // relevant to exactly one of the two queries.
  EXPECT_GT((*reduced)[0], 0.0);
  EXPECT_GT((*reduced)[1], 0.0);
}

TEST_F(BenefitTest, RelevantMaskMatchesPerQueryRelevance) {
  plan::Plan q1 = Query("q1", "c%");
  plan::Plan q2 = Query("q2", "zzz%");  // nothing reusable
  View v = UdfView(q1, 1);
  BenefitAnalyzer analyzer(&optimizer_, 3, 0.6);
  ASSERT_TRUE(analyzer.SetWindow({q1, q2, q1}).ok());
  const std::vector<uint64_t> mask = analyzer.RelevantMask(v);
  ASSERT_EQ(mask.size(), 1u);
  EXPECT_EQ(mask[0], 0b101u) << "relevant to the two q1 copies only";
}

}  // namespace
}  // namespace miso::tuner
