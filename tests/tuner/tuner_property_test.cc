// Property/stress tests for the tuner's packing machinery: randomized
// small M-KNAPSACK instances are cross-checked against brute-force subset
// enumeration (which is exact for n <= 12), and sparsification invariants
// are exercised over randomized candidate sets. Seeds are fixed, so every
// run replays the same instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <set>
#include <vector>

#include "../test_util.h"
#include "tuner/interaction.h"
#include "tuner/knapsack.h"
#include "tuner/sparsify.h"
#include "views/view.h"

namespace miso::tuner {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;
using views::View;

struct BruteForceResult {
  double best_benefit = 0;
  bool chosen_feasible = false;
  double chosen_benefit = 0;
};

/// Exhaustive 0/1 enumeration over all 2^n subsets. Also re-validates the
/// solver's reported chosen set against the raw items.
BruteForceResult BruteForce(const std::vector<MKnapsackItem>& items,
                            int64_t storage_budget, int64_t transfer_budget,
                            const MKnapsackSolution& solution) {
  BruteForceResult result;
  const int n = static_cast<int>(items.size());
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int64_t storage = 0;
    int64_t transfer = 0;
    double benefit = 0;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        storage += items[static_cast<size_t>(i)].storage_units;
        transfer += items[static_cast<size_t>(i)].transfer_units;
        benefit += items[static_cast<size_t>(i)].benefit;
      }
    }
    if (storage <= storage_budget && transfer <= transfer_budget) {
      result.best_benefit = std::max(result.best_benefit, benefit);
    }
  }

  int64_t storage = 0;
  int64_t transfer = 0;
  for (int id : solution.chosen_ids) {
    const MKnapsackItem* item = nullptr;
    for (const MKnapsackItem& candidate : items) {
      if (candidate.id == id) item = &candidate;
    }
    if (item == nullptr) return result;  // unknown id: infeasible
    storage += item->storage_units;
    transfer += item->transfer_units;
    result.chosen_benefit += item->benefit;
  }
  result.chosen_feasible =
      storage <= storage_budget && transfer <= transfer_budget &&
      storage == solution.storage_used && transfer == solution.transfer_used;
  return result;
}

TEST(KnapsackPropertyTest, MatchesBruteForceOnRandomInstances) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> n_dist(0, 12);
  std::uniform_int_distribution<int64_t> storage_dist(0, 6);
  std::uniform_int_distribution<int64_t> transfer_dist(0, 4);
  std::uniform_real_distribution<double> benefit_dist(-2.0, 10.0);
  std::bernoulli_distribution zero_transfer(0.4);  // §4.4.1 Case 2 items
  std::uniform_int_distribution<int64_t> budget_dist(0, 14);

  for (int instance = 0; instance < 250; ++instance) {
    const int n = n_dist(rng);
    std::vector<MKnapsackItem> items;
    items.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      MKnapsackItem item;
      item.id = i;
      item.storage_units = storage_dist(rng);
      item.transfer_units = zero_transfer(rng) ? 0 : transfer_dist(rng);
      item.benefit = benefit_dist(rng);
      items.push_back(item);
    }
    const int64_t storage_budget = budget_dist(rng);
    const int64_t transfer_budget = budget_dist(rng) / 2;

    auto solution = SolveMKnapsack(items, storage_budget, transfer_budget);
    ASSERT_TRUE(solution.ok())
        << "instance " << instance << ": " << solution.status().ToString();

    const BruteForceResult expected =
        BruteForce(items, storage_budget, transfer_budget, *solution);
    SCOPED_TRACE("instance=" + std::to_string(instance) + " n=" +
                 std::to_string(n) + " B=" + std::to_string(storage_budget) +
                 " T=" + std::to_string(transfer_budget));
    // The DP must be exactly optimal; both sides sum the same doubles so
    // only association order can differ.
    EXPECT_NEAR(solution->total_benefit, expected.best_benefit,
                1e-9 * std::max(1.0, expected.best_benefit));
    EXPECT_TRUE(expected.chosen_feasible)
        << "reported chosen set is infeasible or misaccounted";
    EXPECT_NEAR(solution->total_benefit, expected.chosen_benefit,
                1e-9 * std::max(1.0, std::fabs(expected.chosen_benefit)));
    for (int id : solution->chosen_ids) {
      EXPECT_GT(items[static_cast<size_t>(id)].benefit, 0)
          << "non-positive-benefit items must never be packed";
    }
  }
}

TEST(KnapsackPropertyTest, SparseAndDenseSolversAreBitIdentical) {
  // The dispatch in SolveMKnapsack is specified as a pure speed decision:
  // on every instance the sparse frontier DP must return the exact chosen
  // set and the exact total (EXPECT_EQ on doubles, no tolerance) of the
  // dense grid DP. Random instances plus the degenerate budgets 0, 1, and
  // INT64_MAX (the latter solvable only sparsely, checked against brute
  // force instead).
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> n_dist(0, 12);
  std::uniform_int_distribution<int64_t> storage_dist(0, 6);
  std::uniform_int_distribution<int64_t> transfer_dist(0, 4);
  std::uniform_real_distribution<double> benefit_dist(-2.0, 10.0);
  std::uniform_int_distribution<int64_t> budget_dist(0, 14);

  for (int instance = 0; instance < 200; ++instance) {
    const int n = n_dist(rng);
    std::vector<MKnapsackItem> items;
    items.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      MKnapsackItem item;
      item.id = i;
      item.storage_units = storage_dist(rng);
      item.transfer_units = transfer_dist(rng);
      item.benefit = benefit_dist(rng);
      items.push_back(item);
    }
    int64_t storage_budget = budget_dist(rng);
    int64_t transfer_budget = budget_dist(rng) / 2;
    if (instance % 5 == 1) storage_budget = 0;
    if (instance % 5 == 2) storage_budget = 1;
    if (instance % 7 == 3) transfer_budget = 0;
    if (instance % 7 == 4) transfer_budget = 1;
    SCOPED_TRACE("instance=" + std::to_string(instance) + " n=" +
                 std::to_string(n) + " B=" + std::to_string(storage_budget) +
                 " T=" + std::to_string(transfer_budget));

    auto dense = SolveMKnapsackDense(items, storage_budget, transfer_budget);
    auto sparse = SolveMKnapsackSparse(items, storage_budget,
                                       transfer_budget);
    ASSERT_TRUE(dense.ok()) << dense.status().ToString();
    ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
    EXPECT_EQ(sparse->chosen_ids, dense->chosen_ids);
    EXPECT_EQ(sparse->total_benefit, dense->total_benefit);
    EXPECT_EQ(sparse->storage_used, dense->storage_used);
    EXPECT_EQ(sparse->transfer_used, dense->transfer_used);

    // Unbounded budgets: dense cannot allocate the plane, so validate the
    // sparse result against brute force — it must pack exactly the
    // positive-benefit items.
    const int64_t huge = std::numeric_limits<int64_t>::max();
    auto unbounded = SolveMKnapsackSparse(items, huge, huge);
    ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
    std::vector<int> positives;
    double positive_total = 0;
    for (const MKnapsackItem& item : items) {
      if (item.benefit > 0) {
        positives.push_back(item.id);
        positive_total += item.benefit;
      }
    }
    EXPECT_EQ(unbounded->chosen_ids, positives);
    EXPECT_EQ(unbounded->total_benefit, positive_total);
  }
}

TEST(KnapsackPropertyTest, ToBudgetUnitsIsACeilingDivision) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int64_t> size_dist(0, int64_t{1} << 40);
  std::uniform_int_distribution<int64_t> unit_dist(1, int64_t{1} << 30);
  for (int i = 0; i < 1000; ++i) {
    const int64_t size = size_dist(rng);
    const int64_t unit = unit_dist(rng);
    const int64_t units = ToBudgetUnits(size, unit);
    // Enough units to hold the size, but not one more than needed.
    EXPECT_GE(units * unit, size);
    EXPECT_LT((units - 1) * unit, size);
    if (size == 0) {
      EXPECT_EQ(units, 0);
    }
  }
}

class SparsifyPropertyTest : public ::testing::Test {
 protected:
  SparsifyPropertyTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_),
        analyzer_(&optimizer_, 3, 0.6) {}

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  optimizer::MultistoreOptimizer optimizer_;
  BenefitAnalyzer analyzer_;
};

TEST_F(SparsifyPropertyTest, InvariantsHoldOverRandomizedCandidateSets) {
  std::mt19937 rng(4242);
  std::uniform_real_distribution<double> selectivity(0.05, 0.6);
  const char* patterns[] = {"c%", "z%", "a%", "m%"};

  for (int round = 0; round < 6; ++round) {
    // A few analyst plans with randomized parameters; harvest every
    // materializable operator as a candidate view.
    std::vector<plan::Plan> window;
    std::vector<View> candidates;
    views::ViewId next_id = 1;
    const int num_queries = 2 + static_cast<int>(rng() % 2);
    for (int q = 0; q < num_queries; ++q) {
      auto p = testing_util::MakeAnalystPlan(
          &PaperCatalog(), "q" + std::to_string(round) + "_" +
                               std::to_string(q),
          patterns[rng() % 4], selectivity(rng), true);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      for (const NodePtr& node : p->PostOrder()) {
        if (node->kind() == OpKind::kUdf || node->kind() == OpKind::kJoin) {
          View v = views::ViewFromNode(*node);
          v.id = next_id++;
          candidates.push_back(std::move(v));
        }
      }
      window.push_back(std::move(*p));
    }
    ASSERT_TRUE(analyzer_.SetWindow(window).ok());

    auto interactions =
        ComputeInteractions(candidates, &analyzer_, InteractionConfig{});
    ASSERT_TRUE(interactions.ok()) << interactions.status().ToString();
    auto parts = StablePartition(static_cast<int>(candidates.size()),
                                 *interactions);
    auto items = SparsifySets(candidates, parts, *interactions, &analyzer_);
    ASSERT_TRUE(items.ok()) << items.status().ToString();

    SCOPED_TRACE("round=" + std::to_string(round));
    // Exactly one knapsack item per part.
    ASSERT_EQ(items->size(), parts.size());
    for (size_t p = 0; p < parts.size(); ++p) {
      const CandidateItem& item = (*items)[p];
      // Members come from the item's own part, without duplicates.
      std::set<views::ViewId> part_ids;
      for (int idx : parts[p]) {
        part_ids.insert(candidates[static_cast<size_t>(idx)].id);
      }
      std::set<views::ViewId> member_ids;
      Bytes sum = 0;
      for (const View& member : item.members) {
        EXPECT_TRUE(part_ids.count(member.id) > 0)
            << "member " << member.id << " not in part " << p;
        EXPECT_TRUE(member_ids.insert(member.id).second)
            << "member " << member.id << " duplicated";
        sum += member.size_bytes;
      }
      EXPECT_FALSE(item.members.empty());
      EXPECT_EQ(item.size_bytes, sum);
      // Benefits are clamped savings: finite and non-negative, and the
      // joint benefit can never lose to a single placement's benefit.
      for (double b : {item.benefit_both, item.benefit_dw, item.benefit_hv}) {
        EXPECT_TRUE(std::isfinite(b));
        EXPECT_GE(b, 0);
      }
    }
  }
}

}  // namespace
}  // namespace miso::tuner
