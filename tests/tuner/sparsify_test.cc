#include "tuner/sparsify.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "views/view.h"

namespace miso::tuner {
namespace {

using plan::NodePtr;
using plan::OpKind;
using testing_util::PaperCatalog;
using views::View;

class SparsifyTest : public ::testing::Test {
 protected:
  SparsifyTest()
      : factory_(&PaperCatalog()),
        hv_model_(hv::HvConfig{}),
        dw_model_(dw::DwConfig{}),
        transfer_model_(transfer::TransferConfig{}),
        optimizer_(&factory_, &hv_model_, &dw_model_, &transfer_model_),
        analyzer_(&optimizer_, 3, 0.6) {}

  static View ViewOf(const plan::Plan& p, OpKind kind, views::ViewId id) {
    for (const NodePtr& node : p.PostOrder()) {
      if (node->kind() == kind) {
        View v = views::ViewFromNode(*node);
        v.id = id;
        return v;
      }
    }
    return View{};
  }

  plan::NodeFactory factory_;
  hv::HvCostModel hv_model_;
  dw::DwCostModel dw_model_;
  transfer::TransferModel transfer_model_;
  optimizer::MultistoreOptimizer optimizer_;
  BenefitAnalyzer analyzer_;
};

TEST_F(SparsifyTest, OneItemPerPart) {
  auto q = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                          true);
  std::vector<View> candidates = {ViewOf(q, OpKind::kUdf, 1),
                                  ViewOf(q, OpKind::kJoin, 2),
                                  ViewOf(q, OpKind::kAggregate, 3)};
  ASSERT_TRUE(analyzer_.SetWindow({q}).ok());
  auto interactions =
      ComputeInteractions(candidates, &analyzer_, InteractionConfig{});
  ASSERT_TRUE(interactions.ok());
  auto parts = StablePartition(static_cast<int>(candidates.size()),
                               *interactions);
  auto items = SparsifySets(candidates, parts, *interactions, &analyzer_);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), parts.size());
  // Every surviving item has consistent sizing.
  for (const CandidateItem& item : *items) {
    Bytes sum = 0;
    for (const View& v : item.members) sum += v.size_bytes;
    EXPECT_EQ(item.size_bytes, sum);
    EXPECT_GE(item.benefit_both, 0);
  }
}

TEST_F(SparsifyTest, NegativePartKeepsDensestRepresentative) {
  auto q = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q", "c%", 0.1,
                                          true);
  // The aggregate view is excluded from harvests in the system (it is the
  // final result), but here we craft a part of two substitutes directly:
  // the UDF view (small, near-total benefit) vs the join view (bigger,
  // slightly less benefit). The representative must be the denser UDF
  // view.
  std::vector<View> candidates = {ViewOf(q, OpKind::kUdf, 1),
                                  ViewOf(q, OpKind::kJoin, 2)};
  ASSERT_LT(candidates[0].size_bytes, candidates[1].size_bytes);
  ASSERT_TRUE(analyzer_.SetWindow({q}).ok());
  auto interactions =
      ComputeInteractions(candidates, &analyzer_, InteractionConfig{});
  ASSERT_TRUE(interactions.ok());
  ASSERT_EQ(interactions->size(), 1u) << "they must strongly interact";
  auto parts = StablePartition(2, *interactions);
  ASSERT_EQ(parts.size(), 1u);
  auto items = SparsifySets(candidates, parts, *interactions, &analyzer_);
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items->size(), 1u);
  ASSERT_EQ((*items)[0].members.size(), 1u);
  EXPECT_EQ((*items)[0].members[0].id, 1u)
      << "benefit density favors the small UDF view";
}

TEST_F(SparsifyTest, SingletonPartsPassThrough) {
  auto q1 = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q1", "c%", 0.1,
                                           true);
  auto q2 = *testing_util::MakeAnalystPlan(&PaperCatalog(), "q2", "z%", 0.1,
                                           true);
  std::vector<View> candidates = {ViewOf(q1, OpKind::kUdf, 1),
                                  ViewOf(q2, OpKind::kUdf, 2)};
  ASSERT_TRUE(analyzer_.SetWindow({q1, q2}).ok());
  auto parts = StablePartition(2, {});
  auto items = SparsifySets(candidates, parts, {}, &analyzer_);
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ((*items)[0].members[0].id, 1u);
  EXPECT_EQ((*items)[1].members[0].id, 2u);
}

}  // namespace
}  // namespace miso::tuner
