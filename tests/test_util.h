#ifndef MISO_TESTS_TEST_UTIL_H_
#define MISO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "plan/builder.h"
#include "relation/catalog.h"

namespace miso::testing_util {

/// Asserts a Status is OK with a useful failure message.
#define MISO_ASSERT_OK(expr)                                 \
  do {                                                       \
    const ::miso::Status _s = (expr);                        \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                   \
  } while (false)

#define MISO_EXPECT_OK(expr)                                 \
  do {                                                       \
    const ::miso::Status _s = (expr);                        \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                   \
  } while (false)

/// Unwraps a Result<T>, failing the test on error.
#define MISO_ASSERT_OK_AND_ASSIGN(lhs, expr)                 \
  MISO_ASSERT_OK_AND_ASSIGN_IMPL_(                           \
      MISO_TEST_CONCAT_(_result_, __LINE__), lhs, expr)

#define MISO_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)      \
  auto tmp = (expr);                                         \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();          \
  lhs = std::move(tmp).value()

#define MISO_TEST_CONCAT_(a, b) MISO_TEST_CONCAT_IMPL_(a, b)
#define MISO_TEST_CONCAT_IMPL_(a, b) a##b

/// Shared paper-scale catalog for tests (construction is cheap).
inline const relation::Catalog& PaperCatalog() {
  static const relation::Catalog* catalog =
      new relation::Catalog(relation::MakePaperCatalog());
  return *catalog;
}

/// A small two-join / UDF / aggregate plan resembling an analyst query.
/// `topic_operand` lets tests construct version mutations.
Result<plan::Plan> MakeAnalystPlan(const relation::Catalog* catalog,
                                   const std::string& name,
                                   const std::string& topic_operand,
                                   double topic_sel, bool udf_dw_compatible);

}  // namespace miso::testing_util

#endif  // MISO_TESTS_TEST_UTIL_H_
