file(REMOVE_RECURSE
  "CMakeFiles/example_capacity_planning.dir/capacity_planning.cpp.o"
  "CMakeFiles/example_capacity_planning.dir/capacity_planning.cpp.o.d"
  "example_capacity_planning"
  "example_capacity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
