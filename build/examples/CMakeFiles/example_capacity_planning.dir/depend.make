# Empty dependencies file for example_capacity_planning.
# This may be replaced when dependencies are built.
