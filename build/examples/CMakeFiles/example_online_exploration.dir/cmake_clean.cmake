file(REMOVE_RECURSE
  "CMakeFiles/example_online_exploration.dir/online_exploration.cpp.o"
  "CMakeFiles/example_online_exploration.dir/online_exploration.cpp.o.d"
  "example_online_exploration"
  "example_online_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
