# Empty compiler generated dependencies file for example_online_exploration.
# This may be replaced when dependencies are built.
