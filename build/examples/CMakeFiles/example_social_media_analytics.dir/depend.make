# Empty dependencies file for example_social_media_analytics.
# This may be replaced when dependencies are built.
