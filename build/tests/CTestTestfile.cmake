# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/relation_tests[1]_include.cmake")
include("/root/repo/build/tests/plan_tests[1]_include.cmake")
include("/root/repo/build/tests/views_tests[1]_include.cmake")
include("/root/repo/build/tests/hv_tests[1]_include.cmake")
include("/root/repo/build/tests/hv_more_tests[1]_include.cmake")
include("/root/repo/build/tests/dw_tests[1]_include.cmake")
include("/root/repo/build/tests/transfer_tests[1]_include.cmake")
include("/root/repo/build/tests/optimizer_tests[1]_include.cmake")
include("/root/repo/build/tests/tuner_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/datagen_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
