# Empty dependencies file for transfer_tests.
# This may be replaced when dependencies are built.
