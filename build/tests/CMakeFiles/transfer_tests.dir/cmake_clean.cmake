file(REMOVE_RECURSE
  "CMakeFiles/transfer_tests.dir/transfer/transfer_model_test.cc.o"
  "CMakeFiles/transfer_tests.dir/transfer/transfer_model_test.cc.o.d"
  "transfer_tests"
  "transfer_tests.pdb"
  "transfer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
