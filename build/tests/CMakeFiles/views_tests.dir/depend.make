# Empty dependencies file for views_tests.
# This may be replaced when dependencies are built.
