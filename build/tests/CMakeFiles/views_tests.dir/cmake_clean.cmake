file(REMOVE_RECURSE
  "CMakeFiles/views_tests.dir/views/rewriter_property_test.cc.o"
  "CMakeFiles/views_tests.dir/views/rewriter_property_test.cc.o.d"
  "CMakeFiles/views_tests.dir/views/rewriter_test.cc.o"
  "CMakeFiles/views_tests.dir/views/rewriter_test.cc.o.d"
  "CMakeFiles/views_tests.dir/views/view_catalog_test.cc.o"
  "CMakeFiles/views_tests.dir/views/view_catalog_test.cc.o.d"
  "CMakeFiles/views_tests.dir/views/view_test.cc.o"
  "CMakeFiles/views_tests.dir/views/view_test.cc.o.d"
  "views_tests"
  "views_tests.pdb"
  "views_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/views_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
