file(REMOVE_RECURSE
  "CMakeFiles/dw_tests.dir/dw/dw_cost_model_test.cc.o"
  "CMakeFiles/dw_tests.dir/dw/dw_cost_model_test.cc.o.d"
  "CMakeFiles/dw_tests.dir/dw/resource_model_test.cc.o"
  "CMakeFiles/dw_tests.dir/dw/resource_model_test.cc.o.d"
  "dw_tests"
  "dw_tests.pdb"
  "dw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
