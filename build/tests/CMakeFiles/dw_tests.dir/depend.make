# Empty dependencies file for dw_tests.
# This may be replaced when dependencies are built.
