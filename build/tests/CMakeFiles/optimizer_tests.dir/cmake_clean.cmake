file(REMOVE_RECURSE
  "CMakeFiles/optimizer_tests.dir/optimizer/dot_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/dot_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/explain_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/explain_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/multistore_optimizer_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/multistore_optimizer_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/multistore_plan_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/multistore_plan_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/optimizer_property_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/optimizer_property_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/split_enumerator_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/split_enumerator_test.cc.o.d"
  "optimizer_tests"
  "optimizer_tests.pdb"
  "optimizer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
