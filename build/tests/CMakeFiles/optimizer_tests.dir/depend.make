# Empty dependencies file for optimizer_tests.
# This may be replaced when dependencies are built.
