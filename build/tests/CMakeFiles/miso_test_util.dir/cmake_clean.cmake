file(REMOVE_RECURSE
  "CMakeFiles/miso_test_util.dir/test_util.cc.o"
  "CMakeFiles/miso_test_util.dir/test_util.cc.o.d"
  "libmiso_test_util.a"
  "libmiso_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
