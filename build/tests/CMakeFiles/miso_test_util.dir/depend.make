# Empty dependencies file for miso_test_util.
# This may be replaced when dependencies are built.
