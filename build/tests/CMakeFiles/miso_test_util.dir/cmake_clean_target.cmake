file(REMOVE_RECURSE
  "libmiso_test_util.a"
)
