# Empty compiler generated dependencies file for tuner_tests.
# This may be replaced when dependencies are built.
