file(REMOVE_RECURSE
  "CMakeFiles/tuner_tests.dir/tuner/benefit_test.cc.o"
  "CMakeFiles/tuner_tests.dir/tuner/benefit_test.cc.o.d"
  "CMakeFiles/tuner_tests.dir/tuner/interaction_test.cc.o"
  "CMakeFiles/tuner_tests.dir/tuner/interaction_test.cc.o.d"
  "CMakeFiles/tuner_tests.dir/tuner/knapsack_test.cc.o"
  "CMakeFiles/tuner_tests.dir/tuner/knapsack_test.cc.o.d"
  "CMakeFiles/tuner_tests.dir/tuner/miso_tuner_test.cc.o"
  "CMakeFiles/tuner_tests.dir/tuner/miso_tuner_test.cc.o.d"
  "CMakeFiles/tuner_tests.dir/tuner/reorg_plan_test.cc.o"
  "CMakeFiles/tuner_tests.dir/tuner/reorg_plan_test.cc.o.d"
  "CMakeFiles/tuner_tests.dir/tuner/sparsify_test.cc.o"
  "CMakeFiles/tuner_tests.dir/tuner/sparsify_test.cc.o.d"
  "tuner_tests"
  "tuner_tests.pdb"
  "tuner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
