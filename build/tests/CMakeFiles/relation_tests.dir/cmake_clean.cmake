file(REMOVE_RECURSE
  "CMakeFiles/relation_tests.dir/relation/catalog_test.cc.o"
  "CMakeFiles/relation_tests.dir/relation/catalog_test.cc.o.d"
  "CMakeFiles/relation_tests.dir/relation/schema_test.cc.o"
  "CMakeFiles/relation_tests.dir/relation/schema_test.cc.o.d"
  "relation_tests"
  "relation_tests.pdb"
  "relation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
