# Empty compiler generated dependencies file for relation_tests.
# This may be replaced when dependencies are built.
