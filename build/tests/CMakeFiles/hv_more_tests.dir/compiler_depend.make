# Empty compiler generated dependencies file for hv_more_tests.
# This may be replaced when dependencies are built.
