file(REMOVE_RECURSE
  "CMakeFiles/hv_more_tests.dir/hv/hv_config_test.cc.o"
  "CMakeFiles/hv_more_tests.dir/hv/hv_config_test.cc.o.d"
  "CMakeFiles/hv_more_tests.dir/hv/hv_cost_model_test.cc.o"
  "CMakeFiles/hv_more_tests.dir/hv/hv_cost_model_test.cc.o.d"
  "CMakeFiles/hv_more_tests.dir/hv/hv_store_test.cc.o"
  "CMakeFiles/hv_more_tests.dir/hv/hv_store_test.cc.o.d"
  "hv_more_tests"
  "hv_more_tests.pdb"
  "hv_more_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_more_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
