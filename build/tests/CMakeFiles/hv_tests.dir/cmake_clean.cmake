file(REMOVE_RECURSE
  "CMakeFiles/hv_tests.dir/hv/mr_job_test.cc.o"
  "CMakeFiles/hv_tests.dir/hv/mr_job_test.cc.o.d"
  "hv_tests"
  "hv_tests.pdb"
  "hv_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
