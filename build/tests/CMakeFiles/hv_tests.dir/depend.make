# Empty dependencies file for hv_tests.
# This may be replaced when dependencies are built.
