file(REMOVE_RECURSE
  "CMakeFiles/plan_tests.dir/plan/builder_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/builder_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/estimator_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/estimator_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/plan_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/plan_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/predicate_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/predicate_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/printer_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/printer_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/signature_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/signature_test.cc.o.d"
  "plan_tests"
  "plan_tests.pdb"
  "plan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
