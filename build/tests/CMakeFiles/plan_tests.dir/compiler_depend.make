# Empty compiler generated dependencies file for plan_tests.
# This may be replaced when dependencies are built.
