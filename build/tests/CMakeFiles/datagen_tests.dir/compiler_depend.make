# Empty compiler generated dependencies file for datagen_tests.
# This may be replaced when dependencies are built.
