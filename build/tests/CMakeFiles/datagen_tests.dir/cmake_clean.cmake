file(REMOVE_RECURSE
  "CMakeFiles/datagen_tests.dir/datagen/record_generator_test.cc.o"
  "CMakeFiles/datagen_tests.dir/datagen/record_generator_test.cc.o.d"
  "datagen_tests"
  "datagen_tests.pdb"
  "datagen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
