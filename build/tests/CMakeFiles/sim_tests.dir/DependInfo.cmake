
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/etl_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/etl_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/etl_test.cc.o.d"
  "/root/repo/tests/sim/report_io_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/report_io_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/report_io_test.cc.o.d"
  "/root/repo/tests/sim/report_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/report_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/report_test.cc.o.d"
  "/root/repo/tests/sim/seed_sweep_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/seed_sweep_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/seed_sweep_test.cc.o.d"
  "/root/repo/tests/sim/simulator_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/simulator_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/simulator_test.cc.o.d"
  "/root/repo/tests/sim/time_trigger_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/time_trigger_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/time_trigger_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/miso_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/miso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/miso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/miso_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/miso_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/miso_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/miso_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/miso_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/miso_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/miso_views.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/miso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/miso_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
