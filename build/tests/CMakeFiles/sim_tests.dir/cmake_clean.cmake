file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/etl_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/etl_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/report_io_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/report_io_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/report_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/report_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/seed_sweep_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/seed_sweep_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/simulator_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/simulator_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/time_trigger_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/time_trigger_test.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
