# Empty dependencies file for bench_fig7_tuners.
# This may be replaced when dependencies are built.
