file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tuners.dir/bench_fig7_tuners.cpp.o"
  "CMakeFiles/bench_fig7_tuners.dir/bench_fig7_tuners.cpp.o.d"
  "bench_fig7_tuners"
  "bench_fig7_tuners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tuners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
