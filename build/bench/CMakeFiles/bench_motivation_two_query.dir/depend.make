# Empty dependencies file for bench_motivation_two_query.
# This may be replaced when dependencies are built.
