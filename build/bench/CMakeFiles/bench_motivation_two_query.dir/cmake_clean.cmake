file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_two_query.dir/bench_motivation_two_query.cpp.o"
  "CMakeFiles/bench_motivation_two_query.dir/bench_motivation_two_query.cpp.o.d"
  "bench_motivation_two_query"
  "bench_motivation_two_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_two_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
