file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_utilization.dir/bench_fig6_utilization.cpp.o"
  "CMakeFiles/bench_fig6_utilization.dir/bench_fig6_utilization.cpp.o.d"
  "bench_fig6_utilization"
  "bench_fig6_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
