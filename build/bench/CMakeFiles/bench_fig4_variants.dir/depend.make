# Empty dependencies file for bench_fig4_variants.
# This may be replaced when dependencies are built.
