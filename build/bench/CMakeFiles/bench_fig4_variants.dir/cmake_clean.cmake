file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_variants.dir/bench_fig4_variants.cpp.o"
  "CMakeFiles/bench_fig4_variants.dir/bench_fig4_variants.cpp.o.d"
  "bench_fig4_variants"
  "bench_fig4_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
