file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cdfs.dir/bench_fig5_cdfs.cpp.o"
  "CMakeFiles/bench_fig5_cdfs.dir/bench_fig5_cdfs.cpp.o.d"
  "bench_fig5_cdfs"
  "bench_fig5_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
