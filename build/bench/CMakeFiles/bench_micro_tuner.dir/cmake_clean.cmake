file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tuner.dir/bench_micro_tuner.cpp.o"
  "CMakeFiles/bench_micro_tuner.dir/bench_micro_tuner.cpp.o.d"
  "bench_micro_tuner"
  "bench_micro_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
