# Empty compiler generated dependencies file for bench_micro_tuner.
# This may be replaced when dependencies are built.
