file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_capacity.dir/bench_table2_capacity.cpp.o"
  "CMakeFiles/bench_table2_capacity.dir/bench_table2_capacity.cpp.o.d"
  "bench_table2_capacity"
  "bench_table2_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
