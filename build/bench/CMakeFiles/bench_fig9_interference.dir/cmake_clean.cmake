file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_interference.dir/bench_fig9_interference.cpp.o"
  "CMakeFiles/bench_fig9_interference.dir/bench_fig9_interference.cpp.o.d"
  "bench_fig9_interference"
  "bench_fig9_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
