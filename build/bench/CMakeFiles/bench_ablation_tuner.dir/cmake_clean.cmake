file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tuner.dir/bench_ablation_tuner.cpp.o"
  "CMakeFiles/bench_ablation_tuner.dir/bench_ablation_tuner.cpp.o.d"
  "bench_ablation_tuner"
  "bench_ablation_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
