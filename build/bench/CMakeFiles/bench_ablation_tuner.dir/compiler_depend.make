# Empty compiler generated dependencies file for bench_ablation_tuner.
# This may be replaced when dependencies are built.
