file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_optimizer.dir/bench_micro_optimizer.cpp.o"
  "CMakeFiles/bench_micro_optimizer.dir/bench_micro_optimizer.cpp.o.d"
  "bench_micro_optimizer"
  "bench_micro_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
