# Empty compiler generated dependencies file for bench_micro_optimizer.
# This may be replaced when dependencies are built.
