# Empty dependencies file for bench_fig3_split_profile.
# This may be replaced when dependencies are built.
