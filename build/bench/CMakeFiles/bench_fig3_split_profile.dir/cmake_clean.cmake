file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_split_profile.dir/bench_fig3_split_profile.cpp.o"
  "CMakeFiles/bench_fig3_split_profile.dir/bench_fig3_split_profile.cpp.o.d"
  "bench_fig3_split_profile"
  "bench_fig3_split_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_split_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
