# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("relation")
subdirs("plan")
subdirs("views")
subdirs("hv")
subdirs("dw")
subdirs("transfer")
subdirs("optimizer")
subdirs("tuner")
subdirs("workload")
subdirs("sim")
subdirs("datagen")
subdirs("core")
