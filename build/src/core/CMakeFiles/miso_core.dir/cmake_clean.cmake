file(REMOVE_RECURSE
  "CMakeFiles/miso_core.dir/multistore_system.cc.o"
  "CMakeFiles/miso_core.dir/multistore_system.cc.o.d"
  "libmiso_core.a"
  "libmiso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
