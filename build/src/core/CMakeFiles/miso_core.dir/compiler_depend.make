# Empty compiler generated dependencies file for miso_core.
# This may be replaced when dependencies are built.
