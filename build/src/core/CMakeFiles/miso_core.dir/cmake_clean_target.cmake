file(REMOVE_RECURSE
  "libmiso_core.a"
)
