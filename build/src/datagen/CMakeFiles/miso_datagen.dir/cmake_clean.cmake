file(REMOVE_RECURSE
  "CMakeFiles/miso_datagen.dir/record_generator.cc.o"
  "CMakeFiles/miso_datagen.dir/record_generator.cc.o.d"
  "libmiso_datagen.a"
  "libmiso_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
