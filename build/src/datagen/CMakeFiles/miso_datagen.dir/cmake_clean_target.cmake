file(REMOVE_RECURSE
  "libmiso_datagen.a"
)
