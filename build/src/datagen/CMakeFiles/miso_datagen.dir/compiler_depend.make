# Empty compiler generated dependencies file for miso_datagen.
# This may be replaced when dependencies are built.
