file(REMOVE_RECURSE
  "CMakeFiles/miso_common.dir/hash.cc.o"
  "CMakeFiles/miso_common.dir/hash.cc.o.d"
  "CMakeFiles/miso_common.dir/logging.cc.o"
  "CMakeFiles/miso_common.dir/logging.cc.o.d"
  "CMakeFiles/miso_common.dir/rng.cc.o"
  "CMakeFiles/miso_common.dir/rng.cc.o.d"
  "CMakeFiles/miso_common.dir/status.cc.o"
  "CMakeFiles/miso_common.dir/status.cc.o.d"
  "CMakeFiles/miso_common.dir/units.cc.o"
  "CMakeFiles/miso_common.dir/units.cc.o.d"
  "libmiso_common.a"
  "libmiso_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
