# Empty dependencies file for miso_common.
# This may be replaced when dependencies are built.
