file(REMOVE_RECURSE
  "libmiso_common.a"
)
