# Empty compiler generated dependencies file for miso_transfer.
# This may be replaced when dependencies are built.
