file(REMOVE_RECURSE
  "CMakeFiles/miso_transfer.dir/transfer_model.cc.o"
  "CMakeFiles/miso_transfer.dir/transfer_model.cc.o.d"
  "libmiso_transfer.a"
  "libmiso_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
