file(REMOVE_RECURSE
  "libmiso_transfer.a"
)
