# Empty dependencies file for miso_relation.
# This may be replaced when dependencies are built.
