file(REMOVE_RECURSE
  "CMakeFiles/miso_relation.dir/catalog.cc.o"
  "CMakeFiles/miso_relation.dir/catalog.cc.o.d"
  "CMakeFiles/miso_relation.dir/schema.cc.o"
  "CMakeFiles/miso_relation.dir/schema.cc.o.d"
  "libmiso_relation.a"
  "libmiso_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
