file(REMOVE_RECURSE
  "libmiso_relation.a"
)
