# Empty dependencies file for miso_hv.
# This may be replaced when dependencies are built.
