file(REMOVE_RECURSE
  "CMakeFiles/miso_hv.dir/hv_cost_model.cc.o"
  "CMakeFiles/miso_hv.dir/hv_cost_model.cc.o.d"
  "CMakeFiles/miso_hv.dir/hv_store.cc.o"
  "CMakeFiles/miso_hv.dir/hv_store.cc.o.d"
  "CMakeFiles/miso_hv.dir/mr_job.cc.o"
  "CMakeFiles/miso_hv.dir/mr_job.cc.o.d"
  "libmiso_hv.a"
  "libmiso_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
