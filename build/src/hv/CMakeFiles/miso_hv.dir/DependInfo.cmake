
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/hv_cost_model.cc" "src/hv/CMakeFiles/miso_hv.dir/hv_cost_model.cc.o" "gcc" "src/hv/CMakeFiles/miso_hv.dir/hv_cost_model.cc.o.d"
  "/root/repo/src/hv/hv_store.cc" "src/hv/CMakeFiles/miso_hv.dir/hv_store.cc.o" "gcc" "src/hv/CMakeFiles/miso_hv.dir/hv_store.cc.o.d"
  "/root/repo/src/hv/mr_job.cc" "src/hv/CMakeFiles/miso_hv.dir/mr_job.cc.o" "gcc" "src/hv/CMakeFiles/miso_hv.dir/mr_job.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/miso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/miso_views.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
