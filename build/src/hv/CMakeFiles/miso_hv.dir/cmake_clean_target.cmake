file(REMOVE_RECURSE
  "libmiso_hv.a"
)
