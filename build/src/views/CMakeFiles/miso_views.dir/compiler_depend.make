# Empty compiler generated dependencies file for miso_views.
# This may be replaced when dependencies are built.
