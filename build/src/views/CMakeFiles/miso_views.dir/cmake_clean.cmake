file(REMOVE_RECURSE
  "CMakeFiles/miso_views.dir/rewriter.cc.o"
  "CMakeFiles/miso_views.dir/rewriter.cc.o.d"
  "CMakeFiles/miso_views.dir/view.cc.o"
  "CMakeFiles/miso_views.dir/view.cc.o.d"
  "CMakeFiles/miso_views.dir/view_catalog.cc.o"
  "CMakeFiles/miso_views.dir/view_catalog.cc.o.d"
  "libmiso_views.a"
  "libmiso_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
