
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/views/rewriter.cc" "src/views/CMakeFiles/miso_views.dir/rewriter.cc.o" "gcc" "src/views/CMakeFiles/miso_views.dir/rewriter.cc.o.d"
  "/root/repo/src/views/view.cc" "src/views/CMakeFiles/miso_views.dir/view.cc.o" "gcc" "src/views/CMakeFiles/miso_views.dir/view.cc.o.d"
  "/root/repo/src/views/view_catalog.cc" "src/views/CMakeFiles/miso_views.dir/view_catalog.cc.o" "gcc" "src/views/CMakeFiles/miso_views.dir/view_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/miso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
