file(REMOVE_RECURSE
  "libmiso_views.a"
)
