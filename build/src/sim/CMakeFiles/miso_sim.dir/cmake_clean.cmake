file(REMOVE_RECURSE
  "CMakeFiles/miso_sim.dir/etl.cc.o"
  "CMakeFiles/miso_sim.dir/etl.cc.o.d"
  "CMakeFiles/miso_sim.dir/report.cc.o"
  "CMakeFiles/miso_sim.dir/report.cc.o.d"
  "CMakeFiles/miso_sim.dir/report_io.cc.o"
  "CMakeFiles/miso_sim.dir/report_io.cc.o.d"
  "CMakeFiles/miso_sim.dir/simulator.cc.o"
  "CMakeFiles/miso_sim.dir/simulator.cc.o.d"
  "libmiso_sim.a"
  "libmiso_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
