# Empty compiler generated dependencies file for miso_sim.
# This may be replaced when dependencies are built.
