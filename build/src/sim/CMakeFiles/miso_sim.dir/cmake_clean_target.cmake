file(REMOVE_RECURSE
  "libmiso_sim.a"
)
