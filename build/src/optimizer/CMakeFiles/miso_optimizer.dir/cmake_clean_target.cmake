file(REMOVE_RECURSE
  "libmiso_optimizer.a"
)
