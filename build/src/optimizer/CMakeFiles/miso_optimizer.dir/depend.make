# Empty dependencies file for miso_optimizer.
# This may be replaced when dependencies are built.
