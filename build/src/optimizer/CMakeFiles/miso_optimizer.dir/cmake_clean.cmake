file(REMOVE_RECURSE
  "CMakeFiles/miso_optimizer.dir/dot.cc.o"
  "CMakeFiles/miso_optimizer.dir/dot.cc.o.d"
  "CMakeFiles/miso_optimizer.dir/explain.cc.o"
  "CMakeFiles/miso_optimizer.dir/explain.cc.o.d"
  "CMakeFiles/miso_optimizer.dir/multistore_optimizer.cc.o"
  "CMakeFiles/miso_optimizer.dir/multistore_optimizer.cc.o.d"
  "CMakeFiles/miso_optimizer.dir/split_enumerator.cc.o"
  "CMakeFiles/miso_optimizer.dir/split_enumerator.cc.o.d"
  "libmiso_optimizer.a"
  "libmiso_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
