
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/dot.cc" "src/optimizer/CMakeFiles/miso_optimizer.dir/dot.cc.o" "gcc" "src/optimizer/CMakeFiles/miso_optimizer.dir/dot.cc.o.d"
  "/root/repo/src/optimizer/explain.cc" "src/optimizer/CMakeFiles/miso_optimizer.dir/explain.cc.o" "gcc" "src/optimizer/CMakeFiles/miso_optimizer.dir/explain.cc.o.d"
  "/root/repo/src/optimizer/multistore_optimizer.cc" "src/optimizer/CMakeFiles/miso_optimizer.dir/multistore_optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/miso_optimizer.dir/multistore_optimizer.cc.o.d"
  "/root/repo/src/optimizer/split_enumerator.cc" "src/optimizer/CMakeFiles/miso_optimizer.dir/split_enumerator.cc.o" "gcc" "src/optimizer/CMakeFiles/miso_optimizer.dir/split_enumerator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/miso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/miso_views.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/miso_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/miso_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/miso_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
