# Empty dependencies file for miso_plan.
# This may be replaced when dependencies are built.
