file(REMOVE_RECURSE
  "CMakeFiles/miso_plan.dir/builder.cc.o"
  "CMakeFiles/miso_plan.dir/builder.cc.o.d"
  "CMakeFiles/miso_plan.dir/node_factory.cc.o"
  "CMakeFiles/miso_plan.dir/node_factory.cc.o.d"
  "CMakeFiles/miso_plan.dir/operator.cc.o"
  "CMakeFiles/miso_plan.dir/operator.cc.o.d"
  "CMakeFiles/miso_plan.dir/plan.cc.o"
  "CMakeFiles/miso_plan.dir/plan.cc.o.d"
  "CMakeFiles/miso_plan.dir/predicate.cc.o"
  "CMakeFiles/miso_plan.dir/predicate.cc.o.d"
  "CMakeFiles/miso_plan.dir/printer.cc.o"
  "CMakeFiles/miso_plan.dir/printer.cc.o.d"
  "libmiso_plan.a"
  "libmiso_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
