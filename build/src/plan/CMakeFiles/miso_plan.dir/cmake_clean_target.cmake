file(REMOVE_RECURSE
  "libmiso_plan.a"
)
