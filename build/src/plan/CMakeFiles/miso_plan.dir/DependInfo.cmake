
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/builder.cc" "src/plan/CMakeFiles/miso_plan.dir/builder.cc.o" "gcc" "src/plan/CMakeFiles/miso_plan.dir/builder.cc.o.d"
  "/root/repo/src/plan/node_factory.cc" "src/plan/CMakeFiles/miso_plan.dir/node_factory.cc.o" "gcc" "src/plan/CMakeFiles/miso_plan.dir/node_factory.cc.o.d"
  "/root/repo/src/plan/operator.cc" "src/plan/CMakeFiles/miso_plan.dir/operator.cc.o" "gcc" "src/plan/CMakeFiles/miso_plan.dir/operator.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/plan/CMakeFiles/miso_plan.dir/plan.cc.o" "gcc" "src/plan/CMakeFiles/miso_plan.dir/plan.cc.o.d"
  "/root/repo/src/plan/predicate.cc" "src/plan/CMakeFiles/miso_plan.dir/predicate.cc.o" "gcc" "src/plan/CMakeFiles/miso_plan.dir/predicate.cc.o.d"
  "/root/repo/src/plan/printer.cc" "src/plan/CMakeFiles/miso_plan.dir/printer.cc.o" "gcc" "src/plan/CMakeFiles/miso_plan.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
