# Empty compiler generated dependencies file for miso_workload.
# This may be replaced when dependencies are built.
