
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/background.cc" "src/workload/CMakeFiles/miso_workload.dir/background.cc.o" "gcc" "src/workload/CMakeFiles/miso_workload.dir/background.cc.o.d"
  "/root/repo/src/workload/evolutionary.cc" "src/workload/CMakeFiles/miso_workload.dir/evolutionary.cc.o" "gcc" "src/workload/CMakeFiles/miso_workload.dir/evolutionary.cc.o.d"
  "/root/repo/src/workload/query_spec.cc" "src/workload/CMakeFiles/miso_workload.dir/query_spec.cc.o" "gcc" "src/workload/CMakeFiles/miso_workload.dir/query_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/miso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/miso_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/miso_views.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
