file(REMOVE_RECURSE
  "libmiso_workload.a"
)
