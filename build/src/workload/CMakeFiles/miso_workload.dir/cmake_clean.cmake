file(REMOVE_RECURSE
  "CMakeFiles/miso_workload.dir/background.cc.o"
  "CMakeFiles/miso_workload.dir/background.cc.o.d"
  "CMakeFiles/miso_workload.dir/evolutionary.cc.o"
  "CMakeFiles/miso_workload.dir/evolutionary.cc.o.d"
  "CMakeFiles/miso_workload.dir/query_spec.cc.o"
  "CMakeFiles/miso_workload.dir/query_spec.cc.o.d"
  "libmiso_workload.a"
  "libmiso_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
