file(REMOVE_RECURSE
  "CMakeFiles/miso_dw.dir/dw_cost_model.cc.o"
  "CMakeFiles/miso_dw.dir/dw_cost_model.cc.o.d"
  "CMakeFiles/miso_dw.dir/resource_model.cc.o"
  "CMakeFiles/miso_dw.dir/resource_model.cc.o.d"
  "libmiso_dw.a"
  "libmiso_dw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_dw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
