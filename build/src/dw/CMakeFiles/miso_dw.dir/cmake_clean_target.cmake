file(REMOVE_RECURSE
  "libmiso_dw.a"
)
