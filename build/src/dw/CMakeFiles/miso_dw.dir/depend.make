# Empty dependencies file for miso_dw.
# This may be replaced when dependencies are built.
