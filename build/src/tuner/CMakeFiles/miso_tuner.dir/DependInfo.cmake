
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/baseline_tuners.cc" "src/tuner/CMakeFiles/miso_tuner.dir/baseline_tuners.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/baseline_tuners.cc.o.d"
  "/root/repo/src/tuner/benefit.cc" "src/tuner/CMakeFiles/miso_tuner.dir/benefit.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/benefit.cc.o.d"
  "/root/repo/src/tuner/interaction.cc" "src/tuner/CMakeFiles/miso_tuner.dir/interaction.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/interaction.cc.o.d"
  "/root/repo/src/tuner/knapsack.cc" "src/tuner/CMakeFiles/miso_tuner.dir/knapsack.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/knapsack.cc.o.d"
  "/root/repo/src/tuner/miso_tuner.cc" "src/tuner/CMakeFiles/miso_tuner.dir/miso_tuner.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/miso_tuner.cc.o.d"
  "/root/repo/src/tuner/reorg_plan.cc" "src/tuner/CMakeFiles/miso_tuner.dir/reorg_plan.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/reorg_plan.cc.o.d"
  "/root/repo/src/tuner/sparsify.cc" "src/tuner/CMakeFiles/miso_tuner.dir/sparsify.cc.o" "gcc" "src/tuner/CMakeFiles/miso_tuner.dir/sparsify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/miso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/miso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/miso_views.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/miso_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/miso_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/miso_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/miso_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/miso_transfer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
