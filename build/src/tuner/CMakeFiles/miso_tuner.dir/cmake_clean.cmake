file(REMOVE_RECURSE
  "CMakeFiles/miso_tuner.dir/baseline_tuners.cc.o"
  "CMakeFiles/miso_tuner.dir/baseline_tuners.cc.o.d"
  "CMakeFiles/miso_tuner.dir/benefit.cc.o"
  "CMakeFiles/miso_tuner.dir/benefit.cc.o.d"
  "CMakeFiles/miso_tuner.dir/interaction.cc.o"
  "CMakeFiles/miso_tuner.dir/interaction.cc.o.d"
  "CMakeFiles/miso_tuner.dir/knapsack.cc.o"
  "CMakeFiles/miso_tuner.dir/knapsack.cc.o.d"
  "CMakeFiles/miso_tuner.dir/miso_tuner.cc.o"
  "CMakeFiles/miso_tuner.dir/miso_tuner.cc.o.d"
  "CMakeFiles/miso_tuner.dir/reorg_plan.cc.o"
  "CMakeFiles/miso_tuner.dir/reorg_plan.cc.o.d"
  "CMakeFiles/miso_tuner.dir/sparsify.cc.o"
  "CMakeFiles/miso_tuner.dir/sparsify.cc.o.d"
  "libmiso_tuner.a"
  "libmiso_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miso_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
