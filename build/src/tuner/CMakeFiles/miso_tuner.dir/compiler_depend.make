# Empty compiler generated dependencies file for miso_tuner.
# This may be replaced when dependencies are built.
