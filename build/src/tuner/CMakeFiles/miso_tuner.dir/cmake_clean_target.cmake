file(REMOVE_RECURSE
  "libmiso_tuner.a"
)
