file(REMOVE_RECURSE
  "CMakeFiles/debug_bg.dir/debug_bg.cpp.o"
  "CMakeFiles/debug_bg.dir/debug_bg.cpp.o.d"
  "debug_bg"
  "debug_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
