# Empty compiler generated dependencies file for debug_bg.
# This may be replaced when dependencies are built.
