# Empty compiler generated dependencies file for debug_variants.
# This may be replaced when dependencies are built.
