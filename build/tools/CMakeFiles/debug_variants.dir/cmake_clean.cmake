file(REMOVE_RECURSE
  "CMakeFiles/debug_variants.dir/debug_variants.cpp.o"
  "CMakeFiles/debug_variants.dir/debug_variants.cpp.o.d"
  "debug_variants"
  "debug_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
