# Empty dependencies file for debug_fig3.
# This may be replaced when dependencies are built.
