file(REMOVE_RECURSE
  "CMakeFiles/debug_fig3.dir/debug_fig3.cpp.o"
  "CMakeFiles/debug_fig3.dir/debug_fig3.cpp.o.d"
  "debug_fig3"
  "debug_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
