# Empty compiler generated dependencies file for debug_run.
# This may be replaced when dependencies are built.
