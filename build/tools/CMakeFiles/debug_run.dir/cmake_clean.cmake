file(REMOVE_RECURSE
  "CMakeFiles/debug_run.dir/debug_run.cpp.o"
  "CMakeFiles/debug_run.dir/debug_run.cpp.o.d"
  "debug_run"
  "debug_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
