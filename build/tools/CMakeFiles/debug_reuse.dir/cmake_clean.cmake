file(REMOVE_RECURSE
  "CMakeFiles/debug_reuse.dir/debug_reuse.cpp.o"
  "CMakeFiles/debug_reuse.dir/debug_reuse.cpp.o.d"
  "debug_reuse"
  "debug_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
