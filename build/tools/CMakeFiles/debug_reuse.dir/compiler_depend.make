# Empty compiler generated dependencies file for debug_reuse.
# This may be replaced when dependencies are built.
