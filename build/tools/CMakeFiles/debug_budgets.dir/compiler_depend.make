# Empty compiler generated dependencies file for debug_budgets.
# This may be replaced when dependencies are built.
