file(REMOVE_RECURSE
  "CMakeFiles/debug_budgets.dir/debug_budgets.cpp.o"
  "CMakeFiles/debug_budgets.dir/debug_budgets.cpp.o.d"
  "debug_budgets"
  "debug_budgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_budgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
