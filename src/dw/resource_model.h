#ifndef MISO_DW_RESOURCE_MODEL_H_
#define MISO_DW_RESOURCE_MODEL_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace miso::dw {

/// Kind of multistore activity placing load on the DW cluster. The labels
/// mirror Figure 9's annotations: R = reorganization view transfers,
/// T = working-set transfers during query execution, Q = DW-side query
/// execution.
enum class DwActivityKind { kReorgTransfer, kWorkingSetTransfer, kQueryExec };

std::string_view DwActivityKindToString(DwActivityKind kind);

/// One interval of DW resource demand from the multistore workload.
struct DwActivity {
  DwActivityKind kind = DwActivityKind::kQueryExec;
  Seconds start = 0;
  Seconds duration = 0;
  /// Fraction of cluster IO / CPU demanded while active (may exceed spare).
  double io_demand = 0;
  double cpu_demand = 0;
};

/// The background reporting workload continuously running on DW (§5.4):
/// parameterized streams of an IO-intensive query (TPC-DS q3-like) or a
/// CPU-intensive query (q83-like), consuming a fixed fraction of the
/// cluster's resources and leaving `1 - demand` spare.
struct BackgroundWorkload {
  /// Steady-state fraction of cluster IO / CPU the reporting stream uses.
  double io_demand = 0.6;
  double cpu_demand = 0.2;
  /// Mean execution time of one reporting query with no multistore load.
  Seconds base_query_latency_s = 1.06;
};

/// Per-tick sample of the DW cluster state (Figure 9's series).
struct DwTickSample {
  Seconds time = 0;
  double io_used = 0;   // clamped to [0, 1]
  double cpu_used = 0;  // clamped to [0, 1]
  /// Average latency of background reporting queries during this tick.
  Seconds bg_query_latency_s = 0;
  /// Dominant multistore activity in this tick (empty if none).
  std::string activity;
};

/// Contention parameters. The slowdown of background queries follows a
/// saturation law: demand beyond 100 % stretches latency by
/// 1 / max(min_share, 1 - excess); below saturation, extra demand adds a
/// mild queueing delay. Multistore activities are symmetrically slowed by
/// the background load (they only get a share of the cluster).
///
/// Transfers (R/T activities) saturate the disks only in short bursts —
/// bulk loads alternate staging, constraint checks, and index builds — so
/// only `transfer_burst_duty` of a transfer's duration carries its full
/// IO demand; the remainder runs at `transfer_steady_io`. This reproduces
/// Figure 9's anatomy: brief latency spikes, tiny average impact
/// (Table 2's 0.3-5 % slowdowns).
struct ContentionConfig {
  /// Sampling tick (the paper samples iostat every 10 s).
  Seconds tick_s = 10.0;
  /// Floor on the service share a background query retains under overload.
  double min_bg_share = 0.125;
  /// Stretch factor applied to a multistore activity per unit of
  /// background demand (max of IO/CPU).
  double activity_stretch = 0.3;
  /// Fraction of a transfer's duration at full (saturating) IO demand.
  double transfer_burst_duty = 0.02;
  /// IO demand of a transfer outside its bursts.
  double transfer_steady_io = 0.25;
  /// Latency sensitivity to sub-saturation extra demand.
  double sub_saturation_sensitivity = 0.1;
};

/// Accumulates multistore activities and derives Figure 9 / Table 2
/// outputs: tick series of IO/CPU and background-query latency, average
/// background slowdown, and the stretched durations of the activities
/// themselves.
class ResourceLedger {
 public:
  ResourceLedger(const BackgroundWorkload& background,
                 const ContentionConfig& contention)
      : background_(background), contention_(contention) {}

  const BackgroundWorkload& background() const { return background_; }

  /// Records a multistore activity starting at `start` with *unstretched*
  /// duration `duration`; returns the contention-stretched duration the
  /// caller should charge (activities share the cluster with the
  /// background stream).
  Seconds RecordActivity(DwActivityKind kind, Seconds start, Seconds duration,
                         double io_demand, double cpu_demand);

  const std::vector<DwActivity>& activities() const { return activities_; }

  /// Samples the interval [0, horizon) at the configured tick.
  std::vector<DwTickSample> TickSeries(Seconds horizon) const;

  /// Time-weighted mean background-query latency over [0, horizon).
  Seconds AverageBackgroundLatency(Seconds horizon) const;

  /// AverageBackgroundLatency / base latency - 1, as a fraction.
  double BackgroundSlowdown(Seconds horizon) const;

 private:
  /// Background latency when total demand is (io, cpu).
  Seconds LatencyUnderDemand(double io, double cpu) const;

  BackgroundWorkload background_;
  ContentionConfig contention_;
  std::vector<DwActivity> activities_;
};

}  // namespace miso::dw

#endif  // MISO_DW_RESOURCE_MODEL_H_
