#ifndef MISO_DW_DW_COST_MODEL_H_
#define MISO_DW_DW_COST_MODEL_H_

#include <unordered_set>

#include "common/result.h"
#include "common/units.h"
#include "dw/dw_config.h"
#include "plan/plan.h"

namespace miso::dw {

/// Analytical cost model for DW executions. This stands in for the
/// commercial warehouse's own what-if optimizer units (§3.1 — the paper
/// calibrates those units to seconds; here the model is specified in
/// seconds directly).
///
/// Charging scheme: each operator pays its input bytes at a kind-specific
/// rate over the 9-way parallel cluster. Leaf reads are free (charged at
/// the consuming operator); a Filter directly over a permanent ViewScan
/// enjoys index pruning (reads max(sel, index_floor) of the view).
class DwCostModel {
 public:
  explicit DwCostModel(const DwConfig& config) : config_(config) {}

  const DwConfig& config() const { return config_; }

  /// Cost of executing, inside DW, the operators of `dw_side` (an
  /// upward-closed set of nodes of one plan, identified by pointer).
  /// `temp_inputs` are the nodes *below* the cut whose outputs were
  /// migrated into temporary tables (their consumers scan at temp rate).
  ///
  /// Requires every node in `dw_side` to be DW-executable; errors
  /// otherwise. The `query_overhead_s` is charged once iff the set is
  /// non-empty.
  Result<Seconds> CostDwSide(
      const std::unordered_set<const plan::OperatorNode*>& dw_side,
      const std::unordered_set<const plan::OperatorNode*>& temp_inputs)
      const;

  /// Cost of a plan that executes entirely in DW (all leaves are
  /// DW-resident ViewScans).
  Result<Seconds> FullPlanCost(const plan::Plan& plan) const;

 private:
  DwConfig config_;
};

}  // namespace miso::dw

#endif  // MISO_DW_DW_COST_MODEL_H_
