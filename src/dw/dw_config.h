#ifndef MISO_DW_DW_CONFIG_H_
#define MISO_DW_DW_CONFIG_H_

#include "common/units.h"

namespace miso::dw {

/// Cost-model constants of the DW (parallel RDBMS) store simulator.
///
/// Defaults model the paper's 9-node commercial parallel row store (§5.1):
/// data is horizontally partitioned across all nodes, loaded views carry
/// recommended indexes (so selective filters prune I/O), and per-query
/// overhead is sub-second. Rates are per node in MB/s except where noted.
/// The asymmetry against HvConfig reproduces the paper's observation that
/// DW execution wins "by a very wide margin" once data is present.
struct DwConfig {
  int num_nodes = 9;

  /// Fixed optimizer/dispatch overhead per query (or per DW-side suffix).
  Seconds query_overhead_s = 0.5;

  /// Sequential scan of permanent (loaded, indexed) tables.
  double scan_mbps = 500.0;

  /// Hash join / aggregation / sort throughput, charged on operator input.
  double op_mbps = 300.0;

  /// Scan of temporary tables holding migrated working sets (no indexes).
  double temp_scan_mbps = 150.0;

  /// A filter directly over a permanent view scans only
  /// max(selectivity, index_floor) of the view's bytes — the effect of the
  /// recommended indexes built at load time.
  double index_floor = 0.05;

  /// Bytes/second for the whole cluster at per-node rate `mbps`.
  double ClusterRate(double mbps) const {
    return mbps * 1e6 * static_cast<double>(num_nodes);
  }
};

}  // namespace miso::dw

#endif  // MISO_DW_DW_CONFIG_H_
