#include "dw/resource_model.h"

#include <algorithm>
#include <cmath>

namespace miso::dw {

std::string_view DwActivityKindToString(DwActivityKind kind) {
  switch (kind) {
    case DwActivityKind::kReorgTransfer:
      return "R";
    case DwActivityKind::kWorkingSetTransfer:
      return "T";
    case DwActivityKind::kQueryExec:
      return "Q";
  }
  return "?";
}

Seconds ResourceLedger::RecordActivity(DwActivityKind kind, Seconds start,
                                       Seconds duration, double io_demand,
                                       double cpu_demand) {
  // The activity shares the cluster with the background stream; stretch
  // its duration proportionally to the background's total load.
  const double bg_load =
      std::max(background_.io_demand, background_.cpu_demand);
  const Seconds stretched =
      duration * (1.0 + contention_.activity_stretch * bg_load);

  const bool is_transfer = kind != DwActivityKind::kQueryExec;
  if (is_transfer && stretched > 0) {
    // Bulk transfers saturate the disks only in short bursts; the rest of
    // the load pipeline (staging, validation, index builds) runs at the
    // steady demand.
    const Seconds burst = stretched * contention_.transfer_burst_duty;
    DwActivity burst_activity{kind, start, burst, io_demand, cpu_demand};
    activities_.push_back(burst_activity);
    DwActivity steady{kind, start + burst, stretched - burst,
                      contention_.transfer_steady_io, cpu_demand * 0.5};
    activities_.push_back(steady);
  } else {
    DwActivity activity{kind, start, stretched, io_demand, cpu_demand};
    activities_.push_back(activity);
  }
  return stretched;
}

Seconds ResourceLedger::LatencyUnderDemand(double io, double cpu) const {
  const double peak = std::max(io, cpu);
  if (peak > 1.0) {
    const double share =
        std::max(contention_.min_bg_share, 1.0 - (peak - 1.0));
    return background_.base_query_latency_s / share;
  }
  // Below saturation: mild queueing delay proportional to the extra
  // (multistore-added) demand on the busier resource.
  const double extra = std::max(
      {0.0, io - background_.io_demand, cpu - background_.cpu_demand});
  return background_.base_query_latency_s *
         (1.0 + contention_.sub_saturation_sensitivity * extra);
}

std::vector<DwTickSample> ResourceLedger::TickSeries(Seconds horizon) const {
  std::vector<DwTickSample> series;
  const Seconds tick = contention_.tick_s;
  const int n = static_cast<int>(std::ceil(horizon / tick));
  series.reserve(static_cast<size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) {
    const Seconds t0 = i * tick;
    const Seconds t1 = t0 + tick;
    DwTickSample sample;
    sample.time = t0;
    double io = background_.io_demand;
    double cpu = background_.cpu_demand;
    Seconds best_overlap = 0;
    for (const DwActivity& a : activities_) {
      const Seconds overlap =
          std::min(t1, a.start + a.duration) - std::max(t0, a.start);
      if (overlap <= 0) continue;
      const double frac = overlap / tick;
      io += a.io_demand * frac;
      cpu += a.cpu_demand * frac;
      if (overlap > best_overlap) {
        best_overlap = overlap;
        sample.activity.assign(DwActivityKindToString(a.kind));
      }
    }
    sample.bg_query_latency_s = LatencyUnderDemand(io, cpu);
    sample.io_used = std::min(1.0, io);
    sample.cpu_used = std::min(1.0, cpu);
    series.push_back(std::move(sample));
  }
  return series;
}

Seconds ResourceLedger::AverageBackgroundLatency(Seconds horizon) const {
  if (horizon <= 0) return background_.base_query_latency_s;
  const std::vector<DwTickSample> series = TickSeries(horizon);
  if (series.empty()) return background_.base_query_latency_s;
  Seconds sum = 0;
  for (const DwTickSample& s : series) sum += s.bg_query_latency_s;
  return sum / static_cast<double>(series.size());
}

double ResourceLedger::BackgroundSlowdown(Seconds horizon) const {
  return AverageBackgroundLatency(horizon) /
             background_.base_query_latency_s -
         1.0;
}

}  // namespace miso::dw
