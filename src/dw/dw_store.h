#ifndef MISO_DW_DW_STORE_H_
#define MISO_DW_DW_STORE_H_

#include "common/result.h"
#include "dw/dw_cost_model.h"
#include "views/view_catalog.h"

namespace miso::dw {

/// The DW store: a tightly-managed parallel warehouse holding the business
/// data plus a bounded set of permanently-loaded log views (the DW half of
/// the multistore design). The view storage budget `Bd` is strictly
/// enforced — DW table space is a controlled resource (§3.1).
///
/// Working sets migrated during query execution occupy *temporary* table
/// space and are discarded at query end; they never enter the catalog.
class DwStore {
 public:
  DwStore(const DwConfig& config, Bytes view_storage_budget)
      : cost_model_(config), catalog_(view_storage_budget) {}

  const DwCostModel& cost_model() const { return cost_model_; }
  views::ViewCatalog& catalog() { return catalog_; }
  const views::ViewCatalog& catalog() const { return catalog_; }

  /// Loads `view` into permanent table space (budget-enforced).
  Status LoadView(views::View view) { return catalog_.Add(std::move(view)); }

  /// Drops a permanent view.
  Status EvictView(views::ViewId id) { return catalog_.Remove(id); }

 private:
  DwCostModel cost_model_;
  views::ViewCatalog catalog_;
};

}  // namespace miso::dw

#endif  // MISO_DW_DW_STORE_H_
