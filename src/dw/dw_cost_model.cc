#include "dw/dw_cost_model.h"

#include <algorithm>
#include <vector>

namespace miso::dw {

using plan::NodePtr;
using plan::OpKind;

Result<Seconds> DwCostModel::CostDwSide(
    const std::unordered_set<const plan::OperatorNode*>& dw_side,
    const std::unordered_set<const plan::OperatorNode*>& temp_inputs) const {
  if (dw_side.empty()) return Seconds{0};

  // The set iterates in pointer-hash order, which varies between runs of
  // the same process; summing per-node terms in that order would make the
  // last few bits of the cost nondeterministic. Collect the terms and sum
  // them in sorted order instead, so the result is independent of where
  // the nodes happen to live on the heap.
  std::vector<double> terms;
  terms.reserve(dw_side.size());
  for (const plan::OperatorNode* node : dw_side) {
    if (!node->dw_executable()) {
      return Status::FailedPrecondition(
          std::string("operator not executable in DW: ") +
          std::string(plan::OpKindToString(node->kind())));
    }
    if (node->kind() == OpKind::kViewScan) continue;  // charged at consumer

    double bytes = 0;
    double rate_mbps =
        node->kind() == OpKind::kJoin || node->kind() == OpKind::kAggregate
            ? config_.op_mbps
            : config_.scan_mbps;
    // UDFs run as (slower) in-database functions; scale by CPU weight.
    if (node->kind() == OpKind::kUdf) {
      rate_mbps = config_.op_mbps / std::max(1.0, node->udf().cpu_factor);
    }

    for (const NodePtr& child : node->children()) {
      double child_bytes = static_cast<double>(child->stats().bytes);
      if (temp_inputs.count(child.get()) > 0) {
        // Migrated working set in an unindexed temp table: charge the
        // scan-rate penalty as extra bytes at the operator's rate.
        child_bytes *= config_.scan_mbps / config_.temp_scan_mbps;
      } else if (node->kind() == OpKind::kFilter &&
                 child->kind() == OpKind::kViewScan &&
                 child->view_scan().store == StoreKind::kDw) {
        // Index pruning on a permanent view.
        const double sel = node->filter().predicate.Selectivity();
        child_bytes *= std::max(sel, config_.index_floor);
      }
      bytes += child_bytes;
    }
    terms.push_back(bytes / config_.ClusterRate(rate_mbps));
  }
  std::sort(terms.begin(), terms.end());
  Seconds cost = config_.query_overhead_s;
  for (double term : terms) cost += term;
  return cost;
}

Result<Seconds> DwCostModel::FullPlanCost(const plan::Plan& plan) const {
  std::unordered_set<const plan::OperatorNode*> all;
  for (const NodePtr& node : plan.PostOrder()) all.insert(node.get());
  return CostDwSide(all, /*temp_inputs=*/{});
}

}  // namespace miso::dw
