#include "relation/catalog.h"

#include <utility>

namespace miso::relation {

Status Catalog::AddDataset(LogDataset dataset) {
  if (dataset.name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (dataset.raw_bytes < 0 || dataset.num_records < 0) {
    return Status::InvalidArgument("dataset sizes must be non-negative");
  }
  auto [it, inserted] = datasets_.emplace(dataset.name, std::move(dataset));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<LogDataset> Catalog::FindDataset(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasDataset(const std::string& name) const {
  return datasets_.count(name) > 0;
}

std::vector<std::string> Catalog::DatasetNames() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) names.push_back(name);
  return names;
}

Bytes Catalog::TotalRawBytes() const {
  Bytes total = 0;
  for (const auto& [name, ds] : datasets_) total += ds.raw_bytes;
  return total;
}

Catalog MakePaperCatalog() { return MakePaperCatalog(1.0); }

Catalog MakePaperCatalog(double scale) {
  Catalog catalog;

  // Average raw tweet ~2.5 KB of JSON; 1 TB => ~430M records.
  {
    LogDataset twitter;
    twitter.name = "twitter";
    twitter.raw_bytes = ScaleBytes(TiB(1.0), scale);
    twitter.num_records = twitter.raw_bytes / 2560;
    twitter.schema = Schema({
        Field("user_id", DataType::kInt64, 8, 40'000'000),
        Field("tweet_id", DataType::kInt64, 8, twitter.num_records),
        Field("ts", DataType::kTimestamp, 8, 31'536'000),
        Field("text", DataType::kString, 250, twitter.num_records),
        Field("topic", DataType::kString, 16, 5'000),
        Field("lang", DataType::kString, 4, 60),
        Field("geo_lat", DataType::kDouble, 8, 1'000'000),
        Field("geo_lon", DataType::kDouble, 8, 1'000'000),
    });
    catalog.AddDataset(std::move(twitter));
  }

  // Average raw check-in ~1.8 KB of JSON; 1 TB => ~600M records.
  {
    LogDataset foursquare;
    foursquare.name = "foursquare";
    foursquare.raw_bytes = ScaleBytes(TiB(1.0), scale);
    foursquare.num_records = foursquare.raw_bytes / 1843;
    foursquare.schema = Schema({
        Field("user_id", DataType::kInt64, 8, 25'000'000),
        Field("checkin_id", DataType::kInt64, 8, foursquare.num_records),
        Field("ts", DataType::kTimestamp, 8, 31'536'000),
        Field("checkin_loc", DataType::kInt64, 8, 2'000'000),
        Field("category", DataType::kString, 16, 400),
        Field("shout", DataType::kString, 80, foursquare.num_records / 4),
    });
    catalog.AddDataset(std::move(foursquare));
  }

  // Static reference data: 12 GB of landmark descriptions.
  {
    LogDataset landmarks;
    landmarks.name = "landmarks";
    landmarks.raw_bytes = ScaleBytes(GiB(12.0), scale);
    landmarks.num_records = landmarks.raw_bytes / 6144;
    landmarks.schema = Schema({
        // Named after the foursquare check-in location it joins with
        // (single-name equi-join keys).
        Field("checkin_loc", DataType::kInt64, 8, 2'000'000),
        Field("lname", DataType::kString, 32, 2'000'000),
        Field("city", DataType::kString, 16, 30'000),
        Field("region", DataType::kString, 16, 2'000),
        Field("kind", DataType::kString, 16, 250),
        Field("rating", DataType::kDouble, 8, 50),
    });
    catalog.AddDataset(std::move(landmarks));
  }

  return catalog;
}

}  // namespace miso::relation
