#ifndef MISO_RELATION_SCHEMA_H_
#define MISO_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace miso::relation {

/// Primitive value types extracted from the semi-structured logs.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kTimestamp,
  kBool,
};

std::string_view DataTypeToString(DataType type);

/// Average encoded width of a value of `type` in bytes. String widths are
/// attached per-field (see Field::avg_width), this is the default.
Bytes DefaultWidth(DataType type);

/// One extractable attribute of a log record ("user_id", "checkin_loc", ...)
/// together with the statistics the cardinality estimator needs.
struct Field {
  std::string name;
  DataType type = DataType::kString;
  /// Average encoded width in bytes once extracted into columnar/relational
  /// form (raw JSON is wider; the Extract operator applies the ratio).
  Bytes avg_width = 0;
  /// Number of distinct values in the dataset this field belongs to.
  int64_t distinct_values = 1;

  Field() = default;
  Field(std::string name_in, DataType type_in, Bytes width, int64_t ndv)
      : name(std::move(name_in)),
        type(type_in),
        avg_width(width),
        distinct_values(ndv) {}
};

/// Ordered collection of named fields. Immutable after construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }

  /// Looks a field up by name.
  Result<Field> FindField(const std::string& name) const;
  bool HasField(const std::string& name) const;

  /// Sum of avg widths: bytes per record in extracted (relational) form.
  Bytes RecordWidth() const;

  /// Restriction of this schema to `names`; errors on an unknown name.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Schema of the concatenation of `this` and `right` (join output).
  /// Duplicate names from the right side are suffixed with "_r".
  Schema ConcatWith(const Schema& right) const;

 private:
  std::vector<Field> fields_;
};

}  // namespace miso::relation

#endif  // MISO_RELATION_SCHEMA_H_
