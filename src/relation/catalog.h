#ifndef MISO_RELATION_CATALOG_H_
#define MISO_RELATION_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "relation/schema.h"

namespace miso::relation {

/// Statistical description of one raw log stored as flat files in HV.
///
/// MISO never inspects record contents during tuning — plans, costs, and
/// view sizes depend only on byte volumes, record counts, and per-field
/// statistics — so the catalog is the complete data substrate for the
/// simulator. (`miso::datagen` can synthesize matching records for the
/// example programs.)
struct LogDataset {
  std::string name;
  /// Total size of the raw (JSON/XML) files in HDFS.
  Bytes raw_bytes = 0;
  int64_t num_records = 0;
  /// Fields extractable by a SerDe from the raw records.
  Schema schema;

  /// Raw bytes per record (JSON framing included).
  Bytes RawRecordWidth() const {
    return num_records > 0 ? raw_bytes / num_records : 0;
  }
};

/// Name -> dataset registry shared by the workload generator, the planner's
/// estimator, and both store simulators.
class Catalog {
 public:
  Catalog() = default;

  Status AddDataset(LogDataset dataset);
  Result<LogDataset> FindDataset(const std::string& name) const;
  bool HasDataset(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;

  /// Sum of raw sizes of all registered logs ("base data" size of HV).
  Bytes TotalRawBytes() const;

 private:
  std::map<std::string, LogDataset> datasets_;
};

/// The three datasets of the paper's evaluation (§5.1): 1 TB of Twitter
/// tweets, 1 TB of Foursquare check-ins, and 12 GB of Landmarks reference
/// data. `user_id` is shared by twitter/foursquare; `checkin_loc` /
/// `landmark_id` link foursquare and landmarks.
Catalog MakePaperCatalog();

/// A scaled-down variant (sizes divided by `factor`) for fast tests.
Catalog MakePaperCatalog(double scale);

}  // namespace miso::relation

#endif  // MISO_RELATION_CATALOG_H_
