#include "relation/schema.h"

#include <algorithm>

namespace miso::relation {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
    case DataType::kBool:
      return "bool";
  }
  return "unknown";
}

Bytes DefaultWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kTimestamp:
      return 8;
    case DataType::kString:
      return 24;
    case DataType::kBool:
      return 1;
  }
  return 8;
}

Result<Field> Schema::FindField(const std::string& name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return f;
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return std::any_of(fields_.begin(), fields_.end(),
                     [&](const Field& f) { return f.name == name; });
}

Bytes Schema::RecordWidth() const {
  Bytes width = 0;
  for (const Field& f : fields_) width += f.avg_width;
  return width;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> projected;
  projected.reserve(names.size());
  for (const std::string& name : names) {
    MISO_ASSIGN_OR_RETURN(Field f, FindField(name));
    projected.push_back(std::move(f));
  }
  return Schema(std::move(projected));
}

Schema Schema::ConcatWith(const Schema& right) const {
  std::vector<Field> merged = fields_;
  merged.reserve(fields_.size() + right.fields_.size());
  for (Field f : right.fields_) {
    if (HasField(f.name)) f.name += "_r";
    merged.push_back(std::move(f));
  }
  return Schema(std::move(merged));
}

}  // namespace miso::relation
