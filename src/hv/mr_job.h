#ifndef MISO_HV_MR_JOB_H_
#define MISO_HV_MR_JOB_H_

#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "plan/plan.h"

namespace miso::hv {

/// One MapReduce job of an HV execution.
///
/// A logical (sub)plan is segmented into jobs at *boundary* operators —
/// Join and Aggregate (shuffles) and Udf (separate streaming stage).
/// Non-boundary operators (Scan, Extract, Filter, Project, ViewScan)
/// pipeline into the map phase of the job that consumes them. Each job
/// writes its output to HDFS; the map-side results feeding a shuffle are
/// also materialized. Both are the opportunistic views of the paper (§1):
/// `materialization_points` lists every node whose result hits disk.
struct MapReduceJob {
  /// The operator producing this job's output (a boundary node, or the
  /// subtree root for a trailing map-only job).
  plan::NodePtr output_node;

  /// Tops of the map-side pipelines feeding `output_node` (empty for
  /// trailing map-only jobs; for those, output_node is the only result).
  std::vector<plan::NodePtr> map_outputs;

  /// Nodes whose results are persisted to HDFS by this job and are
  /// therefore harvestable as opportunistic views.
  std::vector<plan::NodePtr> materialization_points;

  // Byte accounting, all estimated.
  Bytes raw_input_bytes = 0;           // from Scan leaves (raw logs)
  Bytes view_input_bytes = 0;          // from HV ViewScan leaves
  Bytes intermediate_input_bytes = 0;  // outputs of upstream jobs
  Bytes shuffle_bytes = 0;             // bytes through shuffle+sort
  Bytes output_bytes = 0;              // written to HDFS
  /// Σ (cpu_factor * input_bytes) over UDFs evaluated in this job.
  double udf_cpu_bytes = 0;
};

/// Segments the subtree rooted at `root` into MapReduce jobs, bottom-up
/// (jobs appear in execution order: producers before consumers).
///
/// Errors if the subtree contains a DW-resident ViewScan — those cannot be
/// read by HV; the optimizer must place them on the DW side of a split.
Result<std::vector<MapReduceJob>> SegmentIntoJobs(const plan::NodePtr& root);

}  // namespace miso::hv

#endif  // MISO_HV_MR_JOB_H_
