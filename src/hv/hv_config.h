#ifndef MISO_HV_HV_CONFIG_H_
#define MISO_HV_HV_CONFIG_H_

#include "common/units.h"

namespace miso::hv {

/// Cost-model constants of the HV (Hive/Hadoop) store simulator.
///
/// Defaults model the paper's 15-node Hive 0.7.1 / Hadoop 0.20.2 cluster
/// (§5.1): per-job startup dominates small jobs, raw-log scans are
/// parse-bound (JSON SerDe), and every job output is written back to HDFS.
/// Rates are per node in MB/s; the cluster works at `num_nodes` times the
/// per-node rate. Constants are calibrated so a full evaluation of the
/// paper's complex analyst query costs ~10^4 simulated seconds (Figure 3).
struct HvConfig {
  int num_nodes = 15;

  /// Fixed scheduling/startup latency per MapReduce job.
  Seconds job_startup_s = 60.0;

  /// Minimum per-job work time regardless of data volume: task scheduling
  /// waves, JVM spin-up, speculative stragglers, and commit overheads give
  /// Hadoop-0.20-era jobs a floor of a few minutes even on tiny inputs.
  /// (This floor is what makes view-assisted queries still cost kiloseconds
  /// in HV while the same work takes seconds in the DW — the asymmetry at
  /// the heart of the paper's Figures 4-6.)
  Seconds job_min_work_s = 360.0;

  /// Map-phase scan of raw JSON logs (SerDe parse-bound).
  double raw_read_mbps = 20.0;

  /// Reading already-materialized data (job outputs, views) from HDFS.
  double inter_read_mbps = 12.0;

  /// Shuffle + sort between map and reduce (charged on shuffled bytes).
  double shuffle_mbps = 10.0;

  /// Writing a job's output to HDFS (3-way replication).
  double write_mbps = 18.0;

  /// Baseline UDF throughput; a UDF with cpu_factor f costs
  /// (f * input_bytes) / (num_nodes * udf_cpu_mbps).
  double udf_cpu_mbps = 50.0;

  /// Bytes/second for the whole cluster at per-node rate `mbps`.
  double ClusterRate(double mbps) const {
    return mbps * 1e6 * static_cast<double>(num_nodes);
  }
};

}  // namespace miso::hv

#endif  // MISO_HV_HV_CONFIG_H_
