#include "hv/hv_cost_model.h"

namespace miso::hv {

Seconds HvCostModel::JobCost(const MapReduceJob& job) const {
  Seconds work = 0;
  work += static_cast<double>(job.raw_input_bytes) /
          config_.ClusterRate(config_.raw_read_mbps);
  work += static_cast<double>(job.view_input_bytes +
                              job.intermediate_input_bytes) /
          config_.ClusterRate(config_.inter_read_mbps);
  work += static_cast<double>(job.shuffle_bytes) /
          config_.ClusterRate(config_.shuffle_mbps);
  work += job.udf_cpu_bytes / config_.ClusterRate(config_.udf_cpu_mbps);
  work += static_cast<double>(job.output_bytes) /
          config_.ClusterRate(config_.write_mbps);
  // Small jobs are floored by task-wave and JVM overheads.
  return config_.job_startup_s + std::max(work, config_.job_min_work_s);
}

Seconds HvCostModel::JobsCost(const std::vector<MapReduceJob>& jobs) const {
  Seconds total = 0;
  for (const MapReduceJob& job : jobs) total += JobCost(job);
  return total;
}

Result<Seconds> HvCostModel::SubtreeCost(const plan::NodePtr& root) const {
  MISO_ASSIGN_OR_RETURN(std::vector<MapReduceJob> jobs, SegmentIntoJobs(root));
  return JobsCost(jobs);
}

}  // namespace miso::hv
