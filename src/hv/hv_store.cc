#include "hv/hv_store.h"

#include <cstddef>
#include <unordered_set>

#include "common/hash.h"

namespace miso::hv {

Result<HvExecution> HvStore::Execute(
    const plan::NodePtr& root, int query_index, Seconds now,
    uint64_t* next_view_id, uint64_t exclude_signature,
    const fault::FaultInjector* injector, const RetryPolicy* retry,
    uint64_t fault_entity, const views::ViewCatalog* harvest_catalog) const {
  const views::ViewCatalog& dedup_catalog =
      harvest_catalog != nullptr ? *harvest_catalog : catalog_;
  MISO_ASSIGN_OR_RETURN(std::vector<MapReduceJob> jobs, SegmentIntoJobs(root));

  HvExecution result;
  result.exec_time = cost_model_.JobsCost(jobs);

  if (injector != nullptr && retry != nullptr) {
    for (size_t j = 0; j < jobs.size(); ++j) {
      const Seconds job_s = cost_model_.JobCost(jobs[j]);
      const uint64_t entity =
          HashCombine(fault_entity, static_cast<uint64_t>(j));
      const RetryStats stats = RunWithRetry(
          *retry, [&](int attempt, Seconds* charged) {
            const fault::FaultDecision d =
                injector->Decide(fault::FaultSite::kHvJob, entity, attempt);
            *charged = d.fail ? d.partial_fraction * job_s : job_s;
            return !d.fail;
          });
      result.fault.Merge(stats);
      if (stats.exhausted) {
        return fault::ExhaustedError(fault::FaultSite::kHvJob, entity,
                                     stats.attempts);
      }
    }
  }

  std::unordered_set<uint64_t> harvested;
  for (const MapReduceJob& job : jobs) {
    for (const plan::NodePtr& node : job.materialization_points) {
      const uint64_t sig = node->signature();
      if (sig == exclude_signature) continue;  // the query's final result
      if (harvested.count(sig) > 0) continue;
      if (dedup_catalog.FindExact(sig).has_value()) continue;  // already have it
      harvested.insert(sig);
      views::View view = views::ViewFromNode(*node);
      view.id = (*next_view_id)++;
      view.created_by_query = query_index;
      view.created_at = now;
      result.produced_views.push_back(std::move(view));
    }
  }
  return result;
}

}  // namespace miso::hv
