#include "hv/hv_store.h"

#include <unordered_set>

namespace miso::hv {

Result<HvExecution> HvStore::Execute(const plan::NodePtr& root,
                                     int query_index, Seconds now,
                                     uint64_t* next_view_id,
                                     uint64_t exclude_signature) const {
  MISO_ASSIGN_OR_RETURN(std::vector<MapReduceJob> jobs, SegmentIntoJobs(root));

  HvExecution result;
  result.exec_time = cost_model_.JobsCost(jobs);

  std::unordered_set<uint64_t> harvested;
  for (const MapReduceJob& job : jobs) {
    for (const plan::NodePtr& node : job.materialization_points) {
      const uint64_t sig = node->signature();
      if (sig == exclude_signature) continue;  // the query's final result
      if (harvested.count(sig) > 0) continue;
      if (catalog_.FindExact(sig).has_value()) continue;  // already have it
      harvested.insert(sig);
      views::View view = views::ViewFromNode(*node);
      view.id = (*next_view_id)++;
      view.created_by_query = query_index;
      view.created_at = now;
      result.produced_views.push_back(std::move(view));
    }
  }
  return result;
}

}  // namespace miso::hv
