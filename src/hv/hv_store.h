#ifndef MISO_HV_HV_STORE_H_
#define MISO_HV_HV_STORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "fault/fault.h"
#include "hv/hv_cost_model.h"
#include "views/view_catalog.h"

namespace miso::hv {

/// Outcome of executing (the HV part of) a query in the HV store.
struct HvExecution {
  /// Simulated execution time (clean job cost; fault charges are
  /// reported separately in `fault`).
  Seconds exec_time = 0;
  /// Opportunistic views materialized as by-products (fully-formed View
  /// records, already assigned ids, not yet added to any catalog).
  std::vector<views::View> produced_views;
  /// Retry bookkeeping when executed under fault injection: wasted_s is
  /// re-run MapReduce work (a killed job loses its partial progress),
  /// backoff_s the inter-attempt waits. Zero when no injector was passed.
  fault::FaultAccounting fault;
};

/// The HV store: raw logs + a view catalog, executing plan subtrees as
/// MapReduce jobs and emitting their materializations as opportunistic
/// views (paper §3: "query processing using HDFS materializes intermediate
/// results for fault-tolerance ... we retain these by-products").
///
/// Per §3.1, HV is loosely managed: opportunistic views created between
/// reorganizations are admitted beyond the storage budget; the MISO tuner
/// re-imposes the budget at each reorganization phase.
class HvStore {
 public:
  HvStore(const HvConfig& config, Bytes view_storage_budget)
      : cost_model_(config), catalog_(view_storage_budget) {}

  const HvCostModel& cost_model() const { return cost_model_; }
  views::ViewCatalog& catalog() { return catalog_; }
  const views::ViewCatalog& catalog() const { return catalog_; }

  /// Executes the subtree rooted at `root`, harvesting every
  /// materialization point whose signature is not already present in the
  /// store as a new opportunistic view. `query_index` / `now` stamp the
  /// harvested views; `next_view_id` supplies ids and is advanced.
  /// `exclude_signature` (the full query's result, which is returned to
  /// the client rather than retained) is never harvested.
  ///
  /// The harvested views are returned but NOT added to the catalog — the
  /// caller (the simulator) decides retention policy per system variant.
  ///
  /// When `injector` is non-null, each MapReduce job runs under fault
  /// injection (site kHvJob, entity derived from `fault_entity` and the
  /// job's index) with `retry` governing re-runs; a job whose retry
  /// budget is exhausted fails the whole execution with an internal
  /// error. A null injector is the exact unfaulted code path.
  ///
  /// `harvest_catalog`, when non-null, replaces the store's own catalog
  /// for the already-materialized dedup check only — the online server's
  /// speculative wave workers pass their frozen catalog snapshot so the
  /// harvest decision reads the same design the plan was made against,
  /// not the mutating live catalog.
  Result<HvExecution> Execute(
      const plan::NodePtr& root, int query_index, Seconds now,
      uint64_t* next_view_id, uint64_t exclude_signature = 0,
      const fault::FaultInjector* injector = nullptr,
      const RetryPolicy* retry = nullptr, uint64_t fault_entity = 0,
      const views::ViewCatalog* harvest_catalog = nullptr) const;

 private:
  HvCostModel cost_model_;
  views::ViewCatalog catalog_;
};

}  // namespace miso::hv

#endif  // MISO_HV_HV_STORE_H_
