#ifndef MISO_HV_HV_COST_MODEL_H_
#define MISO_HV_HV_COST_MODEL_H_

#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "hv/hv_config.h"
#include "hv/mr_job.h"

namespace miso::hv {

/// MRShare-style analytical cost model for HV executions (the paper costs
/// HV with the model of Nykiel et al., MRShare; §3.1). Costs are charged
/// per MapReduce phase: startup, map-side read (raw logs parse-bound,
/// materialized data faster), shuffle+sort, UDF CPU, and HDFS output write.
class HvCostModel {
 public:
  explicit HvCostModel(const HvConfig& config) : config_(config) {}

  const HvConfig& config() const { return config_; }

  /// Cost of one job.
  Seconds JobCost(const MapReduceJob& job) const;

  /// Total cost of an ordered job list (jobs run serially, as Hive 0.7
  /// schedules the stages of one query).
  Seconds JobsCost(const std::vector<MapReduceJob>& jobs) const;

  /// Segments `root` and returns the summed job cost. This is the cost of
  /// evaluating the subtree entirely inside HV.
  Result<Seconds> SubtreeCost(const plan::NodePtr& root) const;

 private:
  HvConfig config_;
};

}  // namespace miso::hv

#endif  // MISO_HV_HV_COST_MODEL_H_
