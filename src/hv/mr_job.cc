#include "hv/mr_job.h"

#include <functional>

namespace miso::hv {

using plan::NodePtr;
using plan::OpKind;

namespace {

bool IsBoundary(const plan::OperatorNode& node) {
  return node.IsJobBoundary();
}

/// Walks the map-side pipeline hanging below `node` (which is itself part
/// of the current job), accumulating input byte counts and recording the
/// boundary children whose jobs feed this one.
struct PipelineWalk {
  Bytes raw_input = 0;
  Bytes view_input = 0;
  Bytes intermediate_input = 0;
  double udf_cpu = 0;  // unused: UDFs never appear inside pipelines
  std::vector<NodePtr> upstream_boundaries;
  Status status;

  void Walk(const NodePtr& node) {
    if (!status.ok() || node == nullptr) return;
    switch (node->kind()) {
      case OpKind::kScan:
        raw_input += node->stats().bytes;
        return;
      case OpKind::kViewScan:
        if (node->view_scan().store == StoreKind::kDw) {
          status = Status::FailedPrecondition(
              "HV execution cannot read a DW-resident view (view id " +
              std::to_string(node->view_scan().view_id) + ")");
          return;
        }
        view_input += node->stats().bytes;
        return;
      case OpKind::kJoin:
      case OpKind::kAggregate:
      case OpKind::kUdf:
        // Output of an upstream job, read back from HDFS.
        intermediate_input += node->stats().bytes;
        upstream_boundaries.push_back(node);
        return;
      case OpKind::kExtract:
      case OpKind::kFilter:
      case OpKind::kProject:
        for (const NodePtr& child : node->children()) Walk(child);
        return;
    }
  }
};

}  // namespace

Result<std::vector<MapReduceJob>> SegmentIntoJobs(const NodePtr& root) {
  if (root == nullptr) {
    return Status::InvalidArgument("cannot segment an empty subtree");
  }

  std::vector<MapReduceJob> jobs;

  // Recursive segmentation; emits producer jobs before consumers.
  std::function<Status(const NodePtr&)> emit_jobs_for_boundary =
      [&](const NodePtr& boundary) -> Status {
    MapReduceJob job;
    job.output_node = boundary;
    job.output_bytes = boundary->stats().bytes;

    for (const NodePtr& child : boundary->children()) {
      PipelineWalk walk;
      if (IsBoundary(*child)) {
        // The child job's output is read straight from HDFS: no map-side
        // pipeline, no extra materialization.
        MISO_RETURN_IF_ERROR(emit_jobs_for_boundary(child));
        job.intermediate_input_bytes += child->stats().bytes;
      } else {
        walk.Walk(child);
        MISO_RETURN_IF_ERROR(walk.status);
        for (const NodePtr& upstream : walk.upstream_boundaries) {
          MISO_RETURN_IF_ERROR(emit_jobs_for_boundary(upstream));
        }
        job.raw_input_bytes += walk.raw_input;
        job.view_input_bytes += walk.view_input;
        job.intermediate_input_bytes += walk.intermediate_input;
        // The map-side result (child's output) is materialized for the
        // shuffle and is harvestable, unless it is a bare leaf read.
        if (child->kind() != OpKind::kScan &&
            child->kind() != OpKind::kViewScan) {
          job.map_outputs.push_back(child);
          job.materialization_points.push_back(child);
        }
      }
      if (boundary->kind() == OpKind::kJoin ||
          boundary->kind() == OpKind::kAggregate) {
        job.shuffle_bytes += child->stats().bytes;
      }
    }

    if (boundary->kind() == OpKind::kUdf) {
      Bytes input = 0;
      for (const NodePtr& child : boundary->children()) {
        input += child->stats().bytes;
      }
      job.udf_cpu_bytes =
          static_cast<double>(input) * boundary->udf().cpu_factor;
    }

    job.materialization_points.push_back(boundary);
    jobs.push_back(std::move(job));
    return Status::OK();
  };

  if (IsBoundary(*root)) {
    MISO_RETURN_IF_ERROR(emit_jobs_for_boundary(root));
    return jobs;
  }

  // Root is a pipeline operator: trailing map-only job (e.g. a final
  // Project over the last Aggregate, or a bare re-filter of a view).
  PipelineWalk walk;
  walk.Walk(root);
  MISO_RETURN_IF_ERROR(walk.status);
  for (const NodePtr& upstream : walk.upstream_boundaries) {
    MISO_RETURN_IF_ERROR(emit_jobs_for_boundary(upstream));
  }
  // A bare Scan/ViewScan root does no work; represent it as a job with no
  // output write so costing degenerates gracefully.
  MapReduceJob job;
  job.output_node = root;
  job.raw_input_bytes = walk.raw_input;
  job.view_input_bytes = walk.view_input;
  job.intermediate_input_bytes = walk.intermediate_input;
  job.output_bytes = root->stats().bytes;
  if (root->kind() != OpKind::kScan && root->kind() != OpKind::kViewScan) {
    job.materialization_points.push_back(root);
  }
  jobs.push_back(std::move(job));
  return jobs;
}

}  // namespace miso::hv
