#ifndef MISO_SIM_SIMULATOR_H_
#define MISO_SIM_SIMULATOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dw/dw_config.h"
#include "optimizer/whatif_cache.h"
#include "dw/resource_model.h"
#include "fault/fault.h"
#include "hv/hv_config.h"
#include "relation/catalog.h"
#include "sim/etl.h"
#include "sim/report.h"
#include "sim/variants.h"
#include "transfer/transfer_model.h"
#include "tuner/miso_tuner.h"
#include "workload/evolutionary.h"

namespace miso::sim {

/// Everything needed to run one workload under one system variant.
struct SimConfig {
  SystemVariant variant = SystemVariant::kMsMiso;

  /// View storage budgets (Bh, Bd) and per-reorganization transfer budget
  /// (Bt), in bytes.
  Bytes hv_storage_budget = 4 * kTiB;
  Bytes dw_storage_budget = 400 * kGiB;
  Bytes transfer_budget = 10 * kGiB;

  /// Reorganization cadence and tuner parameters (§5.1: reorganize every
  /// 1/10 of the workload = 3 queries; history 6, epoch 3). §3.1 also
  /// allows time-based triggering: when `reorg_every_seconds` > 0, a
  /// reorganization additionally fires once that much simulated time has
  /// elapsed since the previous one. Either trigger may be disabled by
  /// setting it to 0.
  int reorg_every = 3;
  Seconds reorg_every_seconds = 0;
  int history_window = 6;
  int epoch_length = 3;
  double benefit_decay = 0.6;
  bool store_specific_benefit = true;
  bool handle_interactions = true;
  bool retain_unselected_views = true;

  /// Fixed design-computation time charged per reorganization phase (the
  /// tuner itself is lightweight; movements dominate).
  Seconds tune_compute_s = 30.0;

  /// Worker threads for candidate-split costing inside the optimizer and
  /// for multi-seed sweeps (`RunSeedSweep`). 0 resolves to
  /// `ThreadPool::DefaultThreadCount()` (the `MISO_THREADS` environment
  /// variable, else hardware concurrency); 1 runs the exact legacy
  /// serial code path. Simulation results are bit-identical across
  /// thread counts either way — this knob trades wall-clock only.
  int threads = 0;

  /// Persistent what-if cost cache shared by every reorganization of a
  /// run (optimizer/whatif_cache.h): probe costs keyed by (query
  /// signature, relevant-view fingerprints, placement) survive the
  /// j-query reorg cadence, so successive Tune calls — which share most
  /// of their window and candidate pool — skip most optimizer work.
  /// Caching is exact: every tuner output is byte-identical with the
  /// cache on or off, for any thread count (whatif_cache_bytes bounds the
  /// LRU). Sweeps keep one cache per seed; nothing is shared across
  /// seeds.
  bool whatif_cache = true;
  Bytes whatif_cache_bytes = optimizer::WhatIfCache::kDefaultMaxBytes;

  /// Observability (docs/TELEMETRY.md). `metrics` turns the process-wide
  /// metrics registry on for the duration of the run; `trace` does the
  /// same for the JSONL decision trace. Both default off — so do the
  /// `MISO_METRICS` / `MISO_TRACE` environment overrides — and a run
  /// whose knob is false leaves an externally enabled gate untouched.
  /// Emission is deterministic: identical runs produce byte-identical
  /// traces for any thread count (per-seed capture + seed-order merge in
  /// `RunSeedSweep`).
  bool metrics = false;
  bool trace = false;

  hv::HvConfig hv;
  dw::DwConfig dw;
  transfer::TransferConfig transfer;
  EtlConfig etl;

  /// Fault injection (src/fault/). The default spec resolves from the
  /// environment (`MISO_FAULT_PROFILE` etc.) and is *off* unless the user
  /// opts in, in which case HV jobs, transfers and DW loads fail and
  /// retry with simulated backoff, DW outage windows degrade queries to
  /// HV-only plans, and reorganizations may crash mid-move and recover
  /// through the journal. Disabled injection is zero-cost: the run takes
  /// the exact unfaulted code path. The fault stream is keyed by
  /// (fault seed, query/reorg id, attempt), so a faulted run is
  /// byte-identical across `MISO_THREADS`.
  fault::FaultSpec fault;

  /// Optional observer invoked after every reorganization phase with the
  /// post-reorg state of both stores' view catalogs. Used by tests to
  /// assert the design invariants (budgets respected, Vh ∩ Vd = ∅)
  /// throughout a run, and by embedders for monitoring.
  struct ReorgSnapshot {
    int query_index = 0;
    int reorg_index = 0;
    Bytes hv_used = 0;
    Bytes dw_used = 0;
    std::vector<views::ViewId> hv_ids;
    std::vector<views::ViewId> dw_ids;
    Bytes moved_to_dw = 0;
    Bytes moved_to_hv = 0;
  };
  std::function<void(const ReorgSnapshot&)> reorg_observer;

  /// Background reporting workload on DW (§5.4). Defaults to an idle DW
  /// (no demand); set to workload::SpareIo40() etc. for the interference
  /// experiments.
  dw::BackgroundWorkload background{/*io_demand=*/0.0, /*cpu_demand=*/0.0,
                                    /*base_query_latency_s=*/1.06};
  dw::ContentionConfig contention;
};

/// Simulates a query stream against one system variant, producing the
/// full run report (per-query records, TTI components, DW resource
/// series). Deterministic.
class MultistoreSimulator {
 public:
  MultistoreSimulator(const relation::Catalog* catalog,
                      const SimConfig& config);

  const SimConfig& config() const { return config_; }

  /// Borrows an external pool for the optimizer's candidate costing
  /// instead of creating one per Run from `config.threads`. Used by
  /// `RunSeedSweep` so concurrent seed runs share one set of workers
  /// (nested ParallelFor from a worker degrades to the serial loop,
  /// keeping every seed's result bit-identical regardless).
  void SetThreadPool(ThreadPool* pool) { external_pool_ = pool; }

  /// Runs the whole workload (arrival order = vector order).
  ///
  /// Telemetry caveat: `config.metrics`/`config.trace` toggle process-global
  /// flags (the metrics registry and trace sink are process-wide, so there is
  /// no per-run scope to confine them to). Concurrent Run calls on separate
  /// simulators are only supported when their obs configs agree — differing
  /// configs race on the save/restore of those flags and can leave telemetry
  /// toggled wrong after one run finishes. `RunSeedSweep` is safe: it engages
  /// the gates once on the sweep thread before fanning out.
  Result<RunReport> Run(const std::vector<workload::WorkloadQuery>& queries);

 private:
  const relation::Catalog* catalog_;
  SimConfig config_;
  ThreadPool* external_pool_ = nullptr;
};

/// Convenience: generate the paper's 32-query workload and run it under
/// `config`.
Result<RunReport> RunPaperWorkload(const relation::Catalog* catalog,
                                   const SimConfig& config,
                                   uint64_t workload_seed = 42);

/// Multi-seed sweep: generates the paper workload for every seed and
/// simulates each one independently, fanning the seeds out over
/// `config.threads` workers (resolved as in SimConfig). The reports are
/// merged back in seed order — element i of the result always belongs to
/// seeds[i], and is bit-identical to a serial `RunPaperWorkload` of that
/// seed for any thread count; on failure the error of the lowest-indexed
/// failing seed is returned. Each seed's simulation is self-contained
/// (own stores, optimizer, tuner, ledger); only the immutable catalog
/// and an optional `config.reorg_observer` are shared, so a non-null
/// observer must be thread-safe when threads > 1.
Result<std::vector<RunReport>> RunSeedSweep(const relation::Catalog* catalog,
                                            const SimConfig& config,
                                            const std::vector<uint64_t>& seeds);

}  // namespace miso::sim

#endif  // MISO_SIM_SIMULATOR_H_
