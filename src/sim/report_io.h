#ifndef MISO_SIM_REPORT_IO_H_
#define MISO_SIM_REPORT_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "sim/report.h"

namespace miso::sim {

/// CSV serializations of a run report, for downstream plotting (the
/// figures of the paper are one `gnuplot`/pandas invocation away from
/// these files).

/// Per-query rows: index, name, start, completion, hv_exec, dump,
/// transfer_load, dw_exec, ops_dw, ops_total, transferred_bytes,
/// views_used.
std::string QueriesToCsv(const RunReport& report);

/// DW resource tick rows (Figure 9): time, io, cpu, bg_latency, activity.
std::string TicksToCsv(const RunReport& report);

/// One summary row: variant, tti, hv, dw, transfer, tune, etl, reorgs.
std::string SummaryToCsv(const RunReport& report, bool with_header);

/// Full JSON serialization of a run report: *every* RunReport and
/// QueryRecord field, including the serving-path counters (plan_cache_*,
/// waves_speculative/waves_replanned) and the overload-protection fields
/// (sessions_shed/failed, breaker_*) the CSVs do not carry. Doubles are
/// printed with %.17g so `ReportFromJson(ReportToJson(r))` round-trips
/// bit-exactly — pinned field-by-field by tests, so a field added to
/// RunReport without serialization support fails loudly instead of
/// silently dropping.
std::string ReportToJson(const RunReport& report);

/// Parses `ReportToJson` output (any standard JSON with the same shape).
/// Unknown keys are ignored; absent keys keep their default values;
/// malformed JSON or mistyped fields fail.
Result<RunReport> ReportFromJson(const std::string& json);

/// Writes `content` to `path` (overwrites).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace miso::sim

#endif  // MISO_SIM_REPORT_IO_H_
