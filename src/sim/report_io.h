#ifndef MISO_SIM_REPORT_IO_H_
#define MISO_SIM_REPORT_IO_H_

#include <string>

#include "common/status.h"
#include "sim/report.h"

namespace miso::sim {

/// CSV serializations of a run report, for downstream plotting (the
/// figures of the paper are one `gnuplot`/pandas invocation away from
/// these files).

/// Per-query rows: index, name, start, completion, hv_exec, dump,
/// transfer_load, dw_exec, ops_dw, ops_total, transferred_bytes,
/// views_used.
std::string QueriesToCsv(const RunReport& report);

/// DW resource tick rows (Figure 9): time, io, cpu, bg_latency, activity.
std::string TicksToCsv(const RunReport& report);

/// One summary row: variant, tti, hv, dw, transfer, tune, etl, reorgs.
std::string SummaryToCsv(const RunReport& report, bool with_header);

/// Writes `content` to `path` (overwrites).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace miso::sim

#endif  // MISO_SIM_REPORT_IO_H_
