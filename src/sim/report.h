#ifndef MISO_SIM_REPORT_H_
#define MISO_SIM_REPORT_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "dw/resource_model.h"
#include "optimizer/multistore_plan.h"
#include "sim/variants.h"

namespace miso::sim {

/// Execution record of one workload query.
struct QueryRecord {
  int index = 0;
  std::string name;
  /// Simulated time the query was submitted / completed (TTI clock:
  /// includes preceding ETL and reorganization phases).
  Seconds start_time = 0;
  Seconds completion_time = 0;
  /// Per-component execution time (HV / dump / transfer+load / DW).
  optimizer::CostBreakdown breakdown;
  /// Operator placement (Figure 6's ratios).
  int ops_total = 0;
  int ops_dw = 0;
  Bytes transferred_bytes = 0;
  /// Views read by the executed plan.
  int views_used = 0;

  /// Fault bookkeeping (all zero when injection is disabled). `degraded`
  /// marks a query re-planned HV-only because the DW was in an outage
  /// window; the anatomy then shows the degradation (dw_exec_s == 0, all
  /// work in hv_exec_s). Wasted/backoff seconds are already folded into
  /// the breakdown and completion time — these fields break them out.
  bool degraded = false;
  int fault_injected = 0;
  int fault_retries = 0;
  Seconds fault_wasted_s = 0;
  Seconds fault_backoff_s = 0;

  /// Online-server fields (zero for plain simulator runs). `epoch` is the
  /// design epoch the session planned against; `reorg_wait_s` is the
  /// simulated wait for an in-flight background reorganization whose
  /// moved views the session reads (already included in
  /// `completion_time`, broken out here). `breaker_degraded` marks a
  /// session served HV-only because the DW-health circuit breaker was
  /// open (DESIGN.md §16) rather than a configured outage window; such
  /// sessions also set `degraded`.
  int epoch = 0;
  Seconds reorg_wait_s = 0;
  bool breaker_degraded = false;

  Seconds ExecTime() const { return breakdown.Total(); }
  double DwUtilizationShare() const {
    const Seconds total = ExecTime();
    return total > 0 ? breakdown.dw_exec_s / total : 0.0;
  }
};

/// Full result of simulating one workload under one system variant.
struct RunReport {
  SystemVariant variant = SystemVariant::kHvOnly;
  std::string variant_name;

  std::vector<QueryRecord> queries;

  /// TTI components (§5.1 metrics).
  Seconds etl_s = 0;        // up-front load (DW-ONLY only)
  Seconds tune_s = 0;       // design computation + reorganization moves
  Seconds hv_exe_s = 0;     // cumulative HV execution
  Seconds dw_exe_s = 0;     // cumulative DW execution
  Seconds transfer_s = 0;   // cumulative dump + transfer + load

  /// Reorganization bookkeeping.
  int reorg_count = 0;
  Bytes bytes_moved_to_dw = 0;
  Bytes bytes_moved_to_hv = 0;

  /// Fault totals (all zero when injection is disabled).
  int fault_injected = 0;
  int fault_retries = 0;
  Seconds fault_wasted_s = 0;
  Seconds fault_backoff_s = 0;
  int degraded_queries = 0;
  int reorg_crashes = 0;
  int reorgs_skipped = 0;  // deferred because the DW was in an outage

  /// Online-server bookkeeping (zero for plain simulator runs).
  int waves = 0;
  int epochs_published = 0;
  int reorgs_rolled_back = 0;
  /// Simulated time saved by overlapping reorganization movement with
  /// query execution instead of stopping the world.
  Seconds reorg_overlap_saved_s = 0;
  /// Serving-path plan cache (model-class: every count is a pure
  /// function of the admission order; zero with the cache disabled).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_evictions = 0;
  int64_t plan_cache_invalidations = 0;
  /// Wave pipelining (runtime class: how often speculation ran and how
  /// often it was discarded depend on producer timing — excluded from
  /// the determinism contract, unlike everything above).
  int waves_speculative = 0;
  int waves_replanned = 0;
  /// Overload protection (model-class, DESIGN.md §16). Every admitted
  /// session lands in exactly one of completed (`queries.size()`), shed,
  /// or failed — V212 checks the balance at Finish when overload
  /// protection is on. `breaker_degraded_sessions` counts completions
  /// served HV-only because the breaker was open (a subset of
  /// `degraded_queries`); `breaker_open_s` is cumulative *simulated*
  /// seconds the breaker spent open.
  int sessions_admitted = 0;
  int sessions_shed = 0;
  int sessions_failed = 0;
  int breaker_degraded_sessions = 0;
  int breaker_transitions = 0;
  Seconds breaker_open_s = 0;

  /// DW resource samples (present when a background workload was set).
  std::vector<dw::DwTickSample> dw_ticks;
  double background_slowdown = 0;
  Seconds avg_background_latency_s = 0;

  /// Total time-to-insight: completion of the last query.
  Seconds Tti() const {
    return queries.empty() ? etl_s : queries.back().completion_time;
  }

  /// Cumulative TTI after each completed query (Figure 5a).
  std::vector<Seconds> TtiCurve() const;

  /// Fraction of queries with execution time below each bucket upper
  /// bound (Figure 5b). `bounds` in seconds, ascending.
  std::vector<double> ExecTimeCdf(const std::vector<Seconds>& bounds) const;

  /// Query indices ranked by DW utilization share, descending (Figure 6).
  std::vector<int> RankByDwUtilization() const;

  /// Number of queries whose DW share exceeds 0.5 (Figure 6 commentary).
  int DwMajorityQueries() const;

  /// Σ HV-exec seconds / Σ DW-exec seconds over the `k` top-ranked
  /// queries (Figure 6 commentary: "for every second spent in DW...").
  double HvPerDwSecond(int k) const;

  std::string Summary() const;
};

}  // namespace miso::sim

#endif  // MISO_SIM_REPORT_H_
