#include "sim/report.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace miso::sim {

std::string_view SystemVariantToString(SystemVariant variant) {
  switch (variant) {
    case SystemVariant::kHvOnly:
      return "HV-ONLY";
    case SystemVariant::kDwOnly:
      return "DW-ONLY";
    case SystemVariant::kMsBasic:
      return "MS-BASIC";
    case SystemVariant::kHvOp:
      return "HV-OP";
    case SystemVariant::kMsMiso:
      return "MS-MISO";
    case SystemVariant::kMsLru:
      return "MS-LRU";
    case SystemVariant::kMsOff:
      return "MS-OFF";
    case SystemVariant::kMsOra:
      return "MS-ORA";
  }
  return "?";
}

std::vector<Seconds> RunReport::TtiCurve() const {
  std::vector<Seconds> curve;
  curve.reserve(queries.size());
  for (const QueryRecord& q : queries) curve.push_back(q.completion_time);
  return curve;
}

std::vector<double> RunReport::ExecTimeCdf(
    const std::vector<Seconds>& bounds) const {
  std::vector<double> cdf(bounds.size(), 0.0);
  if (queries.empty()) return cdf;
  for (size_t b = 0; b < bounds.size(); ++b) {
    int count = 0;
    for (const QueryRecord& q : queries) {
      if (q.ExecTime() < bounds[b]) ++count;
    }
    cdf[b] = static_cast<double>(count) /
             static_cast<double>(queries.size());
  }
  return cdf;
}

std::vector<int> RunReport::RankByDwUtilization() const {
  std::vector<int> order(queries.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const double da = queries[static_cast<size_t>(a)].DwUtilizationShare();
    const double db = queries[static_cast<size_t>(b)].DwUtilizationShare();
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

int RunReport::DwMajorityQueries() const {
  int count = 0;
  for (const QueryRecord& q : queries) {
    if (q.DwUtilizationShare() > 0.5) ++count;
  }
  return count;
}

double RunReport::HvPerDwSecond(int k) const {
  const std::vector<int> ranked = RankByDwUtilization();
  Seconds hv = 0;
  Seconds dw = 0;
  for (int i = 0; i < k && i < static_cast<int>(ranked.size()); ++i) {
    const QueryRecord& q = queries[static_cast<size_t>(ranked[static_cast<size_t>(i)])];
    hv += q.breakdown.hv_exec_s;
    dw += q.breakdown.dw_exec_s;
  }
  return dw > 0 ? hv / dw : 0.0;
}

std::string RunReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-8s TTI=%10.0f s  (HV=%9.0f  DW=%7.0f  XFER=%8.0f  "
                "TUNE=%7.0f  ETL=%8.0f)  reorgs=%d",
                variant_name.c_str(), Tti(), hv_exe_s, dw_exe_s, transfer_s,
                tune_s, etl_s, reorg_count);
  return buf;
}

}  // namespace miso::sim
