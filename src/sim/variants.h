#ifndef MISO_SIM_VARIANTS_H_
#define MISO_SIM_VARIANTS_H_

#include <string_view>

namespace miso::sim {

/// The system variants evaluated in the paper (§5.1 / §5.3).
enum class SystemVariant {
  kHvOnly,   // queries run entirely in the 15-node HV store, no views
  kDwOnly,   // up-front ETL of the relevant data into DW, queries in DW
  kMsBasic,  // multistore splits, no views retained (no tuning)
  kHvOp,     // HV only, opportunistic views with LRU retention
  kMsMiso,   // multistore + MISO tuner (this paper)
  kMsLru,    // multistore + passive LRU placement at reorganizations
  kMsOff,    // multistore + one-shot offline design over the full workload
  kMsOra,    // multistore + MISO tuner given the actual future window
};

std::string_view SystemVariantToString(SystemVariant variant);

}  // namespace miso::sim

#endif  // MISO_SIM_VARIANTS_H_
