#include "sim/etl.h"

#include <algorithm>
#include <map>
#include <set>

namespace miso::sim {

using plan::NodePtr;
using plan::OpKind;

Result<EtlResult> ComputeEtl(const relation::Catalog& catalog,
                             const std::vector<plan::Plan>& workload,
                             const hv::HvConfig& hv_config,
                             const transfer::TransferConfig& transfer_config,
                             const EtlConfig& etl_config) {
  // Union of extracted fields per dataset across the workload.
  std::map<std::string, std::set<std::string>> fields_by_dataset;
  for (const plan::Plan& q : workload) {
    for (const NodePtr& node : q.PostOrder()) {
      if (node->kind() != OpKind::kExtract) continue;
      const std::string& dataset = node->children()[0]->scan().dataset;
      for (const std::string& field : node->extract().fields) {
        fields_by_dataset[dataset].insert(field);
      }
    }
  }

  EtlResult result;
  Seconds raw_scan_s = 0;
  for (const auto& [dataset, fields] : fields_by_dataset) {
    MISO_ASSIGN_OR_RETURN(relation::LogDataset ds,
                          catalog.FindDataset(dataset));
    std::vector<std::string> field_list(fields.begin(), fields.end());
    MISO_ASSIGN_OR_RETURN(relation::Schema schema,
                          ds.schema.Project(field_list));
    result.extracted_bytes += ds.num_records * schema.RecordWidth();
    raw_scan_s += static_cast<double>(ds.raw_bytes) /
                  hv_config.ClusterRate(hv_config.raw_read_mbps);
  }

  const double write_rate = hv_config.ClusterRate(hv_config.write_mbps);
  const double read_rate = hv_config.ClusterRate(hv_config.inter_read_mbps);
  const double extracted = static_cast<double>(result.extracted_bytes);

  result.extract_s = raw_scan_s + extracted / write_rate;
  result.transform_s = etl_config.transform_passes *
                       (extracted / read_rate + extracted / write_rate);
  result.load_s =
      extracted / (transfer_config.dump_mbps * 1e6) +
      extracted / (transfer_config.network_mbps * 1e6) +
      extracted / (transfer_config.perm_load_mbps * 1e6);

  result.extract_s *= etl_config.overhead_factor;
  result.transform_s *= etl_config.overhead_factor;
  result.load_s *= etl_config.overhead_factor;
  return result;
}

Result<Seconds> DwOnlyQueryCost(const plan::Plan& query,
                                const dw::DwCostModel& dw_model) {
  const dw::DwConfig& config = dw_model.config();
  Seconds cost = config.query_overhead_s;

  for (const NodePtr& node : query.PostOrder()) {
    switch (node->kind()) {
      case OpKind::kScan:
      case OpKind::kViewScan:
        break;  // reads are charged at the consuming operator
      case OpKind::kExtract:
        break;  // the loaded base table *is* the extraction output
      case OpKind::kFilter: {
        double bytes =
            static_cast<double>(node->children()[0]->stats().bytes);
        // Filters directly over a loaded base table use its indexes.
        if (node->children()[0]->kind() == OpKind::kExtract) {
          const double sel = node->filter().predicate.Selectivity();
          bytes *= std::max(sel, config.index_floor);
        }
        cost += bytes / config.ClusterRate(config.scan_mbps);
        break;
      }
      case OpKind::kProject: {
        const double bytes =
            static_cast<double>(node->children()[0]->stats().bytes);
        cost += bytes / config.ClusterRate(config.scan_mbps);
        break;
      }
      case OpKind::kJoin:
      case OpKind::kAggregate: {
        double bytes = 0;
        for (const NodePtr& child : node->children()) {
          bytes += static_cast<double>(child->stats().bytes);
        }
        cost += bytes / config.ClusterRate(config.op_mbps);
        break;
      }
      case OpKind::kUdf: {
        // UDF transformations were pre-applied during ETL; the query only
        // reads the materialized derived columns.
        const double bytes =
            static_cast<double>(node->children()[0]->stats().bytes);
        cost += bytes / config.ClusterRate(config.scan_mbps);
        break;
      }
    }
  }
  return cost;
}

}  // namespace miso::sim
