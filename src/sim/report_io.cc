#include "sim/report_io.h"

#include <cstdarg>
#include <cstdio>
#include <fstream>

namespace miso::sim {

namespace {

void AppendRow(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendRow(std::string* out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

std::string QueriesToCsv(const RunReport& report) {
  std::string out =
      "index,name,start_s,completion_s,hv_exec_s,dump_s,transfer_load_s,"
      "dw_exec_s,ops_dw,ops_total,transferred_bytes,views_used,degraded,"
      "fault_injected,fault_retries,fault_wasted_s,fault_backoff_s\n";
  for (const QueryRecord& q : report.queries) {
    AppendRow(&out,
              "%d,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%lld,%d,%d,%d,%d,"
              "%.3f,%.3f\n",
              q.index, q.name.c_str(), q.start_time, q.completion_time,
              q.breakdown.hv_exec_s, q.breakdown.dump_s,
              q.breakdown.transfer_load_s, q.breakdown.dw_exec_s, q.ops_dw,
              q.ops_total, static_cast<long long>(q.transferred_bytes),
              q.views_used, q.degraded ? 1 : 0, q.fault_injected,
              q.fault_retries, q.fault_wasted_s, q.fault_backoff_s);
  }
  return out;
}

std::string TicksToCsv(const RunReport& report) {
  std::string out = "time_s,io_used,cpu_used,bg_latency_s,activity\n";
  for (const dw::DwTickSample& tick : report.dw_ticks) {
    AppendRow(&out, "%.1f,%.4f,%.4f,%.4f,%s\n", tick.time, tick.io_used,
              tick.cpu_used, tick.bg_query_latency_s,
              tick.activity.c_str());
  }
  return out;
}

std::string SummaryToCsv(const RunReport& report, bool with_header) {
  std::string out;
  if (with_header) {
    out =
        "variant,tti_s,hv_exe_s,dw_exe_s,transfer_s,tune_s,etl_s,"
        "reorg_count,bytes_to_dw,bytes_to_hv,fault_injected,fault_retries,"
        "fault_wasted_s,fault_backoff_s,degraded_queries,reorg_crashes,"
        "reorgs_skipped\n";
  }
  AppendRow(&out,
            "%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%lld,%lld,%d,%d,%.3f,%.3f,"
            "%d,%d,%d\n",
            report.variant_name.c_str(), report.Tti(), report.hv_exe_s,
            report.dw_exe_s, report.transfer_s, report.tune_s, report.etl_s,
            report.reorg_count,
            static_cast<long long>(report.bytes_moved_to_dw),
            static_cast<long long>(report.bytes_moved_to_hv),
            report.fault_injected, report.fault_retries, report.fault_wasted_s,
            report.fault_backoff_s, report.degraded_queries,
            report.reorg_crashes, report.reorgs_skipped);
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << content;
  if (!out.good()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace miso::sim
