#include "sim/report_io.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace miso::sim {

namespace {

void AppendRow(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendRow(std::string* out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out->append(buf);
}

// ---- JSON writer ------------------------------------------------------

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendRow(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Key/value appenders: %.17g round-trips IEEE doubles exactly through
/// strtod, so the parser restores bit-identical values.
void KvDouble(std::string* out, const char* key, double value) {
  AppendRow(out, "\"%s\":%.17g,", key, value);
}

void KvInt(std::string* out, const char* key, long long value) {
  AppendRow(out, "\"%s\":%lld,", key, value);
}

void KvBool(std::string* out, const char* key, bool value) {
  AppendRow(out, "\"%s\":%s,", key, value ? "true" : "false");
}

void KvString(std::string* out, const char* key, const std::string& value) {
  AppendRow(out, "\"%s\":", key);
  AppendJsonString(out, value);
  out->push_back(',');
}

/// Replaces the trailing comma of the last key/value with the closer.
void CloseJson(std::string* out, char closer) {
  if (!out->empty() && out->back() == ',') out->pop_back();
  out->push_back(closer);
}

// ---- JSON reader (minimal recursive descent) --------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw_number;  // exact token, for integer fields
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    MISO_RETURN_IF_ERROR(ParseValue(&value));
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("report json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_ += 1;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_ += 1;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    pos_ += 1;  // '{'
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      MISO_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      MISO_RETURN_IF_ERROR(ParseValue(&value));
      out->fields.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    pos_ += 1;  // '['
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      MISO_RETURN_IF_ERROR(ParseValue(&value));
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    pos_ += 1;  // opening '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        pos_ += 1;
        return Status::OK();
      }
      if (c != '\\') {
        out->push_back(c);
        pos_ += 1;
        continue;
      }
      pos_ += 1;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_];
      pos_ += 1;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
          // The writer only emits \u00xx (control characters); decode
          // the BMP without surrogate pairs, as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        pos_ += 1;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->raw_number = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(out->raw_number.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- typed field extraction ------------------------------------------

Status FieldError(const std::string& key, const char* want) {
  return Status::InvalidArgument("report json: field '" + key + "' is not " +
                                 want);
}

Status GetDouble(const JsonValue& obj, const std::string& key, double* out) {
  const auto it = obj.fields.find(key);
  if (it == obj.fields.end()) return Status::OK();  // absent: keep default
  if (it->second.kind != JsonValue::Kind::kNumber) {
    return FieldError(key, "a number");
  }
  *out = it->second.number;
  return Status::OK();
}

template <typename Int>
Status GetInt(const JsonValue& obj, const std::string& key, Int* out) {
  const auto it = obj.fields.find(key);
  if (it == obj.fields.end()) return Status::OK();
  if (it->second.kind != JsonValue::Kind::kNumber) {
    return FieldError(key, "a number");
  }
  // Integer fields parse from the raw token, immune to double rounding
  // above 2^53 (byte counts can get there).
  *out = static_cast<Int>(std::strtoll(it->second.raw_number.c_str(),
                                       nullptr, 10));
  return Status::OK();
}

Status GetBool(const JsonValue& obj, const std::string& key, bool* out) {
  const auto it = obj.fields.find(key);
  if (it == obj.fields.end()) return Status::OK();
  if (it->second.kind != JsonValue::Kind::kBool) {
    return FieldError(key, "a bool");
  }
  *out = it->second.boolean;
  return Status::OK();
}

Status GetString(const JsonValue& obj, const std::string& key,
                 std::string* out) {
  const auto it = obj.fields.find(key);
  if (it == obj.fields.end()) return Status::OK();
  if (it->second.kind != JsonValue::Kind::kString) {
    return FieldError(key, "a string");
  }
  *out = it->second.str;
  return Status::OK();
}

void AppendQueryJson(std::string* out, const QueryRecord& q) {
  out->push_back('{');
  KvInt(out, "index", q.index);
  KvString(out, "name", q.name);
  KvDouble(out, "start_time", q.start_time);
  KvDouble(out, "completion_time", q.completion_time);
  KvDouble(out, "hv_exec_s", q.breakdown.hv_exec_s);
  KvDouble(out, "dump_s", q.breakdown.dump_s);
  KvDouble(out, "transfer_load_s", q.breakdown.transfer_load_s);
  KvDouble(out, "dw_exec_s", q.breakdown.dw_exec_s);
  KvInt(out, "ops_total", q.ops_total);
  KvInt(out, "ops_dw", q.ops_dw);
  KvInt(out, "transferred_bytes", static_cast<long long>(q.transferred_bytes));
  KvInt(out, "views_used", q.views_used);
  KvBool(out, "degraded", q.degraded);
  KvInt(out, "fault_injected", q.fault_injected);
  KvInt(out, "fault_retries", q.fault_retries);
  KvDouble(out, "fault_wasted_s", q.fault_wasted_s);
  KvDouble(out, "fault_backoff_s", q.fault_backoff_s);
  KvInt(out, "epoch", q.epoch);
  KvDouble(out, "reorg_wait_s", q.reorg_wait_s);
  KvBool(out, "breaker_degraded", q.breaker_degraded);
  CloseJson(out, '}');
}

Status QueryFromJson(const JsonValue& obj, QueryRecord* q) {
  if (obj.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("report json: query entry is not an object");
  }
  MISO_RETURN_IF_ERROR(GetInt(obj, "index", &q->index));
  MISO_RETURN_IF_ERROR(GetString(obj, "name", &q->name));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "start_time", &q->start_time));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "completion_time", &q->completion_time));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "hv_exec_s", &q->breakdown.hv_exec_s));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "dump_s", &q->breakdown.dump_s));
  MISO_RETURN_IF_ERROR(
      GetDouble(obj, "transfer_load_s", &q->breakdown.transfer_load_s));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "dw_exec_s", &q->breakdown.dw_exec_s));
  MISO_RETURN_IF_ERROR(GetInt(obj, "ops_total", &q->ops_total));
  MISO_RETURN_IF_ERROR(GetInt(obj, "ops_dw", &q->ops_dw));
  MISO_RETURN_IF_ERROR(
      GetInt(obj, "transferred_bytes", &q->transferred_bytes));
  MISO_RETURN_IF_ERROR(GetInt(obj, "views_used", &q->views_used));
  MISO_RETURN_IF_ERROR(GetBool(obj, "degraded", &q->degraded));
  MISO_RETURN_IF_ERROR(GetInt(obj, "fault_injected", &q->fault_injected));
  MISO_RETURN_IF_ERROR(GetInt(obj, "fault_retries", &q->fault_retries));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "fault_wasted_s", &q->fault_wasted_s));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "fault_backoff_s", &q->fault_backoff_s));
  MISO_RETURN_IF_ERROR(GetInt(obj, "epoch", &q->epoch));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "reorg_wait_s", &q->reorg_wait_s));
  MISO_RETURN_IF_ERROR(GetBool(obj, "breaker_degraded", &q->breaker_degraded));
  return Status::OK();
}

void AppendTickJson(std::string* out, const dw::DwTickSample& tick) {
  out->push_back('{');
  KvDouble(out, "time", tick.time);
  KvDouble(out, "io_used", tick.io_used);
  KvDouble(out, "cpu_used", tick.cpu_used);
  KvDouble(out, "bg_query_latency_s", tick.bg_query_latency_s);
  KvString(out, "activity", tick.activity);
  CloseJson(out, '}');
}

Status TickFromJson(const JsonValue& obj, dw::DwTickSample* tick) {
  if (obj.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("report json: tick entry is not an object");
  }
  MISO_RETURN_IF_ERROR(GetDouble(obj, "time", &tick->time));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "io_used", &tick->io_used));
  MISO_RETURN_IF_ERROR(GetDouble(obj, "cpu_used", &tick->cpu_used));
  MISO_RETURN_IF_ERROR(
      GetDouble(obj, "bg_query_latency_s", &tick->bg_query_latency_s));
  MISO_RETURN_IF_ERROR(GetString(obj, "activity", &tick->activity));
  return Status::OK();
}

}  // namespace

std::string QueriesToCsv(const RunReport& report) {
  std::string out =
      "index,name,start_s,completion_s,hv_exec_s,dump_s,transfer_load_s,"
      "dw_exec_s,ops_dw,ops_total,transferred_bytes,views_used,degraded,"
      "fault_injected,fault_retries,fault_wasted_s,fault_backoff_s\n";
  for (const QueryRecord& q : report.queries) {
    AppendRow(&out,
              "%d,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%lld,%d,%d,%d,%d,"
              "%.3f,%.3f\n",
              q.index, q.name.c_str(), q.start_time, q.completion_time,
              q.breakdown.hv_exec_s, q.breakdown.dump_s,
              q.breakdown.transfer_load_s, q.breakdown.dw_exec_s, q.ops_dw,
              q.ops_total, static_cast<long long>(q.transferred_bytes),
              q.views_used, q.degraded ? 1 : 0, q.fault_injected,
              q.fault_retries, q.fault_wasted_s, q.fault_backoff_s);
  }
  return out;
}

std::string TicksToCsv(const RunReport& report) {
  std::string out = "time_s,io_used,cpu_used,bg_latency_s,activity\n";
  for (const dw::DwTickSample& tick : report.dw_ticks) {
    AppendRow(&out, "%.1f,%.4f,%.4f,%.4f,%s\n", tick.time, tick.io_used,
              tick.cpu_used, tick.bg_query_latency_s,
              tick.activity.c_str());
  }
  return out;
}

std::string SummaryToCsv(const RunReport& report, bool with_header) {
  std::string out;
  if (with_header) {
    out =
        "variant,tti_s,hv_exe_s,dw_exe_s,transfer_s,tune_s,etl_s,"
        "reorg_count,bytes_to_dw,bytes_to_hv,fault_injected,fault_retries,"
        "fault_wasted_s,fault_backoff_s,degraded_queries,reorg_crashes,"
        "reorgs_skipped\n";
  }
  AppendRow(&out,
            "%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%lld,%lld,%d,%d,%.3f,%.3f,"
            "%d,%d,%d\n",
            report.variant_name.c_str(), report.Tti(), report.hv_exe_s,
            report.dw_exe_s, report.transfer_s, report.tune_s, report.etl_s,
            report.reorg_count,
            static_cast<long long>(report.bytes_moved_to_dw),
            static_cast<long long>(report.bytes_moved_to_hv),
            report.fault_injected, report.fault_retries, report.fault_wasted_s,
            report.fault_backoff_s, report.degraded_queries,
            report.reorg_crashes, report.reorgs_skipped);
  return out;
}

std::string ReportToJson(const RunReport& report) {
  std::string out;
  out.push_back('{');
  KvInt(&out, "variant", static_cast<long long>(report.variant));
  KvString(&out, "variant_name", report.variant_name);
  KvDouble(&out, "etl_s", report.etl_s);
  KvDouble(&out, "tune_s", report.tune_s);
  KvDouble(&out, "hv_exe_s", report.hv_exe_s);
  KvDouble(&out, "dw_exe_s", report.dw_exe_s);
  KvDouble(&out, "transfer_s", report.transfer_s);
  KvInt(&out, "reorg_count", report.reorg_count);
  KvInt(&out, "bytes_moved_to_dw",
        static_cast<long long>(report.bytes_moved_to_dw));
  KvInt(&out, "bytes_moved_to_hv",
        static_cast<long long>(report.bytes_moved_to_hv));
  KvInt(&out, "fault_injected", report.fault_injected);
  KvInt(&out, "fault_retries", report.fault_retries);
  KvDouble(&out, "fault_wasted_s", report.fault_wasted_s);
  KvDouble(&out, "fault_backoff_s", report.fault_backoff_s);
  KvInt(&out, "degraded_queries", report.degraded_queries);
  KvInt(&out, "reorg_crashes", report.reorg_crashes);
  KvInt(&out, "reorgs_skipped", report.reorgs_skipped);
  KvInt(&out, "waves", report.waves);
  KvInt(&out, "epochs_published", report.epochs_published);
  KvInt(&out, "reorgs_rolled_back", report.reorgs_rolled_back);
  KvDouble(&out, "reorg_overlap_saved_s", report.reorg_overlap_saved_s);
  KvInt(&out, "plan_cache_hits", report.plan_cache_hits);
  KvInt(&out, "plan_cache_misses", report.plan_cache_misses);
  KvInt(&out, "plan_cache_evictions", report.plan_cache_evictions);
  KvInt(&out, "plan_cache_invalidations", report.plan_cache_invalidations);
  KvInt(&out, "waves_speculative", report.waves_speculative);
  KvInt(&out, "waves_replanned", report.waves_replanned);
  KvInt(&out, "sessions_admitted", report.sessions_admitted);
  KvInt(&out, "sessions_shed", report.sessions_shed);
  KvInt(&out, "sessions_failed", report.sessions_failed);
  KvInt(&out, "breaker_degraded_sessions", report.breaker_degraded_sessions);
  KvInt(&out, "breaker_transitions", report.breaker_transitions);
  KvDouble(&out, "breaker_open_s", report.breaker_open_s);
  KvDouble(&out, "background_slowdown", report.background_slowdown);
  KvDouble(&out, "avg_background_latency_s", report.avg_background_latency_s);
  out.append("\"queries\":[");
  for (const QueryRecord& q : report.queries) {
    AppendQueryJson(&out, q);
    out.push_back(',');
  }
  CloseJson(&out, ']');
  out.append(",\"dw_ticks\":[");
  for (const dw::DwTickSample& tick : report.dw_ticks) {
    AppendTickJson(&out, tick);
    out.push_back(',');
  }
  CloseJson(&out, ']');
  out.push_back('}');
  return out;
}

Result<RunReport> ReportFromJson(const std::string& json) {
  MISO_ASSIGN_OR_RETURN(JsonValue root, JsonParser(json).Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("report json: top level is not an object");
  }
  RunReport report;
  int variant = 0;
  MISO_RETURN_IF_ERROR(GetInt(root, "variant", &variant));
  report.variant = static_cast<SystemVariant>(variant);
  MISO_RETURN_IF_ERROR(GetString(root, "variant_name", &report.variant_name));
  MISO_RETURN_IF_ERROR(GetDouble(root, "etl_s", &report.etl_s));
  MISO_RETURN_IF_ERROR(GetDouble(root, "tune_s", &report.tune_s));
  MISO_RETURN_IF_ERROR(GetDouble(root, "hv_exe_s", &report.hv_exe_s));
  MISO_RETURN_IF_ERROR(GetDouble(root, "dw_exe_s", &report.dw_exe_s));
  MISO_RETURN_IF_ERROR(GetDouble(root, "transfer_s", &report.transfer_s));
  MISO_RETURN_IF_ERROR(GetInt(root, "reorg_count", &report.reorg_count));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "bytes_moved_to_dw", &report.bytes_moved_to_dw));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "bytes_moved_to_hv", &report.bytes_moved_to_hv));
  MISO_RETURN_IF_ERROR(GetInt(root, "fault_injected", &report.fault_injected));
  MISO_RETURN_IF_ERROR(GetInt(root, "fault_retries", &report.fault_retries));
  MISO_RETURN_IF_ERROR(
      GetDouble(root, "fault_wasted_s", &report.fault_wasted_s));
  MISO_RETURN_IF_ERROR(
      GetDouble(root, "fault_backoff_s", &report.fault_backoff_s));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "degraded_queries", &report.degraded_queries));
  MISO_RETURN_IF_ERROR(GetInt(root, "reorg_crashes", &report.reorg_crashes));
  MISO_RETURN_IF_ERROR(GetInt(root, "reorgs_skipped", &report.reorgs_skipped));
  MISO_RETURN_IF_ERROR(GetInt(root, "waves", &report.waves));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "epochs_published", &report.epochs_published));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "reorgs_rolled_back", &report.reorgs_rolled_back));
  MISO_RETURN_IF_ERROR(
      GetDouble(root, "reorg_overlap_saved_s", &report.reorg_overlap_saved_s));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "plan_cache_hits", &report.plan_cache_hits));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "plan_cache_misses", &report.plan_cache_misses));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "plan_cache_evictions", &report.plan_cache_evictions));
  MISO_RETURN_IF_ERROR(GetInt(root, "plan_cache_invalidations",
                              &report.plan_cache_invalidations));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "waves_speculative", &report.waves_speculative));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "waves_replanned", &report.waves_replanned));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "sessions_admitted", &report.sessions_admitted));
  MISO_RETURN_IF_ERROR(GetInt(root, "sessions_shed", &report.sessions_shed));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "sessions_failed", &report.sessions_failed));
  MISO_RETURN_IF_ERROR(GetInt(root, "breaker_degraded_sessions",
                              &report.breaker_degraded_sessions));
  MISO_RETURN_IF_ERROR(
      GetInt(root, "breaker_transitions", &report.breaker_transitions));
  MISO_RETURN_IF_ERROR(
      GetDouble(root, "breaker_open_s", &report.breaker_open_s));
  MISO_RETURN_IF_ERROR(
      GetDouble(root, "background_slowdown", &report.background_slowdown));
  MISO_RETURN_IF_ERROR(GetDouble(root, "avg_background_latency_s",
                                 &report.avg_background_latency_s));
  const auto queries_it = root.fields.find("queries");
  if (queries_it != root.fields.end()) {
    if (queries_it->second.kind != JsonValue::Kind::kArray) {
      return FieldError("queries", "an array");
    }
    report.queries.reserve(queries_it->second.items.size());
    for (const JsonValue& item : queries_it->second.items) {
      QueryRecord q;
      MISO_RETURN_IF_ERROR(QueryFromJson(item, &q));
      report.queries.push_back(std::move(q));
    }
  }
  const auto ticks_it = root.fields.find("dw_ticks");
  if (ticks_it != root.fields.end()) {
    if (ticks_it->second.kind != JsonValue::Kind::kArray) {
      return FieldError("dw_ticks", "an array");
    }
    report.dw_ticks.reserve(ticks_it->second.items.size());
    for (const JsonValue& item : ticks_it->second.items) {
      dw::DwTickSample tick;
      MISO_RETURN_IF_ERROR(TickFromJson(item, &tick));
      report.dw_ticks.push_back(std::move(tick));
    }
  }
  return report;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << content;
  if (!out.good()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace miso::sim
