#ifndef MISO_SIM_ETL_H_
#define MISO_SIM_ETL_H_

#include <vector>

#include "common/result.h"
#include "dw/dw_cost_model.h"
#include "hv/hv_config.h"
#include "plan/plan.h"
#include "relation/catalog.h"
#include "transfer/transfer_model.h"

namespace miso::sim {

/// Parameters of the DW-ONLY up-front ETL model. The paper reports a very
/// expensive ETL phase (≈3.5e5 s for its 200 GB relevant subset) and cites
/// Simitsis et al. [QoX] on ETL flows costing far beyond raw I/O: schema
/// conforming, cleansing, multiple staging passes, constraint validation,
/// and initial index builds. The mechanical pipeline below (HV extraction
/// of the union of accessed fields, `transform_passes` full staging passes,
/// and the DW bulk load) is multiplied by `overhead_factor` to stand in for
/// that engineering reality; the default is calibrated so DW-ONLY's TTI
/// slightly exceeds HV-ONLY's, matching Figure 4.
struct EtlConfig {
  int transform_passes = 10;
  double overhead_factor = 7.7;
};

/// Byte footprint and cost of the ETL phase.
struct EtlResult {
  Bytes extracted_bytes = 0;  // relational form of the relevant subset
  Seconds extract_s = 0;
  Seconds transform_s = 0;
  Seconds load_s = 0;
  Seconds Total() const { return extract_s + transform_s + load_s; }
};

/// Models the one-time ETL for the DW-ONLY variant: extract, per-pass
/// transform, and load of the union of fields each dataset contributes to
/// `workload`.
Result<EtlResult> ComputeEtl(const relation::Catalog& catalog,
                             const std::vector<plan::Plan>& workload,
                             const hv::HvConfig& hv_config,
                             const transfer::TransferConfig& transfer_config,
                             const EtlConfig& etl_config);

/// Post-ETL cost of one query executed entirely in DW over the loaded
/// base tables: Extract leaves read the loaded table (with index pruning
/// under a directly-enclosing filter); relational operators and UDFs run
/// at DW rates (HV-only UDF transformations were pre-applied during ETL,
/// so only their in-database application cost remains).
Result<Seconds> DwOnlyQueryCost(const plan::Plan& query,
                                const dw::DwCostModel& dw_model);

}  // namespace miso::sim

#endif  // MISO_SIM_ETL_H_
