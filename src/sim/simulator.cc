#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "dw/dw_store.h"
#include "fault/fault.h"
#include "hv/hv_store.h"
#include "tuner/reorg_journal.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "optimizer/multistore_optimizer.h"
#include "plan/node_factory.h"
#include "tuner/baseline_tuners.h"
#include "verify/design_verifier.h"
#include "verify/verify_gate.h"

namespace miso::sim {

using optimizer::MultistorePlan;
using plan::NodePtr;
using plan::OpKind;
using views::View;
using views::ViewCatalog;
using views::ViewId;

namespace {

/// Evicts least-recently-used views from `catalog` until it fits its
/// budget (HV-OP's retention policy, §5.1).
void EvictLruToBudget(ViewCatalog* catalog) {
  while (catalog->OverBudget()) {
    std::vector<View> all = catalog->AllViews();
    if (all.empty()) return;
    const View* victim = nullptr;
    int victim_used = 0;
    for (const View& v : all) {
      const int used = catalog->LastUsed(v.id);
      if (victim == nullptr || used < victim_used ||
          (used == victim_used && v.id < victim->id)) {
        victim = &v;
        victim_used = used;
      }
    }
    catalog->Remove(victim->id);
  }
}

/// Views read by an executed plan, per store.
void CollectViewUses(const plan::Plan& executed,
                     std::vector<ViewId>* hv_used,
                     std::vector<ViewId>* dw_used) {
  for (const NodePtr& node : executed.PostOrder()) {
    if (node->kind() != OpKind::kViewScan) continue;
    if (node->view_scan().store == StoreKind::kDw) {
      dw_used->push_back(node->view_scan().view_id);
    } else {
      hv_used->push_back(node->view_scan().view_id);
    }
  }
}

/// All opportunistic views the original `plan` would materialize in a pure
/// HV execution (used by MS-OFF to know the candidate universe up-front).
/// The plan's final result is not a candidate (it goes to the client).
Result<std::vector<View>> CandidateViewsOf(const plan::Plan& plan,
                                           uint64_t* next_id) {
  MISO_ASSIGN_OR_RETURN(std::vector<hv::MapReduceJob> jobs,
                        hv::SegmentIntoJobs(plan.root()));
  std::vector<View> result;
  std::unordered_set<uint64_t> seen;
  for (const hv::MapReduceJob& job : jobs) {
    for (const NodePtr& node : job.materialization_points) {
      if (node->signature() == plan.signature()) continue;
      if (!seen.insert(node->signature()).second) continue;
      View v = views::ViewFromNode(*node);
      v.id = (*next_id)++;
      result.push_back(std::move(v));
    }
  }
  return result;
}

/// Folds a pool's lifetime stats into the `miso.pool.*` metrics. These
/// are "runtime"-class metrics (docs/TELEMETRY.md): they describe the
/// execution machinery, so their values legitimately vary with thread
/// count — unlike everything else the library emits.
void PublishPoolStats(const ThreadPool* pool) {
  if (pool == nullptr || !obs::MetricsOn()) return;
  const ThreadPool::Stats stats = pool->GetStats();
  obs::MetricsRegistry& registry = obs::Metrics();
  registry.GetCounter(obs::names::kPoolTasksRun)->Add(stats.tasks_run);
  registry.GetCounter(obs::names::kPoolSubmits)->Add(stats.submits);
  registry.GetGauge(obs::names::kPoolQueueHighWater)
      ->Max(static_cast<double>(stats.queue_high_water));
}

/// Folds one operation's fault accounting into a query record and bumps
/// the per-site injection counter. Called only from the serial query
/// loop, so metric emission stays deterministic.
void RecordFaults(const fault::FaultAccounting& acc, fault::FaultSite site,
                  QueryRecord* record) {
  if (acc.injected == 0) return;
  record->fault_injected += acc.injected;
  record->fault_retries += acc.retries;
  record->fault_wasted_s += acc.wasted_s;
  record->fault_backoff_s += acc.backoff_s;
  if (obs::MetricsOn()) {
    obs::Metrics()
        .GetCounter(obs::WithLabel(obs::names::kFaultInjected, "site",
                                   fault::FaultSiteName(site)))
        ->Add(acc.injected);
  }
}

}  // namespace

MultistoreSimulator::MultistoreSimulator(const relation::Catalog* catalog,
                                         const SimConfig& config)
    : catalog_(catalog), config_(config) {}

Result<RunReport> MultistoreSimulator::Run(
    const std::vector<workload::WorkloadQuery>& queries) {
  const SimConfig& cfg = config_;

  // Engage the observability gates for this run. Only toggled when the
  // global state differs, so concurrent seed runs with identical configs
  // (RunSeedSweep applies the knobs once, before the fan-out) never touch
  // the process-wide flags from worker threads. This check-then-act is NOT
  // safe for concurrent Run calls whose obs configs differ — see the
  // telemetry caveat on Run() in simulator.h.
  std::optional<obs::ScopedMetrics> scoped_metrics;
  std::optional<obs::ScopedTrace> scoped_trace;
  if (cfg.metrics && !obs::MetricsOn()) scoped_metrics.emplace(true);
  if (cfg.trace && !obs::TraceOn()) scoped_trace.emplace(true);

  plan::NodeFactory factory(catalog_);
  hv::HvStore hv_store(cfg.hv, cfg.hv_storage_budget);
  dw::DwStore dw_store(cfg.dw, cfg.dw_storage_budget);
  transfer::TransferModel mover(cfg.transfer);
  optimizer::MultistoreOptimizer opt(&factory, &hv_store.cost_model(),
                                     &dw_store.cost_model(), &mover);
  dw::ResourceLedger ledger(cfg.background, cfg.contention);

  // Fault injection: resolve the spec once (the only environment read),
  // then hold a null injector when disabled so every instrumented path
  // below reduces to the exact unfaulted branch.
  const fault::FaultPlan fault_plan = fault::FaultPlan::Resolve(
      cfg.fault, static_cast<int>(queries.size()));
  std::optional<fault::FaultInjector> injector_storage;
  if (fault_plan.Enabled()) injector_storage.emplace(fault_plan);
  const fault::FaultInjector* injector =
      injector_storage ? &*injector_storage : nullptr;

  // Candidate-split costing fans out over a pool: an external one when a
  // sweep shares its workers, else a Run-local pool per config.threads
  // (1 = the exact legacy serial path, no pool at all).
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = external_pool_;
  if (pool == nullptr) {
    const int threads =
        cfg.threads > 0 ? cfg.threads : ThreadPool::DefaultThreadCount();
    if (threads > 1) {
      owned_pool = std::make_unique<ThreadPool>(threads);
      pool = owned_pool.get();
    }
  }
  opt.set_thread_pool(pool);

  tuner::MisoTunerConfig tuner_config;
  tuner_config.hv_storage_budget = cfg.hv_storage_budget;
  tuner_config.dw_storage_budget = cfg.dw_storage_budget;
  tuner_config.transfer_budget = cfg.transfer_budget;
  tuner_config.epoch_length = cfg.epoch_length;
  tuner_config.benefit_decay = cfg.benefit_decay;
  tuner_config.store_specific_benefit = cfg.store_specific_benefit;
  tuner_config.handle_interactions = cfg.handle_interactions;
  tuner_config.retain_unselected_views = cfg.retain_unselected_views;
  tuner::MisoTuner miso_tuner(&opt, tuner_config);
  tuner::LruTuner lru_tuner(tuner_config);

  // The run-lifetime what-if cache: this is what lets reorg k+1 reuse the
  // probes of reorg k. The epoch covers every cost-model knob, so a
  // config change between runs can never leak stale costs (each Run owns
  // a fresh cache anyway; the epoch guards embedders who share one).
  optimizer::WhatIfCache whatif_cache(cfg.whatif_cache_bytes);
  if (cfg.whatif_cache) {
    whatif_cache.SetEpoch(
        optimizer::WhatIfCache::EpochOf(cfg.hv, cfg.dw, cfg.transfer));
    miso_tuner.set_whatif_cache(&whatif_cache);
  }

  RunReport report;
  report.variant = cfg.variant;
  report.variant_name = std::string(SystemVariantToString(cfg.variant));

  Seconds now = 0;
  Seconds last_reorg_time = 0;
  uint64_t next_view_id = 1;
  std::vector<plan::Plan> history;

  const bool has_background =
      cfg.background.io_demand > 0 || cfg.background.cpu_demand > 0;

  // ---- Variant-specific preparation. ----------------------------------
  if (cfg.variant == SystemVariant::kDwOnly) {
    std::vector<plan::Plan> plans;
    plans.reserve(queries.size());
    for (const workload::WorkloadQuery& q : queries) plans.push_back(q.plan);
    MISO_ASSIGN_OR_RETURN(
        EtlResult etl,
        ComputeEtl(*catalog_, plans, cfg.hv, cfg.transfer, cfg.etl));
    report.etl_s = etl.Total();
    now = etl.Total();
  }

  // MS-OFF: one-shot target design over everything the workload can make.
  tuner::OfflineTuner::TargetDesign offline_target;
  std::set<uint64_t> offline_dw_signatures;
  std::set<uint64_t> offline_hv_signatures;
  if (cfg.variant == SystemVariant::kMsOff) {
    uint64_t dry_id = 1'000'000;  // distinct id space for the dry pass
    std::vector<View> all_candidates;
    std::unordered_set<uint64_t> seen;
    std::vector<plan::Plan> plans;
    for (const workload::WorkloadQuery& q : queries) {
      plans.push_back(q.plan);
      MISO_ASSIGN_OR_RETURN(std::vector<View> produced,
                            CandidateViewsOf(q.plan, &dry_id));
      for (View& v : produced) {
        if (seen.insert(v.signature).second) {
          all_candidates.push_back(std::move(v));
        }
      }
    }
    tuner::OfflineTuner offline(&opt, tuner_config);
    MISO_ASSIGN_OR_RETURN(offline_target,
                          offline.ComputeTarget(all_candidates, plans));
    for (const View& v : all_candidates) {
      if (offline_target.dw_views.count(v.id) > 0) {
        offline_dw_signatures.insert(v.signature);
      } else if (offline_target.hv_views.count(v.id) > 0) {
        offline_hv_signatures.insert(v.signature);
      }
    }
    // The one-shot design computation happens before any query runs.
    report.tune_s += cfg.tune_compute_s;
    now += cfg.tune_compute_s;
  }

  // ---- Main query loop. ------------------------------------------------
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const workload::WorkloadQuery& wq = queries[qi];
    QueryRecord record;
    record.index = static_cast<int>(qi);
    record.name = wq.plan.query_name();
    record.start_time = now;
    record.ops_total = wq.plan.NumOperators();

    MultistorePlan ms;
    bool harvest = true;

    // DW outage: multistore variants degrade to HV-only planning instead
    // of erroring — queries keep completing, just without the DW's help.
    // Store-confined variants (HV-ONLY, HV-OP run no DW work anyway;
    // DW-ONLY models the dedicated-DW baseline, outside the fault model).
    const bool dw_down =
        injector != nullptr && injector->DwDownForQuery(static_cast<int>(qi));
    optimizer::OptimizeOptions opt_options;
    opt_options.dw_available = !dw_down;

    switch (cfg.variant) {
      case SystemVariant::kHvOnly: {
        MISO_ASSIGN_OR_RETURN(ms, opt.OptimizeHvOnly(wq.plan,
                                                     hv_store.catalog(),
                                                     /*use_views=*/false));
        harvest = false;
        break;
      }
      case SystemVariant::kDwOnly: {
        MISO_ASSIGN_OR_RETURN(Seconds dw_cost,
                              DwOnlyQueryCost(wq.plan,
                                              dw_store.cost_model()));
        ms.executed = wq.plan;
        ms.cost.dw_exec_s = dw_cost;
        // Mark all operators DW-side for the utilization accounting.
        ms.dw_side = wq.plan.PostOrder();
        harvest = false;
        break;
      }
      case SystemVariant::kMsBasic: {
        const ViewCatalog empty_dw(0);
        const ViewCatalog empty_hv(0);
        MISO_ASSIGN_OR_RETURN(
            ms, opt.Optimize(wq.plan, empty_dw, empty_hv, opt_options));
        harvest = false;
        break;
      }
      case SystemVariant::kHvOp: {
        MISO_ASSIGN_OR_RETURN(ms, opt.OptimizeHvOnly(wq.plan,
                                                     hv_store.catalog(),
                                                     /*use_views=*/true));
        break;
      }
      case SystemVariant::kMsMiso:
      case SystemVariant::kMsLru:
      case SystemVariant::kMsOff:
      case SystemVariant::kMsOra: {
        MISO_ASSIGN_OR_RETURN(
            ms, opt.Optimize(wq.plan, dw_store.catalog(), hv_store.catalog(),
                             opt_options));
        break;
      }
    }
    const bool degraded = dw_down && cfg.variant != SystemVariant::kHvOnly &&
                          cfg.variant != SystemVariant::kHvOp &&
                          cfg.variant != SystemVariant::kDwOnly;
    record.degraded = degraded;
    if (degraded) {
      report.degraded_queries += 1;
      if (obs::MetricsOn()) {
        obs::Metrics()
            .GetCounter(obs::names::kFaultDwOutageQueries)
            ->Increment();
      }
    }

    // --- Execute the chosen plan. ---
    // HV side: run jobs (and harvest opportunistic views).
    std::vector<View> produced;
    if (cfg.variant != SystemVariant::kDwOnly) {
      std::vector<NodePtr> hv_roots;
      if (ms.HvOnly()) {
        hv_roots.push_back(ms.executed.root());
      } else {
        for (const NodePtr& cut : ms.cut_inputs) {
          if (cut->kind() != OpKind::kScan &&
              cut->kind() != OpKind::kViewScan) {
            hv_roots.push_back(cut);
          }
        }
      }
      for (size_t ri = 0; ri < hv_roots.size(); ++ri) {
        Result<hv::HvExecution> exec = hv_store.Execute(
            hv_roots[ri], static_cast<int>(qi), now, &next_view_id,
            /*exclude_signature=*/wq.plan.signature(), injector,
            &fault_plan.retry,
            HashCombine(static_cast<uint64_t>(qi) + 1,
                        static_cast<uint64_t>(ri)));
        if (!exec.ok()) {
          if (injector != nullptr && obs::MetricsOn()) {
            obs::Metrics().GetCounter(obs::names::kFaultExhausted)
                ->Increment();
          }
          return exec.status();
        }
        if (harvest) {
          for (View& v : exec->produced_views) {
            produced.push_back(std::move(v));
          }
        }
        RecordFaults(exec->fault, fault::FaultSite::kHvJob, &record);
      }
    }

    record.breakdown = ms.cost;
    record.transferred_bytes = ms.transferred_bytes;
    record.ops_dw = static_cast<int>(ms.dw_side.size());

    // HV-job fault charges: re-run work joins the HV execution component,
    // backoff waits are accumulated separately below.
    record.breakdown.hv_exec_s += record.fault_wasted_s;

    // Working-set transfer faults: interrupted streams re-send and charge
    // the partially-moved bytes; a failed DW load retries just the load.
    transfer::FaultedTransfer ws;
    if (injector != nullptr && ms.transferred_bytes > 0) {
      ws = mover.WorkingSetTransferFaulted(
          ms.transferred_bytes, injector,
          HashCombine(0x77735f78666572ULL,  // "ws_xfer"
                      static_cast<uint64_t>(qi) + 1),
          fault_plan.retry);
      if (ws.exhausted) {
        if (obs::MetricsOn()) {
          obs::Metrics().GetCounter(obs::names::kFaultExhausted)->Increment();
        }
        return fault::ExhaustedError(fault::FaultSite::kTransfer,
                                     static_cast<uint64_t>(qi),
                                     fault_plan.retry.max_attempts);
      }
      record.breakdown.dump_s += ws.wasted_dump_s;
      record.fault_injected += ws.injected;
      record.fault_retries += ws.retries;
      record.fault_wasted_s += ws.wasted_dump_s + ws.wasted_rest_s;
      record.fault_backoff_s += ws.backoff_s;
      if (obs::MetricsOn() && ws.injected > 0) {
        obs::MetricsRegistry& registry = obs::Metrics();
        if (ws.injected_stream > 0) {
          registry
              .GetCounter(obs::WithLabel(
                  obs::names::kFaultInjected, "site",
                  fault::FaultSiteName(fault::FaultSite::kTransfer)))
              ->Add(ws.injected_stream);
        }
        if (ws.injected_load > 0) {
          registry
              .GetCounter(obs::WithLabel(
                  obs::names::kFaultInjected, "site",
                  fault::FaultSiteName(fault::FaultSite::kDwLoad)))
              ->Add(ws.injected_load);
        }
      }
    }

    // --- DW-side contention: stretch transfer-load and DW execution. ---
    Seconds exec_time =
        record.breakdown.hv_exec_s + record.breakdown.dump_s;
    if (ms.cost.transfer_load_s + ws.wasted_rest_s > 0) {
      const Seconds stretched = ledger.RecordActivity(
          dw::DwActivityKind::kWorkingSetTransfer, now + exec_time,
          ms.cost.transfer_load_s + ws.wasted_rest_s,
          /*io_demand=*/1.2, /*cpu_demand=*/0.3);
      record.breakdown.transfer_load_s = stretched;
      exec_time += stretched;
    }
    if (ms.cost.dw_exec_s > 0) {
      const Seconds stretched = ledger.RecordActivity(
          dw::DwActivityKind::kQueryExec, now + exec_time,
          ms.cost.dw_exec_s, /*io_demand=*/0.25, /*cpu_demand=*/0.35);
      record.breakdown.dw_exec_s = stretched;
      exec_time += stretched;
    }
    // Retry backoff is dead time on the query's critical path: charged to
    // the clock (and so to TTI), kept out of the anatomy components.
    exec_time += record.fault_backoff_s;
    now += exec_time;
    record.completion_time = now;

    report.hv_exe_s += record.breakdown.hv_exec_s;
    report.dw_exe_s += record.breakdown.dw_exec_s;
    report.transfer_s +=
        record.breakdown.dump_s + record.breakdown.transfer_load_s;

    // --- Retention of opportunistic views. ---
    if (harvest) {
      if (cfg.variant == SystemVariant::kHvOp) {
        for (View& v : produced) {
          hv_store.catalog().AddUnchecked(std::move(v));
        }
        EvictLruToBudget(&hv_store.catalog());
      } else if (cfg.variant == SystemVariant::kMsOff) {
        // Retain / immediately load exactly the targeted views.
        for (View& v : produced) {
          if (offline_dw_signatures.count(v.signature) > 0) {
            const transfer::TransferBreakdown tb =
                mover.ViewTransferToDw(v.size_bytes);
            const Seconds stretched = ledger.RecordActivity(
                dw::DwActivityKind::kReorgTransfer, now, tb.Total(),
                /*io_demand=*/1.3, /*cpu_demand=*/0.3);
            now += stretched;
            report.tune_s += stretched;
            report.bytes_moved_to_dw += v.size_bytes;
            offline_dw_signatures.erase(v.signature);
            MISO_RETURN_IF_ERROR(dw_store.catalog().AddUnchecked(std::move(v)));
          } else if (offline_hv_signatures.count(v.signature) > 0) {
            MISO_RETURN_IF_ERROR(hv_store.catalog().AddUnchecked(std::move(v)));
          }
        }
      } else {
        // MISO / LRU / ORA: HV retains everything until the next reorg.
        for (View& v : produced) {
          MISO_RETURN_IF_ERROR(hv_store.catalog().AddUnchecked(std::move(v)));
        }
      }
    }

    // --- Track view usage for LRU / diagnostics. ---
    std::vector<ViewId> hv_used;
    std::vector<ViewId> dw_used;
    CollectViewUses(ms.executed, &hv_used, &dw_used);
    record.views_used = static_cast<int>(hv_used.size() + dw_used.size());
    for (ViewId id : hv_used) {
      hv_store.catalog().TouchView(id, static_cast<int>(qi));
    }
    for (ViewId id : dw_used) {
      dw_store.catalog().TouchView(id, static_cast<int>(qi));
    }

    // Telemetry, at this serial point: the record is complete (stretched
    // breakdown, usage counts) and `now` has advanced past the query.
    if (obs::MetricsOn()) {
      obs::MetricsRegistry& registry = obs::Metrics();
      registry.GetCounter(obs::names::kSimQueries)->Increment();
      registry.GetCounter(obs::names::kSimTransferredBytes)
          ->Add(static_cast<int64_t>(record.transferred_bytes));
      registry
          .GetHistogram(obs::names::kSimQueryExecSeconds,
                        obs::SecondsBuckets())
          ->Observe(exec_time);
    }
    if (obs::TraceOn()) {
      obs::Emit(
          obs::TraceEvent(obs::names::kEvSimQuery)
              .Int("index", record.index)
              .Str("name", record.name)
              .Str("variant", report.variant_name)
              .Double("start_s", record.start_time)
              .Double("completion_s", record.completion_time)
              .Double("hv_exec_s", record.breakdown.hv_exec_s)
              .Double("dump_s", record.breakdown.dump_s)
              .Double("transfer_load_s", record.breakdown.transfer_load_s)
              .Double("dw_exec_s", record.breakdown.dw_exec_s)
              .Int("transferred_bytes",
                   static_cast<int64_t>(record.transferred_bytes))
              .Int("ops_dw", record.ops_dw)
              .Int("ops_total", record.ops_total)
              .Int("views_used", record.views_used));
    }
    // Fault telemetry, same serial point. The `fault.query` trace line is
    // emitted only for queries that actually saw injection or degradation,
    // so fault-disabled runs keep their traces byte-for-byte unchanged.
    if (injector != nullptr) {
      if (obs::MetricsOn() && record.fault_injected > 0) {
        obs::MetricsRegistry& registry = obs::Metrics();
        registry.GetCounter(obs::names::kFaultRetries)
            ->Add(record.fault_retries);
        registry
            .GetHistogram(obs::names::kFaultRetryBackoffSeconds,
                          obs::SecondsBuckets())
            ->Observe(record.fault_backoff_s);
        registry
            .GetHistogram(obs::names::kFaultRetryAttempts,
                          obs::CountBuckets())
            ->Observe(static_cast<double>(record.fault_injected));
      }
      if (obs::TraceOn() && (record.fault_injected > 0 || record.degraded)) {
        obs::Emit(obs::TraceEvent(obs::names::kEvFaultQuery)
                      .Int("index", record.index)
                      .Bool("degraded", record.degraded)
                      .Int("injected", record.fault_injected)
                      .Int("retries", record.fault_retries)
                      .Double("wasted_s", record.fault_wasted_s)
                      .Double("backoff_s", record.fault_backoff_s));
      }
    }
    report.fault_injected += record.fault_injected;
    report.fault_retries += record.fault_retries;
    report.fault_wasted_s += record.fault_wasted_s;
    report.fault_backoff_s += record.fault_backoff_s;

    history.push_back(wq.plan);
    report.queries.push_back(std::move(record));

    // --- Reorganization phase. ---
    const bool reorg_variant = cfg.variant == SystemVariant::kMsMiso ||
                               cfg.variant == SystemVariant::kMsLru ||
                               cfg.variant == SystemVariant::kMsOra;
    const bool query_trigger =
        cfg.reorg_every > 0 &&
        (static_cast<int>(qi) + 1) % cfg.reorg_every == 0;
    const bool time_trigger =
        cfg.reorg_every_seconds > 0 &&
        now - last_reorg_time >= cfg.reorg_every_seconds;
    const bool at_boundary =
        (query_trigger || time_trigger) && qi + 1 < queries.size();
    if (reorg_variant && at_boundary && dw_down) {
      // A reorganization moves views into/out of the DW; during an outage
      // it is deferred to the next boundary rather than attempted.
      report.reorgs_skipped += 1;
      if (obs::MetricsOn()) {
        obs::Metrics().GetCounter(obs::names::kFaultReorgsSkipped)
            ->Increment();
      }
    }
    if (reorg_variant && at_boundary && !dw_down) {
      tuner::ReorgPlan reorg;
      if (cfg.variant == SystemVariant::kMsLru) {
        MISO_ASSIGN_OR_RETURN(
            reorg, lru_tuner.Tune(hv_store.catalog(), dw_store.catalog()));
      } else {
        std::vector<plan::Plan> window;
        if (cfg.variant == SystemVariant::kMsOra) {
          // Oracle: the actual future window.
          for (size_t j = qi + 1;
               j < queries.size() &&
               window.size() < static_cast<size_t>(cfg.history_window);
               ++j) {
            window.push_back(queries[j].plan);
          }
          // Newest-last ordering: the nearest future query should weigh
          // most, so reverse (decay favors the back of the window).
          std::reverse(window.begin(), window.end());
        } else {
          const size_t start =
              history.size() > static_cast<size_t>(cfg.history_window)
                  ? history.size() - static_cast<size_t>(cfg.history_window)
                  : 0;
          window.assign(history.begin() + static_cast<long>(start),
                        history.end());
        }
        MISO_ASSIGN_OR_RETURN(
            reorg,
            miso_tuner.Tune(hv_store.catalog(), dw_store.catalog(), window));
      }

      Seconds reorg_time = cfg.tune_compute_s;
      Bytes to_dw = reorg.BytesToDw();
      Bytes to_hv = reorg.BytesToHv();
      // Charges one batch of reorg movement through the DW ledger; the
      // transfer model is linear in bytes, so batching per direction is
      // equivalent to per-view charging.
      auto charge_moves = [&](Bytes dw_bytes, Bytes hv_bytes) {
        if (dw_bytes > 0) {
          const transfer::TransferBreakdown tb =
              mover.ViewTransferToDw(dw_bytes);
          reorg_time += ledger.RecordActivity(
              dw::DwActivityKind::kReorgTransfer, now + reorg_time,
              tb.Total(), /*io_demand=*/1.3, /*cpu_demand=*/0.3);
        }
        if (hv_bytes > 0) {
          const transfer::TransferBreakdown tb =
              mover.ViewTransferToHv(hv_bytes);
          reorg_time += ledger.RecordActivity(
              dw::DwActivityKind::kReorgTransfer, now + reorg_time,
              tb.Total(), /*io_demand=*/0.8, /*cpu_demand=*/0.2);
        }
      };

      // Crash-safe application: with an injector present the plan runs
      // through the move journal, which may crash between two moves and
      // recover (resume or rollback); without one, the legacy direct
      // application — the journal's no-crash walk is step-for-step
      // identical to ApplyReorgPlan, but the disabled path stays exact.
      bool rolled_back = false;
      if (injector == nullptr) {
        charge_moves(to_dw, to_hv);
        MISO_RETURN_IF_ERROR(
            tuner::ApplyReorgPlan(reorg, &hv_store.catalog(),
                                  &dw_store.catalog()));
      } else {
        MISO_ASSIGN_OR_RETURN(
            tuner::ReorgJournal journal,
            tuner::ReorgJournal::Create(reorg, hv_store.catalog(),
                                        dw_store.catalog()));
        const int crash_before = injector->ReorgCrashPoint(
            static_cast<uint64_t>(report.reorg_count),
            journal.num_entries());
        if (crash_before < 0) {
          charge_moves(to_dw, to_hv);
          MISO_ASSIGN_OR_RETURN(
              const tuner::ReorgJournal::Outcome outcome,
              journal.Apply(&hv_store.catalog(), &dw_store.catalog()));
          (void)outcome;
        } else {
          rolled_back = fault_plan.recovery == RecoveryPolicy::kRollback;
          MISO_ASSIGN_OR_RETURN(
              const tuner::ReorgJournal::Outcome partial,
              journal.Apply(&hv_store.catalog(), &dw_store.catalog(),
                            crash_before));
          charge_moves(partial.bytes_to_dw, partial.bytes_to_hv);
          // Restart penalty: the crashed reorganization is detected and
          // restarted after one backoff interval of simulated time.
          reorg_time += fault_plan.retry.BackoffBefore(2);
          MISO_ASSIGN_OR_RETURN(
              const tuner::ReorgJournal::Outcome recovery,
              journal.Recover(fault_plan.recovery, &hv_store.catalog(),
                              &dw_store.catalog()));
          charge_moves(recovery.bytes_to_dw, recovery.bytes_to_hv);
          // Actual bytes moved: the partial pass plus the recovery pass
          // (a rollback re-crosses the link in the opposite direction).
          to_dw = partial.bytes_to_dw + recovery.bytes_to_dw;
          to_hv = partial.bytes_to_hv + recovery.bytes_to_hv;
          report.reorg_crashes += 1;
          // Post-recovery invariants (always on under ctest): the journal
          // must agree with the catalogs and be in a terminal state.
          if (verify::Enabled()) {
            MISO_RETURN_IF_ERROR(verify::VerifyJournalConsistency(
                journal, hv_store.catalog(), dw_store.catalog()));
          }
          if (obs::MetricsOn()) {
            obs::MetricsRegistry& registry = obs::Metrics();
            registry.GetCounter(obs::names::kFaultReorgCrashes)->Increment();
            registry
                .GetCounter(obs::WithLabel(
                    obs::names::kFaultReorgRecoveries, "policy",
                    RecoveryPolicyName(fault_plan.recovery)))
                ->Increment();
            registry
                .GetCounter(obs::WithLabel(obs::names::kFaultInjected, "site",
                                           fault::FaultSiteName(
                                               fault::FaultSite::kReorg)))
                ->Increment();
          }
          if (obs::TraceOn()) {
            obs::Emit(obs::TraceEvent(obs::names::kEvFaultReorgRecovery)
                          .Int("reorg_index", report.reorg_count)
                          .Int("crash_before", crash_before)
                          .Str("policy",
                               RecoveryPolicyName(fault_plan.recovery))
                          .Int("steps_applied", partial.steps)
                          .Int("steps_recovered", recovery.steps)
                          .Int("bytes_to_dw", static_cast<int64_t>(to_dw))
                          .Int("bytes_to_hv", static_cast<int64_t>(to_hv)));
          }
        }
      }
      // Debug-mode assertion (always on under ctest): every applied
      // reorganization leaves a design within Bh/Bd with Vh ∩ Vd = ∅.
      // After a *rollback* recovery the design reverts to its pre-reorg
      // state, where HV may legitimately exceed Bh (opportunistic views
      // accumulate between reorgs, §3.1), so the budget check is skipped —
      // journal consistency was already verified above.
      if (verify::Enabled() && !rolled_back) {
        verify::DesignBudgets budgets;
        budgets.hv_storage = cfg.hv_storage_budget;
        budgets.dw_storage = cfg.dw_storage_budget;
        budgets.transfer = cfg.transfer_budget;
        budgets.discretization = tuner_config.discretization;
        MISO_RETURN_IF_ERROR(verify::VerifyDesign(
            hv_store.catalog(), dw_store.catalog(), budgets));
      }
      report.bytes_moved_to_dw += to_dw;
      report.bytes_moved_to_hv += to_hv;
      report.tune_s += reorg_time;
      report.reorg_count += 1;
      now += reorg_time;
      last_reorg_time = now;

      if (obs::MetricsOn()) {
        obs::MetricsRegistry& registry = obs::Metrics();
        registry.GetCounter(obs::names::kSimReorgs)->Increment();
        registry
            .GetCounter(obs::WithLabel(obs::names::kSimMovedBytes, "dir",
                                       obs::names::kDirToDw))
            ->Add(static_cast<int64_t>(to_dw));
        registry
            .GetCounter(obs::WithLabel(obs::names::kSimMovedBytes, "dir",
                                       obs::names::kDirToHv))
            ->Add(static_cast<int64_t>(to_hv));
      }
      if (obs::TraceOn()) {
        obs::Emit(obs::TraceEvent(obs::names::kEvSimReorg)
                      .Int("query_index", static_cast<int64_t>(qi))
                      .Int("reorg_index", report.reorg_count - 1)
                      .Int("bytes_to_dw", static_cast<int64_t>(to_dw))
                      .Int("bytes_to_hv", static_cast<int64_t>(to_hv))
                      .Int("transfer_budget",
                           static_cast<int64_t>(cfg.transfer_budget))
                      .Double("reorg_s", reorg_time)
                      .Int("hv_used_bytes", static_cast<int64_t>(
                                                hv_store.catalog().used_bytes()))
                      .Int("dw_used_bytes", static_cast<int64_t>(
                                                dw_store.catalog().used_bytes())));
      }

      if (cfg.reorg_observer) {
        SimConfig::ReorgSnapshot snapshot;
        snapshot.query_index = static_cast<int>(qi);
        snapshot.reorg_index = report.reorg_count - 1;
        snapshot.hv_used = hv_store.catalog().used_bytes();
        snapshot.dw_used = dw_store.catalog().used_bytes();
        for (const View& v : hv_store.catalog().AllViews()) {
          snapshot.hv_ids.push_back(v.id);
        }
        for (const View& v : dw_store.catalog().AllViews()) {
          snapshot.dw_ids.push_back(v.id);
        }
        snapshot.moved_to_dw = to_dw;
        snapshot.moved_to_hv = to_hv;
        cfg.reorg_observer(snapshot);
      }
    }
  }

  // ---- DW resource series / background impact. -------------------------
  if (has_background) {
    report.dw_ticks = ledger.TickSeries(now);
    report.avg_background_latency_s = ledger.AverageBackgroundLatency(now);
    report.background_slowdown = ledger.BackgroundSlowdown(now);
  }
  // A borrowed pool is published by its owner (RunSeedSweep), not here.
  PublishPoolStats(owned_pool.get());
  return report;
}

Result<RunReport> RunPaperWorkload(const relation::Catalog* catalog,
                                   const SimConfig& config,
                                   uint64_t workload_seed) {
  workload::WorkloadConfig wl;
  wl.seed = workload_seed;
  MISO_ASSIGN_OR_RETURN(workload::EvolutionaryWorkload workload,
                        workload::EvolutionaryWorkload::Generate(catalog, wl));
  MultistoreSimulator simulator(catalog, config);
  return simulator.Run(workload.queries());
}

Result<std::vector<RunReport>> RunSeedSweep(
    const relation::Catalog* catalog, const SimConfig& config,
    const std::vector<uint64_t>& seeds) {
  const int threads =
      config.threads > 0 ? config.threads : ThreadPool::DefaultThreadCount();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Observability gates are engaged once, here on the sweep thread, so
  // the per-seed Run bodies below never toggle process-global state from
  // workers (they see the gate already in the requested position).
  std::optional<obs::ScopedMetrics> scoped_metrics;
  std::optional<obs::ScopedTrace> scoped_trace;
  if (config.metrics && !obs::MetricsOn()) scoped_metrics.emplace(true);
  if (config.trace && !obs::TraceOn()) scoped_trace.emplace(true);

  // One slot per seed; each task generates its own workload and runs a
  // self-contained simulator, so slots never alias. The shared pool also
  // serves the per-run optimizer — nested ParallelFor from a worker
  // thread runs inline, which is the same deterministic serial reduce.
  // Trace lines are captured per seed on the executing thread and
  // appended to the global sink in seed order after the merge, keeping
  // the trace byte-identical for any thread count.
  std::vector<Result<RunReport>> slots(
      seeds.size(), Status::Internal("seed not simulated"));
  std::vector<std::vector<std::string>> trace_slots(seeds.size());
  ParallelFor(pool.get(), static_cast<int>(seeds.size()), [&](int i) {
    obs::ScopedTraceCapture capture;
    MultistoreSimulator simulator(catalog, config);
    simulator.SetThreadPool(pool.get());
    workload::WorkloadConfig wl;
    wl.seed = seeds[static_cast<size_t>(i)];
    Result<workload::EvolutionaryWorkload> workload =
        workload::EvolutionaryWorkload::Generate(catalog, wl);
    if (!workload.ok()) {
      slots[static_cast<size_t>(i)] = workload.status();
      return;
    }
    slots[static_cast<size_t>(i)] = simulator.Run(workload->queries());
    trace_slots[static_cast<size_t>(i)] = capture.TakeLines();
  });
  for (std::vector<std::string>& lines : trace_slots) {
    for (std::string& line : lines) obs::Trace().Append(std::move(line));
  }
  PublishPoolStats(pool.get());

  // Merge in seed order: reports line up with `seeds`, and the error of
  // the lowest-indexed failing seed wins, as a serial loop would report.
  std::vector<RunReport> reports;
  reports.reserve(slots.size());
  for (Result<RunReport>& slot : slots) {
    if (!slot.ok()) return slot.status();
    reports.push_back(std::move(*slot));
  }
  return reports;
}

}  // namespace miso::sim
