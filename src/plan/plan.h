#ifndef MISO_PLAN_PLAN_H_
#define MISO_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/operator.h"

namespace miso::plan {

/// A logical query plan: an immutable operator tree plus query identity.
///
/// Plans are cheap to copy (shared_ptr root) and structurally share
/// subtrees with plans derived from them by rewriting.
class Plan {
 public:
  Plan() = default;
  Plan(std::string query_name, NodePtr root)
      : query_name_(std::move(query_name)), root_(std::move(root)) {}

  const std::string& query_name() const { return query_name_; }
  const NodePtr& root() const { return root_; }
  bool empty() const { return root_ == nullptr; }

  /// Signature of the whole query (the root's subexpression signature).
  uint64_t signature() const { return root_ ? root_->signature() : 0; }

  /// All nodes in post-order (children before parents). Deterministic.
  std::vector<NodePtr> PostOrder() const;

  /// Number of operator nodes.
  int NumOperators() const;

  /// True when every operator in the plan may run in the DW (requires all
  /// leaves to be ViewScans — raw-log scans pin a plan to HV).
  bool FullyDwExecutable() const;

 private:
  std::string query_name_;
  NodePtr root_;
};

/// Collects the nodes of the subtree rooted at `node` in post-order.
void CollectPostOrder(const NodePtr& node, std::vector<NodePtr>* out);

}  // namespace miso::plan

#endif  // MISO_PLAN_PLAN_H_
