#include "plan/builder.h"

namespace miso::plan {

PlanBuilder::Fragment::Fragment(const NodeFactory* factory,
                                Result<NodePtr> node)
    : factory_(factory) {
  if (node.ok()) {
    node_ = std::move(node).value();
  } else {
    status_ = node.status();
  }
}

PlanBuilder::Fragment PlanBuilder::Fragment::Extract(
    std::vector<std::string> fields) const {
  if (!status_.ok()) return *this;
  return Fragment(factory_, factory_->MakeExtract(node_, std::move(fields)));
}

PlanBuilder::Fragment PlanBuilder::Fragment::Filter(
    std::vector<PredicateAtom> atoms) const {
  return Filter(Predicate(std::move(atoms)));
}

PlanBuilder::Fragment PlanBuilder::Fragment::Filter(
    Predicate predicate) const {
  if (!status_.ok()) return *this;
  return Fragment(factory_, factory_->MakeFilter(node_, std::move(predicate)));
}

PlanBuilder::Fragment PlanBuilder::Fragment::Project(
    std::vector<std::string> fields) const {
  if (!status_.ok()) return *this;
  return Fragment(factory_, factory_->MakeProject(node_, std::move(fields)));
}

PlanBuilder::Fragment PlanBuilder::Fragment::Join(
    const Fragment& right, const std::string& key) const {
  if (!status_.ok()) return *this;
  if (!right.status_.ok()) return right;
  return Fragment(factory_, factory_->MakeJoin(node_, right.node_, key));
}

PlanBuilder::Fragment PlanBuilder::Fragment::Aggregate(
    std::vector<std::string> group_by,
    std::vector<AggregateFn> aggregates) const {
  if (!status_.ok()) return *this;
  return Fragment(factory_, factory_->MakeAggregate(node_, std::move(group_by),
                                                    std::move(aggregates)));
}

PlanBuilder::Fragment PlanBuilder::Fragment::Udf(UdfParams params) const {
  if (!status_.ok()) return *this;
  return Fragment(factory_, factory_->MakeUdf(node_, std::move(params)));
}

Result<Plan> PlanBuilder::Fragment::Build(std::string query_name) const {
  if (!status_.ok()) return status_;
  if (node_ == nullptr) {
    return Status::FailedPrecondition("empty plan fragment");
  }
  return Plan(std::move(query_name), node_);
}

PlanBuilder::Fragment PlanBuilder::Scan(const std::string& dataset) const {
  return Fragment(&factory_, factory_.MakeScan(dataset));
}

}  // namespace miso::plan
