#include "plan/plan.h"

namespace miso::plan {

void CollectPostOrder(const NodePtr& node, std::vector<NodePtr>* out) {
  if (node == nullptr) return;
  for (const NodePtr& child : node->children()) {
    CollectPostOrder(child, out);
  }
  out->push_back(node);
}

std::vector<NodePtr> Plan::PostOrder() const {
  std::vector<NodePtr> nodes;
  CollectPostOrder(root_, &nodes);
  return nodes;
}

int Plan::NumOperators() const {
  return static_cast<int>(PostOrder().size());
}

bool Plan::FullyDwExecutable() const {
  for (const NodePtr& node : PostOrder()) {
    if (!node->dw_executable()) return false;
  }
  return root_ != nullptr;
}

}  // namespace miso::plan
