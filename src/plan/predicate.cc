#include "plan/predicate.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace miso::plan {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

std::string PredicateAtom::CanonicalString() const {
  std::string out = field;
  out += ' ';
  out += CompareOpToString(op);
  out += ' ';
  out += operand;
  return out;
}

bool PredicateAtom::SameAtom(const PredicateAtom& other) const {
  return field == other.field && op == other.op && operand == other.operand;
}

PredicateAtom MakeAtom(std::string field, CompareOp op, std::string operand,
                       double selectivity) {
  PredicateAtom atom;
  atom.field = std::move(field);
  atom.op = op;
  atom.operand = std::move(operand);
  atom.selectivity = selectivity;
  char* end = nullptr;
  const double v = std::strtod(atom.operand.c_str(), &end);
  if (end != atom.operand.c_str() && end != nullptr && *end == '\0') {
    atom.numeric = v;
  }
  return atom;
}

namespace {

bool NumericImplies(const PredicateAtom& s, const PredicateAtom& w) {
  if (!s.numeric.has_value() || !w.numeric.has_value()) return false;
  const double sv = *s.numeric;
  const double wv = *w.numeric;
  switch (w.op) {
    case CompareOp::kGt:
      // weaker region: (wv, inf)
      switch (s.op) {
        case CompareOp::kGt:
          return sv >= wv;
        case CompareOp::kGe:
          return sv > wv;
        case CompareOp::kEq:
          return sv > wv;
        default:
          return false;
      }
    case CompareOp::kGe:
      // weaker region: [wv, inf)
      switch (s.op) {
        case CompareOp::kGt:
        case CompareOp::kGe:
        case CompareOp::kEq:
          return sv >= wv;
        default:
          return false;
      }
    case CompareOp::kLt:
      // weaker region: (-inf, wv)
      switch (s.op) {
        case CompareOp::kLt:
          return sv <= wv;
        case CompareOp::kLe:
          return sv < wv;
        case CompareOp::kEq:
          return sv < wv;
        default:
          return false;
      }
    case CompareOp::kLe:
      // weaker region: (-inf, wv]
      switch (s.op) {
        case CompareOp::kLt:
        case CompareOp::kLe:
        case CompareOp::kEq:
          return sv <= wv;
        default:
          return false;
      }
    default:
      return false;
  }
}

}  // namespace

bool AtomImplies(const PredicateAtom& stronger, const PredicateAtom& weaker) {
  if (stronger.field != weaker.field) return false;
  if (stronger.SameAtom(weaker)) return true;
  return NumericImplies(stronger, weaker);
}

Predicate::Predicate(std::vector<PredicateAtom> atoms)
    : atoms_(std::move(atoms)) {
  std::sort(atoms_.begin(), atoms_.end(),
            [](const PredicateAtom& a, const PredicateAtom& b) {
              return a.CanonicalString() < b.CanonicalString();
            });
}

double Predicate::Selectivity() const {
  // Attribute independence across fields; within one field, redundant
  // range bounds in the same direction are not independent (ts > 200
  // implies ts > 100), so lower bounds contribute the min selectivity
  // among themselves, as do upper bounds. Equality/LIKE atoms multiply.
  std::map<std::string, double> lower;  // field -> min sel of Gt/Ge atoms
  std::map<std::string, double> upper;  // field -> min sel of Lt/Le atoms
  double sel = 1.0;
  for (const PredicateAtom& atom : atoms_) {
    switch (atom.op) {
      case CompareOp::kGt:
      case CompareOp::kGe: {
        auto [it, inserted] = lower.emplace(atom.field, atom.selectivity);
        if (!inserted) it->second = std::min(it->second, atom.selectivity);
        break;
      }
      case CompareOp::kLt:
      case CompareOp::kLe: {
        auto [it, inserted] = upper.emplace(atom.field, atom.selectivity);
        if (!inserted) it->second = std::min(it->second, atom.selectivity);
        break;
      }
      default:
        sel *= atom.selectivity;
    }
  }
  for (const auto& [field, s] : lower) sel *= s;
  for (const auto& [field, s] : upper) sel *= s;
  return sel;
}

Predicate Predicate::And(const Predicate& other) const {
  std::vector<PredicateAtom> merged = atoms_;
  for (const PredicateAtom& atom : other.atoms_) {
    const bool duplicate =
        std::any_of(merged.begin(), merged.end(),
                    [&](const PredicateAtom& a) { return a.SameAtom(atom); });
    if (!duplicate) merged.push_back(atom);
  }
  return Predicate(std::move(merged));
}

bool Predicate::Implies(const Predicate& weaker) const {
  for (const PredicateAtom& w : weaker.atoms_) {
    const bool covered =
        std::any_of(atoms_.begin(), atoms_.end(),
                    [&](const PredicateAtom& s) { return AtomImplies(s, w); });
    if (!covered) return false;
  }
  return true;
}

std::string Predicate::CanonicalString() const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += '(';
    out += atoms_[i].CanonicalString();
    out += ')';
  }
  return out;
}

Predicate CompensationPredicate(const Predicate& query,
                                const Predicate& view) {
  std::vector<PredicateAtom> residual;
  for (const PredicateAtom& q : query.atoms()) {
    // Exact matches are fully absorbed by the view.
    const bool exact =
        std::any_of(view.atoms().begin(), view.atoms().end(),
                    [&](const PredicateAtom& v) { return v.SameAtom(q); });
    if (exact) continue;
    PredicateAtom comp = q;
    // If a strictly weaker view atom on the same field partially covers q,
    // rescale q's selectivity to the conditional selectivity given the view
    // atom already applied.
    for (const PredicateAtom& v : view.atoms()) {
      if (v.field == q.field && AtomImplies(q, v) && v.selectivity > 0) {
        comp.selectivity = std::min(1.0, q.selectivity / v.selectivity);
        break;
      }
    }
    residual.push_back(std::move(comp));
  }
  return Predicate(std::move(residual));
}

}  // namespace miso::plan
