#include "plan/node_factory.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace miso::plan {

namespace {

using relation::Field;
using relation::Schema;

int64_t CapNdv(int64_t ndv, int64_t rows) {
  return std::max<int64_t>(1, std::min(ndv, rows));
}

/// A field cannot have more distinct values than there are rows.
Schema CapSchemaNdvs(const Schema& schema, int64_t rows) {
  std::vector<Field> fields = schema.fields();
  for (Field& f : fields) f.distinct_values = CapNdv(f.distinct_values, rows);
  return Schema(std::move(fields));
}

std::string JoinStrings(std::vector<std::string> parts, bool sort) {
  if (sort) std::sort(parts.begin(), parts.end());
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  return out;
}

int64_t RowsFromFraction(int64_t rows, double fraction) {
  const double v = static_cast<double>(rows) * fraction;
  if (v <= 0) return 0;
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(v)));
}

}  // namespace

Result<NodePtr> NodeFactory::MakeScan(const std::string& dataset) const {
  MISO_ASSIGN_OR_RETURN(relation::LogDataset ds,
                        catalog_->FindDataset(dataset));
  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kScan;
  node->scan_.dataset = dataset;
  node->output_schema_ = ds.schema;
  node->stats_.rows = ds.num_records;
  node->stats_.bytes = ds.raw_bytes;
  node->canonical_ = "scan(" + dataset + ")";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = false;  // raw logs live in HDFS only
  return NodePtr(node);
}

Result<NodePtr> NodeFactory::MakeExtract(
    NodePtr child, std::vector<std::string> fields) const {
  if (child == nullptr) {
    return Status::InvalidArgument("Extract requires a child");
  }
  if (child->kind() != OpKind::kScan) {
    return Status::InvalidArgument(
        "Extract (SerDe) applies directly to a raw-log Scan");
  }
  MISO_ASSIGN_OR_RETURN(Schema schema,
                        child->output_schema().Project(fields));
  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kExtract;
  node->children_ = {std::move(child)};
  node->extract_.fields = fields;
  node->stats_.rows = node->children_[0]->stats().rows;
  node->stats_.bytes = node->stats_.rows * schema.RecordWidth();
  node->output_schema_ = std::move(schema);
  node->canonical_ = "extract(" + node->children_[0]->canonical() +
                     ";fields=[" + JoinStrings(fields, /*sort=*/true) + "])";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = false;  // SerDe over flat files is HV-only
  return NodePtr(node);
}

Result<NodePtr> NodeFactory::MakeFilter(NodePtr child,
                                        Predicate predicate) const {
  if (child == nullptr) {
    return Status::InvalidArgument("Filter requires a child");
  }
  for (const PredicateAtom& atom : predicate.atoms()) {
    if (!child->output_schema().HasField(atom.field)) {
      return Status::InvalidArgument("Filter references unknown field '" +
                                     atom.field + "'");
    }
    if (atom.selectivity <= 0.0 || atom.selectivity > 1.0) {
      return Status::InvalidArgument("atom selectivity must be in (0,1]: " +
                                     atom.CanonicalString());
    }
  }
  const double sel = predicate.Selectivity();
  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kFilter;
  node->filter_.predicate = std::move(predicate);
  node->stats_.rows = RowsFromFraction(child->stats().rows, sel);
  node->stats_.bytes = ScaleBytes(child->stats().bytes, sel);
  node->output_schema_ =
      CapSchemaNdvs(child->output_schema(), node->stats_.rows);
  node->canonical_ = "filter(" + child->canonical() + ";" +
                     node->filter_.predicate.CanonicalString() + ")";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = true;
  node->children_ = {std::move(child)};
  return NodePtr(node);
}

Result<NodePtr> NodeFactory::MakeProject(
    NodePtr child, std::vector<std::string> fields) const {
  if (child == nullptr) {
    return Status::InvalidArgument("Project requires a child");
  }
  MISO_ASSIGN_OR_RETURN(Schema schema,
                        child->output_schema().Project(fields));
  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kProject;
  node->project_.fields = fields;
  node->stats_.rows = child->stats().rows;
  node->stats_.bytes = node->stats_.rows * schema.RecordWidth();
  node->output_schema_ = std::move(schema);
  node->canonical_ = "project(" + child->canonical() + ";[" +
                     JoinStrings(fields, /*sort=*/true) + "])";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = true;
  node->children_ = {std::move(child)};
  return NodePtr(node);
}

Result<NodePtr> NodeFactory::MakeJoin(NodePtr left, NodePtr right,
                                      const std::string& key) const {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Join requires two children");
  }
  MISO_ASSIGN_OR_RETURN(Field lkey, left->output_schema().FindField(key));
  MISO_ASSIGN_OR_RETURN(Field rkey, right->output_schema().FindField(key));

  const int64_t lrows = left->stats().rows;
  const int64_t rrows = right->stats().rows;
  const int64_t max_ndv =
      std::max<int64_t>(1, std::max(lkey.distinct_values,
                                    rkey.distinct_values));
  const double out_rows_est = static_cast<double>(lrows) /
                              static_cast<double>(max_ndv) *
                              static_cast<double>(rrows);
  const int64_t out_rows =
      std::max<int64_t>(0, static_cast<int64_t>(std::llround(out_rows_est)));

  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kJoin;
  node->join_.key = key;
  Schema merged = left->output_schema().ConcatWith(right->output_schema());
  node->stats_.rows = out_rows;
  node->stats_.bytes = out_rows * merged.RecordWidth();
  node->output_schema_ = CapSchemaNdvs(merged, std::max<int64_t>(out_rows, 1));

  // Joins are commutative: canonicalize child order lexicographically so
  // join(A,B) and join(B,A) share a signature.
  std::string lc = left->canonical();
  std::string rc = right->canonical();
  if (lc > rc) std::swap(lc, rc);
  node->canonical_ = "join(" + lc + "," + rc + ";key=" + key + ")";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = true;
  node->children_ = {std::move(left), std::move(right)};
  return NodePtr(node);
}

Result<NodePtr> NodeFactory::MakeAggregate(
    NodePtr child, std::vector<std::string> group_by,
    std::vector<AggregateFn> aggregates) const {
  if (child == nullptr) {
    return Status::InvalidArgument("Aggregate requires a child");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("Aggregate requires >= 1 aggregate fn");
  }
  // Output cardinality: product of group-key NDVs, capped by input rows.
  double groups = 1.0;
  std::vector<Field> out_fields;
  for (const std::string& key : group_by) {
    MISO_ASSIGN_OR_RETURN(Field f, child->output_schema().FindField(key));
    groups *= static_cast<double>(f.distinct_values);
    groups = std::min(groups, static_cast<double>(child->stats().rows));
    out_fields.push_back(f);
  }
  for (const AggregateFn& fn : aggregates) {
    if (fn.field != "*" && !child->output_schema().HasField(fn.field)) {
      return Status::InvalidArgument("Aggregate references unknown field '" +
                                     fn.field + "'");
    }
    out_fields.emplace_back(fn.CanonicalString(), relation::DataType::kDouble,
                            8, /*ndv=*/1);
  }
  const int64_t out_rows = std::max<int64_t>(
      1, std::min<int64_t>(child->stats().rows,
                           static_cast<int64_t>(std::llround(groups))));

  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kAggregate;
  node->aggregate_.group_by = group_by;
  node->aggregate_.aggregates = aggregates;
  node->output_schema_ = CapSchemaNdvs(Schema(std::move(out_fields)),
                                       out_rows);
  node->stats_.rows = out_rows;
  node->stats_.bytes = out_rows * node->output_schema_.RecordWidth();

  std::vector<std::string> fn_strings;
  fn_strings.reserve(aggregates.size());
  for (const AggregateFn& fn : aggregates) {
    fn_strings.push_back(fn.CanonicalString());
  }
  node->canonical_ = "agg(" + child->canonical() + ";keys=[" +
                     JoinStrings(group_by, /*sort=*/true) + "];fns=[" +
                     JoinStrings(std::move(fn_strings), /*sort=*/true) + "])";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = true;
  node->children_ = {std::move(child)};
  return NodePtr(node);
}

Result<NodePtr> NodeFactory::MakeUdf(NodePtr child, UdfParams params) const {
  if (child == nullptr) {
    return Status::InvalidArgument("Udf requires a child");
  }
  if (params.size_factor <= 0 || params.row_selectivity <= 0 ||
      params.row_selectivity > 1.0 || params.cpu_factor <= 0) {
    return Status::InvalidArgument("Udf '" + params.name +
                                   "' has out-of-range cost parameters");
  }
  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kUdf;
  node->stats_.rows =
      RowsFromFraction(child->stats().rows, params.row_selectivity);
  node->stats_.bytes = ScaleBytes(child->stats().bytes, params.size_factor);
  // UDFs may append derived columns; schema-wise we keep the child schema
  // plus one opaque derived field, which is enough for width accounting.
  std::vector<Field> fields = child->output_schema().fields();
  const Bytes derived_width = std::max<Bytes>(
      0, node->stats_.rows > 0
             ? node->stats_.bytes / node->stats_.rows -
                   child->output_schema().RecordWidth()
             : 0);
  fields.emplace_back(params.name + "_out", relation::DataType::kString,
                      derived_width, node->stats_.rows);
  node->output_schema_ = CapSchemaNdvs(Schema(std::move(fields)),
                                       std::max<int64_t>(node->stats_.rows, 1));
  node->canonical_ = "udf(" + child->canonical() + ";" + params.name + ")";
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = params.dw_compatible;
  node->udf_ = std::move(params);
  node->children_ = {std::move(child)};
  return NodePtr(node);
}

NodePtr NodeFactory::MakeViewScan(uint64_t view_id, uint64_t view_signature,
                                  StoreKind store,
                                  const relation::Schema& schema,
                                  const OutputStats& stats,
                                  std::string canonical) const {
  auto node = std::make_shared<OperatorNode>();
  node->kind_ = OpKind::kViewScan;
  node->view_scan_.view_id = view_id;
  node->view_scan_.view_signature = view_signature;
  node->view_scan_.store = store;
  node->output_schema_ = schema;
  node->stats_ = stats;
  // The rewritten node keeps the canonical form of the expression it
  // replaces: a rewrite changes the evaluation strategy, not the semantics.
  node->canonical_ = std::move(canonical);
  node->signature_ = HashBytes(node->canonical_);
  node->dw_executable_ = true;
  return NodePtr(node);
}

NodePtr NodeFactory::Recanonicalize(const NodePtr& node,
                                    std::string canonical) const {
  auto clone = std::make_shared<OperatorNode>(*node);
  clone->canonical_ = std::move(canonical);
  clone->signature_ = HashBytes(clone->canonical_);
  return NodePtr(clone);
}

Result<NodePtr> NodeFactory::Rebuild(const OperatorNode& node,
                                     std::vector<NodePtr> children) const {
  switch (node.kind()) {
    case OpKind::kScan:
      return MakeScan(node.scan().dataset);
    case OpKind::kExtract:
      if (children.size() != 1) {
        return Status::InvalidArgument("Extract rebuild needs 1 child");
      }
      return MakeExtract(std::move(children[0]), node.extract().fields);
    case OpKind::kFilter:
      if (children.size() != 1) {
        return Status::InvalidArgument("Filter rebuild needs 1 child");
      }
      return MakeFilter(std::move(children[0]), node.filter().predicate);
    case OpKind::kProject:
      if (children.size() != 1) {
        return Status::InvalidArgument("Project rebuild needs 1 child");
      }
      return MakeProject(std::move(children[0]), node.project().fields);
    case OpKind::kJoin:
      if (children.size() != 2) {
        return Status::InvalidArgument("Join rebuild needs 2 children");
      }
      return MakeJoin(std::move(children[0]), std::move(children[1]),
                      node.join().key);
    case OpKind::kAggregate:
      if (children.size() != 1) {
        return Status::InvalidArgument("Aggregate rebuild needs 1 child");
      }
      return MakeAggregate(std::move(children[0]), node.aggregate().group_by,
                           node.aggregate().aggregates);
    case OpKind::kUdf:
      if (children.size() != 1) {
        return Status::InvalidArgument("Udf rebuild needs 1 child");
      }
      return MakeUdf(std::move(children[0]), node.udf());
    case OpKind::kViewScan:
      return MakeViewScan(node.view_scan().view_id,
                          node.view_scan().view_signature,
                          node.view_scan().store, node.output_schema(),
                          node.stats(), node.canonical());
  }
  return Status::Internal("unknown operator kind in Rebuild");
}

}  // namespace miso::plan
