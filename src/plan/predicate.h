#ifndef MISO_PLAN_PREDICATE_H_
#define MISO_PLAN_PREDICATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace miso::plan {

/// Comparison operator of a predicate atom.
enum class CompareOp { kEq, kLt, kLe, kGt, kGe, kLike };

std::string_view CompareOpToString(CompareOp op);

/// One conjunct of a selection predicate: `field op operand`.
///
/// Atoms carry their own selectivity (supplied by the workload generator,
/// standing in for what a real system would get from statistics), and an
/// optional numeric interpretation of the operand that enables range
/// implication tests (e.g. `ts > 200` implies `ts > 100`).
struct PredicateAtom {
  std::string field;
  CompareOp op = CompareOp::kEq;
  std::string operand;
  /// Numeric value of `operand` when it parses as a number; enables
  /// range-based implication between atoms on the same field.
  std::optional<double> numeric;
  /// Fraction of input rows satisfying this atom, in (0, 1].
  double selectivity = 1.0;

  /// Canonical text used for signatures and exact-identity tests.
  std::string CanonicalString() const;

  /// Exact identity: same field, op, and operand (selectivity ignored —
  /// two systems may estimate the same atom differently).
  bool SameAtom(const PredicateAtom& other) const;
};

/// Makes an atom, deriving `numeric` from `operand` when possible.
PredicateAtom MakeAtom(std::string field, CompareOp op, std::string operand,
                       double selectivity);

/// Returns true when `stronger` logically implies `weaker`, i.e. every row
/// satisfying `stronger` also satisfies `weaker`. Conservative: false when
/// implication cannot be proven.
bool AtomImplies(const PredicateAtom& stronger, const PredicateAtom& weaker);

/// A conjunction of atoms. The empty predicate is `true`.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<PredicateAtom> atoms);

  const std::vector<PredicateAtom>& atoms() const { return atoms_; }
  bool IsTrue() const { return atoms_.empty(); }
  int size() const { return static_cast<int>(atoms_.size()); }

  /// Product of atom selectivities (attribute-independence assumption).
  double Selectivity() const;

  /// Conjunction of this and `other` (atom lists concatenated; exact
  /// duplicates dropped).
  Predicate And(const Predicate& other) const;

  /// True when every atom of `weaker` is implied by some atom of this
  /// predicate — i.e. this predicate is at least as restrictive, so a result
  /// filtered by `weaker` contains every row this predicate needs.
  bool Implies(const Predicate& weaker) const;

  /// Canonical, order-independent text form, e.g.
  /// "(topic = coffee) AND (ts > 100)". Atoms are sorted.
  std::string CanonicalString() const;

 private:
  std::vector<PredicateAtom> atoms_;  // kept sorted by CanonicalString
};

/// Residual (compensation) predicate for answering a query predicate
/// `query` from a result already filtered by `view`: the atoms of `query`
/// not exactly present in `view`, with selectivities rescaled by the
/// selectivity of the covering view atom (conditional selectivity), so the
/// estimator composes correctly. Requires `query.Implies(view)`.
Predicate CompensationPredicate(const Predicate& query, const Predicate& view);

}  // namespace miso::plan

#endif  // MISO_PLAN_PREDICATE_H_
