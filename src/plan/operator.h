#ifndef MISO_PLAN_OPERATOR_H_
#define MISO_PLAN_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/store_kind.h"
#include "common/units.h"
#include "plan/predicate.h"
#include "relation/schema.h"

namespace miso::plan {

/// Logical operator kinds. `kViewScan` only appears in rewritten plans (it
/// reads a materialized view instead of recomputing its subexpression).
enum class OpKind {
  kScan,
  kExtract,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kUdf,
  kViewScan,
};

std::string_view OpKindToString(OpKind kind);

/// Estimated output of an operator, derived bottom-up by the estimator.
struct OutputStats {
  int64_t rows = 0;
  Bytes bytes = 0;
};

/// Parameters of a kScan node: reads one raw log from HDFS.
struct ScanParams {
  std::string dataset;
};

/// Parameters of a kExtract node (SerDe): parses raw text records and
/// extracts the named fields into relational form.
struct ExtractParams {
  std::vector<std::string> fields;
};

/// Parameters of a kFilter node.
struct FilterParams {
  Predicate predicate;
};

/// Parameters of a kProject node.
struct ProjectParams {
  std::vector<std::string> fields;
};

/// Parameters of a kJoin node (equi-join of the two children).
struct JoinParams {
  /// Join key; must exist in both child schemas.
  std::string key;
};

/// One aggregate output column.
struct AggregateFn {
  /// "count", "sum", "avg", ... — only the name matters to the simulator.
  std::string fn;
  std::string field;
  std::string CanonicalString() const { return fn + "(" + field + ")"; }
};

/// Parameters of a kAggregate node (hash group-by).
struct AggregateParams {
  std::vector<std::string> group_by;
  std::vector<AggregateFn> aggregates;
};

/// Parameters of a kUdf node: arbitrary user code applied to every row.
///
/// UDFs drive split-point constraints: only `dw_compatible` UDFs may run in
/// the data warehouse; the rest pin their subtree to HV (paper §3.1).
struct UdfParams {
  std::string name;
  /// Output bytes = input bytes * size_factor.
  double size_factor = 1.0;
  /// Fraction of rows kept (UDFs may act as filters).
  double row_selectivity = 1.0;
  /// Relative CPU weight versus a plain scan of the same bytes.
  double cpu_factor = 1.0;
  /// Whether the DW can execute this UDF (e.g. a SQL-translatable function).
  bool dw_compatible = false;
};

/// Parameters of a kViewScan node: reads materialized view `view_id`.
struct ViewScanParams {
  uint64_t view_id = 0;
  /// Signature of the subexpression the view materializes (for printing).
  uint64_t view_signature = 0;
  /// Store the view resides in. A DW-resident view pins this leaf (and,
  /// transitively, everything above it) to the DW side of a split; an
  /// HV-resident view is read in HV.
  StoreKind store = StoreKind::kHv;
};

class OperatorNode;
/// Nodes are immutable after construction and shared structurally between
/// plans (a rewrite reuses untouched subtrees), hence shared_ptr-to-const.
using NodePtr = std::shared_ptr<const OperatorNode>;

/// One node of a logical plan. Instances are created by PlanBuilder (which
/// annotates schema/stats/signature bottom-up) or by the rewriter.
class OperatorNode {
 public:
  OperatorNode() = default;

  OpKind kind() const { return kind_; }
  const std::vector<NodePtr>& children() const { return children_; }
  const relation::Schema& output_schema() const { return output_schema_; }
  const OutputStats& stats() const { return stats_; }

  /// Canonical identity of the subexpression rooted here. Two subtrees with
  /// equal signatures compute the same result (sound, not complete).
  uint64_t signature() const { return signature_; }
  /// Human-readable canonical form backing `signature()`.
  const std::string& canonical() const { return canonical_; }

  /// True when an HV execution starts a new MapReduce job at this node
  /// (shuffle for joins/aggregates, separate stage for UDFs).
  bool IsJobBoundary() const {
    return kind_ == OpKind::kJoin || kind_ == OpKind::kAggregate ||
           kind_ == OpKind::kUdf;
  }

  /// True when this single operator may execute in the DW. Scans and
  /// Extracts of raw HDFS logs may not; UDFs only when declared
  /// dw_compatible; relational operators and ViewScans may. The optimizer
  /// uses this per-operator flag when enumerating split points (the DW-side
  /// suffix of a split must consist solely of DW-executable operators).
  bool dw_executable() const { return dw_executable_; }

  // Typed parameter accessors; calling the wrong one is a programming error
  // (the caller must dispatch on kind() first).
  const ScanParams& scan() const { return scan_; }
  const ExtractParams& extract() const { return extract_; }
  const FilterParams& filter() const { return filter_; }
  const ProjectParams& project() const { return project_; }
  const JoinParams& join() const { return join_; }
  const AggregateParams& aggregate() const { return aggregate_; }
  const UdfParams& udf() const { return udf_; }
  const ViewScanParams& view_scan() const { return view_scan_; }

 private:
  friend class NodeFactory;   // constructs and annotates nodes
  friend class PlanTestPeer;  // test-only: builds malformed graphs that
                              // the factory refuses, to exercise the
                              // verifier's negative paths

  OpKind kind_ = OpKind::kScan;
  std::vector<NodePtr> children_;

  // Exactly one of these is meaningful, per kind_. A variant would also
  // work; distinct members keep accessors trivial and error messages clear.
  ScanParams scan_;
  ExtractParams extract_;
  FilterParams filter_;
  ProjectParams project_;
  JoinParams join_;
  AggregateParams aggregate_;
  UdfParams udf_;
  ViewScanParams view_scan_;

  // Annotations computed at construction.
  relation::Schema output_schema_;
  OutputStats stats_;
  uint64_t signature_ = 0;
  std::string canonical_;
  bool dw_executable_ = true;
};

}  // namespace miso::plan

#endif  // MISO_PLAN_OPERATOR_H_
