#ifndef MISO_PLAN_BUILDER_H_
#define MISO_PLAN_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/node_factory.h"
#include "plan/plan.h"
#include "relation/catalog.h"

namespace miso::plan {

/// Fluent construction of annotated plans:
///
///   PlanBuilder b(&catalog);
///   auto tweets = b.Scan("twitter").Extract({"user_id", "topic"})
///                     .Filter({MakeAtom("topic", CompareOp::kEq, "coffee",
///                                       0.01)});
///   auto checkins = b.Scan("foursquare").Extract({"user_id",
///                                                 "checkin_loc"});
///   Result<Plan> plan = tweets.Join(checkins, "user_id")
///                           .Aggregate({"checkin_loc"}, {{"count", "*"}})
///                           .Build("q1");
///
/// Errors (unknown fields, bad selectivities, ...) are latched: subsequent
/// calls are no-ops and Build() returns the first error.
class PlanBuilder {
 public:
  explicit PlanBuilder(const relation::Catalog* catalog)
      : factory_(catalog) {}

  /// A partially-built plan fragment. Value-semantic; fragments may be
  /// stored, copied, and combined with Join().
  class Fragment {
   public:
    Fragment Extract(std::vector<std::string> fields) const;
    Fragment Filter(std::vector<PredicateAtom> atoms) const;
    Fragment Filter(Predicate predicate) const;
    Fragment Project(std::vector<std::string> fields) const;
    Fragment Join(const Fragment& right, const std::string& key) const;
    Fragment Aggregate(std::vector<std::string> group_by,
                       std::vector<AggregateFn> aggregates) const;
    Fragment Udf(UdfParams params) const;

    /// Finalizes the fragment into a named plan.
    Result<Plan> Build(std::string query_name) const;

    /// Root node so far (null if errored).
    const NodePtr& node() const { return node_; }
    const Status& status() const { return status_; }

   private:
    friend class PlanBuilder;
    Fragment(const NodeFactory* factory, Result<NodePtr> node);

    const NodeFactory* factory_ = nullptr;
    NodePtr node_;
    Status status_;
  };

  /// Starts a fragment at a raw-log scan.
  Fragment Scan(const std::string& dataset) const;

  const NodeFactory& factory() const { return factory_; }

 private:
  NodeFactory factory_;
};

}  // namespace miso::plan

#endif  // MISO_PLAN_BUILDER_H_
