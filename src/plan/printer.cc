#include "plan/printer.h"

#include <cstdio>

#include "common/units.h"

namespace miso::plan {

namespace {

void AppendSubtree(const NodePtr& node, int depth, std::string* out) {
  if (node == nullptr) return;
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(DescribeNode(*node));
  out->push_back('\n');
  for (const NodePtr& child : node->children()) {
    AppendSubtree(child, depth + 1, out);
  }
}

std::string JoinList(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string DescribeNode(const OperatorNode& node) {
  std::string out(OpKindToString(node.kind()));
  switch (node.kind()) {
    case OpKind::kScan:
      out += ' ';
      out += node.scan().dataset;
      break;
    case OpKind::kExtract:
      out += " fields=[";
      out += JoinList(node.extract().fields);
      out += ']';
      break;
    case OpKind::kFilter:
      out += ' ';
      out += node.filter().predicate.CanonicalString();
      break;
    case OpKind::kProject:
      out += " [";
      out += JoinList(node.project().fields);
      out += ']';
      break;
    case OpKind::kJoin:
      out += " key=";
      out += node.join().key;
      break;
    case OpKind::kAggregate: {
      out += " keys=[";
      out += JoinList(node.aggregate().group_by);
      out += "] fns=[";
      const auto& fns = node.aggregate().aggregates;
      for (size_t i = 0; i < fns.size(); ++i) {
        if (i > 0) out += ',';
        out += fns[i].CanonicalString();
      }
      out += "]";
      break;
    }
    case OpKind::kUdf:
      out += ' ';
      out += node.udf().name;
      out += node.udf().dw_compatible ? " (dw-ok)" : " (hv-only)";
      break;
    case OpKind::kViewScan: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(
                        node.view_scan().view_signature));
      out += " view=";
      out += buf;
      break;
    }
  }
  char stats[96];
  std::snprintf(stats, sizeof(stats), "  (rows=%lld, %s)",
                static_cast<long long>(node.stats().rows),
                FormatBytes(node.stats().bytes).c_str());
  out += stats;
  return out;
}

std::string PrintSubtree(const NodePtr& node) {
  std::string out;
  AppendSubtree(node, 0, &out);
  return out;
}

std::string PrintPlan(const Plan& plan) {
  std::string out = "Plan '" + plan.query_name() + "':\n";
  AppendSubtree(plan.root(), 1, &out);
  return out;
}

}  // namespace miso::plan
