#ifndef MISO_PLAN_PRINTER_H_
#define MISO_PLAN_PRINTER_H_

#include <string>

#include "plan/plan.h"

namespace miso::plan {

/// Renders a plan as an indented operator tree with estimated cardinalities,
/// e.g.:
///
///   Aggregate keys=[region] fns=[count(*)]  (rows=2000, 46.88 KiB)
///     Join key=user_id  (rows=1.2e7, 1.05 GiB)
///       Filter (topic = coffee)  (rows=4.3e6, ...)
///       ...
std::string PrintPlan(const Plan& plan);

/// Renders the subtree rooted at `node`.
std::string PrintSubtree(const NodePtr& node);

/// One-line summary of a node: kind, salient parameters, output stats.
std::string DescribeNode(const OperatorNode& node);

}  // namespace miso::plan

#endif  // MISO_PLAN_PRINTER_H_
