#ifndef MISO_PLAN_NODE_FACTORY_H_
#define MISO_PLAN_NODE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/operator.h"
#include "relation/catalog.h"

namespace miso::plan {

/// Constructs fully-annotated operator nodes. Annotation = output schema,
/// estimated output stats (rows/bytes), canonical signature, and
/// DW-executability — all derived bottom-up from the children, which must
/// already be annotated.
///
/// All estimation rules of the library live here:
///  * Scan:      rows = record count, bytes = raw log bytes.
///  * Extract:   rows unchanged; bytes = rows * extracted record width.
///  * Filter:    rows/bytes scaled by predicate selectivity; NDVs capped.
///  * Project:   rows unchanged; bytes = rows * projected width.
///  * Join:      |L⋈R| = |L|*|R| / max(ndv_L(k), ndv_R(k))  (equi-join).
///  * Aggregate: rows = min(input rows, Π ndv(group keys)).
///  * Udf:       rows *= row_selectivity; bytes *= size_factor.
///  * ViewScan:  stats supplied by the caller (the view's stored stats).
class NodeFactory {
 public:
  explicit NodeFactory(const relation::Catalog* catalog)
      : catalog_(catalog) {}

  Result<NodePtr> MakeScan(const std::string& dataset) const;
  Result<NodePtr> MakeExtract(NodePtr child,
                              std::vector<std::string> fields) const;
  Result<NodePtr> MakeFilter(NodePtr child, Predicate predicate) const;
  Result<NodePtr> MakeProject(NodePtr child,
                              std::vector<std::string> fields) const;
  Result<NodePtr> MakeJoin(NodePtr left, NodePtr right,
                           const std::string& key) const;
  Result<NodePtr> MakeAggregate(NodePtr child,
                                std::vector<std::string> group_by,
                                std::vector<AggregateFn> aggregates) const;
  Result<NodePtr> MakeUdf(NodePtr child, UdfParams params) const;

  /// A leaf standing for "read materialized view". `schema` and `stats`
  /// come from the view's metadata; `canonical` is the canonical form of
  /// the subexpression the view materializes, so the rewritten plan keeps
  /// the same signature as the original (a rewrite is an evaluation
  /// strategy, not a new query).
  NodePtr MakeViewScan(uint64_t view_id, uint64_t view_signature,
                       StoreKind store, const relation::Schema& schema,
                       const OutputStats& stats,
                       std::string canonical) const;

  /// Clone of `node` whose canonical form (and hence signature) is replaced
  /// by `canonical`. Used by the rewriter when a spliced subtree
  /// (compensation filter over a ViewScan) computes the same result as an
  /// original expression: assigning the original canonical keeps semantic
  /// identity for downstream view harvesting.
  NodePtr Recanonicalize(const NodePtr& node, std::string canonical) const;

  /// Rebuilds `node` with `children` replaced (same kind and parameters),
  /// re-deriving all annotations. Used by the rewriter when splicing
  /// ViewScans into a plan.
  Result<NodePtr> Rebuild(const OperatorNode& node,
                          std::vector<NodePtr> children) const;

 private:
  const relation::Catalog* catalog_;
};

}  // namespace miso::plan

#endif  // MISO_PLAN_NODE_FACTORY_H_
