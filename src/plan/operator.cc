#include "plan/operator.h"

namespace miso::plan {

std::string_view OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kExtract:
      return "Extract";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kUdf:
      return "Udf";
    case OpKind::kViewScan:
      return "ViewScan";
  }
  return "?";
}

}  // namespace miso::plan
