#ifndef MISO_TUNER_INTERACTION_H_
#define MISO_TUNER_INTERACTION_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "tuner/benefit.h"
#include "views/view.h"

namespace miso::tuner {

/// Signed degree of interaction between two candidate views (§4.3,
/// adapting the index-interaction model of Schnaitter et al. with a sign):
/// per window query, delta = benefit({a,b}) - benefit({a}) - benefit({b}).
/// `magnitude` aggregates decayed |delta|; `signed_sum` aggregates decayed
/// delta, and its sign classifies the interaction as net positive (the
/// pair is worth more together) or net negative (they substitute for each
/// other).
struct Interaction {
  int a = 0;  // indices into the candidate vector
  int b = 0;
  double magnitude = 0;
  double signed_sum = 0;

  bool IsPositive() const { return signed_sum > 0; }
};

/// Parameters of interaction detection.
struct InteractionConfig {
  /// An interaction is significant when magnitude exceeds
  /// threshold_fraction * (benefit(a) + benefit(b)). The threshold keeps
  /// only the strongest interactions so parts stay small — a few views, as
  /// in §4.3. For pure substitutes |delta| = min(benefit(a), benefit(b)),
  /// so a fraction of 0.35 groups only pairs whose benefits are within
  /// ~1.9x of each other; weaker (nested-prefix) interactions are treated
  /// as independent.
  double threshold_fraction = 0.35;
};

/// Computes pairwise interactions between `candidates`, pruned to pairs
/// where both views showed benefit for at least one common window query
/// (other pairs cannot interact — the prune is one AND over hoisted
/// per-candidate query bitsets). Only significant interactions are
/// returned.
///
/// The what-if probes behind the single and surviving-pair benefits fan
/// out over `pool` via `BenefitAnalyzer::Prewarm` (nullptr = serial); the
/// interaction math itself is a serial in-order reduce over memoized
/// rows, so the result is bit-identical for any `MISO_THREADS`.
Result<std::vector<Interaction>> ComputeInteractions(
    const std::vector<views::View>& candidates, BenefitAnalyzer* analyzer,
    const InteractionConfig& config, ThreadPool* pool = nullptr);

/// Partitions candidate indices into a stable partition: views within a
/// part interact (transitively); views across parts do not. Singleton
/// parts are common. Parts are returned with indices ascending, parts
/// ordered by their smallest index (deterministic).
std::vector<std::vector<int>> StablePartition(
    int num_candidates, const std::vector<Interaction>& interactions);

}  // namespace miso::tuner

#endif  // MISO_TUNER_INTERACTION_H_
