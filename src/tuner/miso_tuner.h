#ifndef MISO_TUNER_MISO_TUNER_H_
#define MISO_TUNER_MISO_TUNER_H_

#include <vector>

#include "common/result.h"
#include "optimizer/multistore_optimizer.h"
#include "optimizer/whatif_cache.h"
#include "tuner/benefit.h"
#include "tuner/interaction.h"
#include "tuner/reorg_plan.h"
#include "tuner/sparsify.h"
#include "views/view_catalog.h"

namespace miso::tuner {

/// Parameters of the MISO tuner (paper §4 and §5.1 defaults).
struct MisoTunerConfig {
  /// View storage budgets Bh / Bd and per-reorganization transfer budget
  /// Bt, in bytes.
  Bytes hv_storage_budget = 0;
  Bytes dw_storage_budget = 0;
  Bytes transfer_budget = 0;

  /// Knapsack budget discretization d (complexity O(|V| * Bt/d * Bd/d +
  /// |V| * Bt/d * Bh/d), §4.4.2).
  Bytes discretization = kGiB;

  /// Predicted-future-benefit window: epoch length in queries and decay
  /// applied per epoch of age (§5.1 uses history 6, epoch 3).
  int epoch_length = 3;
  double benefit_decay = 0.6;

  InteractionConfig interaction;

  /// When true (default), the DW knapsack values items by their benefit
  /// with the members placed in DW, and the HV knapsack by their benefit
  /// in HV. When false, both phases use the paper-literal benefit "added
  /// to both stores". Ablated in bench_ablation_tuner.
  bool store_specific_benefit = true;

  /// When true (default, per §4.4), sparsification merges/prunes
  /// interacting views first. Disabled for ablation (every view becomes
  /// its own item and interactions are ignored).
  bool handle_interactions = true;

  /// When true (default), views that the knapsacks did not select are
  /// retained in their current store while free capacity remains there
  /// (most recently created first) instead of being dropped. Dropping a
  /// view that still fits buys nothing, and a view whose creator query
  /// just rotated out of the short history window would otherwise be
  /// evicted right before its next version arrives. Under budget pressure
  /// behavior is identical to paper-literal Algorithm 1 (unselected views
  /// are evicted). Disabled for ablation.
  bool retain_unselected_views = true;
};

/// The MISO tuner (Algorithm 1): computes a new multistore design from the
/// current designs of both stores and the recent workload window.
///
///   1. pool candidates V = Vh ∪ Vd;
///   2. compute decayed what-if benefits, pairwise interactions, the
///      stable partition, and sparsify into independent items;
///   3. pack the DW M-KNAPSACK (dims Bd x Bt; HV-resident items consume
///      transfer budget, DW-resident ones do not);
///   4. pack the HV M-KNAPSACK with the remaining transfer budget (dims
///      Bh x Bt_rem; items evicted from DW consume transfer);
///   5. emit the reorganization plan. Vh_new and Vd_new are disjoint.
class MisoTuner {
 public:
  MisoTuner(const optimizer::MultistoreOptimizer* optimizer,
            const MisoTunerConfig& config)
      : optimizer_(optimizer), config_(config) {}

  const MisoTunerConfig& config() const { return config_; }

  /// Installs (or clears, with nullptr) a shared what-if cost cache. The
  /// cache is borrowed, not owned, and persists across Tune calls — that
  /// persistence is the point: successive reorganizations share most of
  /// their window and candidate pool, so a warm cache answers most probes
  /// without touching the optimizer. The caller is responsible for
  /// `SetEpoch` whenever any cost-model knob changes. Caching never
  /// changes a Tune result, only its latency.
  void set_whatif_cache(optimizer::WhatIfCache* cache) { cache_ = cache; }
  optimizer::WhatIfCache* whatif_cache() const { return cache_; }

  /// Computes the reorganization for the given current designs and
  /// workload window (ordered oldest -> newest).
  Result<ReorgPlan> Tune(const views::ViewCatalog& hv,
                         const views::ViewCatalog& dw,
                         const std::vector<plan::Plan>& window) const;

 private:
  const optimizer::MultistoreOptimizer* optimizer_;
  MisoTunerConfig config_;
  optimizer::WhatIfCache* cache_ = nullptr;
  /// Variant-total memo threaded through every Tune's benefit analyzer.
  /// Unlike the WhatIfCache (keyed per whole probe, epoch-invalidated by
  /// the caller), these entries are keyed by the structural content of
  /// rewritten plan variants and depend only on the optimizer's immutable
  /// cost models — fixed for this tuner's lifetime — so persistence across
  /// Tune calls needs no invalidation and is exact: successive
  /// reorganizations share most of their window and candidate pool, hence
  /// most of their rewrite variants. Mutable because Tune is logically
  /// const (the memo changes only latency, never a result).
  mutable optimizer::WhatIfSession session_;
};

}  // namespace miso::tuner

#endif  // MISO_TUNER_MISO_TUNER_H_
