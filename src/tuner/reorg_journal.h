#ifndef MISO_TUNER_REORG_JOURNAL_H_
#define MISO_TUNER_REORG_JOURNAL_H_

#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/units.h"
#include "tuner/reorg_plan.h"
#include "views/view.h"
#include "views/view_catalog.h"

namespace miso::tuner {

/// Write-ahead journal for one reorganization, making the multi-move
/// design change crash-safe. A `ReorgPlan` is flattened into an ordered
/// list of atomic steps (each step moves or drops exactly one view);
/// applying the plan walks the steps in order, marking each applied. A
/// crash between steps leaves a half-applied design; `Recover` restores a
/// consistent one either by completing the remaining steps (resume) or by
/// undoing the applied ones in reverse (rollback). Both are idempotent —
/// recovering an already-recovered journal is a no-op.
class ReorgJournal {
 public:
  enum class Kind {
    kToDw = 0,    // move HV -> DW
    kToHv = 1,    // move DW -> HV
    kDropHv = 2,  // drop from HV
    kDropDw = 3,  // drop from DW
  };

  struct Entry {
    Kind kind = Kind::kToDw;
    /// Full view record, snapshotted before any step runs — drops keep the
    /// whole view too, so rollback can re-insert it.
    views::View view;
    bool applied = false;
  };

  /// Byte/step totals of one Apply or Recover pass, for the simulator's
  /// time accounting (recovery moves consume the transfer budget like any
  /// other movement).
  struct Outcome {
    int steps = 0;
    Bytes bytes_to_dw = 0;
    Bytes bytes_to_hv = 0;
  };

  /// Snapshots `plan` against the current catalogs. Move steps come first
  /// (HV->DW then DW->HV, mirroring ApplyReorgPlan's order), then drops.
  /// Fails if a referenced view is absent from its source catalog.
  static Result<ReorgJournal> Create(const ReorgPlan& plan,
                                     const views::ViewCatalog& hv,
                                     const views::ViewCatalog& dw);

  /// Applies unapplied steps in order, stopping before step index
  /// `crash_before` (pass -1 for no crash). Each step is atomic: the
  /// crash lands *between* steps, never inside one. Returns what this
  /// pass moved.
  Result<Outcome> Apply(views::ViewCatalog* hv, views::ViewCatalog* dw,
                        int crash_before = -1);

  /// Applies exactly the next unapplied step (the online server's
  /// step-at-a-time protocol: one atomic view move/drop per call, with
  /// the catalogs journal-consistent — V209-checkable — after every
  /// call). Returns what the step moved; a journal that is already
  /// `Complete()` returns an empty Outcome (steps == 0).
  Result<Outcome> ApplyStep(views::ViewCatalog* hv, views::ViewCatalog* dw);

  /// Index of the first unapplied step, or `num_entries()` when the
  /// journal is complete.
  int next_unapplied() const;

  /// Restores a consistent design after a crash: kResume completes the
  /// remaining steps, kRollback undoes the applied ones in reverse order.
  /// Idempotent. Returns what this pass moved.
  Result<Outcome> Recover(RecoveryPolicy policy, views::ViewCatalog* hv,
                          views::ViewCatalog* dw);

  const std::vector<Entry>& entries() const { return entries_; }
  int num_entries() const { return static_cast<int>(entries_.size()); }
  int num_applied() const;
  bool Complete() const;
  /// The recovery that ran, if any (for tracing).
  bool recovered() const { return recovered_; }
  RecoveryPolicy recovery_policy() const { return recovery_policy_; }

 private:
  static Status Step(const Entry& entry, bool undo, views::ViewCatalog* hv,
                     views::ViewCatalog* dw);
  static void Charge(const Entry& entry, bool undo, Outcome* outcome);

  std::vector<Entry> entries_;
  bool recovered_ = false;
  RecoveryPolicy recovery_policy_ = RecoveryPolicy::kResume;
};

}  // namespace miso::tuner

#endif  // MISO_TUNER_REORG_JOURNAL_H_
