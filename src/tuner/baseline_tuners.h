#ifndef MISO_TUNER_BASELINE_TUNERS_H_
#define MISO_TUNER_BASELINE_TUNERS_H_

#include <set>
#include <vector>

#include "common/result.h"
#include "optimizer/multistore_optimizer.h"
#include "tuner/miso_tuner.h"
#include "tuner/reorg_plan.h"
#include "views/view_catalog.h"

namespace miso::tuner {

/// MS-LRU (§5.3): "passive", access-based tuning. At each reorganization
/// it ranks all views by recency of use and fills the DW with the most
/// recently used views that fit Bd and the transfer budget, then HV with
/// the next most recent that fit Bh. No benefit or interaction reasoning
/// — exactly the strawman the paper compares against.
class LruTuner {
 public:
  explicit LruTuner(const MisoTunerConfig& config) : config_(config) {}

  Result<ReorgPlan> Tune(const views::ViewCatalog& hv,
                         const views::ViewCatalog& dw) const;

 private:
  MisoTunerConfig config_;
};

/// MS-OFF (§5.3): offline tuning with the entire workload known up-front.
/// It computes one target design over all views the workload will ever
/// produce (using the MISO benefit machinery without decay, since the
/// whole workload is equally relevant), before any query runs. During
/// execution the simulator retains/loads exactly the targeted views as
/// they come into existence, and never reorganizes again.
class OfflineTuner {
 public:
  OfflineTuner(const optimizer::MultistoreOptimizer* optimizer,
               const MisoTunerConfig& config)
      : optimizer_(optimizer), config_(config) {}

  /// Target design over `all_views` (every view the workload can create)
  /// for the full `workload`. Returns the chosen view ids per store.
  struct TargetDesign {
    std::set<views::ViewId> dw_views;
    std::set<views::ViewId> hv_views;
  };
  Result<TargetDesign> ComputeTarget(
      const std::vector<views::View>& all_views,
      const std::vector<plan::Plan>& workload) const;

 private:
  const optimizer::MultistoreOptimizer* optimizer_;
  MisoTunerConfig config_;
};

}  // namespace miso::tuner

#endif  // MISO_TUNER_BASELINE_TUNERS_H_
