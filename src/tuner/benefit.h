#ifndef MISO_TUNER_BENEFIT_H_
#define MISO_TUNER_BENEFIT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "optimizer/multistore_optimizer.h"
#include "optimizer/whatif_cache.h"
#include "views/view.h"

namespace miso::tuner {

/// Where a candidate set is hypothetically placed for a what-if probe.
enum class Placement { kBothStores, kDwOnly, kHvOnly };

/// Computes view benefits with the what-if optimizer, weighted by the
/// predicted-future-benefit scheme of §4.3 (adapted from Schnaitter et
/// al.): the recent-history window is divided into epochs of `epoch_len`
/// queries; the benefit a view showed for a query is decayed by
/// `decay^epoch_age`, so recent epochs dominate while older history still
/// counts.
///
/// Benefits are measured against the *empty* design: the tuner repacks
/// both stores from scratch each reorganization, so each candidate's value
/// is what it saves relative to having no views at all.
///
/// Probe economy. Five layers avoid or shrink optimizer work, in order:
///   1. a relevance fast path — a query that no view of the set could
///      ever rewrite (QueryShape::Relevant) has benefit 0 by construction,
///      with no probe and no cache access at all;
///   2. subset reduction — a probe's cost depends only on the members
///      relevant to the query, so when the reduced subset's row is already
///      memoized (the common case: singles are prewarmed before pairs) the
///      cost is read from it, which works even with no shared cache;
///   3. the optional shared `optimizer::WhatIfCache`, keyed by (query
///      signature, relevant-subset fingerprints, placement), which
///      persists across analyzers and hence across reorganizations;
///   4. a per-window memo of whole benefit rows under a hashed set key;
///   5. inside probes that do reach the optimizer, a per-analyzer
///      `optimizer::WhatIfSession` memoizes best-split totals by rewrite
///      *variant* — distinct probes (different sets/placements) share most
///      of their rewritten plans, so a cold pass's first probes pay for
///      the enumeration and every later probe reuses the totals.
/// All five are exact: enabling or disabling the cache (or `Prewarm`)
/// never changes a returned benefit, only how much work it costs.
///
/// Threading: every public method must be called from the single tuner
/// thread. `Prewarm` is the only entry point that fans out — it computes
/// missing probe costs into private slots over a `ThreadPool` and then
/// memoizes serially, in deterministic order, so results *and* cache
/// hit/miss/eviction counts are identical for every `MISO_THREADS`.
class BenefitAnalyzer {
 public:
  /// `session`, when given, is a caller-owned `WhatIfSession` whose
  /// variant-total memo outlives this analyzer — the tuner passes its own
  /// so successive reorganizations reuse each other's best-split solves
  /// (the totals are window- and design-independent). Null means a private
  /// session confined to this analyzer's lifetime.
  BenefitAnalyzer(const optimizer::MultistoreOptimizer* opt, int epoch_len,
                  double decay, optimizer::WhatIfCache* cache = nullptr,
                  optimizer::WhatIfSession* session = nullptr)
      : optimizer_(opt),
        epoch_len_(epoch_len),
        decay_(decay),
        cache_(cache),
        session_(session != nullptr ? session : &own_session_) {}

  /// Sets the workload window, ordered oldest -> newest, and precomputes
  /// per-query base costs (empty design).
  Status SetWindow(std::vector<plan::Plan> window);

  int window_size() const { return static_cast<int>(window_.size()); }

  /// Decay weight of the window query at `pos` (0 = oldest). The newest
  /// epoch has weight 1.
  double Weight(int pos) const;

  /// Per-query (undecayed) benefit of hypothetically materializing `set`
  /// at `placement`: base_cost(q) - cost(q, set). Joint benefit when the
  /// set has several views. Results are memoized.
  Result<std::vector<double>> PerQueryBenefit(
      const std::vector<views::View>& set, Placement placement);

  /// Bitset over the window (LSB-first, 64 queries per word): bit q is set
  /// iff `view` is relevant to window query q (QueryShape::Relevant) —
  /// i.e. the only queries whose cost materializing `view` can change.
  /// Callers hoist these once and probe pairs word-at-a-time (see
  /// interaction.cc); benefit rows are zero wherever the mask is zero.
  std::vector<uint64_t> RelevantMask(const views::View& view) const;

  /// Σ_q Weight(q) * PerQueryBenefit(set)[q]  — the predicted future
  /// benefit used as the knapsack item value.
  Result<double> PredictedBenefit(const std::vector<views::View>& set,
                                  Placement placement);

  /// Runs every optimizer probe that `PerQueryBenefit(sets[i], placement)`
  /// would need, fanning the missing ones over `pool` (`nullptr` or a
  /// single worker = the serial legacy path). Keys are collected, deduped,
  /// and re-inserted serially in deterministic order; only the pure
  /// optimizer calls run on workers. Afterwards the listed PerQueryBenefit
  /// calls are pure memo hits.
  Status Prewarm(ThreadPool* pool,
                 const std::vector<std::vector<views::View>>& sets,
                 Placement placement);

 private:
  /// Hashed memo key for one (set, placement): FNV over the sorted member
  /// ids. Ids are unique within a tuning pass, which is exactly the memo's
  /// lifetime (the cross-reorg layer is the id-free WhatIfCache).
  struct SetKey {
    uint64_t ids_hash = 0;
    uint32_t count = 0;
    uint32_t placement = 0;

    bool operator==(const SetKey& other) const {
      return ids_hash == other.ids_hash && count == other.count &&
             placement == other.placement;
    }
  };
  struct SetKeyHash {
    std::size_t operator()(const SetKey& key) const;
  };

  static SetKey KeyOf(const std::vector<views::View>& set,
                      Placement placement);

  /// Cache key of the probe for window query `query_index` against `set`
  /// at `placement` (fingerprints only the relevant subset per store).
  optimizer::WhatIfKey ProbeKey(std::size_t query_index,
                                const std::vector<views::View>& set,
                                Placement placement) const;

  /// One raw optimizer probe (no caching) of window query `query_index`
  /// against the hypothetical catalogs implied by (set, placement).
  Result<Seconds> Probe(std::size_t query_index,
                        const std::vector<views::View>& set,
                        Placement placement) const;

  /// Computes one full benefit row serially, using the fast path and the
  /// shared cache. Does not consult or fill the memo.
  Result<std::vector<double>> ComputeRow(const std::vector<views::View>& set,
                                         Placement placement);

  /// The members of `set` relevant to window query `query_index`, in set
  /// order. A probe's cost depends only on this subset (the same argument
  /// that lets WhatIfCache fingerprint only relevant members), so a
  /// memoized row for the subset answers the query exactly — the
  /// subset-reduction layer of the probe economy.
  std::vector<views::View> RelevantSubset(
      std::size_t query_index, const std::vector<views::View>& set) const;

  const optimizer::MultistoreOptimizer* optimizer_;
  int epoch_len_;
  double decay_;
  optimizer::WhatIfCache* cache_;
  /// Variant-level best-split memo used by every probe (layer 5 above).
  /// Window-independent and design-independent: entries are keyed by the
  /// structural content of rewritten plans, so no invalidation is ever
  /// needed and the memo can safely outlive the analyzer (tuner-owned
  /// `session_`). Mutable because probing is logically const; internally
  /// synchronized for the Prewarm fan-out.
  mutable optimizer::WhatIfSession own_session_;
  optimizer::WhatIfSession* session_;
  std::vector<plan::Plan> window_;
  std::vector<optimizer::QueryShape> shapes_;
  std::vector<double> base_costs_;
  std::unordered_map<SetKey, std::vector<double>, SetKeyHash> memo_;
};

}  // namespace miso::tuner

#endif  // MISO_TUNER_BENEFIT_H_
