#ifndef MISO_TUNER_BENEFIT_H_
#define MISO_TUNER_BENEFIT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "optimizer/multistore_optimizer.h"
#include "views/view.h"

namespace miso::tuner {

/// Where a candidate set is hypothetically placed for a what-if probe.
enum class Placement { kBothStores, kDwOnly, kHvOnly };

/// Computes view benefits with the what-if optimizer, weighted by the
/// predicted-future-benefit scheme of §4.3 (adapted from Schnaitter et
/// al.): the recent-history window is divided into epochs of `epoch_len`
/// queries; the benefit a view showed for a query is decayed by
/// `decay^epoch_age`, so recent epochs dominate while older history still
/// counts.
///
/// Benefits are measured against the *empty* design: the tuner repacks
/// both stores from scratch each reorganization, so each candidate's value
/// is what it saves relative to having no views at all.
class BenefitAnalyzer {
 public:
  BenefitAnalyzer(const optimizer::MultistoreOptimizer* opt, int epoch_len,
                  double decay)
      : optimizer_(opt), epoch_len_(epoch_len), decay_(decay) {}

  /// Sets the workload window, ordered oldest -> newest, and precomputes
  /// per-query base costs (empty design).
  Status SetWindow(std::vector<plan::Plan> window);

  int window_size() const { return static_cast<int>(window_.size()); }

  /// Decay weight of the window query at `pos` (0 = oldest). The newest
  /// epoch has weight 1.
  double Weight(int pos) const;

  /// Per-query (undecayed) benefit of hypothetically materializing `set`
  /// at `placement`: base_cost(q) - cost(q, set). Joint benefit when the
  /// set has several views. Results are memoized.
  Result<std::vector<double>> PerQueryBenefit(
      const std::vector<views::View>& set, Placement placement);

  /// Σ_q Weight(q) * PerQueryBenefit(set)[q]  — the predicted future
  /// benefit used as the knapsack item value.
  Result<double> PredictedBenefit(const std::vector<views::View>& set,
                                  Placement placement);

 private:
  std::string CacheKey(const std::vector<views::View>& set,
                       Placement placement) const;

  const optimizer::MultistoreOptimizer* optimizer_;
  int epoch_len_;
  double decay_;
  std::vector<plan::Plan> window_;
  std::vector<double> base_costs_;
  std::map<std::string, std::vector<double>> cache_;
};

}  // namespace miso::tuner

#endif  // MISO_TUNER_BENEFIT_H_
