#include "tuner/baseline_tuners.h"

#include <algorithm>

#include "tuner/benefit.h"
#include "tuner/knapsack.h"

namespace miso::tuner {

Result<ReorgPlan> LruTuner::Tune(const views::ViewCatalog& hv,
                                 const views::ViewCatalog& dw) const {
  struct Ranked {
    views::View view;
    int last_used;
    bool in_dw;
  };
  std::vector<Ranked> ranked;
  for (const views::View& v : hv.AllViews()) {
    ranked.push_back({v, hv.LastUsed(v.id), false});
  }
  for (const views::View& v : dw.AllViews()) {
    ranked.push_back({v, dw.LastUsed(v.id), true});
  }
  // Most recently used first; ties broken by id for determinism.
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                             const Ranked& b) {
    if (a.last_used != b.last_used) return a.last_used > b.last_used;
    return a.view.id < b.view.id;
  });

  ReorgPlan plan;
  Bytes dw_used = 0;
  Bytes hv_used = 0;
  Bytes transfer_used = 0;

  std::vector<const Ranked*> leftovers;
  // Pass 1: fill DW with the most recent views that fit Bd; moving an
  // HV-resident view consumes transfer budget.
  for (const Ranked& r : ranked) {
    const Bytes size = r.view.size_bytes;
    const bool fits_storage = dw_used + size <= config_.dw_storage_budget;
    const bool fits_transfer =
        r.in_dw || transfer_used + size <= config_.transfer_budget;
    if (fits_storage && fits_transfer) {
      dw_used += size;
      if (!r.in_dw) {
        transfer_used += size;
        plan.move_to_dw.push_back(r.view);
      }
    } else {
      leftovers.push_back(&r);
    }
  }
  // Pass 2: fill HV with the remaining most recent views that fit Bh;
  // moving a DW-resident view back consumes the remaining transfer budget.
  for (const Ranked* r : leftovers) {
    const Bytes size = r->view.size_bytes;
    const bool fits_storage = hv_used + size <= config_.hv_storage_budget;
    const bool fits_transfer =
        !r->in_dw || transfer_used + size <= config_.transfer_budget;
    if (fits_storage && fits_transfer) {
      hv_used += size;
      if (r->in_dw) {
        transfer_used += size;
        plan.move_to_hv.push_back(r->view);
      }
    } else {
      if (r->in_dw) {
        plan.drop_from_dw.push_back(r->view.id);
      } else {
        plan.drop_from_hv.push_back(r->view.id);
      }
    }
  }
  return plan;
}

Result<OfflineTuner::TargetDesign> OfflineTuner::ComputeTarget(
    const std::vector<views::View>& all_views,
    const std::vector<plan::Plan>& workload) const {
  // No decay: with the workload given up-front every query matters
  // equally (epoch length spanning the whole workload).
  BenefitAnalyzer analyzer(optimizer_,
                           static_cast<int>(workload.size()) + 1, 1.0);
  MISO_RETURN_IF_ERROR(analyzer.SetWindow(workload));

  const Bytes d = config_.discretization;

  // One knapsack per store. MS-OFF tunes exactly once under the same
  // constraints as the online tuners (§5.3), so its single tuning pass may
  // move at most Bt bytes of views into the DW; every view is created in
  // HV, so each consumes transfer budget.
  std::vector<MKnapsackItem> dw_items;
  for (size_t k = 0; k < all_views.size(); ++k) {
    MKnapsackItem ki;
    ki.id = static_cast<int>(k);
    ki.storage_units = ToBudgetUnits(all_views[k].size_bytes, d);
    ki.transfer_units = ki.storage_units;
    MISO_ASSIGN_OR_RETURN(
        ki.benefit,
        analyzer.PredictedBenefit({all_views[k]}, Placement::kDwOnly));
    dw_items.push_back(ki);
  }
  MISO_ASSIGN_OR_RETURN(
      MKnapsackSolution dw_solution,
      SolveMKnapsack(dw_items, ToBudgetUnits(config_.dw_storage_budget, d),
                     ToBudgetUnits(config_.transfer_budget, d)));

  TargetDesign design;
  for (int id : dw_solution.chosen_ids) {
    design.dw_views.insert(all_views[static_cast<size_t>(id)].id);
  }

  std::vector<MKnapsackItem> hv_items;
  for (size_t k = 0; k < all_views.size(); ++k) {
    if (design.dw_views.count(all_views[k].id) > 0) continue;
    MKnapsackItem ki;
    ki.id = static_cast<int>(k);
    ki.storage_units = ToBudgetUnits(all_views[k].size_bytes, d);
    MISO_ASSIGN_OR_RETURN(
        ki.benefit,
        analyzer.PredictedBenefit({all_views[k]}, Placement::kHvOnly));
    hv_items.push_back(ki);
  }
  MISO_ASSIGN_OR_RETURN(
      MKnapsackSolution hv_solution,
      SolveMKnapsack(hv_items, ToBudgetUnits(config_.hv_storage_budget, d),
                     /*transfer_budget_units=*/0));
  for (int id : hv_solution.chosen_ids) {
    design.hv_views.insert(all_views[static_cast<size_t>(id)].id);
  }
  return design;
}

}  // namespace miso::tuner
