#ifndef MISO_TUNER_SPARSIFY_H_
#define MISO_TUNER_SPARSIFY_H_

#include <vector>

#include "common/result.h"
#include "tuner/benefit.h"
#include "tuner/interaction.h"
#include "views/view.h"

namespace miso::tuner {

/// One candidate item for the M-KNAPSACK packings, after interaction
/// handling: a single view, or a merged group of strongly-positively
/// interacting views that must be packed together (§4.3).
struct CandidateItem {
  std::vector<views::View> members;
  Bytes size_bytes = 0;
  /// Predicted future benefit under each hypothetical placement. The DW
  /// knapsack values items at benefit_dw, the HV knapsack at benefit_hv
  /// (see MisoTunerConfig::store_specific_benefit for the paper-literal
  /// alternative that uses benefit_both for both phases).
  double benefit_both = 0;
  double benefit_dw = 0;
  double benefit_hv = 0;
};

/// Sparsifies the stable partition into independent knapsack items:
///
///  * positively-interacting pairs within a part are merged (recursively,
///    in decreasing order of interaction weight) into single items whose
///    size is the sum and whose benefit is the joint benefit;
///  * if several groups remain in a part they interact negatively —
///    packing more than one wastes budget — so the one with the highest
///    benefit per unit size is kept as the part's representative and the
///    rest are discarded (§4.3).
///
/// The result contains exactly one item per input part.
Result<std::vector<CandidateItem>> SparsifySets(
    const std::vector<views::View>& candidates,
    const std::vector<std::vector<int>>& parts,
    const std::vector<Interaction>& interactions, BenefitAnalyzer* analyzer);

}  // namespace miso::tuner

#endif  // MISO_TUNER_SPARSIFY_H_
