#include "tuner/reorg_plan.h"

#include <cstdio>

#include "views/view_catalog.h"

namespace miso::tuner {

Bytes ReorgPlan::BytesToDw() const {
  Bytes total = 0;
  for (const views::View& view : move_to_dw) total += view.size_bytes;
  return total;
}

Bytes ReorgPlan::BytesToHv() const {
  Bytes total = 0;
  for (const views::View& view : move_to_hv) total += view.size_bytes;
  return total;
}

std::string ReorgPlan::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "reorg: %zu views -> DW (%s), %zu views -> HV (%s), "
                "%zu dropped from HV, %zu dropped from DW",
                move_to_dw.size(), FormatBytes(BytesToDw()).c_str(),
                move_to_hv.size(), FormatBytes(BytesToHv()).c_str(),
                drop_from_hv.size(), drop_from_dw.size());
  return buf;
}

Status ApplyReorgPlan(const ReorgPlan& plan, views::ViewCatalog* hv,
                      views::ViewCatalog* dw) {
  for (const views::View& view : plan.move_to_dw) {
    MISO_RETURN_IF_ERROR(hv->Remove(view.id));
    MISO_RETURN_IF_ERROR(dw->AddUnchecked(view));
  }
  for (const views::View& view : plan.move_to_hv) {
    MISO_RETURN_IF_ERROR(dw->Remove(view.id));
    MISO_RETURN_IF_ERROR(hv->AddUnchecked(view));
  }
  for (views::ViewId id : plan.drop_from_hv) {
    MISO_RETURN_IF_ERROR(hv->Remove(id));
  }
  for (views::ViewId id : plan.drop_from_dw) {
    MISO_RETURN_IF_ERROR(dw->Remove(id));
  }
  return Status::OK();
}

}  // namespace miso::tuner
