#ifndef MISO_TUNER_KNAPSACK_H_
#define MISO_TUNER_KNAPSACK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace miso::tuner {

/// One item of the multidimensional knapsack (M-KNAPSACK, paper §4.4):
/// after interaction handling, each item is a single candidate view or a
/// merged group of positively-interacting views.
struct MKnapsackItem {
  /// Caller-side identifier (index into the candidate list).
  int id = 0;
  /// Storage-budget units consumed if packed (discretized, >= 0).
  int64_t storage_units = 0;
  /// Transfer-budget units consumed if packed (0 when the item already
  /// resides in the target store — paper §4.4.1 Case 2).
  int64_t transfer_units = 0;
  /// Expected (predicted future) benefit of packing the item.
  double benefit = 0;
};

/// Solution of one M-KNAPSACK instance.
struct MKnapsackSolution {
  std::vector<int> chosen_ids;
  double total_benefit = 0;
  int64_t storage_used = 0;
  int64_t transfer_used = 0;
};

/// Solves the 0/1 two-dimensional knapsack exactly as the recurrences of
/// §4.4.1: an item consuming transfer must fit in both dimensions; an item
/// with transfer_units == 0 only needs storage. Items with non-positive
/// benefit are never packed; choices are reconstructed so the caller
/// learns the exact packed set.
///
/// Dispatches between two exactly-equivalent solvers (DESIGN.md §15):
/// the dense O(n * B * T) grid DP when the (B+1) x (T+1) plane is small,
/// and a sparse dominance-pruned frontier DP otherwise. Both return
/// bit-identical solutions (same chosen set, same total down to the last
/// ULP) — the sparse/dense split is a pure speed/memory decision, pinned
/// by property tests.
///
/// Errors on negative budgets or items with negative weights.
Result<MKnapsackSolution> SolveMKnapsack(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units);

/// The dense rolling-row grid DP. Exposed for the equivalence property
/// tests and benches; production code calls `SolveMKnapsack`. Allocates
/// O(B * T) doubles plus one take-bit per (item, cell), so callers must
/// keep the plane small — `SolveMKnapsack` dispatches away from it
/// beyond `kDenseKnapsackPlaneLimit` cells.
Result<MKnapsackSolution> SolveMKnapsackDense(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units);

/// The sparse frontier DP (DESIGN.md §15). Per item prefix it keeps only
/// the non-dominated (storage, transfer, value) states — a state is
/// dropped when another uses no more of either budget and achieves at
/// least its value — with a suffix-slack clamp that collapses a budget
/// dimension entirely once the remaining items cannot overflow it (the
/// common tuner regime: Bd or Bh far above the candidate bytes). Memory
/// and time scale with the frontier, not the budget grid, so it handles
/// budgets the dense plane could never allocate (including INT64_MAX).
/// Exposed for the equivalence property tests and benches.
Result<MKnapsackSolution> SolveMKnapsackSparse(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units);

/// Plane-size threshold (in (B+1) x (T+1) cells) below which
/// `SolveMKnapsack` uses the dense DP. At this size the dense arrays fit
/// comfortably in L2 and the grid sweep beats frontier bookkeeping; above
/// it the sparse solver wins on both time and memory.
inline constexpr int64_t kDenseKnapsackPlaneLimit = 8192;

/// Discretizes a byte size into budget units of `unit_bytes`, rounding up
/// (a view never fits a budget it exceeds). Zero stays zero.
int64_t ToBudgetUnits(int64_t size_bytes, int64_t unit_bytes);

}  // namespace miso::tuner

#endif  // MISO_TUNER_KNAPSACK_H_
