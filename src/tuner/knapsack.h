#ifndef MISO_TUNER_KNAPSACK_H_
#define MISO_TUNER_KNAPSACK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace miso::tuner {

/// One item of the multidimensional knapsack (M-KNAPSACK, paper §4.4):
/// after interaction handling, each item is a single candidate view or a
/// merged group of positively-interacting views.
struct MKnapsackItem {
  /// Caller-side identifier (index into the candidate list).
  int id = 0;
  /// Storage-budget units consumed if packed (discretized, >= 0).
  int64_t storage_units = 0;
  /// Transfer-budget units consumed if packed (0 when the item already
  /// resides in the target store — paper §4.4.1 Case 2).
  int64_t transfer_units = 0;
  /// Expected (predicted future) benefit of packing the item.
  double benefit = 0;
};

/// Solution of one M-KNAPSACK instance.
struct MKnapsackSolution {
  std::vector<int> chosen_ids;
  double total_benefit = 0;
  int64_t storage_used = 0;
  int64_t transfer_used = 0;
};

/// Solves the 0/1 two-dimensional knapsack by dynamic programming over
/// (item, storage budget, transfer budget) exactly as the recurrences of
/// §4.4.1: an item consuming transfer must fit in both dimensions; an item
/// with transfer_units == 0 only needs storage. Items with non-positive
/// benefit are never packed. Complexity O(n * B * T); choices are
/// reconstructed so the caller learns the exact packed set.
///
/// Errors on negative budgets or items with negative weights.
Result<MKnapsackSolution> SolveMKnapsack(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units);

/// Discretizes a byte size into budget units of `unit_bytes`, rounding up
/// (a view never fits a budget it exceeds). Zero stays zero.
int64_t ToBudgetUnits(int64_t size_bytes, int64_t unit_bytes);

}  // namespace miso::tuner

#endif  // MISO_TUNER_KNAPSACK_H_
