#include "tuner/sparsify.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace miso::tuner {

namespace {

/// Fills in the placement-specific benefits of an item whose members are
/// already decided.
Status FinishItem(CandidateItem* item, BenefitAnalyzer* analyzer) {
  item->size_bytes = 0;
  for (const views::View& view : item->members) {
    item->size_bytes += view.size_bytes;
  }
  MISO_ASSIGN_OR_RETURN(
      item->benefit_both,
      analyzer->PredictedBenefit(item->members, Placement::kBothStores));
  MISO_ASSIGN_OR_RETURN(
      item->benefit_dw,
      analyzer->PredictedBenefit(item->members, Placement::kDwOnly));
  MISO_ASSIGN_OR_RETURN(
      item->benefit_hv,
      analyzer->PredictedBenefit(item->members, Placement::kHvOnly));
  return Status::OK();
}

}  // namespace

Result<std::vector<CandidateItem>> SparsifySets(
    const std::vector<views::View>& candidates,
    const std::vector<std::vector<int>>& parts,
    const std::vector<Interaction>& interactions,
    BenefitAnalyzer* analyzer) {
  // Interaction lookup by unordered candidate-index pair.
  std::map<std::pair<int, int>, const Interaction*> by_pair;
  for (const Interaction& i : interactions) {
    by_pair[{std::min(i.a, i.b), std::max(i.a, i.b)}] = &i;
  }

  std::vector<CandidateItem> items;
  items.reserve(parts.size());

  for (const std::vector<int>& part : parts) {
    // Group structure within the part: group id -> member indices.
    std::vector<std::vector<int>> groups;
    std::map<int, int> group_of;  // candidate index -> group id
    for (int idx : part) {
      group_of[idx] = static_cast<int>(groups.size());
      groups.push_back({idx});
    }

    // Merge positively-interacting pairs in decreasing order of magnitude.
    std::vector<const Interaction*> positive;
    for (int x : part) {
      for (int y : part) {
        if (x >= y) continue;
        auto it = by_pair.find({x, y});
        if (it != by_pair.end() && it->second->IsPositive()) {
          positive.push_back(it->second);
        }
      }
    }
    std::sort(positive.begin(), positive.end(),
              [](const Interaction* a, const Interaction* b) {
                return a->magnitude > b->magnitude;
              });
    for (const Interaction* edge : positive) {
      const int ga = group_of[edge->a];
      const int gb = group_of[edge->b];
      if (ga == gb) continue;
      for (int member : groups[static_cast<size_t>(gb)]) {
        group_of[member] = ga;
        groups[static_cast<size_t>(ga)].push_back(member);
      }
      groups[static_cast<size_t>(gb)].clear();
    }

    // Build an item per surviving group; choose the part representative by
    // benefit density when several (negatively-interacting) groups remain.
    CandidateItem best;
    double best_density = -1;
    bool have_best = false;
    for (const std::vector<int>& group : groups) {
      if (group.empty()) continue;
      CandidateItem item;
      for (int idx : group) {
        item.members.push_back(candidates[static_cast<size_t>(idx)]);
      }
      MISO_RETURN_IF_ERROR(FinishItem(&item, analyzer));
      const double density =
          item.benefit_both /
          std::max<double>(1.0, static_cast<double>(item.size_bytes));
      if (!have_best || density > best_density) {
        best = std::move(item);
        best_density = density;
        have_best = true;
      }
    }
    if (have_best) items.push_back(std::move(best));
  }
  return items;
}

}  // namespace miso::tuner
