#include "tuner/miso_tuner.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "tuner/knapsack.h"
#include "verify/design_verifier.h"
#include "verify/verify_gate.h"

namespace miso::tuner {

namespace {

/// True when `id` is among the members of any chosen item.
bool Chosen(const std::set<views::ViewId>& chosen, views::ViewId id) {
  return chosen.count(id) > 0;
}

}  // namespace

Result<ReorgPlan> MisoTuner::Tune(const views::ViewCatalog& hv,
                                  const views::ViewCatalog& dw,
                                  const std::vector<plan::Plan>& window) const {
  // miso-lint: allow(L003) miso.tuner.tune_ms is runtime-class wall-clock telemetry (docs/TELEMETRY.md)
  const auto tune_start = std::chrono::steady_clock::now();
  const optimizer::WhatIfCache::Stats cache_before =
      cache_ != nullptr ? cache_->GetStats() : optimizer::WhatIfCache::Stats{};

  // Candidate pool V = Vh ∪ Vd (disjoint by invariant). Each catalog is
  // copied out exactly once; the membership sets are sliced from the
  // single `candidates` vector (the first `hv_count` entries came from
  // HV, the rest from DW).
  std::vector<views::View> candidates = hv.AllViews();
  const size_t hv_count = candidates.size();
  {
    std::vector<views::View> dw_views = dw.AllViews();
    candidates.insert(candidates.end(), dw_views.begin(), dw_views.end());
  }
  std::set<views::ViewId> in_hv;
  std::set<views::ViewId> in_dw;
  for (size_t k = 0; k < candidates.size(); ++k) {
    (k < hv_count ? in_hv : in_dw).insert(candidates[k].id);
  }

  ReorgPlan plan;
  if (candidates.empty()) return plan;

  BenefitAnalyzer analyzer(optimizer_, config_.epoch_length,
                           config_.benefit_decay, cache_, &session_);
  MISO_RETURN_IF_ERROR(analyzer.SetWindow(window));

  // Interaction handling -> independent candidate items.
  std::vector<CandidateItem> items;
  int64_t significant_interactions = 0;
  if (config_.handle_interactions) {
    MISO_ASSIGN_OR_RETURN(
        std::vector<Interaction> interactions,
        ComputeInteractions(candidates, &analyzer, config_.interaction,
                            optimizer_->thread_pool()));
    significant_interactions = static_cast<int64_t>(interactions.size());
    const std::vector<std::vector<int>> parts =
        StablePartition(static_cast<int>(candidates.size()), interactions);
    MISO_ASSIGN_OR_RETURN(
        items, SparsifySets(candidates, parts, interactions, &analyzer));
  } else {
    for (const views::View& v : candidates) {
      CandidateItem item;
      item.members = {v};
      item.size_bytes = v.size_bytes;
      MISO_ASSIGN_OR_RETURN(
          item.benefit_both,
          analyzer.PredictedBenefit(item.members, Placement::kBothStores));
      MISO_ASSIGN_OR_RETURN(
          item.benefit_dw,
          analyzer.PredictedBenefit(item.members, Placement::kDwOnly));
      MISO_ASSIGN_OR_RETURN(
          item.benefit_hv,
          analyzer.PredictedBenefit(item.members, Placement::kHvOnly));
      items.push_back(std::move(item));
    }
  }

  const Bytes d = config_.discretization;
  const int64_t bt_units = ToBudgetUnits(config_.transfer_budget, d);

  // ---- Phase 1: DW M-KNAPSACK (dims Bd x Bt). HV-resident member bytes
  // consume transfer budget; DW-resident bytes do not (§4.4.1).
  std::vector<MKnapsackItem> dw_items;
  dw_items.reserve(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    const CandidateItem& item = items[k];
    MKnapsackItem ki;
    ki.id = static_cast<int>(k);
    ki.storage_units = ToBudgetUnits(item.size_bytes, d);
    Bytes transfer_bytes = 0;
    for (const views::View& member : item.members) {
      if (in_hv.count(member.id) > 0) transfer_bytes += member.size_bytes;
    }
    ki.transfer_units = ToBudgetUnits(transfer_bytes, d);
    ki.benefit = config_.store_specific_benefit ? item.benefit_dw
                                                : item.benefit_both;
    dw_items.push_back(ki);
  }
  MISO_ASSIGN_OR_RETURN(
      MKnapsackSolution dw_solution,
      SolveMKnapsack(dw_items, ToBudgetUnits(config_.dw_storage_budget, d),
                     bt_units));

  std::set<views::ViewId> new_dw;
  for (int id : dw_solution.chosen_ids) {
    for (const views::View& member : items[static_cast<size_t>(id)].members) {
      new_dw.insert(member.id);
    }
  }

  // Remaining transfer budget after the DW phase (§4.4.2): only actual
  // HV -> DW movements consumed Bt.
  const int64_t bt_remaining = bt_units - dw_solution.transfer_used;

  // ---- Phase 2: HV M-KNAPSACK over the items not packed into DW (keeps
  // Vh ∩ Vd = ∅). Members evicted from DW consume the remaining transfer
  // budget to move back; members already in HV move for free.
  std::vector<MKnapsackItem> hv_items;
  std::vector<int> hv_item_ids;
  for (size_t k = 0; k < items.size(); ++k) {
    if (std::find(dw_solution.chosen_ids.begin(), dw_solution.chosen_ids.end(),
                  static_cast<int>(k)) != dw_solution.chosen_ids.end()) {
      continue;
    }
    const CandidateItem& item = items[k];
    MKnapsackItem ki;
    ki.id = static_cast<int>(k);
    ki.storage_units = ToBudgetUnits(item.size_bytes, d);
    Bytes transfer_bytes = 0;
    for (const views::View& member : item.members) {
      if (in_dw.count(member.id) > 0) transfer_bytes += member.size_bytes;
    }
    ki.transfer_units = ToBudgetUnits(transfer_bytes, d);
    ki.benefit = config_.store_specific_benefit ? item.benefit_hv
                                                : item.benefit_both;
    hv_items.push_back(ki);
  }
  MISO_ASSIGN_OR_RETURN(
      MKnapsackSolution hv_solution,
      SolveMKnapsack(hv_items, ToBudgetUnits(config_.hv_storage_budget, d),
                     std::max<int64_t>(0, bt_remaining)));

  std::set<views::ViewId> new_hv;
  for (int id : hv_solution.chosen_ids) {
    for (const views::View& member : items[static_cast<size_t>(id)].members) {
      new_hv.insert(member.id);
    }
  }

  // ---- Emit movements.
  std::vector<views::View> hv_leftovers;
  std::vector<views::View> dw_leftovers;
  for (const views::View& view : candidates) {
    const bool was_hv = in_hv.count(view.id) > 0;
    const bool was_dw = in_dw.count(view.id) > 0;
    if (Chosen(new_dw, view.id)) {
      if (was_hv) plan.move_to_dw.push_back(view);
    } else if (Chosen(new_hv, view.id)) {
      if (was_dw) plan.move_to_hv.push_back(view);
    } else if (config_.retain_unselected_views) {
      if (was_hv) hv_leftovers.push_back(view);
      if (was_dw) dw_leftovers.push_back(view);
    } else {
      if (was_hv) plan.drop_from_hv.push_back(view.id);
      if (was_dw) plan.drop_from_dw.push_back(view.id);
    }
  }

  // Retain unchosen views in place while their store has free capacity.
  // Smaller views first: keeping many small views yields a more diverse
  // design for the unknown future workload (§4.4's diversity rationale)
  // than keeping one recent giant. Ties break toward recency.
  auto newer_first = [](const views::View& a, const views::View& b) {
    if (a.size_bytes != b.size_bytes) return a.size_bytes < b.size_bytes;
    if (a.created_by_query != b.created_by_query) {
      return a.created_by_query > b.created_by_query;
    }
    return a.id > b.id;
  };
  auto retain_within = [&](std::vector<views::View>* leftovers,
                           const std::set<views::ViewId>& chosen,
                           Bytes budget,
                           std::vector<views::ViewId>* drops) {
    if (leftovers->empty()) return;
    Bytes used = 0;
    for (const views::View& view : candidates) {
      if (Chosen(chosen, view.id)) used += view.size_bytes;
    }
    std::sort(leftovers->begin(), leftovers->end(), newer_first);
    for (const views::View& view : *leftovers) {
      if (used + view.size_bytes <= budget) {
        used += view.size_bytes;  // silently retained (no movement)
      } else {
        drops->push_back(view.id);
      }
    }
  };
  retain_within(&hv_leftovers, new_hv, config_.hv_storage_budget,
                &plan.drop_from_hv);
  retain_within(&dw_leftovers, new_dw, config_.dw_storage_budget,
                &plan.drop_from_dw);

  MISO_LOG(kInfo) << "MISO tuner: " << candidates.size() << " candidates, "
                  << items.size() << " items after sparsification; "
                  << plan.Summary();

  // Telemetry, at this serial point (Tune runs on the calling thread; only
  // the analyzer's what-if probes fanned out above). The predicted benefit
  // is the sum both knapsack phases claim for the new design.
  const double predicted_benefit_s =
      dw_solution.total_benefit + hv_solution.total_benefit;
  if (obs::MetricsOn()) {
    obs::MetricsRegistry& registry = obs::Metrics();
    registry.GetCounter(obs::names::kTunerReorgs)->Increment();
    registry.GetCounter(obs::names::kTunerCandidates)
        ->Add(static_cast<int64_t>(candidates.size()));
    registry.GetCounter(obs::names::kKnapsackItems)
        ->Add(static_cast<int64_t>(items.size()));
    registry.GetCounter(obs::names::kInteractionsSignificant)
        ->Add(significant_interactions);
    registry.GetCounter(obs::names::kViewsMovedToDw)
        ->Add(static_cast<int64_t>(plan.move_to_dw.size()));
    registry.GetCounter(obs::names::kViewsMovedToHv)
        ->Add(static_cast<int64_t>(plan.move_to_hv.size()));
    registry.GetCounter(obs::names::kViewsDropped)
        ->Add(static_cast<int64_t>(plan.drop_from_hv.size() +
                                   plan.drop_from_dw.size()));
    registry.GetGauge(obs::names::kLastPredictedBenefit)
        ->Set(predicted_benefit_s);
    if (cache_ != nullptr) {
      // Per-Tune deltas of the shared cache's lifetime stats. All cache
      // accesses happen on this (serial) thread — Prewarm only fans out
      // the pure optimizer probes — so these deltas are model-class:
      // identical for every MISO_THREADS.
      const optimizer::WhatIfCache::Stats cache_after = cache_->GetStats();
      registry.GetCounter(obs::names::kWhatIfCacheHits)
          ->Add(cache_after.hits - cache_before.hits);
      registry.GetCounter(obs::names::kWhatIfCacheMisses)
          ->Add(cache_after.misses - cache_before.misses);
      registry.GetCounter(obs::names::kWhatIfCacheEvictions)
          ->Add(cache_after.evictions - cache_before.evictions);
    }
    // Wall-clock tuning latency: runtime-class by nature (it varies with
    // machine load and thread count) and therefore excluded from the
    // cross-thread-count determinism contract, like miso.pool.*.
    // miso-lint: allow(L003) miso.tuner.tune_ms is runtime-class wall-clock telemetry (docs/TELEMETRY.md)
    const auto tune_end = std::chrono::steady_clock::now();
    const double tune_ms =
        std::chrono::duration<double, std::milli>(tune_end - tune_start)
            .count();
    registry.GetHistogram(obs::names::kTunerTuneMs, obs::MillisBuckets())
        ->Observe(tune_ms);
  }
  if (obs::TraceOn() || obs::MetricsOn()) {
    const std::set<views::ViewId> dropped_hv(plan.drop_from_hv.begin(),
                                             plan.drop_from_hv.end());
    const std::set<views::ViewId> dropped_dw(plan.drop_from_dw.begin(),
                                             plan.drop_from_dw.end());
    int64_t retained = 0;
    if (obs::TraceOn()) {
      obs::Emit(obs::TraceEvent(obs::names::kEvTunerReorg)
                    .Int("candidates", static_cast<int64_t>(candidates.size()))
                    .Int("knapsack_items", static_cast<int64_t>(items.size()))
                    .Int("significant_interactions", significant_interactions)
                    .Int("chosen_dw", static_cast<int64_t>(new_dw.size()))
                    .Int("chosen_hv", static_cast<int64_t>(new_hv.size()))
                    .Int("moved_to_dw",
                         static_cast<int64_t>(plan.move_to_dw.size()))
                    .Int("moved_to_hv",
                         static_cast<int64_t>(plan.move_to_hv.size()))
                    .Int("dropped", static_cast<int64_t>(
                                        plan.drop_from_hv.size() +
                                        plan.drop_from_dw.size()))
                    .Double("predicted_benefit_s", predicted_benefit_s));
    }
    // One decision line per candidate view, in the deterministic pool
    // order (Vh then Vd, each catalog-sorted). "keep" = chosen where it
    // already lives; "retain" = unchosen but left in place under spare
    // capacity; "drop" = evicted.
    for (const views::View& view : candidates) {
      const bool was_hv = in_hv.count(view.id) > 0;
      const char* decision = nullptr;
      if (Chosen(new_dw, view.id)) {
        decision = was_hv ? "move_to_dw" : "keep_dw";
      } else if (Chosen(new_hv, view.id)) {
        decision = was_hv ? "keep_hv" : "move_to_hv";
      } else if (was_hv) {
        decision = dropped_hv.count(view.id) > 0 ? "drop_hv" : "retain_hv";
      } else {
        decision = dropped_dw.count(view.id) > 0 ? "drop_dw" : "retain_dw";
      }
      if (decision[0] == 'r') ++retained;
      if (obs::TraceOn()) {
        obs::Emit(obs::TraceEvent(obs::names::kEvViewDecision)
                      .Int("view_id", static_cast<int64_t>(view.id))
                      .Int("size_bytes", static_cast<int64_t>(view.size_bytes))
                      .Str("decision", decision));
      }
    }
    if (obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kViewsRetained)->Add(retained);
    }
  }

  // Debug-mode assertion (always on under ctest): the emitted design must
  // respect Bh/Bd/Bt and disjointness, and every merged (sparsified) item
  // must be placed atomically.
  if (verify::Enabled()) {
    std::vector<std::vector<views::ViewId>> merged_groups;
    for (const CandidateItem& item : items) {
      if (item.members.size() < 2) continue;
      std::vector<views::ViewId> group;
      for (const views::View& member : item.members) group.push_back(member.id);
      merged_groups.push_back(std::move(group));
    }
    MISO_RETURN_IF_ERROR(
        verify::VerifyAtomicPlacement(merged_groups, new_dw, new_hv));
    verify::DesignBudgets budgets;
    budgets.hv_storage = config_.hv_storage_budget;
    budgets.dw_storage = config_.dw_storage_budget;
    budgets.transfer = config_.transfer_budget;
    budgets.discretization = config_.discretization;
    MISO_RETURN_IF_ERROR(verify::VerifyReorgPlan(plan, hv, dw, budgets));
  }
  return plan;
}

}  // namespace miso::tuner
