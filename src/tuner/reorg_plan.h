#ifndef MISO_TUNER_REORG_PLAN_H_
#define MISO_TUNER_REORG_PLAN_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "views/view.h"

namespace miso::views {
class ViewCatalog;
}  // namespace miso::views

namespace miso::tuner {

/// Output of one tuning pass: the view movements that turn the current
/// multistore design <Vh, Vd> into the new design <Vh_new, Vd_new>.
/// Executed by the simulator's data mover during a reorganization phase.
struct ReorgPlan {
  /// Views migrating HV -> DW (consume the transfer budget, loaded into
  /// permanent DW table space with index builds).
  std::vector<views::View> move_to_dw;
  /// Views evicted from DW that the HV design retains (consume the
  /// remaining transfer budget, written back to HDFS).
  std::vector<views::View> move_to_hv;
  /// Views dropped from HV entirely (not selected by either knapsack).
  std::vector<views::ViewId> drop_from_hv;
  /// Views dropped from DW entirely.
  std::vector<views::ViewId> drop_from_dw;

  Bytes BytesToDw() const;
  Bytes BytesToHv() const;
  bool Empty() const {
    return move_to_dw.empty() && move_to_hv.empty() &&
           drop_from_hv.empty() && drop_from_dw.empty();
  }
  std::string Summary() const;
};

/// Applies the plan to the two catalogs (no cost accounting — the
/// simulator charges movement time separately). Views in `move_to_dw`
/// must currently be in `hv` and vice versa.
Status ApplyReorgPlan(const ReorgPlan& plan, views::ViewCatalog* hv,
                      views::ViewCatalog* dw);

}  // namespace miso::tuner

#endif  // MISO_TUNER_REORG_PLAN_H_
