#include "tuner/knapsack.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace miso::tuner {

namespace {

Status ValidateInstance(const std::vector<MKnapsackItem>& items,
                        int64_t storage_budget_units,
                        int64_t transfer_budget_units) {
  if (storage_budget_units < 0 || transfer_budget_units < 0) {
    return Status::InvalidArgument("knapsack budgets must be non-negative");
  }
  for (const MKnapsackItem& item : items) {
    if (item.storage_units < 0 || item.transfer_units < 0) {
      return Status::InvalidArgument("knapsack item weights must be >= 0");
    }
  }
  return Status::OK();
}

/// Builds the solution from the chosen item indices (ascending). The
/// total is the left-fold sum of the chosen benefits in item order —
/// exactly the floating-point expression the dense DP accumulates along
/// its take-chain, so dense and sparse report bit-identical totals.
MKnapsackSolution MakeSolution(const std::vector<MKnapsackItem>& items,
                               const std::vector<int>& chosen_ascending) {
  MKnapsackSolution solution;
  for (int k : chosen_ascending) {
    const MKnapsackItem& item = items[static_cast<size_t>(k)];
    solution.chosen_ids.push_back(item.id);
    solution.total_benefit += item.benefit;
    solution.storage_used += item.storage_units;
    solution.transfer_used += item.transfer_units;
  }
  return solution;
}

// ---- Sparse frontier DP (DESIGN.md §15) ---------------------------------

/// One reachable state: the canonical value of some feasible subset of an
/// item prefix at its (possibly slack-clamped, see below) budget use.
struct FrontierState {
  int64_t storage = 0;
  int64_t transfer = 0;
  double value = 0;
};

/// Sweep order for pruning: storage asc, then transfer asc, then value
/// desc — every state's potential dominators precede it.
bool StateOrder(const FrontierState& a, const FrontierState& b) {
  if (a.storage != b.storage) return a.storage < b.storage;
  if (a.transfer != b.transfer) return a.transfer < b.transfer;
  return a.value > b.value;
}

/// Removes every weakly dominated state: drop s when some other state
/// uses no more storage, no more transfer, and has value >= s.value.
/// Dropping such states can never change a `QueryFrontier` answer (the
/// dominator answers every query s answered, at least as well), which is
/// what keeps the sparse solver bit-identical to the dense grid.
///
/// Input must be sorted by `StateOrder`. One sweep with a staircase of
/// (transfer, best value at <= that transfer) over the already-kept
/// states: transfer strictly ascending, value strictly ascending.
std::vector<FrontierState> Prune(const std::vector<FrontierState>& sorted) {
  std::vector<FrontierState> kept;
  std::vector<std::pair<int64_t, double>> stair;
  for (const FrontierState& s : sorted) {
    auto it = std::upper_bound(
        stair.begin(), stair.end(), s.transfer,
        [](int64_t t, const std::pair<int64_t, double>& e) {
          return t < e.first;
        });
    if (it != stair.begin() && std::prev(it)->second >= s.value) {
      continue;  // dominated by an earlier (<= storage, <= transfer) state
    }
    kept.push_back(s);
    auto pos = std::lower_bound(
        stair.begin(), stair.end(), s.transfer,
        [](const std::pair<int64_t, double>& e, int64_t t) {
          return e.first < t;
        });
    auto last = pos;
    while (last != stair.end() && last->second <= s.value) ++last;
    pos = stair.erase(pos, last);
    stair.insert(pos, {s.transfer, s.value});
  }
  return kept;
}

/// f(b, t) over a pruned frontier: the best value among states fitting
/// both remaining budgets. The empty subset (value 0) always fits. This
/// is the same max over the same candidate values the dense DP's cell
/// (b, t) holds, compared with the same strict >.
double QueryFrontier(const std::vector<FrontierState>& frontier, int64_t b,
                     int64_t t) {
  double best = 0.0;
  for (const FrontierState& s : frontier) {
    if (s.storage > b) break;  // sorted by storage ascending
    if (s.transfer <= t && s.value > best) best = s.value;
  }
  return best;
}

int64_t SaturatingAdd(int64_t a, int64_t b) {
  return a > std::numeric_limits<int64_t>::max() - b
             ? std::numeric_limits<int64_t>::max()
             : a + b;
}

/// The suffix-slack clamp floor for one dimension: once the takeable
/// items at index >= k can consume at most `suffix` more units, every
/// state using <= budget - suffix units behaves identically forever
/// (any remaining subset still fits on top of it, and reconstruction
/// queries never probe below budget - suffix). Clamping such states up
/// to the floor lets dominance collapse them to one representative —
/// this is what makes a slack dimension (budget >= total weight)
/// disappear from the state space entirely.
int64_t ClampFloor(int64_t budget, int64_t suffix) {
  return suffix >= budget ? 0 : budget - suffix;
}

}  // namespace

int64_t ToBudgetUnits(int64_t size_bytes, int64_t unit_bytes) {
  if (size_bytes <= 0) return 0;
  return (size_bytes + unit_bytes - 1) / unit_bytes;
}

Result<MKnapsackSolution> SolveMKnapsackDense(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units) {
  MISO_RETURN_IF_ERROR(ValidateInstance(items, storage_budget_units,
                                        transfer_budget_units));

  const int n = static_cast<int>(items.size());
  const int64_t kB = storage_budget_units;
  const int64_t kT = transfer_budget_units;
  const size_t plane =
      static_cast<size_t>(kB + 1) * static_cast<size_t>(kT + 1);

  // value[b * (T+1) + t]: best benefit using items[0..k) with b storage and
  // t transfer remaining capacity consumed at most. Rolling layers with a
  // per-(item, cell) take/skip bit for reconstruction.
  std::vector<double> value(plane, 0.0);
  std::vector<double> next(plane, 0.0);
  // take[k][cell]: whether item k is taken at that capacity.
  std::vector<std::vector<bool>> take(static_cast<size_t>(n));

  auto idx = [kT](int64_t b, int64_t t) {
    return static_cast<size_t>(b) * static_cast<size_t>(kT + 1) +
           static_cast<size_t>(t);
  };

  for (int k = 0; k < n; ++k) {
    const MKnapsackItem& item = items[static_cast<size_t>(k)];
    take[static_cast<size_t>(k)].assign(plane, false);
    for (int64_t b = 0; b <= kB; ++b) {
      for (int64_t t = 0; t <= kT; ++t) {
        const size_t cell = idx(b, t);
        double best = value[cell];  // skip item k
        const bool fits = item.storage_units <= b &&
                          item.transfer_units <= t;
        if (fits && item.benefit > 0) {
          const double with =
              value[idx(b - item.storage_units, t - item.transfer_units)] +
              item.benefit;
          if (with > best) {
            best = with;
            take[static_cast<size_t>(k)][cell] = true;
          }
        }
        next[cell] = best;
      }
    }
    std::swap(value, next);
  }

  // Reconstruct choices from the last item backwards.
  std::vector<int> chosen;
  int64_t b = kB;
  int64_t t = kT;
  for (int k = n - 1; k >= 0; --k) {
    if (take[static_cast<size_t>(k)][idx(b, t)]) {
      chosen.push_back(k);
      b -= items[static_cast<size_t>(k)].storage_units;
      t -= items[static_cast<size_t>(k)].transfer_units;
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return MakeSolution(items, chosen);
}

Result<MKnapsackSolution> SolveMKnapsackSparse(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units) {
  MISO_RETURN_IF_ERROR(ValidateInstance(items, storage_budget_units,
                                        transfer_budget_units));

  const int n = static_cast<int>(items.size());
  const int64_t kB = storage_budget_units;
  const int64_t kT = transfer_budget_units;

  // Takeable-suffix weights (items with benefit <= 0 are never packed,
  // by the same rule the dense recurrence applies, so they do not count
  // against the slack clamp). Saturating: a saturated suffix simply
  // means "no clamp yet", which is always safe.
  std::vector<int64_t> suffix_b(static_cast<size_t>(n) + 1, 0);
  std::vector<int64_t> suffix_t(static_cast<size_t>(n) + 1, 0);
  for (int k = n - 1; k >= 0; --k) {
    const MKnapsackItem& item = items[static_cast<size_t>(k)];
    const bool takeable = item.benefit > 0;
    suffix_b[static_cast<size_t>(k)] =
        SaturatingAdd(suffix_b[static_cast<size_t>(k) + 1],
                      takeable ? item.storage_units : 0);
    suffix_t[static_cast<size_t>(k)] =
        SaturatingAdd(suffix_t[static_cast<size_t>(k) + 1],
                      takeable ? item.transfer_units : 0);
  }

  // frontiers[frontier_of[k]] is g_k: the pruned frontier over items
  // [0..k), the exact sparse image of the dense DP's rolling row before
  // item k is processed. Skipped (benefit <= 0) items share their
  // predecessor's frontier — they change neither the row nor the clamp
  // floors.
  std::vector<std::vector<FrontierState>> frontiers;
  frontiers.push_back({FrontierState{}});  // g_0: only the empty subset
  std::vector<size_t> frontier_of(static_cast<size_t>(std::max(n, 1)), 0);

  for (int k = 0; k < n; ++k) {
    frontier_of[static_cast<size_t>(k)] = frontiers.size() - 1;
    const MKnapsackItem& item = items[static_cast<size_t>(k)];
    if (item.benefit <= 0) continue;  // g_{k+1} == g_k

    const std::vector<FrontierState>& cur = frontiers.back();
    // Clamp floors of the *next* step: states below the floor in a
    // dimension are indistinguishable there from states at the floor.
    const int64_t floor_b =
        ClampFloor(kB, suffix_b[static_cast<size_t>(k) + 1]);
    const int64_t floor_t =
        ClampFloor(kT, suffix_t[static_cast<size_t>(k) + 1]);

    std::vector<FrontierState> merged;
    merged.reserve(cur.size() * 2);
    for (const FrontierState& s : cur) {
      // Skip-copy of s into g_{k+1}, re-clamped to the new floors.
      FrontierState skip = s;
      skip.storage = std::max(skip.storage, floor_b);
      skip.transfer = std::max(skip.transfer, floor_t);
      merged.push_back(skip);
      // Take-child of s: item k on top of s. A clamped parent always
      // fits (its floor was budget minus a suffix that includes item k),
      // so this test only ever rejects genuinely infeasible children.
      if (item.storage_units <= kB - s.storage &&
          item.transfer_units <= kT - s.transfer) {
        FrontierState with = s;
        with.storage = std::max(with.storage + item.storage_units, floor_b);
        with.transfer = std::max(with.transfer + item.transfer_units, floor_t);
        with.value = s.value + item.benefit;
        merged.push_back(with);
      }
    }
    std::sort(merged.begin(), merged.end(), StateOrder);
    frontiers.push_back(Prune(merged));
  }

  // Reconstruction: the same backwards walk as the dense solver, with
  // each take[k] bit recomputed from g_k — take exactly when packing
  // item k strictly beats skipping it at the current remaining budgets.
  std::vector<int> chosen;
  int64_t b = kB;
  int64_t t = kT;
  for (int k = n - 1; k >= 0; --k) {
    const MKnapsackItem& item = items[static_cast<size_t>(k)];
    if (item.benefit <= 0) continue;
    if (item.storage_units > b || item.transfer_units > t) continue;
    const std::vector<FrontierState>& g =
        frontiers[frontier_of[static_cast<size_t>(k)]];
    const double skip = QueryFrontier(g, b, t);
    const double with =
        QueryFrontier(g, b - item.storage_units, t - item.transfer_units) +
        item.benefit;
    if (with > skip) {
      chosen.push_back(k);
      b -= item.storage_units;
      t -= item.transfer_units;
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return MakeSolution(items, chosen);
}

Result<MKnapsackSolution> SolveMKnapsack(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units) {
  // Dense when the whole (B+1) x (T+1) plane is small (the product cannot
  // overflow: both factors are bounded by the limit first); sparse
  // otherwise — including budgets so large the dense plane could never
  // be allocated. Both solvers return bit-identical solutions.
  const int64_t kB = storage_budget_units;
  const int64_t kT = transfer_budget_units;
  const bool dense = kB >= 0 && kT >= 0 && kB < kDenseKnapsackPlaneLimit &&
                     kT < kDenseKnapsackPlaneLimit &&
                     (kB + 1) * (kT + 1) <= kDenseKnapsackPlaneLimit;
  return dense ? SolveMKnapsackDense(items, kB, kT)
               : SolveMKnapsackSparse(items, kB, kT);
}

}  // namespace miso::tuner
