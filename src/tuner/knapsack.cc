#include "tuner/knapsack.h"

#include <algorithm>

namespace miso::tuner {

int64_t ToBudgetUnits(int64_t size_bytes, int64_t unit_bytes) {
  if (size_bytes <= 0) return 0;
  return (size_bytes + unit_bytes - 1) / unit_bytes;
}

Result<MKnapsackSolution> SolveMKnapsack(
    const std::vector<MKnapsackItem>& items, int64_t storage_budget_units,
    int64_t transfer_budget_units) {
  if (storage_budget_units < 0 || transfer_budget_units < 0) {
    return Status::InvalidArgument("knapsack budgets must be non-negative");
  }
  for (const MKnapsackItem& item : items) {
    if (item.storage_units < 0 || item.transfer_units < 0) {
      return Status::InvalidArgument("knapsack item weights must be >= 0");
    }
  }

  const int n = static_cast<int>(items.size());
  const int64_t kB = storage_budget_units;
  const int64_t kT = transfer_budget_units;
  const size_t plane = static_cast<size_t>(kB + 1) * static_cast<size_t>(kT + 1);

  // value[b * (T+1) + t]: best benefit using items[0..k) with b storage and
  // t transfer remaining capacity consumed at most. Rolling layers with a
  // per-(item, cell) take/skip bit for reconstruction.
  std::vector<double> value(plane, 0.0);
  std::vector<double> next(plane, 0.0);
  // take[k][cell]: whether item k is taken at that capacity.
  std::vector<std::vector<bool>> take(static_cast<size_t>(n));

  auto idx = [kT](int64_t b, int64_t t) {
    return static_cast<size_t>(b) * static_cast<size_t>(kT + 1) +
           static_cast<size_t>(t);
  };

  for (int k = 0; k < n; ++k) {
    const MKnapsackItem& item = items[k];
    take[static_cast<size_t>(k)].assign(plane, false);
    for (int64_t b = 0; b <= kB; ++b) {
      for (int64_t t = 0; t <= kT; ++t) {
        const size_t cell = idx(b, t);
        double best = value[cell];  // skip item k
        const bool fits = item.storage_units <= b &&
                          item.transfer_units <= t;
        if (fits && item.benefit > 0) {
          const double with =
              value[idx(b - item.storage_units, t - item.transfer_units)] +
              item.benefit;
          if (with > best) {
            best = with;
            take[static_cast<size_t>(k)][cell] = true;
          }
        }
        next[cell] = best;
      }
    }
    std::swap(value, next);
  }

  MKnapsackSolution solution;
  solution.total_benefit = n > 0 ? value[idx(kB, kT)] : 0.0;

  // Reconstruct choices from the last item backwards.
  int64_t b = kB;
  int64_t t = kT;
  for (int k = n - 1; k >= 0; --k) {
    if (take[static_cast<size_t>(k)][idx(b, t)]) {
      solution.chosen_ids.push_back(items[static_cast<size_t>(k)].id);
      solution.storage_used += items[static_cast<size_t>(k)].storage_units;
      solution.transfer_used += items[static_cast<size_t>(k)].transfer_units;
      b -= items[static_cast<size_t>(k)].storage_units;
      t -= items[static_cast<size_t>(k)].transfer_units;
    }
  }
  std::reverse(solution.chosen_ids.begin(), solution.chosen_ids.end());
  return solution;
}

}  // namespace miso::tuner
