#include "tuner/reorg_journal.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace miso::tuner {

Result<ReorgJournal> ReorgJournal::Create(const ReorgPlan& plan,
                                          const views::ViewCatalog& hv,
                                          const views::ViewCatalog& dw) {
  ReorgJournal journal;
  journal.entries_.reserve(plan.move_to_dw.size() + plan.move_to_hv.size() +
                           plan.drop_from_hv.size() + plan.drop_from_dw.size());
  auto push = [&journal](Kind kind, views::View view) {
    Entry entry;
    entry.kind = kind;
    entry.view = std::move(view);
    journal.entries_.push_back(std::move(entry));
  };
  for (const views::View& view : plan.move_to_dw) {
    if (!hv.Contains(view.id)) {
      return Status::NotFound("reorg journal: move_to_dw view not in HV");
    }
    push(Kind::kToDw, view);
  }
  for (const views::View& view : plan.move_to_hv) {
    if (!dw.Contains(view.id)) {
      return Status::NotFound("reorg journal: move_to_hv view not in DW");
    }
    push(Kind::kToHv, view);
  }
  // Drops snapshot the full view so rollback can re-insert it.
  for (views::ViewId id : plan.drop_from_hv) {
    MISO_ASSIGN_OR_RETURN(views::View view, hv.Find(id));
    push(Kind::kDropHv, std::move(view));
  }
  for (views::ViewId id : plan.drop_from_dw) {
    MISO_ASSIGN_OR_RETURN(views::View view, dw.Find(id));
    push(Kind::kDropDw, std::move(view));
  }
  return journal;
}

Status ReorgJournal::Step(const Entry& entry, bool undo,
                          views::ViewCatalog* hv, views::ViewCatalog* dw) {
  switch (entry.kind) {
    case Kind::kToDw:
      if (undo) {
        MISO_RETURN_IF_ERROR(dw->Remove(entry.view.id));
        return hv->AddUnchecked(entry.view);
      }
      MISO_RETURN_IF_ERROR(hv->Remove(entry.view.id));
      return dw->AddUnchecked(entry.view);
    case Kind::kToHv:
      if (undo) {
        MISO_RETURN_IF_ERROR(hv->Remove(entry.view.id));
        return dw->AddUnchecked(entry.view);
      }
      MISO_RETURN_IF_ERROR(dw->Remove(entry.view.id));
      return hv->AddUnchecked(entry.view);
    case Kind::kDropHv:
      if (undo) return hv->AddUnchecked(entry.view);
      return hv->Remove(entry.view.id);
    case Kind::kDropDw:
      if (undo) return dw->AddUnchecked(entry.view);
      return dw->Remove(entry.view.id);
  }
  return Status::Internal("reorg journal: unknown entry kind");
}

void ReorgJournal::Charge(const Entry& entry, bool undo, Outcome* outcome) {
  ++outcome->steps;
  switch (entry.kind) {
    case Kind::kToDw:
      // Undoing an HV->DW move is itself a DW->HV transfer, and vice
      // versa: the bytes cross the inter-store link either way.
      (undo ? outcome->bytes_to_hv : outcome->bytes_to_dw) +=
          entry.view.size_bytes;
      break;
    case Kind::kToHv:
      (undo ? outcome->bytes_to_dw : outcome->bytes_to_hv) +=
          entry.view.size_bytes;
      break;
    case Kind::kDropHv:
    case Kind::kDropDw:
      break;  // drops are free (metadata-only)
  }
}

Result<ReorgJournal::Outcome> ReorgJournal::Apply(views::ViewCatalog* hv,
                                                  views::ViewCatalog* dw,
                                                  int crash_before) {
  Outcome outcome;
  const int limit =
      crash_before >= 0 ? std::min(crash_before, num_entries()) : num_entries();
  for (int i = 0; i < limit; ++i) {
    Entry& entry = entries_[static_cast<size_t>(i)];
    if (entry.applied) continue;
    MISO_RETURN_IF_ERROR(Step(entry, /*undo=*/false, hv, dw));
    entry.applied = true;
    Charge(entry, /*undo=*/false, &outcome);
  }
  return outcome;
}

Result<ReorgJournal::Outcome> ReorgJournal::ApplyStep(views::ViewCatalog* hv,
                                                      views::ViewCatalog* dw) {
  Outcome outcome;
  const int next = next_unapplied();
  if (next >= num_entries()) return outcome;  // already complete: no-op
  Entry& entry = entries_[static_cast<size_t>(next)];
  MISO_RETURN_IF_ERROR(Step(entry, /*undo=*/false, hv, dw));
  entry.applied = true;
  Charge(entry, /*undo=*/false, &outcome);
  return outcome;
}

int ReorgJournal::next_unapplied() const {
  for (int i = 0; i < num_entries(); ++i) {
    if (!entries_[static_cast<size_t>(i)].applied) return i;
  }
  return num_entries();
}

Result<ReorgJournal::Outcome> ReorgJournal::Recover(RecoveryPolicy policy,
                                                    views::ViewCatalog* hv,
                                                    views::ViewCatalog* dw) {
  Outcome outcome;
  recovered_ = true;
  recovery_policy_ = policy;
  if (policy == RecoveryPolicy::kResume) {
    for (Entry& entry : entries_) {
      if (entry.applied) continue;
      MISO_RETURN_IF_ERROR(Step(entry, /*undo=*/false, hv, dw));
      entry.applied = true;
      Charge(entry, /*undo=*/false, &outcome);
    }
    return outcome;
  }
  // Rollback: undo applied steps in reverse order.
  for (int i = num_entries() - 1; i >= 0; --i) {
    Entry& entry = entries_[static_cast<size_t>(i)];
    if (!entry.applied) continue;
    MISO_RETURN_IF_ERROR(Step(entry, /*undo=*/true, hv, dw));
    entry.applied = false;
    Charge(entry, /*undo=*/true, &outcome);
  }
  return outcome;
}

int ReorgJournal::num_applied() const {
  int applied = 0;
  for (const Entry& entry : entries_) applied += entry.applied ? 1 : 0;
  return applied;
}

bool ReorgJournal::Complete() const { return num_applied() == num_entries(); }

}  // namespace miso::tuner
