#include "tuner/benefit.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "verify/design_verifier.h"
#include "verify/verify_gate.h"

namespace miso::tuner {

namespace {

/// Budget large enough that hypothetical catalogs never reject a view.
constexpr Bytes kUnboundedBudget = kTiB * 1024;

views::ViewCatalog MakeHypotheticalCatalog(
    const std::vector<views::View>& set) {
  views::ViewCatalog catalog(kUnboundedBudget);
  for (const views::View& view : set) {
    catalog.AddUnchecked(view);  // ids are unique within a candidate set
  }
  return catalog;
}

}  // namespace

std::size_t BenefitAnalyzer::SetKeyHash::operator()(const SetKey& key) const {
  uint64_t h = HashCombine(key.ids_hash, key.count);
  h = HashCombine(h, key.placement);
  return static_cast<std::size_t>(h);
}

BenefitAnalyzer::SetKey BenefitAnalyzer::KeyOf(
    const std::vector<views::View>& set, Placement placement) {
  std::vector<views::ViewId> ids;
  ids.reserve(set.size());
  for (const views::View& view : set) ids.push_back(view.id);
  std::sort(ids.begin(), ids.end());
  SetKey key;
  key.ids_hash = kFnvOffsetBasis;
  for (views::ViewId id : ids) key.ids_hash = HashCombine(key.ids_hash, id);
  key.count = static_cast<uint32_t>(ids.size());
  key.placement = static_cast<uint32_t>(placement);
  return key;
}

optimizer::WhatIfKey BenefitAnalyzer::ProbeKey(
    std::size_t query_index, const std::vector<views::View>& set,
    Placement placement) const {
  const uint64_t fp =
      optimizer::WhatIfCache::Fingerprint(shapes_[query_index], set);
  const uint64_t empty_fp = optimizer::WhatIfCache::EmptyFingerprint();
  optimizer::WhatIfKey key;
  key.query_signature = window_[query_index].signature();
  key.dw_fingerprint = placement == Placement::kHvOnly ? empty_fp : fp;
  key.hv_fingerprint = placement == Placement::kDwOnly ? empty_fp : fp;
  return key;
}

Result<Seconds> BenefitAnalyzer::Probe(std::size_t query_index,
                                       const std::vector<views::View>& set,
                                       Placement placement) const {
  const views::ViewCatalog empty(kUnboundedBudget);
  const views::ViewCatalog hypothetical = MakeHypotheticalCatalog(set);
  const views::ViewCatalog& dw =
      placement == Placement::kHvOnly ? empty : hypothetical;
  const views::ViewCatalog& hv =
      placement == Placement::kDwOnly ? empty : hypothetical;
  return optimizer_->WhatIfCost(window_[query_index], dw, hv, session_);
}

Status BenefitAnalyzer::SetWindow(std::vector<plan::Plan> window) {
  window_ = std::move(window);
  shapes_.clear();
  shapes_.reserve(window_.size());
  for (const plan::Plan& q : window_) {
    shapes_.push_back(optimizer::QueryShape::Of(q));
  }
  base_costs_.clear();
  memo_.clear();
  base_costs_.reserve(window_.size());
  const views::ViewCatalog empty(kUnboundedBudget);
  const uint64_t empty_fp = optimizer::WhatIfCache::EmptyFingerprint();
  for (const plan::Plan& q : window_) {
    Seconds cost = 0;
    optimizer::WhatIfKey key;
    key.query_signature = q.signature();
    key.dw_fingerprint = empty_fp;
    key.hv_fingerprint = empty_fp;
    std::optional<Seconds> hit =
        cache_ != nullptr ? cache_->Lookup(key) : std::nullopt;
    if (hit.has_value()) {
      cost = *hit;
    } else {
      // Base-cost probes also seed the session's variant memo: the bare
      // query is the empty design's only rewrite variant and recurs in
      // every later probe of the same query.
      MISO_ASSIGN_OR_RETURN(
          cost, optimizer_->WhatIfCost(q, empty, empty, session_));
      if (cache_ != nullptr) cache_->Insert(key, cost);
    }
    base_costs_.push_back(cost);
  }
  return Status::OK();
}

double BenefitAnalyzer::Weight(int pos) const {
  if (window_.empty() || epoch_len_ <= 0) return 1.0;
  // pos counts from the oldest query; age 0 = the newest epoch.
  const int from_newest = static_cast<int>(window_.size()) - 1 - pos;
  const int epoch_age = from_newest / epoch_len_;
  return std::pow(decay_, epoch_age);
}

std::vector<views::View> BenefitAnalyzer::RelevantSubset(
    std::size_t query_index, const std::vector<views::View>& set) const {
  std::vector<views::View> subset;
  for (const views::View& view : set) {
    if (shapes_[query_index].Relevant(view)) subset.push_back(view);
  }
  return subset;
}

std::vector<uint64_t> BenefitAnalyzer::RelevantMask(
    const views::View& view) const {
  std::vector<uint64_t> mask((window_.size() + 63) / 64, 0);
  for (std::size_t q = 0; q < window_.size(); ++q) {
    if (shapes_[q].Relevant(view)) mask[q / 64] |= uint64_t{1} << (q % 64);
  }
  return mask;
}

Result<std::vector<double>> BenefitAnalyzer::ComputeRow(
    const std::vector<views::View>& set, Placement placement) {
  std::vector<double> benefits(window_.size(), 0.0);
  // The hypothetical catalogs are only materialized if some query actually
  // needs a probe (all-hit and all-irrelevant rows build nothing).
  std::optional<views::ViewCatalog> hypothetical;
  const views::ViewCatalog empty(kUnboundedBudget);
  for (std::size_t i = 0; i < window_.size(); ++i) {
    // Relevance fast path: a query no member view can rewrite keeps its
    // base cost exactly, so its benefit is 0 — no probe, no cache access.
    if (!shapes_[i].AnyRelevant(set)) continue;
    // Subset reduction: the cost depends only on the relevant members, so
    // a memoized row for exactly that subset already holds this query's
    // benefit (typical when singles were prewarmed before pairs).
    if (const std::vector<views::View> subset = RelevantSubset(i, set);
        subset.size() < set.size()) {
      if (auto it = memo_.find(KeyOf(subset, placement)); it != memo_.end()) {
        benefits[i] = it->second[i];
        continue;
      }
    }
    Seconds cost = 0;
    std::optional<optimizer::WhatIfKey> key;
    if (cache_ != nullptr) key = ProbeKey(i, set, placement);
    std::optional<Seconds> hit =
        cache_ != nullptr ? cache_->Lookup(*key) : std::nullopt;
    if (hit.has_value()) {
      cost = *hit;
    } else {
      if (!hypothetical.has_value()) {
        hypothetical = MakeHypotheticalCatalog(set);
      }
      const views::ViewCatalog& dw =
          placement == Placement::kHvOnly ? empty : *hypothetical;
      const views::ViewCatalog& hv =
          placement == Placement::kDwOnly ? empty : *hypothetical;
      MISO_ASSIGN_OR_RETURN(
          cost, optimizer_->WhatIfCost(window_[i], dw, hv, session_));
      if (cache_ != nullptr) cache_->Insert(*key, cost);
    }
    benefits[i] = std::max(0.0, base_costs_[i] - cost);
  }
  return benefits;
}

Result<std::vector<double>> BenefitAnalyzer::PerQueryBenefit(
    const std::vector<views::View>& set, Placement placement) {
  const SetKey key = KeyOf(set, placement);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  MISO_ASSIGN_OR_RETURN(std::vector<double> benefits,
                        ComputeRow(set, placement));
  memo_.emplace(key, benefits);
  return benefits;
}

Status BenefitAnalyzer::Prewarm(
    ThreadPool* pool, const std::vector<std::vector<views::View>>& sets,
    Placement placement) {
  // Stage 1, serial: walk (set, query) in deterministic order, resolving
  // each needed cost to the fast path, a cache hit, or a pending probe.
  // Probes dedupe by WhatIfKey — two pairs with equal keys have equal
  // costs by construction — and keep first-occurrence order, so the job
  // list (and every counter touched here) is independent of `pool`.
  struct RowFix {
    std::size_t query = 0;
    std::size_t probe = 0;
  };
  struct PendingRow {
    SetKey key;
    std::vector<double> benefits;
    std::vector<RowFix> fixes;
  };
  struct ProbeJob {
    optimizer::WhatIfKey key;
    std::size_t set_index = 0;
    std::size_t query_index = 0;
  };
  std::vector<PendingRow> rows;
  std::vector<ProbeJob> jobs;
  std::unordered_map<optimizer::WhatIfKey, std::size_t,
                     optimizer::WhatIfKeyHash>
      job_of;
  std::unordered_set<SetKey, SetKeyHash> pending_keys;

  for (std::size_t s = 0; s < sets.size(); ++s) {
    const std::vector<views::View>& set = sets[s];
    const SetKey key = KeyOf(set, placement);
    if (memo_.count(key) > 0 || !pending_keys.insert(key).second) continue;
    PendingRow row;
    row.key = key;
    row.benefits.assign(window_.size(), 0.0);
    for (std::size_t q = 0; q < window_.size(); ++q) {
      if (!shapes_[q].AnyRelevant(set)) continue;
      // Subset reduction, mirroring ComputeRow: an already-memoized row
      // for the relevant subset answers the query without a probe job.
      if (const std::vector<views::View> subset = RelevantSubset(q, set);
          subset.size() < set.size()) {
        if (auto mit = memo_.find(KeyOf(subset, placement));
            mit != memo_.end()) {
          row.benefits[q] = mit->second[q];
          continue;
        }
      }
      const optimizer::WhatIfKey pk = ProbeKey(q, set, placement);
      if (cache_ != nullptr) {
        if (std::optional<Seconds> hit = cache_->Lookup(pk)) {
          row.benefits[q] = std::max(0.0, base_costs_[q] - *hit);
          continue;
        }
      }
      auto [it, inserted] = job_of.emplace(pk, jobs.size());
      if (inserted) jobs.push_back(ProbeJob{pk, s, q});
      row.fixes.push_back(RowFix{q, it->second});
    }
    rows.push_back(std::move(row));
  }

  // Stage 2: the pure optimizer probes fan out, each writing only its own
  // slot (the ParallelFor determinism contract). Probes are batched: one
  // what-if probe is tens of microseconds, so a handful per task amortizes
  // the submit overhead while still spreading a big prewarm across workers.
  std::vector<Result<Seconds>> costs(jobs.size(),
                                     Status::Internal("probe not run"));
  ParallelFor(
      pool, static_cast<int>(jobs.size()),
      [&](int i) {
        const ProbeJob& job = jobs[static_cast<std::size_t>(i)];
        costs[static_cast<std::size_t>(i)] =
            Probe(job.query_index, sets[job.set_index], placement);
      },
      ParallelForOptions{/*grain=*/4});

  // Stage 3, serial: surface the lowest-ordered failure (the same error a
  // serial pass would hit first) and publish costs to the shared cache in
  // job order.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!costs[i].ok()) return costs[i].status();
    if (cache_ != nullptr) cache_->Insert(jobs[i].key, *costs[i]);
  }

  // Stage 4, serial: assemble and memoize the benefit rows in set order.
  for (PendingRow& row : rows) {
    for (const RowFix& fix : row.fixes) {
      row.benefits[fix.query] =
          std::max(0.0, base_costs_[fix.query] - *costs[fix.probe]);
    }
    memo_.emplace(row.key, std::move(row.benefits));
  }
  return Status::OK();
}

Result<double> BenefitAnalyzer::PredictedBenefit(
    const std::vector<views::View>& set, Placement placement) {
  MISO_ASSIGN_OR_RETURN(std::vector<double> benefits,
                        PerQueryBenefit(set, placement));
  double total = 0;
  for (std::size_t i = 0; i < benefits.size(); ++i) {
    total += Weight(static_cast<int>(i)) * benefits[i];
  }
  // Debug-mode assertion (always on under ctest): the decayed-benefit
  // bookkeeping — clamped per-query savings, decay^epoch_age weights,
  // and their weighted sum — must cross-check against an independent
  // recomputation (V208).
  if (verify::Enabled()) {
    verify::BenefitLedger ledger;
    ledger.epoch_length = epoch_len_;
    ledger.decay = decay_;
    ledger.per_query_benefit = benefits;
    ledger.weights.reserve(benefits.size());
    for (std::size_t i = 0; i < benefits.size(); ++i) {
      ledger.weights.push_back(Weight(static_cast<int>(i)));
    }
    ledger.predicted_total = total;
    MISO_RETURN_IF_ERROR(verify::VerifyBenefitLedger(ledger));
  }
  return total;
}

}  // namespace miso::tuner
