#include "tuner/benefit.h"

#include <algorithm>
#include <cmath>

#include "verify/design_verifier.h"
#include "verify/verify_gate.h"

namespace miso::tuner {

namespace {

/// Budget large enough that hypothetical catalogs never reject a view.
constexpr Bytes kUnboundedBudget = kTiB * 1024;

views::ViewCatalog MakeHypotheticalCatalog(
    const std::vector<views::View>& set) {
  views::ViewCatalog catalog(kUnboundedBudget);
  for (const views::View& view : set) {
    catalog.AddUnchecked(view);  // ids are unique within a candidate set
  }
  return catalog;
}

}  // namespace

Status BenefitAnalyzer::SetWindow(std::vector<plan::Plan> window) {
  window_ = std::move(window);
  base_costs_.clear();
  cache_.clear();
  base_costs_.reserve(window_.size());
  const views::ViewCatalog empty(kUnboundedBudget);
  for (const plan::Plan& q : window_) {
    MISO_ASSIGN_OR_RETURN(Seconds cost,
                          optimizer_->WhatIfCost(q, empty, empty));
    base_costs_.push_back(cost);
  }
  return Status::OK();
}

double BenefitAnalyzer::Weight(int pos) const {
  if (window_.empty() || epoch_len_ <= 0) return 1.0;
  // pos counts from the oldest query; age 0 = the newest epoch.
  const int from_newest = static_cast<int>(window_.size()) - 1 - pos;
  const int epoch_age = from_newest / epoch_len_;
  return std::pow(decay_, epoch_age);
}

std::string BenefitAnalyzer::CacheKey(const std::vector<views::View>& set,
                                      Placement placement) const {
  std::vector<views::ViewId> ids;
  ids.reserve(set.size());
  for (const views::View& view : set) ids.push_back(view.id);
  std::sort(ids.begin(), ids.end());
  std::string key = std::to_string(static_cast<int>(placement));
  for (views::ViewId id : ids) {
    key += ':';
    key += std::to_string(id);
  }
  return key;
}

Result<std::vector<double>> BenefitAnalyzer::PerQueryBenefit(
    const std::vector<views::View>& set, Placement placement) {
  const std::string key = CacheKey(set, placement);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const views::ViewCatalog empty(kUnboundedBudget);
  const views::ViewCatalog hypothetical = MakeHypotheticalCatalog(set);
  const views::ViewCatalog& dw =
      placement == Placement::kHvOnly ? empty : hypothetical;
  const views::ViewCatalog& hv =
      placement == Placement::kDwOnly ? empty : hypothetical;

  std::vector<double> benefits;
  benefits.reserve(window_.size());
  for (size_t i = 0; i < window_.size(); ++i) {
    MISO_ASSIGN_OR_RETURN(Seconds cost,
                          optimizer_->WhatIfCost(window_[i], dw, hv));
    benefits.push_back(std::max(0.0, base_costs_[i] - cost));
  }
  cache_.emplace(key, benefits);
  return benefits;
}

Result<double> BenefitAnalyzer::PredictedBenefit(
    const std::vector<views::View>& set, Placement placement) {
  MISO_ASSIGN_OR_RETURN(std::vector<double> benefits,
                        PerQueryBenefit(set, placement));
  double total = 0;
  for (size_t i = 0; i < benefits.size(); ++i) {
    total += Weight(static_cast<int>(i)) * benefits[i];
  }
  // Debug-mode assertion (always on under ctest): the decayed-benefit
  // bookkeeping — clamped per-query savings, decay^epoch_age weights,
  // and their weighted sum — must cross-check against an independent
  // recomputation (V208).
  if (verify::Enabled()) {
    verify::BenefitLedger ledger;
    ledger.epoch_length = epoch_len_;
    ledger.decay = decay_;
    ledger.per_query_benefit = benefits;
    ledger.weights.reserve(benefits.size());
    for (size_t i = 0; i < benefits.size(); ++i) {
      ledger.weights.push_back(Weight(static_cast<int>(i)));
    }
    ledger.predicted_total = total;
    MISO_RETURN_IF_ERROR(verify::VerifyBenefitLedger(ledger));
  }
  return total;
}

}  // namespace miso::tuner
