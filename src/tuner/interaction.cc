#include "tuner/interaction.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace miso::tuner {

Result<std::vector<Interaction>> ComputeInteractions(
    const std::vector<views::View>& candidates, BenefitAnalyzer* analyzer,
    const InteractionConfig& config) {
  const int n = static_cast<int>(candidates.size());
  std::vector<Interaction> interactions;

  // Per-candidate individual benefits (decayed totals and per-query).
  std::vector<std::vector<double>> single(static_cast<size_t>(n));
  std::vector<double> single_total(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    MISO_ASSIGN_OR_RETURN(
        single[static_cast<size_t>(i)],
        analyzer->PerQueryBenefit({candidates[static_cast<size_t>(i)]},
                                  Placement::kBothStores));
    for (size_t q = 0; q < single[static_cast<size_t>(i)].size(); ++q) {
      single_total[static_cast<size_t>(i)] +=
          analyzer->Weight(static_cast<int>(q)) *
          single[static_cast<size_t>(i)][q];
    }
  }

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Prune: the pair can only interact on queries where both matter.
      bool common = false;
      for (size_t q = 0; q < single[static_cast<size_t>(i)].size(); ++q) {
        if (single[static_cast<size_t>(i)][q] > 0 &&
            single[static_cast<size_t>(j)][q] > 0) {
          common = true;
          break;
        }
      }
      if (!common) continue;

      MISO_ASSIGN_OR_RETURN(
          std::vector<double> joint,
          analyzer->PerQueryBenefit({candidates[static_cast<size_t>(i)],
                                     candidates[static_cast<size_t>(j)]},
                                    Placement::kBothStores));
      Interaction interaction;
      interaction.a = i;
      interaction.b = j;
      for (size_t q = 0; q < joint.size(); ++q) {
        const double delta = joint[q] - single[static_cast<size_t>(i)][q] -
                             single[static_cast<size_t>(j)][q];
        const double w = analyzer->Weight(static_cast<int>(q));
        interaction.magnitude += w * std::abs(delta);
        interaction.signed_sum += w * delta;
      }

      const double scale = single_total[static_cast<size_t>(i)] +
                           single_total[static_cast<size_t>(j)];
      if (interaction.magnitude > config.threshold_fraction * scale &&
          interaction.magnitude > 0) {
        interactions.push_back(interaction);
      }
    }
  }
  return interactions;
}

std::vector<std::vector<int>> StablePartition(
    int num_candidates, const std::vector<Interaction>& interactions) {
  // Union-find over significant interactions.
  std::vector<int> parent(static_cast<size_t>(num_candidates));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const Interaction& i : interactions) {
    const int ra = find(i.a);
    const int rb = find(i.b);
    if (ra != rb) parent[static_cast<size_t>(std::max(ra, rb))] =
        std::min(ra, rb);
  }

  std::vector<std::vector<int>> parts;
  std::vector<int> root_to_part(static_cast<size_t>(num_candidates), -1);
  for (int i = 0; i < num_candidates; ++i) {
    const int root = find(i);
    if (root_to_part[static_cast<size_t>(root)] < 0) {
      root_to_part[static_cast<size_t>(root)] =
          static_cast<int>(parts.size());
      parts.emplace_back();
    }
    parts[static_cast<size_t>(root_to_part[static_cast<size_t>(root)])]
        .push_back(i);
  }
  return parts;
}

}  // namespace miso::tuner
