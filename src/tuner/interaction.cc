#include "tuner/interaction.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <numeric>

namespace miso::tuner {

Result<std::vector<Interaction>> ComputeInteractions(
    const std::vector<views::View>& candidates, BenefitAnalyzer* analyzer,
    const InteractionConfig& config, ThreadPool* pool) {
  const int n = static_cast<int>(candidates.size());
  std::vector<Interaction> interactions;

  // Per-candidate individual benefits (decayed totals and per-query).
  // The probes behind all n rows fan out first; the rows below are then
  // pure memo hits.
  std::vector<std::vector<views::View>> single_sets;
  single_sets.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    single_sets.push_back({candidates[static_cast<size_t>(i)]});
  }
  MISO_RETURN_IF_ERROR(
      analyzer->Prewarm(pool, single_sets, Placement::kBothStores));
  std::vector<std::vector<double>> single(static_cast<size_t>(n));
  std::vector<double> single_total(static_cast<size_t>(n), 0.0);
  const size_t window = static_cast<size_t>(analyzer->window_size());
  // Hoisted per-candidate "benefited on query q" bitsets: the pair prune
  // below is a word-wise AND instead of a scan over the whole window.
  const size_t words = (window + 63) / 64;
  std::vector<uint64_t> benefited(static_cast<size_t>(n) * words, 0);
  // Hoisted per-candidate relevance bitsets: the delta reduce below only
  // visits queries where BOTH views are relevant, because everywhere else
  // delta is exactly 0 — if neither is relevant all three rows are 0; if
  // only view i is, the joint probe fingerprints to the same cost as the
  // single-i probe (joint[q] == single_i[q]) and single_j[q] == 0.
  std::vector<uint64_t> relevant(static_cast<size_t>(n) * words, 0);
  for (int i = 0; i < n; ++i) {
    const std::vector<uint64_t> mask =
        analyzer->RelevantMask(candidates[static_cast<size_t>(i)]);
    std::copy(mask.begin(), mask.end(),
              relevant.begin() + static_cast<size_t>(i) * words);
    MISO_ASSIGN_OR_RETURN(
        single[static_cast<size_t>(i)],
        analyzer->PerQueryBenefit(single_sets[static_cast<size_t>(i)],
                                  Placement::kBothStores));
    for (size_t q = 0; q < single[static_cast<size_t>(i)].size(); ++q) {
      single_total[static_cast<size_t>(i)] +=
          analyzer->Weight(static_cast<int>(q)) *
          single[static_cast<size_t>(i)][q];
      if (single[static_cast<size_t>(i)][q] > 0) {
        benefited[static_cast<size_t>(i) * words + q / 64] |=
            uint64_t{1} << (q % 64);
      }
    }
  }

  // Prune: a pair can only interact on queries where both matter. The
  // surviving pairs are enumerated serially (deterministic i<j order) and
  // their joint-benefit probes fan out in one batch.
  auto common_query = [&](int i, int j) {
    const uint64_t* bi = benefited.data() + static_cast<size_t>(i) * words;
    const uint64_t* bj = benefited.data() + static_cast<size_t>(j) * words;
    for (size_t w = 0; w < words; ++w) {
      if ((bi[w] & bj[w]) != 0) return true;
    }
    return false;
  };
  std::vector<std::pair<int, int>> pairs;
  std::vector<std::vector<views::View>> pair_sets;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!common_query(i, j)) continue;
      pairs.emplace_back(i, j);
      pair_sets.push_back({candidates[static_cast<size_t>(i)],
                           candidates[static_cast<size_t>(j)]});
    }
  }
  MISO_RETURN_IF_ERROR(
      analyzer->Prewarm(pool, pair_sets, Placement::kBothStores));

  // Serial in-order reduce over the memoized rows.
  for (size_t p = 0; p < pairs.size(); ++p) {
    const int i = pairs[p].first;
    const int j = pairs[p].second;
    {
      MISO_ASSIGN_OR_RETURN(
          std::vector<double> joint,
          analyzer->PerQueryBenefit(pair_sets[p], Placement::kBothStores));
      Interaction interaction;
      interaction.a = i;
      interaction.b = j;
      // Word-at-a-time over the queries where both views are relevant
      // (the only places delta can be nonzero — see the `relevant`
      // bitsets above). Skipped terms would add exactly +0.0, so the
      // accumulated sums match the full scan.
      const uint64_t* ri = relevant.data() + static_cast<size_t>(i) * words;
      const uint64_t* rj = relevant.data() + static_cast<size_t>(j) * words;
      for (size_t w = 0; w < words; ++w) {
        uint64_t bits = ri[w] & rj[w];
        while (bits != 0) {
          const size_t q =
              w * 64 + static_cast<size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const double delta = joint[q] - single[static_cast<size_t>(i)][q] -
                               single[static_cast<size_t>(j)][q];
          const double weight = analyzer->Weight(static_cast<int>(q));
          interaction.magnitude += weight * std::abs(delta);
          interaction.signed_sum += weight * delta;
        }
      }

      const double scale = single_total[static_cast<size_t>(i)] +
                           single_total[static_cast<size_t>(j)];
      if (interaction.magnitude > config.threshold_fraction * scale &&
          interaction.magnitude > 0) {
        interactions.push_back(interaction);
      }
    }
  }
  return interactions;
}

std::vector<std::vector<int>> StablePartition(
    int num_candidates, const std::vector<Interaction>& interactions) {
  // Union-find over significant interactions.
  std::vector<int> parent(static_cast<size_t>(num_candidates));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const Interaction& i : interactions) {
    const int ra = find(i.a);
    const int rb = find(i.b);
    if (ra != rb) parent[static_cast<size_t>(std::max(ra, rb))] =
        std::min(ra, rb);
  }

  std::vector<std::vector<int>> parts;
  std::vector<int> root_to_part(static_cast<size_t>(num_candidates), -1);
  for (int i = 0; i < num_candidates; ++i) {
    const int root = find(i);
    if (root_to_part[static_cast<size_t>(root)] < 0) {
      root_to_part[static_cast<size_t>(root)] =
          static_cast<int>(parts.size());
      parts.emplace_back();
    }
    parts[static_cast<size_t>(root_to_part[static_cast<size_t>(root)])]
        .push_back(i);
  }
  return parts;
}

}  // namespace miso::tuner
