#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace miso {

namespace {

// Lock discipline (DESIGN.md §13): the logger's only shared state is this
// single atomic threshold — no mutex, so nothing to GUARDED_BY. Each Log
// call writes one whole line via one fprintf, whose stdio stream lock
// keeps concurrent lines unsheared.
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logger::SetThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace miso
