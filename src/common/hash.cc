#include "common/hash.h"

namespace miso {

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // 64-bit variant of boost::hash_combine with a golden-ratio constant.
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a * kFnvPrime;
}

uint64_t HashCombineUnordered(uint64_t a, uint64_t b) {
  // Commutative & associative: plain modular sum keeps set semantics.
  // Callers should pre-mix weak inputs (e.g. via HashBytes) before
  // combining.
  return a + b;
}

}  // namespace miso
