#ifndef MISO_COMMON_RESULT_H_
#define MISO_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace miso {

/// Value-or-error holder, in the spirit of arrow::Result / absl::StatusOr.
///
/// A `Result<T>` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing the value of an errored result is a programming error (checked
/// by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }

  /// Constructs an OK result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace miso

/// Evaluates `expr` (a Result<T>), propagating its error, else assigning the
/// value into `lhs`. Usable in functions returning Status or Result<U>.
#define MISO_ASSIGN_OR_RETURN(lhs, expr)                  \
  MISO_ASSIGN_OR_RETURN_IMPL_(                            \
      MISO_CONCAT_(_miso_result_, __LINE__), lhs, expr)

#define MISO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define MISO_CONCAT_(a, b) MISO_CONCAT_IMPL_(a, b)
#define MISO_CONCAT_IMPL_(a, b) a##b

#endif  // MISO_COMMON_RESULT_H_
