#ifndef MISO_COMMON_RETRY_H_
#define MISO_COMMON_RETRY_H_

#include <functional>

#include "common/units.h"

namespace miso {

/// Configurable retry/backoff policy for fallible simulated operations
/// (HV MapReduce jobs, inter-store transfers, DW loads). Backoff is
/// *simulated* time: every retry attempt and every backoff interval is
/// charged into the run clock and the five-part cost anatomy, so a chaos
/// run's TTI honestly reflects its failures.
struct RetryPolicy {
  /// Total attempts, including the first one. 1 = no retries.
  int max_attempts = 3;

  /// Backoff slept before attempt 2 (simulated seconds).
  Seconds initial_backoff_s = 2.0;

  /// Exponential growth factor applied per further retry.
  double backoff_multiplier = 2.0;

  /// Upper clamp on a single backoff interval.
  Seconds max_backoff_s = 60.0;

  /// Backoff charged before attempt `attempt` (1-based): 0 for the first
  /// attempt, then initial * multiplier^(attempt - 2), clamped.
  Seconds BackoffBefore(int attempt) const;

  /// Σ BackoffBefore(a) for a in [1, attempts].
  Seconds TotalBackoff(int attempts) const;
};

/// Crash-recovery policy for journaled multi-step operations (the tuner's
/// reorganization journal): a crashed operation either rolls its applied
/// steps back (the design reverts to the pre-operation state) or resumes
/// and completes the remaining steps. Both paths are idempotent.
enum class RecoveryPolicy {
  kResume = 0,
  kRollback = 1,
};

const char* RecoveryPolicyName(RecoveryPolicy policy);

/// Outcome of one retried operation.
struct RetryStats {
  /// Attempts actually made (>= 1 whenever the operation ran).
  int attempts = 0;
  /// Simulated seconds charged by failed attempts (partial work that was
  /// thrown away).
  Seconds wasted_s = 0;
  /// Simulated seconds spent backing off between attempts.
  Seconds backoff_s = 0;
  /// Seconds charged by the successful attempt (0 when exhausted).
  Seconds success_s = 0;
  /// True when every attempt failed (the operation did not complete).
  bool exhausted = false;

  int retries() const { return attempts > 0 ? attempts - 1 : 0; }
  /// Everything charged to the simulated clock.
  Seconds TotalCharged() const { return wasted_s + backoff_s + success_s; }
};

/// Drives `attempt` under `policy`. The callback receives the 1-based
/// attempt number, writes the simulated seconds that attempt charged
/// (partial work on failure, full work on success), and returns whether
/// the attempt succeeded. Deterministic: the loop adds no randomness of
/// its own — any stochastic failure decision lives in the callback.
RetryStats RunWithRetry(const RetryPolicy& policy,
                        const std::function<bool(int, Seconds*)>& attempt);

}  // namespace miso

#endif  // MISO_COMMON_RETRY_H_
