#ifndef MISO_COMMON_ENV_H_
#define MISO_COMMON_ENV_H_

namespace miso {

/// Strict environment-variable parsing for the library's knobs
/// (`MISO_THREADS`, `MISO_METRICS`, `MISO_TRACE`, ...).
///
/// A knob that is set to garbage is a configuration error, not a request
/// for the default: silently falling back (the old `atoi` behaviour) runs
/// an experiment under a configuration the user did not ask for. Both
/// helpers therefore terminate the process (exit code 2) with a one-line
/// diagnostic naming the variable, the offending value, and the accepted
/// syntax whenever the variable is set but unparsable.

/// Integer knob. Returns `fallback` when `name` is unset. When set, the
/// whole value must parse as a decimal integer >= `min_value`; anything
/// else (empty string, trailing junk, out of range) exits.
int EnvInt(const char* name, int fallback, int min_value);

/// Boolean knob. Returns `fallback` when `name` is unset. When set, the
/// value must be exactly "0" or "1"; anything else exits.
bool EnvFlag(const char* name, bool fallback);

}  // namespace miso

#endif  // MISO_COMMON_ENV_H_
