#ifndef MISO_COMMON_ENV_H_
#define MISO_COMMON_ENV_H_

namespace miso {

/// Strict environment-variable parsing for the library's knobs
/// (`MISO_THREADS`, `MISO_METRICS`, `MISO_TRACE`, ...).
///
/// A knob that is set to garbage is a configuration error, not a request
/// for the default: silently falling back (the old `atoi` behaviour) runs
/// an experiment under a configuration the user did not ask for. Both
/// helpers therefore terminate the process (exit code 2) with a one-line
/// diagnostic naming the variable, the offending value, and the accepted
/// syntax whenever the variable is set but unparsable.

/// Integer knob. Returns `fallback` when `name` is unset. When set, the
/// whole value must parse as a decimal integer >= `min_value`; anything
/// else (empty string, trailing junk, out of range) exits.
int EnvInt(const char* name, int fallback, int min_value);

/// Boolean knob. Returns `fallback` when `name` is unset. When set, the
/// value must be exactly "0" or "1"; anything else exits.
bool EnvFlag(const char* name, bool fallback);

/// Real-valued knob (e.g. `MISO_FAULT_RATE`). Returns `fallback` when
/// `name` is unset. When set, the whole value must parse as a finite
/// decimal number in [min_value, max_value]; anything else exits.
double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value);

/// Enumerated knob (e.g. `MISO_FAULT_PROFILE`). Returns `fallback_index`
/// when `name` is unset. When set, the value must exactly equal one of the
/// `num_choices` strings in `choices`; the matching index is returned,
/// anything else exits with a diagnostic listing the accepted values.
int EnvChoice(const char* name, int fallback_index,
              const char* const* choices, int num_choices);

}  // namespace miso

#endif  // MISO_COMMON_ENV_H_
