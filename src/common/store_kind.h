#ifndef MISO_COMMON_STORE_KIND_H_
#define MISO_COMMON_STORE_KIND_H_

#include <string_view>

namespace miso {

/// The two stores of the multistore system (paper §3): HV is the Hive /
/// Hadoop big-data store holding the raw logs; DW is the parallel RDBMS
/// used as an accelerator.
enum class StoreKind { kHv = 0, kDw = 1 };

inline std::string_view StoreKindToString(StoreKind store) {
  return store == StoreKind::kHv ? "HV" : "DW";
}

}  // namespace miso

#endif  // MISO_COMMON_STORE_KIND_H_
