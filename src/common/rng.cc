#include "common/rng.h"

namespace miso {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace miso
