#ifndef MISO_COMMON_BOUNDED_QUEUE_H_
#define MISO_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace miso {

/// Bounded multi-producer / multi-consumer FIFO with close semantics —
/// the admission-queue primitive of the online server (DESIGN.md §14).
///
/// `Push` blocks while the queue is at capacity, so producers admitting
/// millions of sessions cannot outrun the consumers by more than the
/// queue bound (backpressure instead of unbounded memory growth), the
/// same discipline as `ThreadPool::Submit`. `Pop` blocks while the queue
/// is empty and open. `Close` wakes everyone: blocked pushes fail,
/// blocked pops drain the remaining items in FIFO order and then return
/// `nullopt` — so a closed queue never drops work that was admitted.
///
/// Items are popped in push order (one global FIFO). With multiple
/// consumers the *completion* order is of course unspecified; consumers
/// that need deterministic output reduce their results in a serial,
/// order-fixed stage afterwards (the server tags each session with its
/// admission index for exactly that).
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` bounds the pending items (clamped to >= 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, blocking while the queue is at capacity. Returns
  /// false (and drops `item`) iff the queue was closed before space
  /// opened up.
  bool Push(T item) {
    MutexLock lock(mutex_);
    not_full_.wait(mutex_,
                   [this]() MISO_REQUIRES(mutex_) {
                     return closed_ || items_.size() < capacity_;
                   });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when the queue is full or closed.
  bool TryPush(T item) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is empty and
  /// open. Returns `nullopt` once the queue is closed *and* drained.
  std::optional<T> Pop() {
    MutexLock lock(mutex_);
    not_empty_.wait(mutex_, [this]() MISO_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking batch pop for speculative consumers: appends exactly
  /// `n` items to `out` when at least `n` are queued, or everything that
  /// remains when the queue is closed (the final partial batch), and
  /// nothing otherwise. All-or-nothing while open, so a consumer cutting
  /// fixed-span batches gets the same batch boundaries whether it polls
  /// here or blocks in `Pop` — batch composition stays a pure function
  /// of push order, never of poll timing. Returns the number taken.
  std::size_t TryPopBatch(std::size_t n, std::vector<T>* out) {
    MutexLock lock(mutex_);
    if (items_.size() < n && !closed_) return 0;
    const std::size_t take = std::min(n, items_.size());
    for (std::size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (take > 0) not_full_.notify_all();
    return take;
  }

  /// Closes the queue: subsequent and blocked pushes fail, pops drain
  /// what remains. Idempotent.
  void Close() {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// Deepest queue observed since construction (for the runtime-class
  /// `miso.server.admission_queue_high_water` gauge).
  std::size_t high_water() const {
    MutexLock lock(mutex_);
    return high_water_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  // condition_variable_any waits directly on the annotated Mutex (it only
  // needs Lockable), so acquisitions stay visible to the analysis.
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> items_ MISO_GUARDED_BY(mutex_);
  bool closed_ MISO_GUARDED_BY(mutex_) = false;
  std::size_t high_water_ MISO_GUARDED_BY(mutex_) = 0;
};

}  // namespace miso

#endif  // MISO_COMMON_BOUNDED_QUEUE_H_
