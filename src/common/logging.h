#ifndef MISO_COMMON_LOGGING_H_
#define MISO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace miso {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The simulator and tuner emit
/// INFO-level traces of reorganization decisions; tests and benches lower
/// the threshold to kWarning to keep output clean.
class Logger {
 public:
  /// Global severity threshold; messages below it are dropped.
  static void SetThreshold(LogLevel level);
  static LogLevel threshold();

  /// Emits one line: "[LEVEL] message".
  static void Log(LogLevel level, const std::string& message);
};

namespace internal_logging {

/// Stream-style one-shot message builder used by the MISO_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace miso

#define MISO_LOG(level) \
  ::miso::internal_logging::LogMessage(::miso::LogLevel::level)

#endif  // MISO_COMMON_LOGGING_H_
