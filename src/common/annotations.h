#ifndef MISO_COMMON_ANNOTATIONS_H_
#define MISO_COMMON_ANNOTATIONS_H_

#include <mutex>

/// Clang Thread Safety Analysis annotations ("C/C++ Thread Safety
/// Analysis", Hutchins et al., CGO 2014) for the library's lock
/// discipline, plus the annotated `Mutex` / `MutexLock` wrappers the
/// analysis needs to see acquisitions through.
///
/// Under Clang the macros expand to the `capability`-family attributes and
/// `-Wthread-safety -Werror=thread-safety` (the `MISO_THREAD_SAFETY` CMake
/// option, on by default for Clang; the `clang-tsa` preset configures such
/// a build) turns lock-discipline violations into compile errors. Under
/// every other compiler they expand to nothing, so the annotations are
/// pure documentation with zero cost.
///
/// Conventions (enforced by miso-lint rule L006, see DESIGN.md §13):
///   - every mutex *member* (trailing-underscore name) must be referenced
///     by at least one `MISO_GUARDED_BY` annotation in the same file;
///   - guarded state is annotated at the declaration, e.g.
///       std::deque<Task> queue_ MISO_GUARDED_BY(mutex_);
///   - functions that expect the caller to hold a lock are annotated
///     `MISO_REQUIRES(mutex_)`; scoped acquisition goes through
///     `MutexLock`.

#if defined(__clang__)
#define MISO_TSA(x) __attribute__((x))
#else
#define MISO_TSA(x)  // no-op outside Clang
#endif

#define MISO_CAPABILITY(name) MISO_TSA(capability(name))
#define MISO_SCOPED_CAPABILITY MISO_TSA(scoped_lockable)
#define MISO_GUARDED_BY(x) MISO_TSA(guarded_by(x))
#define MISO_PT_GUARDED_BY(x) MISO_TSA(pt_guarded_by(x))
#define MISO_REQUIRES(...) MISO_TSA(requires_capability(__VA_ARGS__))
#define MISO_ACQUIRE(...) MISO_TSA(acquire_capability(__VA_ARGS__))
#define MISO_RELEASE(...) MISO_TSA(release_capability(__VA_ARGS__))
#define MISO_TRY_ACQUIRE(...) MISO_TSA(try_acquire_capability(__VA_ARGS__))
#define MISO_EXCLUDES(...) MISO_TSA(locks_excluded(__VA_ARGS__))
#define MISO_RETURN_CAPABILITY(x) MISO_TSA(lock_returned(x))
#define MISO_NO_THREAD_SAFETY_ANALYSIS MISO_TSA(no_thread_safety_analysis)

namespace miso {

/// `std::mutex` annotated as a capability. libstdc++'s `std::mutex` does
/// not carry the `capability` attribute, so annotating members with
/// `GUARDED_BY(some_std_mutex)` would trip `-Wthread-safety-attributes`
/// and `std::lock_guard` acquisitions would be invisible to the analysis;
/// this thin wrapper is what makes the analysis sound on any standard
/// library. It satisfies *Lockable*, so `std::condition_variable_any`
/// waits on it directly.
class MISO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MISO_ACQUIRE() { mu_.lock(); }
  void unlock() MISO_RELEASE() { mu_.unlock(); }
  bool try_lock() MISO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // miso-lint: allow(L006) the raw mutex *is* the capability this wrapper annotates
  std::mutex mu_;
};

/// RAII lock for `Mutex` — the annotated equivalent of
/// `std::lock_guard<std::mutex>`.
class MISO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MISO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MISO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace miso

#endif  // MISO_COMMON_ANNOTATIONS_H_
