#ifndef MISO_COMMON_UNITS_H_
#define MISO_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace miso {

/// Data sizes are tracked in bytes as signed 64-bit integers (signed so
/// subtraction in budget accounting cannot silently wrap).
using Bytes = int64_t;

/// Simulated wall-clock durations and timestamps, in seconds.
using Seconds = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;
inline constexpr Bytes kTiB = 1024 * kGiB;

/// Convenience constructors: MiB(1.5) == 1.5 * 2^20 bytes, rounded.
Bytes KiB(double n);
Bytes MiB(double n);
Bytes GiB(double n);
Bytes TiB(double n);

/// Fractions of a byte count, rounded to the nearest byte and clamped to be
/// non-negative. Used by the cardinality estimator when applying
/// selectivities.
Bytes ScaleBytes(Bytes size, double factor);

/// Pretty-prints a byte count with a binary-unit suffix, e.g. "1.50 GiB".
std::string FormatBytes(Bytes size);

/// Pretty-prints a duration, e.g. "12.3 s", "4.56 h".
std::string FormatSeconds(Seconds s);

}  // namespace miso

#endif  // MISO_COMMON_UNITS_H_
