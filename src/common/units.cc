#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace miso {

namespace {

Bytes RoundNonNegative(double v) {
  if (v <= 0) return 0;
  return static_cast<Bytes>(std::llround(v));
}

}  // namespace

Bytes KiB(double n) { return RoundNonNegative(n * static_cast<double>(kKiB)); }
Bytes MiB(double n) { return RoundNonNegative(n * static_cast<double>(kMiB)); }
Bytes GiB(double n) { return RoundNonNegative(n * static_cast<double>(kGiB)); }
Bytes TiB(double n) { return RoundNonNegative(n * static_cast<double>(kTiB)); }

Bytes ScaleBytes(Bytes size, double factor) {
  return RoundNonNegative(static_cast<double>(size) * factor);
}

std::string FormatBytes(Bytes size) {
  const char* suffix = "B";
  double v = static_cast<double>(size);
  if (size >= kTiB) {
    v /= static_cast<double>(kTiB);
    suffix = "TiB";
  } else if (size >= kGiB) {
    v /= static_cast<double>(kGiB);
    suffix = "GiB";
  } else if (size >= kMiB) {
    v /= static_cast<double>(kMiB);
    suffix = "MiB";
  } else if (size >= kKiB) {
    v /= static_cast<double>(kKiB);
    suffix = "KiB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix);
  return buf;
}

std::string FormatSeconds(Seconds s) {
  char buf[64];
  if (s >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", s / 3600.0);
  } else if (s >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", s / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  }
  return buf;
}

}  // namespace miso
