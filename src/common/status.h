#ifndef MISO_COMMON_STATUS_H_
#define MISO_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace miso {

/// Machine-readable category of an error carried by `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfBudget,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// RocksDB-style error carrier. The library does not use exceptions; every
/// fallible operation returns a `Status` (or a `Result<T>`, see result.h).
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a free-form message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfBudget(std::string msg) {
    return Status(StatusCode::kOutOfBudget, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace miso

/// Propagates a non-OK `Status` to the caller. Usable only in functions
/// returning `Status`.
#define MISO_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::miso::Status _miso_status = (expr);            \
    if (!_miso_status.ok()) return _miso_status;     \
  } while (false)

#endif  // MISO_COMMON_STATUS_H_
