#include "common/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace miso {

namespace {

[[noreturn]] void DieBadEnv(const char* name, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "miso: environment variable %s='%s' is invalid: %s\n",
               name, value, expected);
  std::exit(2);
}

}  // namespace

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (value[0] == '\0' || end == value || *end != '\0' || errno == ERANGE ||
      parsed < min_value || parsed > 1'000'000) {
    char expected[64];
    std::snprintf(expected, sizeof(expected),
                  "expected an integer in [%d, 1000000]", min_value);
    DieBadEnv(name, value, expected);
  }
  return static_cast<int>(parsed);
}

bool EnvFlag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "0") == 0) return false;
  if (std::strcmp(value, "1") == 0) return true;
  DieBadEnv(name, value, "expected 0 or 1");
}

}  // namespace miso
