#include "common/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace miso {

namespace {

[[noreturn]] void DieBadEnv(const char* name, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "miso: environment variable %s='%s' is invalid: %s\n",
               name, value, expected);
  std::exit(2);
}

}  // namespace

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (value[0] == '\0' || end == value || *end != '\0' || errno == ERANGE ||
      parsed < min_value || parsed > 1'000'000) {
    char expected[64];
    std::snprintf(expected, sizeof(expected),
                  "expected an integer in [%d, 1000000]", min_value);
    DieBadEnv(name, value, expected);
  }
  return static_cast<int>(parsed);
}

bool EnvFlag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "0") == 0) return false;
  if (std::strcmp(value, "1") == 0) return true;
  DieBadEnv(name, value, "expected 0 or 1");
}

double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (value[0] == '\0' || end == value || *end != '\0' || errno == ERANGE ||
      !(parsed >= min_value) || !(parsed <= max_value)) {
    char expected[80];
    std::snprintf(expected, sizeof(expected),
                  "expected a number in [%g, %g]", min_value, max_value);
    DieBadEnv(name, value, expected);
  }
  return parsed;
}

int EnvChoice(const char* name, int fallback_index,
              const char* const* choices, int num_choices) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback_index;
  for (int i = 0; i < num_choices; ++i) {
    if (std::strcmp(value, choices[i]) == 0) return i;
  }
  std::string expected = "expected one of ";
  for (int i = 0; i < num_choices; ++i) {
    if (i > 0) expected += '|';
    expected += choices[i];
  }
  DieBadEnv(name, value, expected.c_str());
}

}  // namespace miso
