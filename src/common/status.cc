#include "common/status.h"

namespace miso {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfBudget:
      return "OutOfBudget";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace miso
