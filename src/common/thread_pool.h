#ifndef MISO_COMMON_THREAD_POOL_H_
#define MISO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace miso {

/// Fixed-size worker pool over a bounded FIFO task queue.
///
/// `Submit` enqueues one task and blocks while the queue is full, so a
/// producer enumerating millions of work items cannot outrun the workers
/// by more than the queue capacity (backpressure instead of unbounded
/// memory growth). Tasks are dequeued in submission order; completion
/// order is of course unspecified. The destructor drains: every task
/// already submitted runs to completion before the workers join, so a
/// pool going out of scope mid-burst never drops work.
///
/// The pool is the only concurrency primitive in the library. Everything
/// that runs on it is a pure function over immutable inputs writing to a
/// caller-owned slot (see `ParallelFor`), which is how the parallel
/// optimizer and simulator stay bit-identical to their serial paths.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). `queue_capacity`
  /// bounds the pending-task queue; 0 selects 4 * num_threads.
  explicit ThreadPool(int num_threads, std::size_t queue_capacity = 0);

  /// Drains the queue (all submitted tasks run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_capacity() const { return queue_capacity_; }

  /// Enqueues `task`, blocking while the queue is at capacity. The
  /// returned future observes completion and rethrows any exception the
  /// task raised. Must not be called from one of this pool's own workers
  /// (a full queue would deadlock); `ParallelFor` degrades to a serial
  /// loop in that case instead.
  std::future<void> Submit(std::function<void()> task);

  /// True iff the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// Lifetime-to-date execution statistics. These describe the *runtime*,
  /// not the model: they depend on machine load and thread count and are
  /// therefore excluded from the determinism contract. The simulator
  /// publishes them into the obs registry under `miso.pool.*` (the pool
  /// itself cannot link obs — that would be a layering cycle).
  struct Stats {
    int64_t tasks_run = 0;
    int64_t submits = 0;
    int64_t queue_high_water = 0;
  };
  Stats GetStats() const;

  /// The process-default worker count: the `MISO_THREADS` environment
  /// variable when set, else the hardware concurrency (and 1 when even
  /// that is unknown). A set-but-unparsable `MISO_THREADS` terminates the
  /// process with a diagnostic (see common/env.h) instead of silently
  /// running serial. `MISO_THREADS=1` forces every parallel code path
  /// onto the exact legacy serial loop.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::size_t queue_capacity_;
  Mutex mutex_;
  // condition_variable_any waits directly on the annotated Mutex (it only
  // needs Lockable), so acquisitions stay visible to the analysis.
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<std::packaged_task<void()>> queue_ MISO_GUARDED_BY(mutex_);
  bool shutting_down_ MISO_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> submits_{0};
  std::atomic<int64_t> queue_high_water_{0};
};

/// Batching knobs for `ParallelFor`.
struct ParallelForOptions {
  /// Minimum number of indices packed into one pool task (the *grain*).
  /// Submitting a pool task costs a packaged_task allocation, a mutex
  /// round-trip, and a condvar wake — several microseconds — so a body
  /// that runs in hundreds of nanoseconds must be batched by the hundreds
  /// to amortize it. Pick the grain so one task is at least ~50 µs of
  /// work. When `n <= grain` the whole loop runs inline on the caller
  /// (zero pool traffic), which is also the fast path that keeps tiny
  /// fan-outs from paying any scheduling tax at all.
  ///
  /// The grain can never change results: indices are still executed
  /// exactly once, each writing its own slot, and all reductions remain
  /// serial in index order in the caller (see the determinism contract
  /// below). The `MISO_PARALLEL_GRAIN` environment variable, when set,
  /// overrides the grain of every call — the grain-sweep byte-identity
  /// tests pin that outputs are independent of it.
  int grain = 1;
};

/// Runs `body(0) .. body(n-1)` over the pool in contiguous index chunks
/// and waits for all of them. Falls back to a plain serial loop — the
/// exact legacy code path — when `pool` is null, has a single worker,
/// the caller already *is* one of the pool's workers (nested parallelism
/// would deadlock on the bounded queue, and inline execution keeps the
/// nesting deterministic), or `n` does not exceed the grain.
///
/// Determinism contract: each index must write only to its own
/// caller-owned slot (and read only shared immutable state), so the
/// result vector is identical regardless of thread count, grain, or
/// completion order; any cross-index reduction happens in the caller
/// afterwards, in index order. If bodies throw, the exception from the
/// lowest-indexed throwing chunk is rethrown after every chunk has
/// finished (no body keeps running once ParallelFor returns).
void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body);

/// As above, with explicit batching options: chunks hold at least
/// `options.grain` indices each (still contiguous, still at most
/// 4 * num_threads chunks), and loops of `n <= grain` run inline without
/// touching the pool. `ParallelFor(pool, n, body)` is exactly
/// `ParallelFor(pool, n, body, {})`.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& body,
                 const ParallelForOptions& options);

}  // namespace miso

#endif  // MISO_COMMON_THREAD_POOL_H_
