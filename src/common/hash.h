#ifndef MISO_COMMON_HASH_H_
#define MISO_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace miso {

/// 64-bit FNV-1a offset basis / prime. Plan signatures (plan/signature.h)
/// are built from these primitives; they must be stable across platforms
/// because signatures are the identity of materialized views.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte string.
uint64_t HashBytes(std::string_view bytes, uint64_t seed = kFnvOffsetBasis);

/// Order-dependent combination of two 64-bit hashes (boost-style mix).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Order-independent combination, for sets of child hashes whose order is
/// not semantically meaningful (e.g. conjuncts of a predicate).
uint64_t HashCombineUnordered(uint64_t a, uint64_t b);

}  // namespace miso

#endif  // MISO_COMMON_HASH_H_
