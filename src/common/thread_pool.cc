#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <utility>

#include "common/env.h"

namespace miso {

namespace {

/// Set for the duration of WorkerLoop so ParallelFor can detect nesting.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads, std::size_t queue_capacity) {
  const int n = std::max(1, num_threads);
  queue_capacity_ =
      queue_capacity > 0 ? queue_capacity : static_cast<std::size_t>(4 * n);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  assert(!InWorkerThread() && "Submit from a worker can deadlock");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    while (queue_.size() >= queue_capacity_ && !shutting_down_) {
      not_full_.wait(mutex_);
    }
    assert(!shutting_down_ && "Submit after shutdown began");
    queue_.push_back(std::move(packaged));
    submits_.fetch_add(1, std::memory_order_relaxed);
    const auto depth = static_cast<int64_t>(queue_.size());
    int64_t high = queue_high_water_.load(std::memory_order_relaxed);
    while (depth > high && !queue_high_water_.compare_exchange_weak(
                               high, depth, std::memory_order_relaxed)) {
    }
  }
  not_empty_.notify_one();
  return future;
}

bool ThreadPool::InWorkerThread() const { return t_current_pool == this; }

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !shutting_down_) not_empty_.wait(mutex_);
      if (queue_.empty()) break;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // Count before running: the task's future is satisfied inside task(),
    // and a waiter observing that completion must already see the count.
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    task();  // exceptions land in the task's future
  }
  t_current_pool = nullptr;
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  stats.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  stats.submits = submits_.load(std::memory_order_relaxed);
  stats.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  return stats;
}

int ThreadPool::DefaultThreadCount() {
  // EnvInt exits with a diagnostic when MISO_THREADS is set to garbage;
  // 0 is our "unset" sentinel (EnvInt never returns it for a set value
  // because min_value is 1).
  const int parsed = EnvInt("MISO_THREADS", /*fallback=*/0, /*min_value=*/1);
  if (parsed >= 1) return parsed;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body) {
  ParallelFor(pool, n, body, ParallelForOptions{});
}

void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& body,
                 const ParallelForOptions& options) {
  if (n <= 0) return;
  // MISO_PARALLEL_GRAIN, when set, overrides every caller's grain — the
  // knob behind the grain-sweep byte-identity tests and ad-hoc perf
  // experiments. Strict parsing: garbage exits with a diagnostic.
  const int grain =
      EnvInt("MISO_PARALLEL_GRAIN", std::max(1, options.grain), 1);
  if (pool == nullptr || pool->num_threads() <= 1 || pool->InWorkerThread() ||
      n <= grain) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  // Contiguous chunks of at least `grain` indices, several per worker for
  // load balance. A chunk that throws abandons its own remaining indices
  // (as the serial loop would) without affecting other chunks.
  const int chunks =
      std::min(std::min(n, pool->num_threads() * 4), (n + grain - 1) / grain);
  const int chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(chunks));
  for (int begin = 0; begin < n; begin += chunk_size) {
    const int end = std::min(n, begin + chunk_size);
    futures.push_back(pool->Submit([&body, begin, end] {
      for (int i = begin; i < end; ++i) body(i);
    }));
  }
  // Wait for everything first: no body may still be running when we
  // rethrow (the closures reference caller-scope state).
  for (std::future<void>& future : futures) future.wait();
  std::exception_ptr first;
  for (std::future<void>& future : futures) {  // lowest chunk wins
    try {
      future.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace miso
