#ifndef MISO_COMMON_RNG_H_
#define MISO_COMMON_RNG_H_

#include <cstdint>

namespace miso {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic choice in the library flows through an
/// explicitly-seeded `Rng` so that workloads, datasets, and simulations are
/// exactly reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi). Requires lo < hi.
  double UniformReal(double lo, double hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Forks an independent, deterministically-derived child stream. Used to
  /// give each analyst / dataset its own stream so adding a consumer does
  /// not perturb the draws of another.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace miso

#endif  // MISO_COMMON_RNG_H_
