#include "common/retry.h"

#include <algorithm>

namespace miso {

Seconds RetryPolicy::BackoffBefore(int attempt) const {
  if (attempt <= 1) return 0;
  Seconds backoff = initial_backoff_s;
  for (int i = 2; i < attempt; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_s);
}

Seconds RetryPolicy::TotalBackoff(int attempts) const {
  Seconds total = 0;
  for (int a = 1; a <= attempts; ++a) total += BackoffBefore(a);
  return total;
}

const char* RecoveryPolicyName(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kResume:
      return "resume";
    case RecoveryPolicy::kRollback:
      return "rollback";
  }
  return "?";
}

RetryStats RunWithRetry(const RetryPolicy& policy,
                        const std::function<bool(int, Seconds*)>& attempt) {
  RetryStats stats;
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int a = 1; a <= max_attempts; ++a) {
    stats.backoff_s += policy.BackoffBefore(a);
    stats.attempts = a;
    Seconds charged = 0;
    if (attempt(a, &charged)) {
      stats.success_s = charged;
      return stats;
    }
    stats.wasted_s += charged;
  }
  stats.exhausted = true;
  return stats;
}

}  // namespace miso
