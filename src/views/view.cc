#include "views/view.h"

#include <cstdio>

#include "common/hash.h"

namespace miso::views {

std::string View::DebugString() const {
  char head[64];
  std::snprintf(head, sizeof(head), "v%llu[",
                static_cast<unsigned long long>(id));
  std::string out = head;
  // Canonical forms can be long; clip for logs.
  if (canonical.size() > 96) {
    out += canonical.substr(0, 93) + "...";
  } else {
    out += canonical;
  }
  out += "] ";
  out += FormatBytes(size_bytes);
  return out;
}

uint64_t View::ContentFingerprint() const {
  uint64_t h = kFnvOffsetBasis;
  h = HashCombine(h, signature);
  h = HashCombine(h, base_signature);
  h = HashCombine(h, HashBytes(predicate.CanonicalString()));
  h = HashCombine(h, static_cast<uint64_t>(size_bytes));
  h = HashCombine(h, static_cast<uint64_t>(stats.rows));
  h = HashCombine(h, static_cast<uint64_t>(stats.bytes));
  return h;
}

View ViewFromNode(const plan::OperatorNode& node) {
  View view;
  view.signature = node.signature();
  view.canonical = node.canonical();
  view.schema = node.output_schema();
  view.stats = node.stats();
  view.size_bytes = node.stats().bytes;
  if (node.kind() == plan::OpKind::kFilter && !node.children().empty()) {
    view.base_signature = node.children()[0]->signature();
    view.predicate = node.filter().predicate;
  }
  return view;
}

}  // namespace miso::views
