#include "views/rewriter.h"

#include <algorithm>

namespace miso::views {

using plan::NodePtr;
using plan::OpKind;

Result<plan::Plan> Rewriter::Rewrite(const plan::Plan& p,
                                     const ViewCatalog& dw,
                                     const ViewCatalog& hv,
                                     RewriteReport* report) const {
  RewriteReport local;
  if (report == nullptr) report = &local;
  MISO_ASSIGN_OR_RETURN(NodePtr root,
                        RewriteNode(p.root(), &dw, &hv, report));
  return plan::Plan(p.query_name(), std::move(root));
}

Result<plan::Plan> Rewriter::RewriteSingleStore(const plan::Plan& p,
                                                const ViewCatalog& catalog,
                                                StoreKind store,
                                                RewriteReport* report) const {
  RewriteReport local;
  if (report == nullptr) report = &local;
  const ViewCatalog* dw = store == StoreKind::kDw ? &catalog : nullptr;
  const ViewCatalog* hv = store == StoreKind::kHv ? &catalog : nullptr;
  MISO_ASSIGN_OR_RETURN(NodePtr root, RewriteNode(p.root(), dw, hv, report));
  return plan::Plan(p.query_name(), std::move(root));
}

Result<NodePtr> Rewriter::TryStore(const NodePtr& node,
                                   const ViewCatalog& catalog,
                                   StoreKind store,
                                   RewriteReport* report) const {
  // Exact match on the whole subexpression.
  if (std::optional<View> exact = catalog.FindExact(node->signature())) {
    report->exact_matches++;
    report->views_used.push_back(exact->id);
    return factory_->MakeViewScan(exact->id, exact->signature, store,
                                  exact->schema, exact->stats,
                                  exact->canonical);
  }

  // Subsumption: node is Filter(p_q, C); look for views Filter(p_v, C)
  // with p_q => p_v. Among applicable views prefer the smallest (fewest
  // bytes to read and compensate); equal sizes tie-break on the content
  // signature, never on id — the chosen rewrite (and hence the what-if
  // cost) must be a pure function of view *content* so that the relevance
  // fingerprint of optimizer/whatif_cache.h, which deliberately excludes
  // ids, can never alias two designs that would rewrite differently.
  if (node->kind() != OpKind::kFilter || node->children().empty()) {
    return NodePtr(nullptr);
  }
  const plan::Predicate& query_pred = node->filter().predicate;
  const uint64_t base_sig = node->children()[0]->signature();
  std::optional<View> best;
  for (const View& candidate : catalog.FindByBase(base_sig)) {
    if (!query_pred.Implies(candidate.predicate)) continue;
    if (!best.has_value() || candidate.size_bytes < best->size_bytes ||
        (candidate.size_bytes == best->size_bytes &&
         candidate.signature < best->signature)) {
      best = candidate;
    }
  }
  if (!best.has_value()) return NodePtr(nullptr);

  report->subsumption_matches++;
  report->views_used.push_back(best->id);
  NodePtr scan =
      factory_->MakeViewScan(best->id, best->signature, store, best->schema,
                             best->stats, best->canonical);
  const plan::Predicate comp =
      plan::CompensationPredicate(query_pred, best->predicate);
  if (comp.IsTrue()) {
    // The view is exactly as restrictive as the query predicate even though
    // the canonical forms differ (e.g. same atoms estimated differently).
    return factory_->Recanonicalize(scan, node->canonical());
  }
  MISO_ASSIGN_OR_RETURN(NodePtr filtered,
                        factory_->MakeFilter(std::move(scan), comp));
  // The compensation result computes the original expression; keep its
  // canonical identity so harvested views are correctly named.
  return factory_->Recanonicalize(filtered, node->canonical());
}

Result<NodePtr> Rewriter::RewriteNode(const NodePtr& node,
                                      const ViewCatalog* dw,
                                      const ViewCatalog* hv,
                                      RewriteReport* report) const {
  if (node == nullptr) return NodePtr(nullptr);

  // Prefer answering from the DW design: when the data is present in DW,
  // executing there always won in the paper's calibration (§3.1).
  if (dw != nullptr) {
    MISO_ASSIGN_OR_RETURN(NodePtr replaced,
                          TryStore(node, *dw, StoreKind::kDw, report));
    if (replaced != nullptr) {
      report->dw_views_used++;
      return replaced;
    }
  }
  if (hv != nullptr) {
    MISO_ASSIGN_OR_RETURN(NodePtr replaced,
                          TryStore(node, *hv, StoreKind::kHv, report));
    if (replaced != nullptr) {
      report->hv_views_used++;
      return replaced;
    }
  }

  // No view answers this subtree; recurse into children.
  bool changed = false;
  std::vector<NodePtr> children;
  children.reserve(node->children().size());
  for (const NodePtr& child : node->children()) {
    MISO_ASSIGN_OR_RETURN(NodePtr rewritten,
                          RewriteNode(child, dw, hv, report));
    changed = changed || rewritten != child;
    children.push_back(std::move(rewritten));
  }
  if (!changed) return node;
  MISO_ASSIGN_OR_RETURN(NodePtr rebuilt,
                        factory_->Rebuild(*node, std::move(children)));
  // Children keep original canonicals, so the rebuilt parent's canonical
  // already equals the original parent's; no recanonicalization needed.
  return rebuilt;
}

}  // namespace miso::views
