#ifndef MISO_VIEWS_REWRITER_H_
#define MISO_VIEWS_REWRITER_H_

#include <vector>

#include "common/result.h"
#include "plan/node_factory.h"
#include "plan/plan.h"
#include "views/view_catalog.h"

namespace miso::views {

/// Statistics about one rewrite, for diagnostics and tests.
struct RewriteReport {
  int dw_views_used = 0;
  int hv_views_used = 0;
  int exact_matches = 0;
  int subsumption_matches = 0;
  std::vector<ViewId> views_used;

  bool AnyRewrite() const { return dw_views_used + hv_views_used > 0; }
};

/// Semantic view-based query rewriting (the method of LeFevre et al.,
/// "Opportunistic physical design for big data analytics", which the paper
/// uses both for execution and inside the what-if optimizer).
///
/// The rewriter walks a plan top-down and replaces the largest subtrees
/// answerable from materialized views:
///
///  * exact match — a view materializes precisely the subexpression
///    (signature equality); the subtree becomes a ViewScan.
///  * subsumption match — the subtree is Filter(p_q, C), a view
///    materializes Filter(p_v, C) with p_q ⇒ p_v; the subtree becomes
///    Compensate(p_q \ p_v, ViewScan(view)).
///
/// DW-resident views are preferred over HV-resident views (the paper
/// observes DW execution always wins when the data is already there), and
/// among equally-applicable views the smallest is chosen. Every spliced
/// node keeps the canonical form of the expression it computes, so
/// harvesting opportunistic views from a rewritten plan yields
/// correctly-identified views.
class Rewriter {
 public:
  explicit Rewriter(const plan::NodeFactory* factory) : factory_(factory) {}

  /// Rewrites `p` against the designs of both stores. `report` may be null.
  Result<plan::Plan> Rewrite(const plan::Plan& p, const ViewCatalog& dw,
                             const ViewCatalog& hv,
                             RewriteReport* report) const;

  /// Rewrites against a single store's views (used by single-store system
  /// variants such as HV-OP).
  Result<plan::Plan> RewriteSingleStore(const plan::Plan& p,
                                        const ViewCatalog& catalog,
                                        StoreKind store,
                                        RewriteReport* report) const;

 private:
  Result<plan::NodePtr> RewriteNode(const plan::NodePtr& node,
                                    const ViewCatalog* dw,
                                    const ViewCatalog* hv,
                                    RewriteReport* report) const;

  /// Attempts to answer `node` from `catalog`; returns nullptr when no view
  /// applies.
  Result<plan::NodePtr> TryStore(const plan::NodePtr& node,
                                 const ViewCatalog& catalog, StoreKind store,
                                 RewriteReport* report) const;

  const plan::NodeFactory* factory_;
};

}  // namespace miso::views

#endif  // MISO_VIEWS_REWRITER_H_
