#include "views/view_catalog.h"

#include "common/hash.h"

namespace miso::views {

Status ViewCatalog::Add(View view) {
  if (view.size_bytes > available_bytes()) {
    return Status::OutOfBudget(
        "view " + view.DebugString() + " exceeds available storage (" +
        FormatBytes(available_bytes()) + " of " + FormatBytes(budget_) + ")");
  }
  return AddUnchecked(std::move(view));
}

Status ViewCatalog::AddUnchecked(View view) {
  if (views_.count(view.id) > 0) {
    return Status::AlreadyExists("view id " + std::to_string(view.id) +
                                 " already in catalog");
  }
  used_ += view.size_bytes;
  last_used_[view.id] = view.created_by_query;
  views_.emplace(view.id, std::move(view));
  return Status::OK();
}

Status ViewCatalog::Remove(ViewId id) {
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound("view id " + std::to_string(id) +
                            " not in catalog");
  }
  used_ -= it->second.size_bytes;
  views_.erase(it);
  last_used_.erase(id);
  return Status::OK();
}

bool ViewCatalog::Contains(ViewId id) const { return views_.count(id) > 0; }

Result<View> ViewCatalog::Find(ViewId id) const {
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound("view id " + std::to_string(id) +
                            " not in catalog");
  }
  return it->second;
}

std::optional<View> ViewCatalog::FindExact(uint64_t signature) const {
  for (const auto& [id, view] : views_) {
    if (view.signature == signature) return view;
  }
  return std::nullopt;
}

std::vector<View> ViewCatalog::FindByBase(uint64_t base_signature) const {
  std::vector<View> out;
  if (base_signature == 0) return out;
  for (const auto& [id, view] : views_) {
    if (view.base_signature == base_signature) out.push_back(view);
  }
  return out;
}

std::vector<View> ViewCatalog::AllViews() const {
  std::vector<View> out;
  out.reserve(views_.size());
  for (const auto& [id, view] : views_) out.push_back(view);
  return out;
}

uint64_t ViewCatalog::ContentFingerprint() const {
  uint64_t h = kFnvOffsetBasis;
  for (const auto& [id, view] : views_) {
    h = HashCombineUnordered(h, view.ContentFingerprint());
  }
  return h;
}

void ViewCatalog::TouchView(ViewId id, int query_index) {
  auto it = last_used_.find(id);
  if (it != last_used_.end() && query_index > it->second) {
    it->second = query_index;
  }
}

int ViewCatalog::LastUsed(ViewId id) const {
  auto it = last_used_.find(id);
  return it == last_used_.end() ? -1 : it->second;
}

void ViewCatalog::Clear() {
  views_.clear();
  last_used_.clear();
  used_ = 0;
}

}  // namespace miso::views
