#ifndef MISO_VIEWS_VIEW_CATALOG_H_
#define MISO_VIEWS_VIEW_CATALOG_H_

#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "views/view.h"

namespace miso::views {

/// The set of materialized views resident in one store, with view-storage
/// budget accounting (`Bh` / `Bd` of the paper).
///
/// Budget semantics follow §3.1: the DW budget is strictly enforced on
/// every insertion, while HV deployments are "less tightly managed" — new
/// opportunistic views may exceed the budget between reorganizations, and
/// the budget is re-imposed by the tuner. `Add` enforces; `AddUnchecked`
/// admits over budget.
class ViewCatalog {
 public:
  ViewCatalog() = default;
  explicit ViewCatalog(Bytes storage_budget) : budget_(storage_budget) {}

  Bytes budget() const { return budget_; }
  void set_budget(Bytes budget) { budget_ = budget; }
  Bytes used_bytes() const { return used_; }
  Bytes available_bytes() const { return budget_ - used_; }
  bool OverBudget() const { return used_ > budget_; }
  int size() const { return static_cast<int>(views_.size()); }
  bool empty() const { return views_.empty(); }

  /// Adds a view, enforcing the storage budget.
  Status Add(View view);

  /// Adds a view even if it exceeds the budget (HV between reorgs).
  Status AddUnchecked(View view);

  Status Remove(ViewId id);
  bool Contains(ViewId id) const;
  Result<View> Find(ViewId id) const;

  /// View materializing exactly the subexpression with this signature.
  std::optional<View> FindExact(uint64_t signature) const;

  /// All views whose root is a Filter over the subexpression with signature
  /// `base_signature` (candidates for subsumption rewriting).
  std::vector<View> FindByBase(uint64_t base_signature) const;

  /// All views, ordered by id (deterministic iteration).
  std::vector<View> AllViews() const;

  /// Order-independent hash of the catalog's rewrite-relevant content
  /// (each member's `View::ContentFingerprint`; ids excluded). Two
  /// catalogs with equal fingerprints rewrite every query identically and
  /// hence cost identically — the key contract of the optimizer's what-if
  /// probe memo (`WhatIfSession`).
  uint64_t ContentFingerprint() const;

  /// Marks `id` as used by query `query_index` (for LRU policies).
  void TouchView(ViewId id, int query_index);
  /// Query index of the last use, or creation index if never used.
  int LastUsed(ViewId id) const;

  void Clear();

 private:
  std::map<ViewId, View> views_;   // ordered: deterministic iteration
  std::map<ViewId, int> last_used_;
  Bytes budget_ = 0;
  Bytes used_ = 0;
};

}  // namespace miso::views

#endif  // MISO_VIEWS_VIEW_CATALOG_H_
