#ifndef MISO_VIEWS_VIEW_H_
#define MISO_VIEWS_VIEW_H_

#include <cstdint>
#include <string>

#include "common/store_kind.h"
#include "common/units.h"
#include "plan/operator.h"
#include "plan/predicate.h"
#include "relation/schema.h"

namespace miso::views {

/// Identifier of a materialized view, unique within a ViewRegistry.
using ViewId = uint64_t;

/// Metadata of one opportunistic materialized view — a by-product of query
/// processing (an HV MapReduce job output, or a working set transferred
/// between the stores) that the system retained (paper §1, §3).
///
/// The view's identity is the canonical signature of the subexpression it
/// materializes. When the subexpression's root is a Filter, the view also
/// records its base (the filter's input) and the filter predicate, enabling
/// subsumption-based reuse with a compensation filter.
struct View {
  ViewId id = 0;

  /// Signature / canonical form of the materialized subexpression.
  uint64_t signature = 0;
  std::string canonical;

  /// When the subexpression root is a Filter: signature of its child and
  /// the filter predicate. `base_signature == 0` otherwise.
  uint64_t base_signature = 0;
  plan::Predicate predicate;

  /// Output schema and estimated contents of the materialization.
  relation::Schema schema;
  plan::OutputStats stats;

  /// Bytes occupied on disk (== stats.bytes; views are stored unindexed in
  /// HV and as a loaded table in DW).
  Bytes size_bytes = 0;

  /// Index of the query whose execution produced this view.
  int created_by_query = -1;
  /// Simulated timestamp of creation.
  Seconds created_at = 0;

  /// Short debug label, e.g. "v42[agg(join(...))] 1.25 GiB".
  std::string DebugString() const;

  /// Hash of everything a rewrite can expose to the cost models —
  /// signature, base signature, predicate, size, stats — and nothing else
  /// (ids and provenance excluded: cost identity is content identity).
  /// Shared by `WhatIfCache::Fingerprint` and
  /// `ViewCatalog::ContentFingerprint`, so both caches alias designs in
  /// exactly the same cases.
  uint64_t ContentFingerprint() const;
};

/// Builds a View describing the materialization of `node` (annotations are
/// copied; filter base/predicate extracted when applicable). The caller
/// assigns `id`, `created_by_query`, and `created_at`.
View ViewFromNode(const plan::OperatorNode& node);

}  // namespace miso::views

#endif  // MISO_VIEWS_VIEW_H_
