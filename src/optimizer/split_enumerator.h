#ifndef MISO_OPTIMIZER_SPLIT_ENUMERATOR_H_
#define MISO_OPTIMIZER_SPLIT_ENUMERATOR_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "optimizer/multistore_plan.h"

namespace miso::optimizer {

/// One candidate split of a plan, before costing: the DW-side operator set
/// (upward-closed) and the HV-side subtree roots feeding it.
struct SplitCandidate {
  std::vector<plan::NodePtr> dw_side;
  std::vector<plan::NodePtr> cut_inputs;
};

/// Enumerates every feasible split of `root`:
///
///  * the DW side is upward-closed (once a query migrates to DW it never
///    returns to HV — data flows one direction, §3.1);
///  * every DW-side operator is DW-executable;
///  * DW-resident ViewScans must land on the DW side (HV cannot read DW
///    tables), HV-resident ViewScans and raw Scans on the HV side.
///
/// The HV-only execution is always included as the empty DW side (first
/// element), *unless* the plan contains a DW-resident ViewScan, in which
/// case HV-only is infeasible. The result may be empty when the plan mixes
/// a DW-resident ViewScan below an HV-only operator; the optimizer then
/// falls back to a rewrite that does not use DW views.
///
/// `max_candidates` caps the enumeration as a safety valve for adversarial
/// plans (the cap is far above anything the paper's 7-job queries produce).
///
/// `pool` (optional) parallelizes the per-candidate feasibility
/// verification pass over the enumerated splits. The candidate list and
/// its order are produced by the sequential recursion either way, so the
/// output is bit-identical for every thread count; on verification
/// failure the error of the lowest-indexed bad candidate is returned,
/// exactly as in the serial scan.
Result<std::vector<SplitCandidate>> EnumerateSplits(
    const plan::NodePtr& root, int max_candidates = 100000,
    ThreadPool* pool = nullptr);

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_SPLIT_ENUMERATOR_H_
