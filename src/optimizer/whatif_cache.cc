#include "optimizer/whatif_cache.h"

#include <cstring>

#include "common/hash.h"

namespace miso::optimizer {

namespace {

uint64_t HashU64(uint64_t h, uint64_t v) { return HashCombine(h, v); }

uint64_t HashDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return HashCombine(h, bits);
}

/// Everything about one view that a rewrite can expose to the cost model
/// (single-sourced in View so every content-identity cache aliases alike).
uint64_t ViewFingerprint(const views::View& view) {
  return view.ContentFingerprint();
}

}  // namespace

QueryShape QueryShape::Of(const plan::Plan& query) {
  QueryShape shape;
  shape.signature = query.signature();
  for (const plan::NodePtr& node : query.PostOrder()) {
    shape.node_signatures.insert(node->signature());
    if (node->kind() == plan::OpKind::kFilter && !node->children().empty()) {
      shape.filter_base_signatures.insert(node->children()[0]->signature());
    }
  }
  return shape;
}

bool QueryShape::Relevant(const views::View& view) const {
  if (node_signatures.count(view.signature) > 0) return true;
  return view.base_signature != 0 &&
         filter_base_signatures.count(view.base_signature) > 0;
}

bool QueryShape::AnyRelevant(const std::vector<views::View>& set) const {
  for (const views::View& view : set) {
    if (Relevant(view)) return true;
  }
  return false;
}

std::size_t WhatIfKeyHash::operator()(const WhatIfKey& key) const {
  uint64_t h = kFnvOffsetBasis;
  h = HashU64(h, key.query_signature);
  h = HashU64(h, key.dw_fingerprint);
  h = HashU64(h, key.hv_fingerprint);
  return static_cast<std::size_t>(h);
}

uint64_t WhatIfCache::Fingerprint(const QueryShape& shape,
                                  const std::vector<views::View>& set) {
  uint64_t h = kFnvOffsetBasis;
  for (const views::View& view : set) {
    if (!shape.Relevant(view)) continue;
    h = HashCombineUnordered(h, ViewFingerprint(view));
  }
  return h;
}

uint64_t WhatIfCache::EmptyFingerprint() { return kFnvOffsetBasis; }

uint64_t WhatIfCache::EpochOf(const hv::HvConfig& hv, const dw::DwConfig& dw,
                              const transfer::TransferConfig& transfer) {
  uint64_t h = kFnvOffsetBasis;
  h = HashU64(h, static_cast<uint64_t>(hv.num_nodes));
  h = HashDouble(h, hv.job_startup_s);
  h = HashDouble(h, hv.job_min_work_s);
  h = HashDouble(h, hv.raw_read_mbps);
  h = HashDouble(h, hv.inter_read_mbps);
  h = HashDouble(h, hv.shuffle_mbps);
  h = HashDouble(h, hv.write_mbps);
  h = HashDouble(h, hv.udf_cpu_mbps);
  h = HashU64(h, static_cast<uint64_t>(dw.num_nodes));
  h = HashDouble(h, dw.query_overhead_s);
  h = HashDouble(h, dw.scan_mbps);
  h = HashDouble(h, dw.op_mbps);
  h = HashDouble(h, dw.temp_scan_mbps);
  h = HashDouble(h, dw.index_floor);
  h = HashDouble(h, transfer.dump_mbps);
  h = HashDouble(h, transfer.network_mbps);
  h = HashDouble(h, transfer.temp_load_mbps);
  h = HashDouble(h, transfer.perm_load_mbps);
  h = HashDouble(h, transfer.dw_export_mbps);
  h = HashDouble(h, transfer.hdfs_write_mbps);
  return h;
}

void WhatIfCache::SetEpoch(uint64_t epoch) {
  MutexLock lock(mutex_);
  epoch_ = epoch;
}

uint64_t WhatIfCache::epoch() const {
  MutexLock lock(mutex_);
  return epoch_;
}

std::optional<Seconds> WhatIfCache::Lookup(const WhatIfKey& key) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second->epoch != epoch_) {
    lru_.erase(it->second);
    index_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->cost;
}

void WhatIfCache::Insert(const WhatIfKey& key, Seconds cost) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->cost = cost;
    it->second->epoch = epoch_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, cost, epoch_});
  index_.emplace(key, lru_.begin());
  while (static_cast<Bytes>(lru_.size()) * kEntryBytes > max_bytes_ &&
         lru_.size() > 1) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

WhatIfCache::Stats WhatIfCache::GetStats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = static_cast<int64_t>(lru_.size());
  stats.bytes = static_cast<Bytes>(lru_.size()) * kEntryBytes;
  return stats;
}

void WhatIfCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace miso::optimizer
