#include "optimizer/split_enumerator.h"

#include <functional>

#include "obs/metrics.h"
#include "obs/names.h"
#include "verify/plan_verifier.h"
#include "verify/verify_gate.h"

namespace miso::optimizer {

using plan::NodePtr;
using plan::OpKind;

namespace {

/// Assignment of one subtree given that its parent runs in DW: either the
/// whole subtree stays in HV (it becomes one cut input), or its root joins
/// the DW side and each child subtree chooses independently.
struct SubtreeOptions {
  /// Each option: (dw nodes of the subtree, cut inputs of the subtree).
  std::vector<SplitCandidate> options;
};

bool MustStayInHv(const plan::OperatorNode& node) {
  if (!node.dw_executable()) return true;
  if (node.kind() == OpKind::kViewScan &&
      node.view_scan().store == StoreKind::kHv) {
    return true;
  }
  return false;
}

bool MustGoToDw(const plan::OperatorNode& node) {
  return node.kind() == OpKind::kViewScan &&
         node.view_scan().store == StoreKind::kDw;
}

/// True when the subtree rooted at `node` contains a DW-resident ViewScan
/// (which makes an all-HV assignment of the subtree infeasible).
bool ContainsDwView(const NodePtr& node) {
  if (node == nullptr) return false;
  if (MustGoToDw(*node)) return true;
  for (const NodePtr& child : node->children()) {
    if (ContainsDwView(child)) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<SplitCandidate>> EnumerateSplits(const NodePtr& root,
                                                    int max_candidates,
                                                    ThreadPool* pool) {
  if (root == nullptr) {
    return Status::InvalidArgument("cannot split an empty plan");
  }

  bool truncated = false;

  std::function<SubtreeOptions(const NodePtr&)> enumerate =
      [&](const NodePtr& node) -> SubtreeOptions {
    SubtreeOptions result;

    // Option A: the whole subtree remains in HV, its output is a cut input.
    if (!ContainsDwView(node)) {
      SplitCandidate all_hv;
      all_hv.cut_inputs.push_back(node);
      result.options.push_back(std::move(all_hv));
    }

    // Option B: this node joins the DW side; combine child assignments.
    if (!MustStayInHv(*node)) {
      std::vector<SplitCandidate> partials;
      partials.emplace_back();  // start with the empty assignment
      for (const NodePtr& child : node->children()) {
        SubtreeOptions child_options = enumerate(child);
        std::vector<SplitCandidate> next;
        for (const SplitCandidate& partial : partials) {
          for (const SplitCandidate& choice : child_options.options) {
            if (static_cast<int>(next.size()) +
                    static_cast<int>(result.options.size()) >
                max_candidates) {
              truncated = true;
              break;
            }
            SplitCandidate merged = partial;
            merged.dw_side.insert(merged.dw_side.end(),
                                  choice.dw_side.begin(),
                                  choice.dw_side.end());
            merged.cut_inputs.insert(merged.cut_inputs.end(),
                                     choice.cut_inputs.begin(),
                                     choice.cut_inputs.end());
            next.push_back(std::move(merged));
          }
          if (truncated) break;
        }
        partials = std::move(next);
        if (partials.empty()) break;  // child had no feasible assignment
      }
      for (SplitCandidate& partial : partials) {
        partial.dw_side.push_back(node);
        result.options.push_back(std::move(partial));
      }
    }

    return result;
  };

  SubtreeOptions root_options = enumerate(root);

  // At the root, the "whole subtree in HV" option is the HV-only plan: it
  // has no cut (nothing is transferred anywhere) — rewrite it accordingly.
  std::vector<SplitCandidate> candidates;
  candidates.reserve(root_options.options.size());
  for (SplitCandidate& option : root_options.options) {
    if (option.dw_side.empty()) {
      option.cut_inputs.clear();  // HV-only: no transfer
    }
    candidates.push_back(std::move(option));
  }

  if (truncated) {
    return Status::Internal("split enumeration exceeded max_candidates");
  }
  if (candidates.empty()) {
    if (obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kSplitsInfeasible)->Increment();
    }
    return Status::FailedPrecondition(
        "no feasible split: a DW-resident view is pinned below an "
        "HV-only operator");
  }
  // Serial point: counter values depend only on the plan shape, never on
  // the thread count of the verification fan-out below.
  if (obs::MetricsOn()) {
    obs::MetricsRegistry& registry = obs::Metrics();
    registry.GetCounter(obs::names::kSplitEnumerations)->Increment();
    registry.GetCounter(obs::names::kSplitsEnumerated)
        ->Add(static_cast<int64_t>(candidates.size()));
    registry
        .GetHistogram(obs::names::kSplitCandidates, obs::CountBuckets())
        ->Observe(static_cast<double>(candidates.size()));
  }
  // Debug-mode assertion (always on under ctest): every emitted candidate
  // must be a well-formed split — DW side upward-closed and DW-executable,
  // views on their own store's side, cut = the HV->DW frontier. Each
  // candidate verifies independently against immutable plan nodes, so the
  // pass fans out over the pool; the first failure in candidate order is
  // reported, matching the serial scan.
  if (verify::Enabled()) {
    std::vector<Status> verdicts(candidates.size());
    // One VerifySplit is ~a microsecond of pointer-chasing; batched so the
    // common tens-of-candidates case runs inline and large enumerations
    // amortize each pool task over many checks.
    ParallelFor(
        pool, static_cast<int>(candidates.size()),
        [&](int i) {
          verdicts[static_cast<size_t>(i)] =
              verify::VerifySplit(root, candidates[static_cast<size_t>(i)]);
        },
        ParallelForOptions{/*grain=*/32});
    for (Status& verdict : verdicts) {
      MISO_RETURN_IF_ERROR(std::move(verdict));
    }
  }
  return candidates;
}

}  // namespace miso::optimizer
